(* The paper's Section 4.1 experiment: Figure 6's synchronous iterative
   linear solver, same code on causal and atomic DSM, with the message
   counts the paper's analysis predicts (2n+6 vs at least 3n+5 per
   processor per iteration).

   Run with:  dune exec examples/linear_solver.exe -- [n] [iters]        *)

module Harness = Dsm_apps.Harness
module Table = Dsm_util.Table

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8 in
  let iters = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 10 in
  Printf.printf "Solving a random diagonally-dominant %dx%d system, %d Jacobi phases\n"
    n n iters;
  Printf.printf "(%d worker processes + 1 coordinator, one node each)\n\n" n;

  let causal = Harness.solver_causal ~n ~iters () in
  let atomic = Harness.solver_atomic ~n ~iters () in

  let t = Table.create ~headers:[ "memory"; "max|x-jacobi|"; "residual"; "messages"; "causal?" ] in
  let row name (r : Harness.solver_result) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.1e" r.Harness.max_diff;
        Printf.sprintf "%.2e" r.Harness.residual;
        string_of_int r.Harness.messages_total;
        (if r.Harness.history_correct then "yes" else "NO");
      ]
  in
  row "causal" causal;
  row "atomic" atomic;
  Table.print ~title:"Same program, two memories" t;

  (* Steady-state message rates vs the paper's analysis. *)
  let causal_rate =
    Harness.steady_rate ~run:(fun ~iters -> Harness.solver_causal ~n ~iters ()) ~iters_lo:5
      ~iters_hi:15
  in
  let atomic_rate =
    Harness.steady_rate ~run:(fun ~iters -> Harness.solver_atomic ~n ~iters ()) ~iters_lo:5
      ~iters_hi:15
  in
  let t2 = Table.create ~headers:[ "memory"; "measured msgs/proc/iter"; "paper analysis" ] in
  Table.add_row t2
    [ "causal"; Printf.sprintf "%.2f" causal_rate; Printf.sprintf "2n+6 = %d" ((2 * n) + 6) ];
  Table.add_row t2
    [
      "atomic";
      Printf.sprintf "%.2f" atomic_rate;
      Printf.sprintf ">= 3n+5 = %d" ((3 * n) + 5);
    ];
  Table.print ~title:"Message counting (Section 4.1)" t2;

  Printf.printf "Causal memory saves %.0f%% of the messages at n=%d.\n"
    (100.0 *. (1.0 -. (causal_rate /. atomic_rate)))
    n
