(* A causal message board: why causal memory is the right consistency level
   for conversation-shaped data.

   Run with:  dune exec examples/message_board.exe

   Three processes share a board; replies reference their parents.  Causal
   memory guarantees a reader never sees an orphan reply — the replier read
   the parent before replying, so the parent is in the reply's causal past,
   and the protocol's invalidation rule forces the reader's stale "no parent
   yet" cache entry out the moment the reply is installed.  The same
   schedule on FIFO-only broadcast replicas shows the orphan. *)

module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Cluster = Dsm_causal.Cluster
module Board = Dsm_apps.Board
module B = Dsm_apps.Board.Make (Dsm_causal.Cluster.Mem)
module Scenarios = Dsm_apps.Scenarios

let () =
  let processes = 3 in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let cluster =
    Cluster.create ~sched
      ~owner:(Dsm_memory.Owner.by_index ~nodes:processes)
      ~latency:(Dsm_net.Latency.Constant 1.0) ()
  in
  let run body =
    ignore (Proc.spawn sched body);
    Engine.run engine;
    Proc.check sched
  in
  let boards = Array.init processes (fun i -> B.attach (Cluster.handle cluster i) ~slots:8) in

  print_endline "A conversation across three nodes:";
  run (fun () -> ignore (B.post boards.(0) "Anyone tried causal memory?"));
  run (fun () ->
      B.refresh boards.(1);
      match B.read_board boards.(1) with
      | q :: _ -> ignore (B.post boards.(1) ~reply_to:q.Board.id "Yes! No global sync needed.")
      | [] -> ());
  run (fun () ->
      B.refresh boards.(2);
      match List.rev (B.read_board boards.(2)) with
      | a :: _ -> ignore (B.post boards.(2) ~reply_to:a.Board.id "How do reads stay consistent?")
      | [] -> ());
  run (fun () ->
      B.refresh boards.(0);
      let posts = B.read_board boards.(0) in
      List.iter (fun p -> Format.printf "  %a@." Board.pp_post p) posts;
      Printf.printf "  (orphan replies: %d)\n" (List.length (Board.orphans posts)));

  print_newline ();
  print_endline "The reply-overtakes-parent schedule on three memories:";
  print_endline "(a reply races ahead of its parent toward a third reader)";
  print_newline ();
  let show name (r : Scenarios.board_result) =
    Printf.printf "  %-28s early view: %d post(s), %d orphan(s); final: %d, %d\n" name
      r.Scenarios.br_early_posts r.Scenarios.br_early_orphans r.Scenarios.br_final_posts
      r.Scenarios.br_final_orphans
  in
  show "causal DSM (owner protocol):" (Scenarios.board_on_causal_dsm ());
  show "causal broadcast replicas:" (Scenarios.board_on_broadcast ~mode:`Causal);
  show "FIFO broadcast replicas:" (Scenarios.board_on_broadcast ~mode:`Fifo);
  print_newline ();
  print_endline "Only the FIFO replicas ever show an orphan: causal memory (either the";
  print_endline "owner protocol's pull model or causally-ordered delivery) protects the";
  print_endline "reply-implies-parent invariant without any synchronisation."
