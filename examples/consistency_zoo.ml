(* The consistency zoo: classic litmus tests classified by the checker
   hierarchy, locating causal memory among its neighbours.

   Run with:  dune exec examples/consistency_zoo.exe

   Each shape is an execution history in the paper's notation; each column
   is one consistency model's verdict.  The interesting separations:
     - SB  (Figure 5): causal memory allows what SC forbids;
     - WRC: causal memory forbids what PRAM allows — the defining gap;
     - MP : even causal memory protects flag-then-data. *)

module Litmus = Dsm_checker.Litmus
module Table = Dsm_util.Table

let () =
  let t =
    Table.create ~headers:[ "litmus"; "causal"; "SC"; "PRAM"; "slow"; "coherent"; "as expected" ]
  in
  List.iter
    (fun (c : Litmus.case) ->
      let results = Litmus.check c in
      let measured name =
        let _, _, m = List.find (fun (n, _, _) -> n = name) results in
        if m then "ok" else "VIOL"
      in
      Table.add_row t
        [
          c.Litmus.name;
          measured "causal";
          measured "sc";
          measured "pram";
          measured "slow";
          measured "coherent";
          (if Litmus.passes c then "yes" else "NO");
        ])
    Litmus.all;
  Table.print ~title:"Litmus tests vs the consistency hierarchy" t;
  print_endline "Details:";
  List.iter
    (fun (c : Litmus.case) ->
      Printf.printf "\n%s\n" c.Litmus.name;
      print_endline (Dsm_memory.History.to_string c.Litmus.history);
      Printf.printf "  %s\n" c.Litmus.description)
    Litmus.all
