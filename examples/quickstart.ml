(* Quickstart: three processes sharing a causal DSM.

   Run with:  dune exec examples/quickstart.exe

   Builds a 3-node cluster, lets each node read and write a few locations,
   prints the recorded execution in the paper's notation, and verifies it
   with the causal-memory checker. *)

module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Cluster = Dsm_causal.Cluster
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value

let () =
  (* 1. An engine (simulated time), a scheduler (cooperative processes),
     and a 3-node causal DSM.  Location "v.i" is owned by node i mod 3. *)
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Dsm_memory.Owner.by_index ~nodes:3 in
  let cluster = Cluster.create ~sched ~owner ~latency:(Dsm_net.Latency.Constant 1.0) () in

  let v i = Loc.indexed "v" i in

  (* 2. Three processes.  Reads of locations owned elsewhere fetch a copy
     from the owner and cache it; writes are certified by the owner. *)
  let p0 () =
    let h = Cluster.handle cluster 0 in
    Cluster.write h (v 0) (Value.Int 10);       (* owner write: no messages *)
    Cluster.write h (v 1) (Value.Int 11);       (* certified at node 1      *)
    Printf.printf "P0 reads v.2 = %s\n" (Value.to_string (Cluster.read h (v 2)))
  in
  let p1 () =
    let h = Cluster.handle cluster 1 in
    Proc.sleep 5.0;
    (* Sees P0's certified write in its own memory: node 1 owns v.1. *)
    Printf.printf "P1 reads v.1 = %s\n" (Value.to_string (Cluster.read h (v 1)));
    Cluster.write h (v 2) (Value.Int 22)
  in
  let p2 () =
    let h = Cluster.handle cluster 2 in
    Proc.sleep 10.0;
    (* Remote read miss: fetches the current copy from node 0. *)
    Printf.printf "P2 reads v.0 = %s\n" (Value.to_string (Cluster.read h (v 0)))
  in
  ignore (Proc.spawn sched ~name:"P0" p0);
  ignore (Proc.spawn sched ~name:"P1" p1);
  ignore (Proc.spawn sched ~name:"P2" p2);

  (* 3. Run the simulation to quiescence. *)
  Engine.run engine;
  Proc.check sched;

  (* 4. Inspect what happened. *)
  let history = Cluster.history cluster in
  print_newline ();
  print_endline "Recorded execution (paper notation):";
  print_endline (Dsm_memory.History.to_string history);
  print_newline ();
  let counters = Dsm_net.Network.counters (Cluster.net cluster) in
  Printf.printf "Network messages: %d (" counters.Dsm_net.Network.total;
  List.iter (fun (k, c) -> Printf.printf " %s=%d" k c) counters.Dsm_net.Network.by_kind;
  print_endline " )";
  Printf.printf "Causal-memory checker: %s\n"
    (if Dsm_checker.Causal_check.is_correct history then "CORRECT" else "VIOLATION")
