(* Figure 3: causal broadcasting is NOT causal memory.

   Run with:  dune exec examples/broadcast_anomaly.exe

   Replays the paper's Figure 3 schedule on a memory whose writes are
   causally ordered broadcasts.  The two concurrent writes of x commute
   differently at P2 and P3, and P3 ends up reading a value that its own
   causal past has already overwritten — the checker flags the exact read
   the paper points at. *)

module Scenarios = Dsm_apps.Scenarios
module Check = Dsm_checker.Causal_check

let () =
  print_endline "Replaying Figure 3 on the broadcast-based memory...";
  let r = Scenarios.fig3_broadcast () in
  print_newline ();
  print_endline "Recorded execution (paper notation; spin reads included):";
  print_endline (Dsm_memory.History.to_string r.Scenarios.f3_history);
  print_newline ();
  Printf.printf "Final value of x per node: P1=%s P2=%s P3=%s\n"
    (Dsm_memory.Value.to_string r.Scenarios.f3_final_x.(0))
    (Dsm_memory.Value.to_string r.Scenarios.f3_final_x.(1))
    (Dsm_memory.Value.to_string r.Scenarios.f3_final_x.(2));
  print_newline ();
  (match Check.check r.Scenarios.f3_history with
  | Ok (Check.Violations vs) ->
      print_endline "Causal-memory checker: VIOLATION (as the paper predicts)";
      List.iter (fun (v : Check.violation) -> Printf.printf "  %s\n" v.Check.reason) vs
  | Ok Check.Correct -> print_endline "Unexpectedly correct?!"
  | Error e -> Printf.printf "malformed: %s\n" e);
  Printf.printf "PRAM checker: %s\n"
    (if r.Scenarios.f3_pram_ok then "satisfied (broadcast memory is PRAM)" else "violated");
  print_newline ();
  print_endline "Contrast: the same schedule is impossible on the owner protocol,";
  print_endline "whose Figure 5 weak execution is still causally correct:";
  let f5 = Scenarios.fig5_owner_protocol () in
  print_endline (Dsm_memory.History.to_string f5.Scenarios.f5_history);
  Printf.printf "causal: %b, sequentially consistent: %b\n" f5.Scenarios.f5_causal_ok
    f5.Scenarios.f5_sc_ok
