(* The paper's Section 4.2 distributed dictionary.

   Run with:  dune exec examples/dictionary.exe

   Three processes cooperatively maintain an association table without any
   synchronisation: each inserts into its own row, anyone deletes anywhere,
   and the owner-favored resolution policy keeps concurrent delete/insert
   races safe.  Finishes by showing the race the paper analyses, under both
   the paper's policy and last-writer-wins. *)

module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Cluster = Dsm_causal.Cluster
module Dictionary = Dsm_apps.Dictionary
module Scenarios = Dsm_apps.Scenarios

let () =
  let processes = 3 in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let cluster =
    Cluster.create ~sched ~owner:(Dictionary.owner_map ~processes)
      ~config:Dictionary.config ~latency:(Dsm_net.Latency.Constant 1.0) ()
  in
  let dict = Array.init processes (fun i -> Dictionary.attach (Cluster.handle cluster i) ~cols:8) in

  let run body =
    ignore (Proc.spawn sched body);
    Engine.run engine;
    Proc.check sched
  in

  (* Everyone inserts into their own row — no synchronisation needed. *)
  run (fun () -> ignore (Dictionary.insert dict.(0) "apple"));
  run (fun () -> ignore (Dictionary.insert dict.(1) "banana"));
  run (fun () -> ignore (Dictionary.insert dict.(2) "cherry"));

  (* Process 1 deletes an item owned by process 0. *)
  run (fun () ->
      match Dictionary.delete dict.(1) "apple" with
      | `Deleted -> print_endline "P1 deleted \"apple\" (owned by P0)"
      | `Rejected -> print_endline "P1's delete was rejected"
      | `Not_found -> print_endline "P1 could not find \"apple\"");

  (* All views converge after a refresh. *)
  Array.iteri
    (fun i d ->
      run (fun () ->
          Dictionary.refresh d;
          Printf.printf "P%d sees: [%s]\n" i (String.concat "; " (Dictionary.items d))))
    dict;

  print_newline ();
  print_endline "The Section 4.2 race: a stale delete vs the owner's re-insert";
  print_endline "--------------------------------------------------------------";
  let show name (r : Scenarios.dictionary_race_result) =
    Printf.printf "%-18s delete %s; owner's dictionary afterwards: [%s]\n" name
      (match r.Scenarios.dr_delete_outcome with
      | `Deleted -> "APPLIED"
      | `Rejected -> "rejected"
      | `Not_found -> "not-found")
      (String.concat "; " r.Scenarios.dr_items_at_owner)
  in
  show "owner-favored:" (Scenarios.dictionary_race ~policy:Dsm_causal.Policy.Owner_favored);
  show "last-writer-wins:" (Scenarios.dictionary_race ~policy:Dsm_causal.Policy.Last_writer_wins);
  print_endline "";
  print_endline "Under owner-favored resolution the re-inserted item survives the";
  print_endline "stale delete — the property the paper's correctness argument needs.";
  Cluster.shutdown cluster
