(* Figure 4 in action: the exact messages of the owner protocol.

   Run with:  dune exec examples/protocol_trace.exe

   A three-node cluster with a tracer attached to the transport: every
   protocol message is printed as it is sent, so you can follow the
   pseudocode of the paper's Figure 4 line by line — the READ/R_REPLY
   round trip of a read miss, the WRITE/W_REPLY certification of a remote
   write, and the invalidation that a causally newer value forces. *)

module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Cluster = Dsm_causal.Cluster
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value

let () =
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let cluster =
    Cluster.create ~sched
      ~owner:(Dsm_memory.Owner.by_index ~nodes:3)
      ~latency:(Dsm_net.Latency.Constant 1.0) ()
  in
  Dsm_net.Network.set_tracer (Cluster.net cluster)
    (Some
       (fun ~time ~src ~dst ~kind:_ msg ->
         Format.printf "  t=%5.1f  P%d -> P%d  %a@." time src dst Dsm_causal.Message.pp msg));
  let v i = Loc.indexed "v" i in
  let step title body =
    Printf.printf "%s\n" title;
    ignore (Proc.spawn sched body);
    Engine.run engine;
    Proc.check sched;
    print_newline ()
  in

  step "P1 writes its own location v.1 (owner write: zero messages):" (fun () ->
      Cluster.write (Cluster.handle cluster 1) (v 1) (Value.Int 10));

  step "P0 reads v.1 (read miss: [READ] to the owner, [R_REPLY] back):" (fun () ->
      ignore (Cluster.read (Cluster.handle cluster 0) (v 1)));

  step "P0 reads v.1 again (cached: zero messages):" (fun () ->
      ignore (Cluster.read (Cluster.handle cluster 0) (v 1)));

  step "P2 writes v.1 (remote write: [WRITE] certification, [W_REPLY]):" (fun () ->
      Cluster.write (Cluster.handle cluster 2) (v 1) (Value.Int 20));

  step
    "P2 writes v.2, P0 reads v.2: the fetched stamp dominates P0's cached\n\
     v.1 copy, so Figure 4's rule invalidates it..." (fun () ->
      Cluster.write (Cluster.handle cluster 2) (v 2) (Value.Int 30);
      ignore (Cluster.read (Cluster.handle cluster 0) (v 2)));

  step "...and P0's next read of v.1 misses and refetches the new value:" (fun () ->
      let value = Cluster.read (Cluster.handle cluster 0) (v 1) in
      Printf.printf "  P0 reads v.1 = %s (was 10 in its cache before)\n"
        (Value.to_string value));

  let stats = Cluster.total_stats cluster in
  Printf.printf "Totals: %d messages, %d invalidation(s), history %s.\n"
    (Dsm_net.Network.lifetime_total (Cluster.net cluster))
    stats.Dsm_causal.Node_stats.invalidations
    (if Dsm_checker.Causal_check.is_correct (Cluster.history cluster) then
       "causally correct"
     else "VIOLATING");
  print_newline ();
  print_endline "The recorded execution as a space-time diagram:";
  Dsm_checker.Diagram.print (Cluster.history cluster)
