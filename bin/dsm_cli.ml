(* dsm — command-line driver for the causal DSM library.

   Subcommands:
     check     check a history file (paper notation) against the memory models
     fig       print and check one of the paper's figures
     solver    run the Figure 6 solver on causal/atomic memory
     dict      run the distributed-dictionary demo
     anomaly   reproduce the Figure 3 broadcast anomaly
     workload  run a random workload and classify its execution
     chaos     run a workload over lossy links with the reliable transport
     bench     transport perf baseline: batching on vs off, JSON artifact
*)

open Cmdliner

module Check = Dsm_checker.Causal_check
module Consistency = Dsm_checker.Consistency
module History = Dsm_memory.History
module Table = Dsm_util.Table

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let classify_and_print history =
  print_endline "History:";
  print_endline (History.to_string history);
  print_newline ();
  let c = Consistency.classify history in
  let t = Table.create ~headers:[ "consistency model"; "satisfied" ] in
  Table.add_row t [ "causal memory (Definitions 1-2)"; (if c.Consistency.causal then "yes" else "NO") ];
  Table.add_row t [ "sequential consistency"; (if c.Consistency.sc then "yes" else "no") ];
  Table.add_row t [ "PRAM"; (if c.Consistency.pram then "yes" else "no") ];
  Table.add_row t [ "slow memory"; (if c.Consistency.slow then "yes" else "no") ];
  Table.add_row t [ "coherence (per-location SC)"; (if c.Consistency.coherent then "yes" else "no") ];
  (match Dsm_checker.Session.check history with
  | Ok r ->
      let mark b = if b then "yes" else "no" in
      Table.add_row t [ "session: read-your-writes"; mark r.Dsm_checker.Session.ryw ];
      Table.add_row t [ "session: monotonic reads"; mark r.Dsm_checker.Session.mr ];
      Table.add_row t [ "session: monotonic writes"; mark r.Dsm_checker.Session.mw ];
      Table.add_row t [ "session: writes-follow-reads"; mark r.Dsm_checker.Session.wfr ]
  | Error _ -> ());
  Table.print t;
  if not c.Consistency.causal then begin
    print_endline "Causal violations:";
    List.iter
      (fun (v : Check.violation) -> Printf.printf "  %s\n" v.Check.reason)
      (Check.violations history);
    print_newline ();
    print_endline "Witness chains:";
    List.iter
      (fun (e : Check.explanation) -> Printf.printf "  %s\n" e.Check.x_rendered)
      (Check.explain_all history);
    print_newline ()
  end;
  c.Consistency.causal

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"History file in the paper's notation (one 'P<n>: op op ...' line per process).")
  in
  let run path =
    match History.parse (read_file path) with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 2
    | Ok history -> if classify_and_print history then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a recorded execution against the consistency hierarchy")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* fig                                                                 *)
(* ------------------------------------------------------------------ *)

let fig_cmd =
  let which =
    Arg.(required & pos 0 (some (enum [ ("1", `F1); ("2", `F2); ("3", `F3); ("5", `F5) ])) None
         & info [] ~docv:"FIGURE" ~doc:"Paper figure number: 1, 2, 3 or 5.")
  in
  let run which =
    let history =
      match which with
      | `F1 -> Dsm_checker.Histories.fig1
      | `F2 -> Dsm_checker.Histories.fig2
      | `F3 -> Dsm_checker.Histories.fig3
      | `F5 -> Dsm_checker.Histories.fig5
    in
    ignore (classify_and_print history)
  in
  Cmd.v (Cmd.info "fig" ~doc:"Print and classify one of the paper's example executions")
    Term.(const run $ which)

(* ------------------------------------------------------------------ *)
(* solver                                                              *)
(* ------------------------------------------------------------------ *)

let solver_cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of unknowns / worker processes.") in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Jacobi phases.") in
  let memory =
    Arg.(value & opt (enum [ ("causal", `Causal); ("atomic", `Atomic); ("both", `Both) ]) `Both
         & info [ "memory" ] ~doc:"Which DSM to run on: causal, atomic or both.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let run n iters memory seed =
    let seed = Int64.of_int seed in
    let t =
      Table.create ~headers:[ "memory"; "max|x-jacobi|"; "residual"; "messages"; "causal" ]
    in
    let row name (r : Dsm_apps.Harness.solver_result) =
      Table.add_row t
        [
          name;
          Printf.sprintf "%.1e" r.Dsm_apps.Harness.max_diff;
          Printf.sprintf "%.2e" r.Dsm_apps.Harness.residual;
          string_of_int r.Dsm_apps.Harness.messages_total;
          (if r.Dsm_apps.Harness.history_correct then "yes" else "NO");
        ]
    in
    if memory = `Causal || memory = `Both then
      row "causal" (Dsm_apps.Harness.solver_causal ~seed ~n ~iters ());
    if memory = `Atomic || memory = `Both then
      row "atomic" (Dsm_apps.Harness.solver_atomic ~seed ~n ~iters ());
    Table.print ~title:(Printf.sprintf "Figure 6 solver, n=%d, %d phases" n iters) t
  in
  Cmd.v (Cmd.info "solver" ~doc:"Run the synchronous iterative linear solver (Figure 6)")
    Term.(const run $ n $ iters $ memory $ seed)

(* ------------------------------------------------------------------ *)
(* dict                                                                *)
(* ------------------------------------------------------------------ *)

let dict_cmd =
  let processes = Arg.(value & opt int 3 & info [ "processes" ] ~doc:"Cooperating processes.") in
  let items = Arg.(value & opt int 6 & info [ "items" ] ~doc:"Items inserted per process.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let run processes items seed =
    let module Engine = Dsm_sim.Engine in
    let module Proc = Dsm_runtime.Proc in
    let module Cluster = Dsm_causal.Cluster in
    let module Dictionary = Dsm_apps.Dictionary in
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let cluster =
      Cluster.create ~sched ~owner:(Dictionary.owner_map ~processes)
        ~config:Dictionary.config ~latency:(Dsm_net.Latency.Constant 1.0)
        ~seed:(Int64.of_int seed) ()
    in
    let d =
      Array.init processes (fun i -> Dictionary.attach (Cluster.handle cluster i) ~cols:(items * 2))
    in
    for p = 0 to processes - 1 do
      for k = 0 to items - 1 do
        ignore
          (Proc.spawn sched ~delay:(float_of_int k) (fun () ->
               ignore (Dictionary.insert d.(p) (Printf.sprintf "p%d-%d" p k))))
      done
    done;
    Engine.run engine;
    Proc.check sched;
    let t = Table.create ~headers:[ "process"; "items visible after refresh" ] in
    Array.iteri
      (fun i di ->
        ignore
          (Proc.spawn sched (fun () ->
               Dictionary.refresh di;
               Table.add_row t
                 [ Printf.sprintf "P%d" i; String.concat " " (Dictionary.items di) ]));
        Engine.run engine;
        Proc.check sched)
      d;
    Table.print ~title:"Distributed dictionary (Section 4.2)" t;
    Printf.printf "messages: %d\n" (Dsm_net.Network.lifetime_total (Cluster.net cluster));
    Printf.printf "history causally correct: %b\n"
      (Check.is_correct (Cluster.history cluster))
  in
  Cmd.v (Cmd.info "dict" ~doc:"Run the distributed dictionary (Section 4.2)")
    Term.(const run $ processes $ items $ seed)

(* ------------------------------------------------------------------ *)
(* anomaly                                                             *)
(* ------------------------------------------------------------------ *)

let anomaly_cmd =
  let run () =
    let r = Dsm_apps.Scenarios.fig3_broadcast () in
    print_endline "Figure 3 on the broadcast-based memory:";
    print_endline (History.to_string r.Dsm_apps.Scenarios.f3_history);
    Printf.printf "\ncausal memory: %s   PRAM: %s\n"
      (if r.Dsm_apps.Scenarios.f3_causal_ok then "satisfied" else "VIOLATED")
      (if r.Dsm_apps.Scenarios.f3_pram_ok then "satisfied" else "violated")
  in
  Cmd.v (Cmd.info "anomaly" ~doc:"Reproduce the Figure 3 broadcast anomaly")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* workload                                                            *)
(* ------------------------------------------------------------------ *)

let workload_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let memory =
    Arg.(value
         & opt (enum [ ("causal", `Causal); ("atomic", `Atomic); ("broadcast", `Broadcast) ]) `Causal
         & info [ "memory" ] ~doc:"Memory implementation: causal, atomic or broadcast.")
  in
  let processes = Arg.(value & opt int 3 & info [ "processes" ] ~doc:"Process count.") in
  let ops = Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per process.") in
  let writes = Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~doc:"Write probability.") in
  let run seed memory processes ops writes =
    let spec =
      {
        Dsm_apps.Workload.default_spec with
        Dsm_apps.Workload.processes;
        ops_per_process = ops;
        write_ratio = writes;
      }
    in
    let seed = Int64.of_int seed in
    let outcome =
      match memory with
      | `Causal -> fst (Dsm_apps.Workload.run_causal ~seed spec)
      | `Atomic -> Dsm_apps.Workload.run_atomic ~seed spec
      | `Broadcast -> Dsm_apps.Workload.run_bmem ~seed spec
    in
    Printf.printf "messages: %d   simulated time: %.1f\n\n" outcome.Dsm_apps.Workload.messages
      outcome.Dsm_apps.Workload.sim_time;
    ignore (classify_and_print outcome.Dsm_apps.Workload.history)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a random workload and classify the recorded execution")
    Term.(const run $ seed $ memory $ processes $ ops $ writes)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Chaos = Dsm_apps.Chaos in
  let scenario =
    let all = List.map (fun s -> (s, s)) Chaos.scenarios in
    Arg.(value & pos 0 (enum all) "mix"
         & info [] ~docv:"SCENARIO"
             ~doc:(Printf.sprintf "Scenario to run: %s." (String.concat ", " Chaos.scenarios)))
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let drop =
    Arg.(value & opt float 0.05
         & info [ "drop" ] ~doc:"Per-message loss probability (default 0.05).")
  in
  let duplicate =
    Arg.(value & opt float 0.01
         & info [ "dup" ] ~doc:"Per-message duplication probability (default 0.01).")
  in
  let timeout =
    Arg.(value & opt float 100.0
         & info [ "timeout" ] ~doc:"RPC timeout in simulated time (default 100.0).")
  in
  let retries =
    Arg.(value & opt int 5 & info [ "retries" ] ~doc:"RPC retries per operation (default 5).")
  in
  let hb_period =
    Arg.(value & opt (some float) None
         & info [ "hb-period" ]
             ~doc:"Heartbeat period; enables failure detection and owner failover on any \
                   scenario (the owner-crash and failover scenarios default to 5.0).")
  in
  let suspect_after =
    Arg.(value & opt int 3
         & info [ "suspect-after" ]
             ~doc:"Silent heartbeat periods tolerated before suspicion (default 3; used \
                   with --hb-period).")
  in
  let online_check =
    Arg.(value & flag
         & info [ "online-check" ]
             ~doc:"Run the incremental causal checker against the event bus while the \
                   scenario executes; the first illegal read fails the run immediately.")
  in
  let mutation =
    (* Hidden fault injection: proves the checkers catch real protocol
       bugs, not just synthetic histories.  Kept out of the manual's main
       flag list on purpose. *)
    let mconv =
      Arg.conv
        ( (fun s ->
            match Dsm_causal.Config.mutation_of_string s with
            | Some m -> Ok m
            | None -> Error (`Msg (Printf.sprintf "unknown mutation %S" s))),
          fun ppf m -> Format.pp_print_string ppf (Dsm_causal.Config.mutation_name m) )
    in
    Arg.(value & opt mconv Dsm_causal.Config.No_mutation
         & info [ "mutation" ]
             ~doc:"TEST ONLY: break one protocol rule (skip-invalidation, \
                   skip-writestamp-merge, reorder-apply-ack, ignore-epoch-fence, \
                   skip-shadow-replication, truncate-wal-early, \
                   prune-share-set-wrongly, merge-drops-op), deliberately \
                   compromising causal consistency or durability.")
  in
  let batching =
    Arg.(value & flag
         & info [ "batching" ]
             ~doc:"Use the frame-batching / ack-coalescing transport configuration \
                   (Reliable.batching_config) instead of the default one-frame-per-message \
                   transport.  Logical message counts are unaffected; physical frame \
                   counts drop.")
  in
  let run scenario seed drop duplicate timeout retries hb_period suspect_after
      online_check mutation batching =
    let detector =
      Option.map
        (fun period -> { Dsm_causal.Detector.period; suspect_after })
        hb_period
    in
    let knobs =
      {
        Chaos.default_knobs with
        Chaos.drop;
        duplicate;
        reliability =
          (if batching then Dsm_net.Reliable.batching_config
           else Dsm_net.Reliable.default_config);
        rpc = Some { Dsm_causal.Cluster.timeout; retries };
        detector;
        online_check;
        mutation;
      }
    in
    let r = Chaos.run ~knobs ~seed:(Int64.of_int seed) scenario in
    Format.printf "%a" Chaos.pp_report r;
    Printf.printf "health:            %s (gave_up %d, suspects %d, unsuspects %d)\n"
      (if Chaos.healthy r then "OK" else "UNHEALTHY")
      r.Chaos.transport.Dsm_net.Reliable.gave_up r.Chaos.suspects r.Chaos.unsuspects;
    if Chaos.healthy r then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a workload over lossy, duplicating links with the reliable transport, \
             RPC timeouts, crash-stop recovery and (for owner-crash and failover) \
             heartbeat-driven ownership handoff; exits nonzero if the recorded history \
             is not causally correct or a process is left blocked")
    Term.(const run $ scenario $ seed $ drop $ duplicate $ timeout $ retries $ hb_period
          $ suspect_after $ online_check $ mutation $ batching)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)
(* ------------------------------------------------------------------ *)

let bench_cmd =
  let module Bench = Dsm_apps.Bench in
  let module Recovery = Dsm_apps.Recovery_bench in
  let module Partition = Dsm_apps.Partition_bench in
  let module Shard_bench = Dsm_apps.Shard_bench in
  let module Objects_bench = Dsm_apps.Objects_bench in
  let module Core_bench = Dsm_apps.Core_bench in
  let which =
    Arg.(value
         & pos 0
             (enum
                [ ("transport", `Transport); ("recovery", `Recovery);
                  ("partition", `Partition); ("shard", `Shard);
                  ("objects", `Objects); ("core", `Core) ])
             `Transport
         & info [] ~docv:"BENCH"
             ~doc:"Which benchmark to run: transport (batching on vs off), recovery \
                   (whole-cluster restart replay with vs without checkpointing), \
                   partition (majority-side availability through a quorum-fenced \
                   partition window), shard (full vs partial replication on \
                   messages/op and metadata bytes/op at 16-64 nodes), objects \
                   (wire cost and checker verdicts per Causal_object instance), or \
                   core (flat data path vs Protocol.step, the domain-parallel \
                   engine at 1/2/4 domains, and windowed-checker overhead).")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Smaller grid: 3 seeds instead of 10 (transport, partition), or a \
                   2-point size grid with 10 power cycles (recovery).  The CI bench \
                   jobs use this.")
  in
  let seeds =
    Arg.(value & opt (some (list int)) None
         & info [ "seeds" ] ~docv:"S1,S2,..."
             ~doc:"Explicit seed list; overrides the quick/full default (transport and \
                   partition only).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON result (default BENCH_transport.json or \
                   BENCH_recovery.json; \"-\" prints to stdout only).")
  in
  let micro_only =
    Arg.(value & flag
         & info [ "micro-only" ]
             ~doc:"Core bench only: run just the flat-vs-step microbenchmark and its \
                   >=5x / ALLOC=0 gate, skipping the sim and checker cells.  The \
                   blocking CI allocation-gate step uses this.")
  in
  let write_json out ~default json =
    let out = Option.value out ~default in
    if out <> "-" then begin
      let oc = open_out out in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" out
    end
  in
  let run which quick seeds out micro_only =
    match which with
    | `Transport ->
        let seeds = Option.map (List.map Int64.of_int) seeds in
        let r = Bench.run ~quick ?seeds () in
        Format.printf "%a" Bench.pp r;
        write_json out ~default:"BENCH_transport.json" (Bench.to_json r);
        (* The bench is not a correctness gate, but a run that left processes
           blocked or moved more frames with batching on than off is broken
           enough to fail loudly. *)
        if r.Bench.off.Bench.unfinished + r.Bench.on_.Bench.unfinished > 0 then exit 1;
        if r.Bench.frame_reduction < 0.0 then exit 1;
        exit 0
    | `Recovery ->
        let r = Recovery.run ~quick () in
        Format.printf "%a" Recovery.pp r;
        write_json out ~default:"BENCH_recovery.json" (Recovery.to_json r);
        (* Fail loudly if checkpointing did not bound recovery work, or a
           cell left a process blocked. *)
        if Recovery.healthy r then exit 0 else exit 1
    | `Partition ->
        let seeds = Option.map (List.map Int64.of_int) seeds in
        let r = Partition.run ~quick ?seeds () in
        Format.printf "%a" Partition.pp r;
        write_json out ~default:"BENCH_partition.json" (Partition.to_json r);
        (* The acceptance gate: every run healthy and the majority side at
           >= 90% availability inside the window. *)
        if Partition.healthy r then exit 0 else exit 1
    | `Shard ->
        let seed =
          match seeds with Some (s :: _) -> Int64.of_int s | _ -> 1L
        in
        let r = Shard_bench.run ~quick ~seed () in
        Format.printf "%a" Shard_bench.pp r;
        write_json out ~default:"BENCH_shard.json" (Shard_bench.to_json r);
        (* The acceptance gate: partial replication strictly fewer
           messages everywhere, and cheaper on both metrics at 64 nodes. *)
        if Shard_bench.healthy r then exit 0 else exit 1
    | `Objects ->
        let seed = match seeds with Some (s :: _) -> Int64.of_int s | _ -> 1L in
        let r = Objects_bench.run ~quick ~seed () in
        Format.printf "%a" Objects_bench.pp r;
        write_json out ~default:"BENCH_objects.json" (Objects_bench.to_json r);
        (* The acceptance gate: every instance spec-legal, converged and
           healthy. *)
        if Objects_bench.healthy r then exit 0 else exit 1
    | `Core when micro_only ->
        let m = Core_bench.run_micro ~quick () in
        Printf.printf "micro: step %.1f ns/op, flat %.1f ns/op — %.1fx (%.4f minor words/op)\n"
          m.Core_bench.step_ns m.Core_bench.flat_ns m.Core_bench.speedup
          m.Core_bench.flat_minor_words_per_op;
        Printf.printf "gate (>=5x, <=0.01 words/op): %s\n"
          (if Core_bench.micro_healthy m then "PASS" else "FAIL");
        if Core_bench.micro_healthy m then exit 0 else exit 1
    | `Core ->
        let seed = match seeds with Some (s :: _) -> s | _ -> 1 in
        let r = Core_bench.run ~quick ~seed () in
        Format.printf "%a" Core_bench.pp r;
        write_json out ~default:"BENCH_core.json" (Core_bench.to_json r);
        (* The tentpole gates: >=5x flat-vs-step with ~0 allocs/op,
           digest-identical runs across 1/2/4 domains, and checked
           throughput at least half of unchecked. *)
        if Core_bench.healthy r then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Performance baselines with JSON artifacts: $(b,transport) measures \
             throughput, latency percentiles and logical-vs-physical message counts \
             with frame batching + ack coalescing on vs off (BENCH_transport.json); \
             $(b,recovery) measures whole-cluster restart replay with vs without \
             checkpointing (BENCH_recovery.json)")
    Term.(const run $ which $ quick $ seeds $ out $ micro_only)

(* ------------------------------------------------------------------ *)
(* mc                                                                  *)
(* ------------------------------------------------------------------ *)

let mc_cmd =
  let module Gen = Dsm_mc.Gen in
  let module Explore = Dsm_mc.Explore in
  let scope =
    let names = List.map (fun (s : Gen.scope) -> (s.Gen.sname, s.Gen.sname)) Gen.presets in
    Arg.(value & opt (some (enum names)) None
         & info [ "scope" ] ~docv:"PRESET"
             ~doc:(Printf.sprintf
                     "Explore a named small-scope preset (%s) instead of the generic \
                      --nodes/--ops scope."
                     (String.concat ", " (List.map fst names))))
  in
  let nodes = Arg.(value & opt int 2 & info [ "nodes" ] ~doc:"Generic scope: node count (default 2).") in
  let ops = Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Generic scope: operations per node (default 2).") in
  let faults =
    Arg.(value
         & opt (enum [ ("none", `None); ("crash", `Crash); ("crash-restart", `Crash_restart); ("drop", `Drop) ]) `None
         & info [ "faults" ]
             ~doc:"Generic scope adversary: none, crash (victim 0, takeover), crash-restart \
                   (plus log-replay restart), or drop (one drop + one duplication).")
  in
  let max_states =
    Arg.(value & opt int 200_000
         & info [ "max-states" ] ~doc:"Distinct states to explore before truncating (default 200000).")
  in
  let mutation =
    let mconv =
      Arg.conv
        ( (fun s ->
            match Dsm_causal.Config.mutation_of_string s with
            | Some m -> Ok m
            | None -> Error (`Msg (Printf.sprintf "unknown mutation %S" s))),
          fun ppf m -> Format.pp_print_string ppf (Dsm_causal.Config.mutation_name m) )
    in
    Arg.(value & opt mconv Dsm_causal.Config.No_mutation
         & info [ "mutation" ]
             ~doc:"Break one protocol rule (skip-invalidation, skip-writestamp-merge, \
                   reorder-apply-ack, ignore-epoch-fence, skip-shadow-replication, \
                   truncate-wal-early, prune-share-set-wrongly, merge-drops-op); the \
                   checker is then expected to find a counterexample.")
  in
  let matrix =
    Arg.(value & flag
         & info [ "matrix" ]
             ~doc:"Run the full oracle-validation matrix: every preset unmutated (expecting \
                   no violation) and every mutation in its designated scope (expecting a \
                   counterexample); exits nonzero unless all pass.")
  in
  let no_reduction =
    Arg.(value & flag
         & info [ "no-reduction" ] ~doc:"Disable the sleep-set partial-order reduction.")
  in
  let cex_file =
    Arg.(value & opt (some string) None
         & info [ "cex" ] ~docv:"FILE"
             ~doc:"Write the shrunk counterexample (if any) as Trace JSONL to FILE, \
                   diffable with $(b,dsm trace).")
  in
  let print_report (r : Explore.report) =
    Format.printf "%s: %a@." r.Explore.scope.Gen.sname Explore.pp_stats r.Explore.stats;
    match r.Explore.cex with
    | None -> ()
    | Some c ->
        let node, reason = c.Explore.cex_violation in
        Format.printf "  counterexample (%d steps, %s at node %d): %s@."
          (List.length c.Explore.schedule)
          (if c.Explore.online then "flagged online" else "post-hoc")
          node reason;
        Format.printf "  schedule: %a@." Explore.pp_schedule c.Explore.schedule
  in
  let run scope nodes ops faults max_states mutation matrix no_reduction cex_file =
    if matrix then begin
      let entries = Explore.run_matrix ~max_states () in
      let failed =
        List.filter
          (fun (e : Explore.matrix_entry) ->
            let verdict =
              match (e.Explore.ok, e.Explore.mutation) with
              | true, Dsm_causal.Config.No_mutation -> "clean"
              | true, _ -> "caught"
              | false, Dsm_causal.Config.No_mutation -> "FALSE POSITIVE"
              | false, _ -> "MISSED"
            in
            Format.printf "%-24s %-24s %-14s %a@." e.Explore.scope_name
              (Dsm_causal.Config.mutation_name e.Explore.mutation)
              verdict Explore.pp_stats e.Explore.report.Explore.stats;
            not e.Explore.ok)
          entries
      in
      if failed = [] then begin
        Format.printf "matrix OK: %d runs@." (List.length entries);
        exit 0
      end
      else begin
        Format.printf "matrix FAILED: %d of %d runs@." (List.length failed) (List.length entries);
        exit 1
      end
    end
    else begin
      let base =
        match scope with
        | Some name -> Option.get (Gen.preset name)
        | None ->
            let fault =
              match faults with
              | `None -> Gen.No_faults
              | `Crash -> Gen.Crash { victim = 0; restart = false }
              | `Crash_restart -> Gen.Crash { victim = 0; restart = true }
              | `Drop -> Gen.Drop { drops = 1; dups = 1 }
            in
            Gen.generic ~nodes ~ops ~fault
      in
      let scope = { base with Gen.mutation } in
      let report = Explore.run ~reduction:(not no_reduction) ~max_states scope in
      print_report report;
      (match (report.Explore.cex, cex_file) with
      | Some c, Some path ->
          let n = Explore.write_counterexample scope c.Explore.schedule path in
          Format.printf "  wrote %d events to %s@." n path
      | _ -> ());
      let expected_violation = mutation <> Dsm_causal.Config.No_mutation in
      let found = report.Explore.cex <> None in
      if found = expected_violation then exit 0 else exit 1
    end
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Exhaustively model-check a small-scope system through the pure protocol core: \
             enumerate every schedule (deliveries, faults, operation issues) with \
             state-fingerprint de-duplication and sleep-set reduction, judge each execution \
             with the causal-memory checkers, and shrink any violation to a minimal \
             counterexample; exits nonzero on an unexpected verdict")
    Term.(const run $ scope $ nodes $ ops $ faults $ max_states $ mutation $ matrix
          $ no_reduction $ cex_file)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let module Chaos = Dsm_apps.Chaos in
  let module Trace = Dsm_causal.Trace in
  let scenario =
    let all = List.map (fun s -> (s, s)) Chaos.scenarios in
    Arg.(value & pos 0 (enum all) "owner-crash"
         & info [] ~docv:"SCENARIO"
             ~doc:(Printf.sprintf "Scenario to trace: %s." (String.concat ", " Chaos.scenarios)))
  in
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let milestones =
    Arg.(value & flag
         & info [ "milestones" ]
             ~doc:"Keep only the scheduling-robust milestone events (crashes, suspicions, \
                   promotions, application operations, violations) — the subset golden \
                   traces are diffed on.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSONL dump here instead of stdout.")
  in
  let online_check =
    Arg.(value & flag & info [ "online-check" ] ~doc:"Also run the online checker on the bus.")
  in
  let run scenario seed milestones out online_check =
    let bus = Trace.create () in
    let knobs = { Chaos.default_knobs with Chaos.trace = Some bus; online_check } in
    let r = Chaos.run ~knobs ~seed:(Int64.of_int seed) scenario in
    let events =
      Trace.events bus
      |> List.filter (fun (ev : Trace.event) ->
             (not milestones) || Trace.milestone ev.Trace.body)
    in
    let dump oc =
      List.iter (fun ev -> output_string oc (Trace.to_json ev ^ "\n")) events
    in
    (match out with
    | None -> dump stdout
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump oc);
        Printf.eprintf "wrote %d events (%d on the bus) to %s\n" (List.length events)
          (Trace.count bus) path);
    if Chaos.healthy r then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a chaos scenario with the structured event bus attached and dump the \
             stream as JSONL (one event per line): wire sends and drops, protocol \
             applies and invalidations, failover milestones, application operations")
    Term.(const run $ scenario $ seed $ milestones $ out $ online_check)

(* ------------------------------------------------------------------ *)
(* alpha                                                               *)
(* ------------------------------------------------------------------ *)

let alpha_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"History file in the paper's notation.")
  in
  let run path =
    match History.parse (read_file path) with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 2
    | Ok history -> (
        match Dsm_checker.Causality.build history with
        | Error e ->
            Printf.eprintf "malformed history: %s\n" e;
            exit 2
        | Ok g ->
            print_endline "History:";
            print_endline (History.to_string history);
            print_newline ();
            let t = Table.create ~headers:[ "read"; "returned"; "live set (alpha)"; "legal" ] in
            for io = 0 to Dsm_checker.Causality.op_count g - 1 do
              let op = Dsm_checker.Causality.op g io in
              if Dsm_memory.Op.is_read op then begin
                let live = Check.alpha g io in
                let values =
                  live
                  |> List.map (fun (l : Check.live) -> Dsm_memory.Value.to_string l.Check.value)
                  |> List.sort compare |> String.concat ","
                in
                let legal =
                  List.exists
                    (fun (l : Check.live) -> Dsm_memory.Wid.equal l.Check.wid op.Dsm_memory.Op.wid)
                    live
                in
                Table.add_row t
                  [
                    Dsm_memory.Op.to_string op;
                    Dsm_memory.Value.to_string op.Dsm_memory.Op.value;
                    "{" ^ values ^ "}";
                    (if legal then "yes" else "VIOLATION");
                  ]
              end
            done;
            Table.print ~title:"Live sets per Definition 1" t;
            List.iter
              (fun (e : Check.explanation) -> Printf.printf "%s\n" e.Check.x_rendered)
              (Check.explain_all history))
  in
  Cmd.v
    (Cmd.info "alpha"
       ~doc:"Print every read's live set α(o) (Definition 1) for a history file")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* diagram                                                             *)
(* ------------------------------------------------------------------ *)

let diagram_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"History file in the paper's notation.")
  in
  let run path =
    match History.parse (read_file path) with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 2
    | Ok history -> Dsm_checker.Diagram.print history
  in
  Cmd.v
    (Cmd.info "diagram" ~doc:"Render a history as an ASCII space-time diagram")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* model                                                               *)
(* ------------------------------------------------------------------ *)

(* A node program is a whitespace-separated list of "w(loc)value" and
   "r(loc)" tokens, e.g. "w(x)1 r(y)". *)
let parse_program text =
  let parse_token token =
    let fail msg = Error (Printf.sprintf "bad op %S: %s" token msg) in
    if String.length token < 4 then fail "too short"
    else if token.[1] <> '(' then fail "expected '('"
    else
      match (token.[0], String.index_opt token ')') with
      | _, None -> fail "missing ')'"
      | 'r', Some close when close = String.length token - 1 ->
          Ok (Dsm_model.Model.Read (Dsm_memory.Loc.of_string (String.sub token 2 (close - 2))))
      | 'r', Some _ -> fail "reads take no value"
      | 'w', Some close -> (
          let loc = Dsm_memory.Loc.of_string (String.sub token 2 (close - 2)) in
          let rest = String.sub token (close + 1) (String.length token - close - 1) in
          match int_of_string_opt rest with
          | Some v -> Ok (Dsm_model.Model.Write (loc, Dsm_memory.Value.Int v))
          | None -> fail "write needs an integer value")
      | _, _ -> fail "ops start with r or w"
  in
  let tokens = String.split_on_char ' ' text |> List.filter (fun t -> t <> "") in
  List.fold_left
    (fun acc token ->
      match (acc, parse_token token) with
      | Error e, _ -> Error e
      | Ok ops, Ok op -> Ok (op :: ops)
      | Ok _, Error e -> Error e)
    (Ok []) tokens
  |> Result.map List.rev

let model_cmd =
  let progs =
    Arg.(non_empty & opt_all string []
         & info [ "prog"; "p" ] ~docv:"PROGRAM"
             ~doc:"One node's program, e.g. \"w(x)1 r(y)\".  Repeat per node.")
  in
  let variant =
    Arg.(value
         & opt
             (enum
                [
                  ("faithful", Dsm_model.Model.Faithful);
                  ("literal", Dsm_model.Model.Figure4_literal);
                  ("no-invalidation", Dsm_model.Model.Skip_invalidation);
                  ("no-certify-merge", Dsm_model.Model.Skip_certify_merge);
                  ("no-install-merge", Dsm_model.Model.Skip_install_merge);
                ])
             Dsm_model.Model.Faithful
         & info [ "variant" ]
             ~doc:"Protocol variant: faithful (patched), literal (published Figure 4), or a mutation.")
  in
  let show = Arg.(value & flag & info [ "histories" ] ~doc:"Print every distinct execution.") in
  let run progs variant show =
    let programs =
      List.map
        (fun text ->
          match parse_program text with
          | Ok ops -> ops
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 2)
        progs
    in
    let nodes = List.length programs in
    let cfg =
      { Dsm_model.Model.owner_of = (fun l -> Dsm_memory.Loc.hash l mod nodes); programs; policy = Dsm_model.Model.Lww }
    in
    let stats = Dsm_model.Model.explore ~variant cfg in
    Printf.printf "states explored:     %d\n" stats.Dsm_model.Model.states_explored;
    Printf.printf "distinct executions: %d\n" stats.Dsm_model.Model.terminal_histories;
    Printf.printf "causal violations:   %d\n" (List.length stats.Dsm_model.Model.violations);
    List.iter
      (fun (h, reason) ->
        Printf.printf "\nVIOLATION (%s):\n%s\n" reason (History.to_string h))
      stats.Dsm_model.Model.violations;
    if show then begin
      print_newline ();
      List.iteri
        (fun i h ->
          Printf.printf "--- execution %d %s\n%s\n" (i + 1)
            (if Check.is_correct h then "(causal)" else "(VIOLATES)")
            (History.to_string h))
        (Dsm_model.Model.distinct_terminal_histories cfg)
    end;
    if stats.Dsm_model.Model.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Exhaustively model-check the owner protocol on a small configuration")
    Term.(const run $ progs $ variant $ show)

let () =
  let info =
    Cmd.info "dsm" ~version:"1.0.0"
      ~doc:"Causal distributed shared memory (Hutto, Ahamad & John, ICDCS 1991)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; alpha_cmd; diagram_cmd; fig_cmd; solver_cmd; dict_cmd; anomaly_cmd; workload_cmd; chaos_cmd; bench_cmd; mc_cmd; trace_cmd; model_cmd ]))
