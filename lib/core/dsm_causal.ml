(** The causal DSM: protocol core plus its effect shell.

    The pure layer — node state machine, step function, messages, log
    records, trace bodies — lives in the [dsm_protocol] library and is
    re-exported here, so [Dsm_causal.Node], [Dsm_causal.Config] and friends
    name the same modules whichever library a consumer links against.  The
    two modules defined in this library are the effectful ones: {!Cluster}
    (scheduler, transport, timers, durable appends — the interpreter of
    {!Protocol}'s actions) and {!Wal} (the simulated stable storage). *)

(* Pure core, re-exported. *)
module Protocol = Dsm_protocol.Protocol
module Trace = Dsm_protocol.Trace
module Message = Dsm_protocol.Message
module Node = Dsm_protocol.Node
module Node_stats = Dsm_protocol.Node_stats
module Config = Dsm_protocol.Config
module Policy = Dsm_protocol.Policy
module Stamped = Dsm_protocol.Stamped
module Write_digest = Dsm_protocol.Write_digest
module Detector = Dsm_protocol.Detector
module Log_record = Dsm_protocol.Log_record

(* Effect shell, defined in this library. *)
module Cluster = Cluster
module Wal = Wal
