module Stamped = Dsm_protocol.Stamped
module Log_record = Dsm_protocol.Log_record

(* The record types live in {!Log_record} (the pure protocol library, which
   cannot see this module's effects); re-exported here with type equations
   so [Wal.Write]/[Wal.snapshot] keep meaning what they always did. *)
type snapshot = Log_record.snapshot = {
  snap_clock : Vclock.t;
  snap_view : (int * int * int) list;
  snap_served : (Dsm_memory.Loc.t * Stamped.t) list;
  snap_shadows : (int * (Dsm_memory.Loc.t * Stamped.t) list) list;
}

type record = Log_record.t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Clock of Vclock.t
  | View_change of { base : int; epoch : int; serving : int }
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Checkpoint of snapshot

exception Sync_failed of int

(* One durable cell: the record, its validity, and the per-record checksum
   written alongside it.  A torn checkpoint is physically present (the
   writer believed the sync succeeded) but fails its checksum when recovery
   reads it back; a corrupted record (bit rot, a misdirected write) has its
   stored checksum disagree with its contents.  Replay and compaction skip
   both. *)
type entry = { record : record; torn : bool; crc : string }

(* The checksum covers the record's full marshalled image, so any field
   damage is detected — the simulated stand-in for a real CRC32C. *)
let checksum (record : record) = Digest.string (Marshal.to_string record [])

(* One node's log: entries newest-first (append is a cons), with lifetime
   counters that survive compaction. *)
type log = {
  log_node : int;
  mutable entries : entry list; (* newest first *)
  mutable appends : int;
  mutable checkpoints : int;
  mutable torn_cps : int;
  mutable compactions : int;
  mutable truncated : int;
}

module Disk = struct
  type t = {
    logs : (int, log) Hashtbl.t;
    mutable fail_syncs : int;
    mutable sync_failures : int;
    mutable tear_checkpoints : int;
    mutable corrupt_records : int;
    mutable corruptions : int;
  }

  let create () =
    {
      logs = Hashtbl.create 8;
      fail_syncs = 0;
      sync_failures = 0;
      tear_checkpoints = 0;
      corrupt_records = 0;
      corruptions = 0;
    }

  let fail_next_syncs t n =
    if n < 0 then invalid_arg "Wal.Disk.fail_next_syncs: n must be >= 0";
    t.fail_syncs <- n

  let sync_failures t = t.sync_failures

  let tear_next_checkpoints t n =
    if n < 0 then invalid_arg "Wal.Disk.tear_next_checkpoints: n must be >= 0";
    t.tear_checkpoints <- n

  let corrupt_next_records t n =
    if n < 0 then invalid_arg "Wal.Disk.corrupt_next_records: n must be >= 0";
    t.corrupt_records <- n

  let corruptions t = t.corruptions
end

type t = { disk : Disk.t; log : log }

let attach (disk : Disk.t) ~node =
  let log =
    match Hashtbl.find_opt disk.Disk.logs node with
    | Some l -> l
    | None ->
        let l =
          {
            log_node = node;
            entries = [];
            appends = 0;
            checkpoints = 0;
            torn_cps = 0;
            compactions = 0;
            truncated = 0;
          }
        in
        Hashtbl.replace disk.Disk.logs node l;
        l
  in
  { disk; log }

let node t = t.log.log_node

(* The injected fault fires on the sync, i.e. before anything durable
   happens — a failed append leaves the log exactly as it was. *)
let sync t =
  if t.disk.Disk.fail_syncs > 0 then begin
    t.disk.Disk.fail_syncs <- t.disk.Disk.fail_syncs - 1;
    t.disk.Disk.sync_failures <- t.disk.Disk.sync_failures + 1;
    raise (Sync_failed t.log.log_node)
  end

(* The checksum that lands on disk: correct unless a corruption fault is
   armed, in which case the stored image is silently damaged — the writer
   sees success, and only a recovery-time checksum walk can tell. *)
let stored_crc t record =
  let crc = checksum record in
  if t.disk.Disk.corrupt_records > 0 then begin
    t.disk.Disk.corrupt_records <- t.disk.Disk.corrupt_records - 1;
    t.disk.Disk.corruptions <- t.disk.Disk.corruptions + 1;
    String.map (fun c -> Char.chr (Char.code c lxor 0xff)) crc
  end
  else crc

let append t record =
  sync t;
  (match record with
  | Checkpoint _ -> invalid_arg "Wal.append: use Wal.checkpoint for snapshots"
  | _ -> ());
  t.log.entries <- { record; torn = false; crc = stored_crc t record } :: t.log.entries;
  t.log.appends <- t.log.appends + 1

let checkpoint t snapshot =
  sync t;
  let torn =
    if t.disk.Disk.tear_checkpoints > 0 then begin
      t.disk.Disk.tear_checkpoints <- t.disk.Disk.tear_checkpoints - 1;
      true
    end
    else false
  in
  let record = Checkpoint snapshot in
  t.log.entries <- { record; torn; crc = stored_crc t record } :: t.log.entries;
  t.log.checkpoints <- t.log.checkpoints + 1;
  if torn then t.log.torn_cps <- t.log.torn_cps + 1

(* Validity at recovery time: not torn, and the stored checksum matches the
   record's contents. *)
let is_valid e = (not e.torn) && String.equal e.crc (checksum e.record)

let is_anchor e = is_valid e && match e.record with Checkpoint _ -> true | _ -> false

(* Distance (in entries) from the head to the newest complete checkpoint —
   the recovery anchor.  [None] when no complete checkpoint exists. *)
let anchor_index t =
  let rec find i = function
    | [] -> None
    | e :: rest -> if is_anchor e then Some i else find (i + 1) rest
  in
  find 0 t.log.entries

let replay t =
  let suffix =
    match anchor_index t with
    | None -> t.log.entries
    | Some i -> List.filteri (fun j _ -> j <= i) t.log.entries
  in
  suffix |> List.filter is_valid |> List.rev_map (fun e -> e.record)

let corrupted_records t =
  List.length
    (List.filter (fun e -> (not e.torn) && not (String.equal e.crc (checksum e.record))) t.log.entries)

let records_since_checkpoint t =
  match anchor_index t with None -> List.length t.log.entries | Some i -> i

let compact ?(extra = 0) t =
  if extra < 0 then invalid_arg "Wal.compact: extra must be >= 0";
  match anchor_index t with
  | None -> 0
  | Some i ->
      let keep = max 0 (i + 1 - extra) in
      let dropped = List.length t.log.entries - keep in
      if dropped > 0 then begin
        t.log.entries <- List.filteri (fun j _ -> j < keep) t.log.entries;
        t.log.truncated <- t.log.truncated + dropped;
        t.log.compactions <- t.log.compactions + 1
      end;
      dropped

let length t = List.length t.log.entries

let appends t = t.log.appends

let checkpoints t = t.log.checkpoints

let torn_checkpoints t = t.log.torn_cps

let compactions t = t.log.compactions

let truncated t = t.log.truncated
