module Stamped = Dsm_protocol.Stamped
module Log_record = Dsm_protocol.Log_record

(* The record types live in {!Log_record} (the pure protocol library, which
   cannot see this module's effects); re-exported here with type equations
   so [Wal.Write]/[Wal.snapshot] keep meaning what they always did. *)
type snapshot = Log_record.snapshot = {
  snap_clock : Vclock.t;
  snap_view : (int * int * int) list;
  snap_served : (Dsm_memory.Loc.t * Stamped.t) list;
  snap_shadows : (int * (Dsm_memory.Loc.t * Stamped.t) list) list;
}

type record = Log_record.t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Clock of Vclock.t
  | View_change of { base : int; epoch : int; serving : int }
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Checkpoint of snapshot

exception Sync_failed of int

(* One node's log: records newest-first (append is a cons), with lifetime
   counters that survive checkpoint truncation. *)
type log = {
  log_node : int;
  mutable records : record list; (* newest first *)
  mutable appends : int;
  mutable checkpoints : int;
  mutable truncated : int;
}

module Disk = struct
  type t = {
    logs : (int, log) Hashtbl.t;
    mutable fail_syncs : int;
    mutable sync_failures : int;
  }

  let create () = { logs = Hashtbl.create 8; fail_syncs = 0; sync_failures = 0 }

  let fail_next_syncs t n =
    if n < 0 then invalid_arg "Wal.Disk.fail_next_syncs: n must be >= 0";
    t.fail_syncs <- n

  let sync_failures t = t.sync_failures
end

type t = { disk : Disk.t; log : log }

let attach (disk : Disk.t) ~node =
  let log =
    match Hashtbl.find_opt disk.Disk.logs node with
    | Some l -> l
    | None ->
        let l = { log_node = node; records = []; appends = 0; checkpoints = 0; truncated = 0 } in
        Hashtbl.replace disk.Disk.logs node l;
        l
  in
  { disk; log }

let node t = t.log.log_node

(* The injected fault fires on the sync, i.e. before anything durable
   happens — a failed append leaves the log exactly as it was. *)
let sync t =
  if t.disk.Disk.fail_syncs > 0 then begin
    t.disk.Disk.fail_syncs <- t.disk.Disk.fail_syncs - 1;
    t.disk.Disk.sync_failures <- t.disk.Disk.sync_failures + 1;
    raise (Sync_failed t.log.log_node)
  end

let append t record =
  sync t;
  (match record with
  | Checkpoint _ -> invalid_arg "Wal.append: use Wal.checkpoint for snapshots"
  | _ -> ());
  t.log.records <- record :: t.log.records;
  t.log.appends <- t.log.appends + 1

let checkpoint t snapshot =
  sync t;
  t.log.truncated <- t.log.truncated + List.length t.log.records;
  t.log.records <- [ Checkpoint snapshot ];
  t.log.checkpoints <- t.log.checkpoints + 1

let replay t = List.rev t.log.records

let length t = List.length t.log.records

let appends t = t.log.appends

let checkpoints t = t.log.checkpoints

let truncated t = t.log.truncated
