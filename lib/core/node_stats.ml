type t = {
  mutable read_hits : int;
  mutable read_misses : int;
  mutable writes_owned : int;
  mutable writes_remote : int;
  mutable writes_rejected : int;
  mutable writes_certified : int;
  mutable invalidations : int;
  mutable discards : int;
  mutable redundant_fetches : int;
  mutable stale_drops : int;
}

let create () =
  {
    read_hits = 0;
    read_misses = 0;
    writes_owned = 0;
    writes_remote = 0;
    writes_rejected = 0;
    writes_certified = 0;
    invalidations = 0;
    discards = 0;
    redundant_fetches = 0;
    stale_drops = 0;
  }

let reset t =
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.writes_owned <- 0;
  t.writes_remote <- 0;
  t.writes_rejected <- 0;
  t.writes_certified <- 0;
  t.invalidations <- 0;
  t.discards <- 0;
  t.redundant_fetches <- 0;
  t.stale_drops <- 0

let total stats =
  let acc = create () in
  List.iter
    (fun s ->
      acc.read_hits <- acc.read_hits + s.read_hits;
      acc.read_misses <- acc.read_misses + s.read_misses;
      acc.writes_owned <- acc.writes_owned + s.writes_owned;
      acc.writes_remote <- acc.writes_remote + s.writes_remote;
      acc.writes_rejected <- acc.writes_rejected + s.writes_rejected;
      acc.writes_certified <- acc.writes_certified + s.writes_certified;
      acc.invalidations <- acc.invalidations + s.invalidations;
      acc.discards <- acc.discards + s.discards;
      acc.redundant_fetches <- acc.redundant_fetches + s.redundant_fetches;
      acc.stale_drops <- acc.stale_drops + s.stale_drops)
    stats;
  acc

let pp ppf t =
  Format.fprintf ppf
    "hits=%d misses=%d w_owned=%d w_remote=%d w_rejected=%d certified=%d inval=%d discard=%d redundant=%d stale=%d"
    t.read_hits t.read_misses t.writes_owned t.writes_remote t.writes_rejected
    t.writes_certified t.invalidations t.discards t.redundant_fetches t.stale_drops

type cluster = {
  protocol : t;
  logical_messages : int;
  physical_frames : int;
  wire_dropped : int;
  wire_duplicated : int;
  retransmissions : int;
  stale_replies : int;
  rpc_timeouts : int;
  dropped_at_crashed : int;
  redirects : int;
  shadow_reads : int;
  shadow_degraded : int;
  takeovers : int;
  suspects : int;
  unsuspects : int;
  wal_sync_failures : int;
  wal_records : int;
  wal_checkpoints : int;
  wal_torn_checkpoints : int;
  wal_compactions : int;
  wal_truncated : int;
  recoveries : int;
  replayed_records : int;
  recovery_lines : int;
}

(* One line, zero-valued fields suppressed: chaos health lines stay short
   on clean runs and grow only as faults actually fire. *)
let pp_cluster ppf c =
  Format.fprintf ppf "%a" pp c.protocol;
  let field name v = if v <> 0 then Format.fprintf ppf " %s=%d" name v in
  field "logical_msgs" c.logical_messages;
  (* Only worth a column when batching/coalescing make it diverge. *)
  if c.physical_frames <> c.logical_messages then
    field "frames" c.physical_frames;
  field "wire_dropped" c.wire_dropped;
  field "wire_dup" c.wire_duplicated;
  field "retrans" c.retransmissions;
  field "stale_replies" c.stale_replies;
  field "rpc_timeouts" c.rpc_timeouts;
  field "dropped_at_crashed" c.dropped_at_crashed;
  field "redirects" c.redirects;
  field "shadow_reads" c.shadow_reads;
  field "shadow_degraded" c.shadow_degraded;
  field "takeovers" c.takeovers;
  field "suspects" c.suspects;
  field "unsuspects" c.unsuspects;
  field "wal_sync_failures" c.wal_sync_failures;
  (* The recovery subsystem: log retention and restart accounting. *)
  field "wal_checkpoints" c.wal_checkpoints;
  field "wal_torn" c.wal_torn_checkpoints;
  field "wal_compactions" c.wal_compactions;
  field "wal_truncated" c.wal_truncated;
  if c.wal_truncated <> 0 || c.wal_checkpoints <> 0 then field "wal_records" c.wal_records;
  field "recoveries" c.recoveries;
  field "replayed" c.replayed_records;
  field "recovery_lines" c.recovery_lines
