(** Wire messages of the owner protocol (Figure 4).

    [req] tags match a reply to the blocked operation that issued the
    request; the paper's processes block on at most one operation, but the
    tag keeps the protocol robust to any request interleaving. *)

type digest = (Dsm_memory.Loc.t * Write_digest.entry) list
(** Piggybacked newest-known-write table; non-empty only under
    [Config.Precise] invalidation. *)

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t }  (** [READ, x] *)
  | Read_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      page : (Dsm_memory.Loc.t * Stamped.t) list;
      digest : digest;
    }
      (** [R_REPLY, x, v', VT']; [page] carries co-paged entries under page
          granularity (empty under word granularity) *)
  | Write_req of { req : int; loc : Dsm_memory.Loc.t; entry : Stamped.t; digest : digest }
      (** [WRITE, x, v, VT] — [entry.stamp] is the writer's incremented clock *)
  | Write_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      accepted : bool;
      entry : Stamped.t;
          (** the entry now stored at the owner: the certified write, or the
              surviving current value when the policy rejected the write *)
      digest : digest;
    }  (** [W_REPLY, x, v, VT'] *)

let kind = function
  | Read_req _ -> "READ"
  | Read_reply _ -> "R_REPLY"
  | Write_req _ -> "WRITE"
  | Write_reply _ -> "W_REPLY"

let pp ppf t =
  match t with
  | Read_req { req; loc } -> Format.fprintf ppf "READ#%d(%a)" req Dsm_memory.Loc.pp loc
  | Read_reply { req; loc; entry; page; _ } ->
      Format.fprintf ppf "R_REPLY#%d(%a=%a,+%d)" req Dsm_memory.Loc.pp loc Stamped.pp entry
        (List.length page)
  | Write_req { req; loc; entry; _ } ->
      Format.fprintf ppf "WRITE#%d(%a=%a)" req Dsm_memory.Loc.pp loc Stamped.pp entry
  | Write_reply { req; loc; accepted; entry; _ } ->
      Format.fprintf ppf "W_REPLY#%d(%a=%a,%s)" req Dsm_memory.Loc.pp loc Stamped.pp entry
        (if accepted then "accepted" else "rejected")
