(** Wire messages of the owner protocol (Figure 4) plus the failover
    extensions.

    [req] tags match a reply to the blocked operation that issued the
    request; the paper's processes block on at most one operation, but the
    tag keeps the protocol robust to any request interleaving.

    Requests additionally carry the sender's ownership [epoch] for the
    target location's base owner: a server whose view is newer rejects the
    request with [Stale_epoch] (fencing), and one whose view is older still
    serves it (the request proves the client observed a takeover the server
    has not heard of yet; the reply is from the server's own serialisation
    either way). *)

type digest = (Dsm_memory.Loc.t * Write_digest.entry) list
(** Piggybacked newest-known-write table; non-empty only under
    [Config.Precise] invalidation. *)

type view = (int * int * int) list
(** Ownership-view gossip: [(base, epoch, serving)] triples for every base
    owner whose serving node has changed at least once (epoch > 0). *)

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t; epoch : int }  (** [READ, x] *)
  | Read_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      page : (Dsm_memory.Loc.t * Stamped.t) list;
      digest : digest;
    }
      (** [R_REPLY, x, v', VT']; [page] carries co-paged entries under page
          granularity (empty under word granularity) *)
  | Write_req of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      digest : digest;
      epoch : int;
    }
      (** [WRITE, x, v, VT] — [entry.stamp] is the writer's incremented clock *)
  | Write_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      accepted : bool;
      entry : Stamped.t;
          (** the entry now stored at the owner: the certified write, or the
              surviving current value when the policy rejected the write *)
      digest : digest;
    }  (** [W_REPLY, x, v, VT'] *)
  | Stale_epoch of { req : int; base : int; epoch : int; serving : int }
      (** fencing reply: the request's epoch for [base] was behind the
          server's [(epoch, serving)]; the client adopts the newer view and
          re-routes *)
  | Heartbeat of { view : view }
      (** liveness beacon, carrying the sender's non-default view entries so
          takeovers gossip to nodes that missed the broadcast *)
  | Shadow of { seq : int; base : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
      (** backup replication: entries just certified (or a whole inherited
          snapshot) for locations based at [base] *)
  | Shadow_ack of { seq : int }
  | Shadow_read_req of { req : int; loc : Dsm_memory.Loc.t }
      (** degraded read during failover: serve the backup's shadow copy *)
  | Shadow_read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Takeover of { base : int; epoch : int; serving : int }
      (** broadcast by a backup promoting itself over [base]'s locations *)
  | Vote_req of { base : int; epoch : int; candidate : int }
      (** a suspecting backup canvassing for takeover of [base] under
          [epoch]; promotion requires ⌊n/2⌋+1 grants including its own *)
  | Vote_grant of { base : int; epoch : int; candidate : int }
      (** OWNER_VOTE: the sender promises not to grant [base] at [epoch]
          (or below) to any other candidate *)
  | Frontier of { base : int; epoch : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
      (** reconciliation on heal: a demoted server ships its served entries
          for [base] to the new owner, which merges newest-wins *)
  | Cp_marker of { round : int; initiator : int }
      (** coordinated-checkpoint marker: take a checkpoint for [round]
          before processing anything that arrives after this message *)
  | Cp_ack of { round : int }
      (** a participant's checkpoint for [round] is on stable storage *)
  | Sub_req of { base : int }
      (** share-set join: the sender subscribes to the shard of [base] and
          asks its serving node for a causally safe catch-up transfer *)
  | Sub_reply of { base : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
      (** catch-up transfer: the entries currently served for [base]; the
          subscriber installs them newest-wins, merging their stamps into
          its clock before any post-subscription read *)

let kind = function
  | Read_req _ -> "READ"
  | Read_reply _ -> "R_REPLY"
  | Write_req _ -> "WRITE"
  | Write_reply _ -> "W_REPLY"
  | Stale_epoch _ -> "STALE"
  | Heartbeat _ -> "HB"
  | Shadow _ -> "SHADOW"
  | Shadow_ack _ -> "SH_ACK"
  | Shadow_read_req _ -> "SH_READ"
  | Shadow_read_reply _ -> "SH_REPLY"
  | Takeover _ -> "TAKEOVER"
  | Vote_req _ -> "VOTE_REQ"
  | Vote_grant _ -> "OWNER_VOTE"
  | Frontier _ -> "FRONTIER"
  | Cp_marker _ -> "CP_MARK"
  | Cp_ack _ -> "CP_ACK"
  | Sub_req _ -> "SUB_REQ"
  | Sub_reply _ -> "SUB_REPLY"

let pp ppf t =
  match t with
  | Read_req { req; loc; epoch } ->
      Format.fprintf ppf "READ#%d(%a,e%d)" req Dsm_memory.Loc.pp loc epoch
  | Read_reply { req; loc; entry; page; _ } ->
      Format.fprintf ppf "R_REPLY#%d(%a=%a,+%d)" req Dsm_memory.Loc.pp loc Stamped.pp entry
        (List.length page)
  | Write_req { req; loc; entry; epoch; _ } ->
      Format.fprintf ppf "WRITE#%d(%a=%a,e%d)" req Dsm_memory.Loc.pp loc Stamped.pp entry epoch
  | Write_reply { req; loc; accepted; entry; _ } ->
      Format.fprintf ppf "W_REPLY#%d(%a=%a,%s)" req Dsm_memory.Loc.pp loc Stamped.pp entry
        (if accepted then "accepted" else "rejected")
  | Stale_epoch { req; base; epoch; serving } ->
      Format.fprintf ppf "STALE#%d(base %d -> e%d@%d)" req base epoch serving
  | Heartbeat { view } -> Format.fprintf ppf "HB(+%d)" (List.length view)
  | Shadow { seq; base; entries } ->
      Format.fprintf ppf "SHADOW#%d(base %d,+%d)" seq base (List.length entries)
  | Shadow_ack { seq } -> Format.fprintf ppf "SH_ACK#%d" seq
  | Shadow_read_req { req; loc } ->
      Format.fprintf ppf "SH_READ#%d(%a)" req Dsm_memory.Loc.pp loc
  | Shadow_read_reply { req; loc; entry } ->
      Format.fprintf ppf "SH_REPLY#%d(%a=%a)" req Dsm_memory.Loc.pp loc Stamped.pp entry
  | Takeover { base; epoch; serving } ->
      Format.fprintf ppf "TAKEOVER(base %d -> e%d@%d)" base epoch serving
  | Vote_req { base; epoch; candidate } ->
      Format.fprintf ppf "VOTE_REQ(base %d e%d for %d)" base epoch candidate
  | Vote_grant { base; epoch; candidate } ->
      Format.fprintf ppf "OWNER_VOTE(base %d e%d for %d)" base epoch candidate
  | Frontier { base; epoch; entries } ->
      Format.fprintf ppf "FRONTIER(base %d e%d,+%d)" base epoch (List.length entries)
  | Cp_marker { round; initiator } -> Format.fprintf ppf "CP_MARK(r%d from %d)" round initiator
  | Cp_ack { round } -> Format.fprintf ppf "CP_ACK(r%d)" round
  | Sub_req { base } -> Format.fprintf ppf "SUB_REQ(base %d)" base
  | Sub_reply { base; entries } ->
      Format.fprintf ppf "SUB_REPLY(base %d,+%d)" base (List.length entries)
