(** Per-node protocol statistics, aggregated by the experiment harness. *)

type t = {
  mutable read_hits : int;  (** reads served from owned or cached copies *)
  mutable read_misses : int;  (** reads that required a READ round trip *)
  mutable writes_owned : int;  (** writes to locations this node owns *)
  mutable writes_remote : int;  (** writes certified via the owner *)
  mutable writes_rejected : int;  (** remote writes the owner's policy rejected *)
  mutable writes_certified : int;  (** WRITE requests this node certified as owner *)
  mutable invalidations : int;  (** cached entries invalidated by the causality rule *)
  mutable discards : int;  (** cached entries dropped by the discard policy *)
  mutable redundant_fetches : int;
      (** refetches that returned the very write that had been invalidated —
          a proxy for how over-approximate the coarse invalidation rule of
          Figure 4 is (experiment E-ABL-INV) *)
  mutable stale_drops : int;
      (** fetched entries not retained in the cache because the node's clock
          grew while the request was in flight — the guard that patches the
          stale-install race in Figure 4's literal pseudocode (see
          DESIGN.md, "Findings") *)
}

val create : unit -> t

val reset : t -> unit

val total : t list -> t
(** Component-wise sum (a fresh accumulator). *)

val pp : Format.formatter -> t -> unit

(** The whole cluster's counters in one record, assembled by
    [Cluster.cluster_stats]: the summed per-node protocol counters plus
    every cluster-level counter that used to be scattered across bespoke
    accessors — transport faults and recovery, RPC timeouts and stale
    replies, crash-stop losses, and the failover machinery. *)
type cluster = {
  protocol : t;  (** sum of the per-node counters above *)
  logical_messages : int;
      (** protocol payloads handed to the transport — the paper's
          accounting unit (the [2n+6] tables), invariant under frame
          batching and ack coalescing *)
  physical_frames : int;
      (** frames the wire actually carried: data/batch frames, explicit
          acks and retransmissions — what batching reduces.  Equals
          [logical_messages] on a direct (fault-free) transport. *)
  wire_dropped : int;  (** messages lost to down links / the fault model *)
  wire_duplicated : int;
  retransmissions : int;  (** reliable-layer re-sends (0 on direct) *)
  stale_replies : int;  (** replies to abandoned request tags *)
  rpc_timeouts : int;  (** individual RPC attempts that timed out *)
  dropped_at_crashed : int;  (** deliveries to crashed nodes *)
  redirects : int;  (** re-routes after epoch-fencing replies *)
  shadow_reads : int;  (** reads served from a backup's shadow copy *)
  shadow_degraded : int;  (** writes acknowledged without replication *)
  takeovers : int;  (** ownership promotions by backups *)
  suspects : int;  (** failure-detector suspicion transitions *)
  unsuspects : int;  (** recoveries from suspicion *)
  wal_sync_failures : int;  (** injected log-sync faults that fired *)
  wal_records : int;  (** entries currently live across all logs *)
  wal_checkpoints : int;  (** snapshot records written (torn included) *)
  wal_torn_checkpoints : int;  (** checkpoint writes that tore *)
  wal_compactions : int;  (** compactions that dropped at least one entry *)
  wal_truncated : int;  (** entries dropped by compaction, lifetime *)
  recoveries : int;  (** node restarts that replayed a log *)
  replayed_records : int;  (** records replayed across all recoveries *)
  recovery_lines : int;  (** coordinated checkpoint rounds fully acked *)
}

val pp_cluster : Format.formatter -> cluster -> unit
(** One line: the protocol counters, then only the non-zero cluster-level
    fields (clean runs stay short). *)
