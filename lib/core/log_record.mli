(** Durable-log record types, free of any storage machinery.

    These are the records a node asks to have persisted (the {e what}); the
    write-ahead log in {!Dsm_causal.Wal} is the simulated stable storage
    that holds them (the {e how}).  Keeping the types here lets the pure
    protocol core ({!Protocol}, {!Node}) speak about durability — emit
    append actions, replay a recovered log — without depending on the
    effectful disk module, which re-exports these types under its own name
    so existing [Wal.Write]/[Wal.snapshot] users are unaffected. *)

type snapshot = {
  snap_clock : Vclock.t;  (** the node's vector clock at checkpoint time *)
  snap_view : (int * int * int) list;
      (** non-default ownership view entries: [(base, epoch, serving)] *)
  snap_served : (Dsm_memory.Loc.t * Stamped.t) list;
      (** every location the node currently serves (base-owned or inherited
          via takeover) *)
  snap_shadows : (int * (Dsm_memory.Loc.t * Stamped.t) list) list;
      (** shadow copies held as backup, grouped by base owner *)
}

type t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Stamped.t }
      (** a write this node certified (or performed locally) as owner *)
  | Clock of Vclock.t
      (** a clock merge with no stored entry (rejected certification) — kept
          so replay reaches the exact pre-crash clock frontier *)
  | View_change of { base : int; epoch : int; serving : int }
      (** an adopted or self-originated ownership epoch change *)
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
      (** a backup copy accepted from the owner of [base] *)
  | Checkpoint of snapshot  (** full-state snapshot; always the log's head *)

val kind : t -> string
(** Short tag for accounting and traces: ["write"], ["clock"], ["view"],
    ["shadow"], ["checkpoint"]. *)

val pp : Format.formatter -> t -> unit
