(** The structured event bus: one typed stream of everything the system does.

    Every layer publishes onto the same bus — the network taps wire-level
    send/deliver/drop events, the pure protocol core returns [Emit] actions
    that the cluster shell stamps and forwards, and the cluster publishes
    the application-level operations it records.  Consumers subscribe
    ({!subscribe}): the online causal checker listens to [Op_read]/[Op_write],
    the [dsm trace] subcommand dumps the recorded stream as JSONL, and tests
    diff milestone streams against committed golden traces.

    A {!body} is pure data (no timestamps), so the effect-free core can
    produce them deterministically; the shell attaches the simulated time
    and the acting node's vector clock when it {!emit}s.  Emission with no
    subscribers and recording disabled is a no-op, so an untraced cluster
    pays nothing. *)

type body =
  (* Wire level (published by the network tap).  These count {e physical
     frames}: on a reliable transport each event is one frame as the wire
     saw it — a batch frame appears once with kind ["BATCH"] (or the
     payloads' kind when uniform) and its summed size, acks and
     retransmissions appear individually.  Logical messages (the paper's
     accounting unit) live in [Reliable.sent] / [Cluster.logical_messages],
     not on this bus. *)
  | Send of { src : int; dst : int; kind : string; size : int }
  | Deliver of { src : int; dst : int; kind : string }
  | Drop of { src : int; dst : int; kind : string }
      (** lost to a down link or the fault model *)
  | Duplicate of { src : int; dst : int; kind : string }
  (* Protocol core (returned as [Protocol.Emit] actions). *)
  | Apply of { node : int; loc : Dsm_memory.Loc.t; wid : Dsm_memory.Wid.t }
      (** an entry stored into served memory or the cache *)
  | Invalidate of { node : int; loc : Dsm_memory.Loc.t; wid : Dsm_memory.Wid.t }
      (** a cached entry dropped by the Figure-4 causality rule *)
  | Certify of { node : int; loc : Dsm_memory.Loc.t; wid : Dsm_memory.Wid.t; accepted : bool }
      (** the owner resolved a WRITE request *)
  | Wal_append of { node : int; kind : string }
  | Suspect of { node : int; peer : int }
  | Unsuspect of { node : int; peer : int }
  | Promote of { node : int; base : int; epoch : int }
      (** a backup took over [base]'s locations *)
  | Demote of { node : int; base : int; serving : int }
      (** a deposed server learned of a newer epoch and dropped its copies *)
  | Adopt_view of { node : int; base : int; epoch : int; serving : int }
  | Shadow_degraded of { node : int; seq : int }
      (** a certified write was acknowledged without backup replication *)
  | Degraded of { node : int; reachable : int; quorum : int }
      (** an owner lost contact with a majority and demoted itself to
          read-only degraded mode (Definition-2 safe) *)
  | Partition_healed of { node : int; reachable : int }
      (** a degraded owner regained quorum contact after a partition heal *)
  | Vote_granted of { node : int; candidate : int; base : int; epoch : int }
      (** [node] promised its OWNER_VOTE for [candidate]'s takeover of
          [base] under [epoch] *)
  | Crash of { node : int }
  | Restart of { node : int; replayed : int }
  | Checkpoint_taken of { node : int; round : int }
      (** a snapshot reached stable storage; [round] is the coordinated
          round number, 0 for an uncoordinated (timer-driven) checkpoint *)
  | Recovery_line of { node : int; round : int }
      (** the initiator [node] collected every participant's ack for
          [round]: the cluster-wide recovery line is stable *)
  (* Application level (published by the cluster when recording history). *)
  | Op_read of {
      node : int;
      loc : Dsm_memory.Loc.t;
      value : Dsm_memory.Value.t;
      from : Dsm_memory.Wid.t;
    }
  | Op_write of {
      node : int;
      loc : Dsm_memory.Loc.t;
      value : Dsm_memory.Value.t;
      wid : Dsm_memory.Wid.t;
    }
  | Op_query of { node : int; obj : string; ret : string }
      (** an object-level query: the named [Causal_object] family folded
          the issuer's observed updates through its sequential spec and
          returned [ret] *)
  (* Checker level. *)
  | Violation of { node : int; reason : string }
      (** the online checker rejected an operation as it happened *)

type event = {
  seq : int;  (** bus-wide emission index, 0-based *)
  time : float;  (** simulated time at emission *)
  clock : Vclock.t option;  (** the acting node's vector clock, when known *)
  body : body;
}

type t

val create : ?record:bool -> unit -> t
(** A fresh bus.  With [~record:true] (the default) every event is also
    kept in order for {!events}; pass [~record:false] for a pure
    pub/sub bus that retains nothing. *)

val subscribe : t -> (event -> unit) -> unit
(** Callbacks run synchronously at {!emit} time, in subscription order. *)

val emit : t -> time:float -> ?clock:Vclock.t -> body -> unit

val events : t -> event list
(** Everything recorded so far, oldest first. *)

val count : t -> int
(** Events emitted over the bus's lifetime (recorded or not). *)

val kind : body -> string
(** Stable lowercase tag, e.g. ["send"], ["invalidate"], ["promote"];
    the ["ev"] field of the JSON rendering. *)

val actor : body -> int option
(** The node whose perspective the event reflects (the sender for [Send],
    the receiver for [Deliver]/[Duplicate], the acting node otherwise);
    [None] for [Drop], which happens on the wire.  The shell stamps the
    actor's vector clock onto the emitted event. *)

val milestone : body -> bool
(** True for the scheduling-robust subset used by golden traces: crashes,
    restarts, recovery lines, suspicions, promotions, demotions, view
    adoptions, application operations and violations — everything except
    per-message wire, cache-maintenance and per-node checkpoint events,
    whose exact interleaving is noisier. *)

val to_json : event -> string
(** One-line JSON object: [{"seq":..,"t":..,"ev":..,...}]. *)

val pp_body : Format.formatter -> body -> unit

val pp_event : Format.formatter -> event -> unit
