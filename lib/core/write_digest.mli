(** Per-location newest-known-write tracking for the precise invalidation
    variant.

    Section 3.1 notes that "identifying precisely the values that may violate
    correctness ... requires more overhead than we are willing to pay in our
    simple owner protocol" and cites the companion paper [3].  This module is
    that overhead, made concrete: each node remembers, per location, the
    newest write (stamp and identity) it has evidence of, and piggybacks the
    table on protocol replies.  A cached copy then needs invalidating only
    when the digest proves a newer write of {e that} location exists in the
    node's past — instead of Figure 4's "anything older than the incoming
    stamp" rule.

    The cost is message growth proportional to the digest (accounted in the
    byte counters), which is exactly the trade-off the paper refuses. *)

type entry = { stamp : Vclock.t; wid : Dsm_memory.Wid.t }

type t

val create : unit -> t

val reset : t -> unit
(** Forget everything (crash-stop recovery: the digest is volatile state). *)

val find : t -> Dsm_memory.Loc.t -> entry option

val observe : t -> Dsm_memory.Loc.t -> entry -> unit
(** Record a write if it is newer (by stamp) than what is already known;
    concurrent entries keep the first recorded one merged by
    componentwise-max of stamps (a safe upper bound). *)

val merge : t -> (Dsm_memory.Loc.t * entry) list -> unit
(** Fold a peer's exported digest in via {!observe}. *)

val export : t -> (Dsm_memory.Loc.t * entry) list
(** The full table, for piggybacking; order unspecified. *)

val size : t -> int

val wire_size : (Dsm_memory.Loc.t * entry) list -> dim:int -> int
(** Abstract byte cost of a piggybacked digest. *)
