(* The flattened Figure-4 data path.

   [Protocol.step] is the general machine: every event (failover, quorum
   votes, checkpoints, sharding) through one dispatch, allocating an action
   list per step.  That generality costs ~100ns and a handful of minor-heap
   words on the measured hot operation (an owner write), which is what caps
   the simulator's throughput at 256-node / 1M-op scale.

   This module is the data plane of the same protocol — exactly the
   owner-write / certify / install-remote / adopt services of Figure 4,
   with the same clock-merge and invalidation rules as {!Node} under the
   default configuration (Coarse invalidation, no mutation) — re-expressed
   over preallocated flat [int] arrays:

   - locations are dense ids from a {!Dsm_memory.Loc.Interner}, assigned
     once at setup; the hot loop never hashes a structured location;
   - every vector clock lives in one shared arena ([clock], [stamp]) and
     is manipulated in place by {!Vclock.Flat}; nothing is copied except
     arena-to-arena blits;
   - completions are exposed through per-node out-fields ([last_*]) instead
     of freshly consed action lists — the caller reads them before the
     acting node's next step, the reusable-buffer analogue of
     [Protocol.step]'s action list.

   After {!create}, no operation allocates: the microbench ALLOC=0 gate
   ([Gc.minor_words] flat across a sustained run) and the alcotest copy of
   it pin that property, and the property tests in [test_flat.ml] pin
   step-for-step agreement with {!Node}.

   Domain-parallelism contract (see {!Par_engine}): every mutable cell is
   indexed by the acting node — clock rows, entries, cached directories,
   [last_*] out-fields, counters, and the [present] map (an [int array],
   deliberately not a packed [Bytes] bitmap, so no two nodes ever
   read-modify-write the same word).  Shards that partition nodes may
   therefore run services concurrently with no synchronisation beyond
   their own message barriers, as long as no two domains act as the same
   node and stamp windows passed in are domain-local (a message buffer or
   the acting node's own rows).

   What is deliberately NOT here: epochs/fencing, shadow replication,
   votes, checkpoints, sharding, tracing, WAL — control-plane machinery
   that runs at human/failure timescales through [Protocol.step].  The two
   tiers meet at the {!Node} semantics this module is tested against. *)

type policy = Lww | Owner_favored

type t = {
  n : int; (* nodes; also the clock dimension *)
  locs : int; (* interned locations *)
  owner : int array; (* loc id -> owning node *)
  owner_favored : bool;
  init_value : int;
  (* Node clocks: node [i]'s vector clock is the window at [i * n]. *)
  clock : int array;
  (* Per (node, loc) entry, at e = node * locs + loc; [present.(e)] gates
     validity, stamps live at [e * n] in the [stamp] arena. *)
  present : int array;
  stamp : int array;
  value : int array;
  wid_node : int array;
  wid_seq : int array;
  (* Per-node compact directory of cached (present, non-owned) locations,
     so the invalidation pass scans what the node actually caches — the
     flat mirror of [Node]'s hashtable iteration — instead of all [locs].
     [cached.(node * locs + k)] for k < [cached_len.(node)] lists the loc
     ids; [cached_pos] maps entry index -> slot for O(1) swap-remove. *)
  cached : int array;
  cached_len : int array;
  cached_pos : int array;
  wseq : int array; (* per-node write sequence for fresh wids *)
  (* Completion out-fields, indexed by the acting node: the last operation
     node [i] performed left its observable result at index [i].  Read
     them before that node's next step. *)
  last_accepted : int array; (* 0/1 *)
  last_value : int array;
  last_wid_node : int array;
  last_wid_seq : int array;
  (* Per-node counters (summed by {!counters}), mirroring Node_stats on
     the paths Flat implements. *)
  c_writes_owned : int array;
  c_writes_certified : int array;
  c_writes_rejected : int array;
  c_invalidations : int array;
  c_installs : int array;
  c_read_hits : int array;
  c_read_misses : int array;
}

let create ?(policy = Lww) ?(init_value = 0) ~nodes ~locs ~owner () =
  if nodes < 1 then invalid_arg "Flat.create: nodes must be >= 1";
  if locs < 1 then invalid_arg "Flat.create: locs must be >= 1";
  if Array.length owner <> locs then invalid_arg "Flat.create: owner array size mismatch";
  Array.iter
    (fun o -> if o < 0 || o >= nodes then invalid_arg "Flat.create: owner out of range")
    owner;
  let entries = nodes * locs in
  let t =
    {
      n = nodes;
      locs;
      owner = Array.copy owner;
      owner_favored = policy = Owner_favored;
      init_value;
      clock = Array.make (nodes * nodes) 0;
      present = Array.make entries 0;
      stamp = Array.make (entries * nodes) 0;
      value = Array.make entries init_value;
      wid_node = Array.make entries (-1);
      wid_seq = Array.make entries 0;
      cached = Array.make entries 0;
      cached_len = Array.make nodes 0;
      cached_pos = Array.make entries (-1);
      wseq = Array.make nodes 0;
      last_accepted = Array.make nodes 0;
      last_value = Array.make nodes init_value;
      last_wid_node = Array.make nodes (-1);
      last_wid_seq = Array.make nodes 0;
      c_writes_owned = Array.make nodes 0;
      c_writes_certified = Array.make nodes 0;
      c_writes_rejected = Array.make nodes 0;
      c_invalidations = Array.make nodes 0;
      c_installs = Array.make nodes 0;
      c_read_hits = Array.make nodes 0;
      c_read_misses = Array.make nodes 0;
    }
  in
  (* Owned locations are born holding the initial value under a zero stamp
     and the virtual initial wid, exactly as [Node.lookup] materialises
     them on first touch. *)
  for loc = 0 to locs - 1 do
    t.present.((owner.(loc) * locs) + loc) <- 1
  done;
  t

let nodes t = t.n

let locations t = t.locs

let owner_of t loc = t.owner.(loc)

(* {1 Entry plumbing} *)

let entry t ~node ~loc = (node * t.locs) + loc

let has t e = t.present.(e) <> 0

let cached_add t ~node ~loc =
  let e = entry t ~node ~loc in
  if t.cached_pos.(e) < 0 then begin
    let k = t.cached_len.(node) in
    t.cached.((node * t.locs) + k) <- loc;
    t.cached_pos.(e) <- k;
    t.cached_len.(node) <- k + 1
  end

let cached_remove t ~node ~loc =
  let e = entry t ~node ~loc in
  let k = t.cached_pos.(e) in
  if k >= 0 then begin
    let last = t.cached_len.(node) - 1 in
    let moved = t.cached.((node * t.locs) + last) in
    t.cached.((node * t.locs) + k) <- moved;
    t.cached_pos.((node * t.locs) + moved) <- k;
    t.cached_pos.(e) <- -1;
    t.cached_len.(node) <- last
  end

let cached_count t node = t.cached_len.(node)

(* Invalidate every cached (non-owned) entry of [node] whose writestamp is
   strictly older than the threshold window: the rule of Figure 4, over the
   compact directory.  Iterates backwards so swap-remove never skips a
   slot. *)
let invalidate_older t ~node ~thr ~thr_off =
  let base = node * t.locs in
  let k = ref (t.cached_len.(node) - 1) in
  while !k >= 0 do
    let loc = t.cached.(base + !k) in
    let e = base + loc in
    if Vclock.Flat.lt t.stamp ~a_off:(e * t.n) thr ~b_off:thr_off ~dim:t.n then begin
      t.present.(e) <- 0;
      cached_remove t ~node ~loc;
      t.c_invalidations.(node) <- t.c_invalidations.(node) + 1
    end;
    decr k
  done

let store t ~e ~value ~wid_node ~wid_seq ~stamp ~stamp_off =
  t.present.(e) <- 1;
  t.value.(e) <- value;
  t.wid_node.(e) <- wid_node;
  t.wid_seq.(e) <- wid_seq;
  Vclock.Flat.blit ~src:stamp ~src_off:stamp_off ~dst:t.stamp ~dst_off:(e * t.n) ~dim:t.n

(* {1 The Figure-4 services} *)

(* Owner write ([Node.local_write]): bump own component, stamp the entry
   with the updated clock, fresh wid.  No invalidation pass — certification
   and installs run it, a local write cannot make the owner's own cache
   stale. *)
let owner_write t ~node ~loc ~value =
  t.clock.((node * t.n) + node) <- t.clock.((node * t.n) + node) + 1;
  let seq = t.wseq.(node) in
  t.wseq.(node) <- seq + 1;
  let e = entry t ~node ~loc in
  store t ~e ~value ~wid_node:node ~wid_seq:seq ~stamp:t.clock ~stamp_off:(node * t.n);
  t.c_writes_owned.(node) <- t.c_writes_owned.(node) + 1;
  t.last_accepted.(node) <- 1;
  t.last_value.(node) <- value;
  t.last_wid_node.(node) <- node;
  t.last_wid_seq.(node) <- seq

(* Owner-side certification of a remote write ([Node.certify_write]): merge
   the incoming writestamp into the owner's clock, then resolve against the
   current entry — [After] accepts, [Before]/[Equal] rejects, [Concurrent]
   goes to policy; an accepted write is stored under the merged clock; both
   outcomes run the invalidation pass against the merged clock.  The
   incoming stamp is a window of the caller's arena (a message buffer or a
   writer's clock row) and must not alias the certifying node's own clock
   row — the merge runs first and would corrupt the comparison.
   [last_accepted] is the W_REPLY verdict. *)
let certify t ~node ~loc ~value ~wid_node ~wid_seq ~stamp ~stamp_off =
  let coff = node * t.n in
  Vclock.Flat.merge_into ~dst:t.clock ~dst_off:coff ~src:stamp ~src_off:stamp_off ~dim:t.n;
  let e = entry t ~node ~loc in
  if t.wid_node.(e) = wid_node && t.wid_seq.(e) = wid_seq then begin
    (* Duplicate certification (an RPC retry): idempotent, still accepted. *)
    t.last_accepted.(node) <- 1;
    t.last_value.(node) <- t.value.(e);
    t.last_wid_node.(node) <- wid_node;
    t.last_wid_seq.(node) <- wid_seq
  end
  else begin
    t.c_writes_certified.(node) <- t.c_writes_certified.(node) + 1;
    let accept =
      match Vclock.Flat.compare_vt stamp ~a_off:stamp_off t.stamp ~b_off:(e * t.n) ~dim:t.n with
      | Vclock.After -> true
      | Vclock.Concurrent -> not (t.owner_favored && t.wid_node.(e) = node)
      | Vclock.Before | Vclock.Equal -> false
    in
    if accept then begin
      store t ~e ~value ~wid_node ~wid_seq ~stamp:t.clock ~stamp_off:coff;
      t.last_accepted.(node) <- 1;
      t.last_value.(node) <- value;
      t.last_wid_node.(node) <- wid_node;
      t.last_wid_seq.(node) <- wid_seq
    end
    else begin
      t.c_writes_rejected.(node) <- t.c_writes_rejected.(node) + 1;
      t.last_accepted.(node) <- 0;
      t.last_value.(node) <- t.value.(e);
      t.last_wid_node.(node) <- t.wid_node.(e);
      t.last_wid_seq.(node) <- t.wid_seq.(e)
    end;
    invalidate_older t ~node ~thr:t.clock ~thr_off:coff
  end

(* Client-side R_REPLY ([Node.install_remote]): merge the entry's stamp,
   cache the copy, and invalidate anything strictly older than the stamp
   just learned. *)
let install_remote t ~node ~loc ~value ~wid_node ~wid_seq ~stamp ~stamp_off =
  Vclock.Flat.merge_into ~dst:t.clock ~dst_off:(node * t.n) ~src:stamp ~src_off:stamp_off
    ~dim:t.n;
  let e = entry t ~node ~loc in
  store t ~e ~value ~wid_node ~wid_seq ~stamp ~stamp_off;
  cached_add t ~node ~loc;
  t.c_installs.(node) <- t.c_installs.(node) + 1;
  invalidate_older t ~node ~thr:stamp ~thr_off:stamp_off

(* Client-side W_REPLY ([Node.adopt_write_reply]): merge and cache the
   certified entry; no invalidation pass. *)
let adopt_write_reply t ~node ~loc ~value ~wid_node ~wid_seq ~stamp ~stamp_off =
  Vclock.Flat.merge_into ~dst:t.clock ~dst_off:(node * t.n) ~src:stamp ~src_off:stamp_off
    ~dim:t.n;
  let e = entry t ~node ~loc in
  store t ~e ~value ~wid_node ~wid_seq ~stamp ~stamp_off;
  cached_add t ~node ~loc

(* Local read: owned locations always hit (they are born present); cached
   copies hit until invalidated.  A miss reports the initial value without
   touching state — the caller decides whether to fetch (install_remote)
   or, in the microbench, to spin on hits only.  Results land in the
   [last_*] out-fields. *)
let read t ~node ~loc =
  let e = entry t ~node ~loc in
  if has t e then begin
    t.c_read_hits.(node) <- t.c_read_hits.(node) + 1;
    t.last_accepted.(node) <- 1;
    t.last_value.(node) <- t.value.(e);
    t.last_wid_node.(node) <- t.wid_node.(e);
    t.last_wid_seq.(node) <- t.wid_seq.(e)
  end
  else begin
    t.c_read_misses.(node) <- t.c_read_misses.(node) + 1;
    t.last_accepted.(node) <- 0;
    t.last_value.(node) <- t.init_value;
    t.last_wid_node.(node) <- -1;
    t.last_wid_seq.(node) <- 0
  end

let cached_hit t ~node ~loc = has t (entry t ~node ~loc)

(* Next write sequence number for wids minted outside {!owner_write} (the
   remote-write path stamps at the writer before certification); shares the
   counter with {!owner_write} so a node's wids stay unique. *)
let fresh_seq t ~node =
  let seq = t.wseq.(node) in
  t.wseq.(node) <- seq + 1;
  seq

(* Raw entry fields, allocation-free (meaningful only when the entry is
   present): the parallel engine serialises entries into message buffers
   from these plus the {!stamp_arena} window at {!entry_off}. *)
let entry_value t ~node ~loc = t.value.(entry t ~node ~loc)

let entry_wid_node t ~node ~loc = t.wid_node.(entry t ~node ~loc)

let entry_wid_seq t ~node ~loc = t.wid_seq.(entry t ~node ~loc)

(* {1 Observers (setup/verification-time; these may allocate)} *)

let clock_of t node = Array.sub t.clock (node * t.n) t.n

let clock_arena t = t.clock

let clock_off t node = node * t.n

let stamp_arena t = t.stamp

let entry_off t ~node ~loc = entry t ~node ~loc * t.n

let entry_view t ~node ~loc =
  let e = entry t ~node ~loc in
  if not (has t e) then None
  else Some (t.value.(e), Array.sub t.stamp (e * t.n) t.n, t.wid_node.(e), t.wid_seq.(e))

let last_accepted t ~node = t.last_accepted.(node) <> 0

let last_value t ~node = t.last_value.(node)

let last_wid_node t ~node = t.last_wid_node.(node)

let last_wid_seq t ~node = t.last_wid_seq.(node)

(* A structural fingerprint of the whole memory: clocks plus every present
   entry with its stamp.  Used by the determinism tests to compare runs
   (notably across domain counts) without materialising the state. *)
let digest t =
  let h = ref 0x9e3779b9 in
  let mix x =
    let v = !h lxor (x + 0x7f4a7c15 + (!h lsl 6) + (!h lsr 2)) in
    h := v land max_int
  in
  Array.iter mix t.clock;
  let entries = t.n * t.locs in
  for e = 0 to entries - 1 do
    if t.present.(e) <> 0 then begin
      mix e;
      mix t.value.(e);
      mix t.wid_node.(e);
      mix t.wid_seq.(e);
      for i = 0 to t.n - 1 do
        mix t.stamp.((e * t.n) + i)
      done
    end
  done;
  !h

type counters = {
  writes_owned : int;
  writes_certified : int;
  writes_rejected : int;
  invalidations : int;
  installs : int;
  read_hits : int;
  read_misses : int;
}

let counters (t : t) =
  let sum a = Array.fold_left ( + ) 0 a in
  {
    writes_owned = sum t.c_writes_owned;
    writes_certified = sum t.c_writes_certified;
    writes_rejected = sum t.c_writes_rejected;
    invalidations = sum t.c_invalidations;
    installs = sum t.c_installs;
    read_hits = sum t.c_read_hits;
    read_misses = sum t.c_read_misses;
  }
