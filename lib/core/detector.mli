(** Timeout-based failure detection over heartbeat gossip.

    Each node beats every [period] of simulated time (the cluster layer
    sends the actual messages); a peer that has not been heard from for
    [suspect_after] whole periods is {e suspected}.  Any message from a
    suspected peer — heartbeat or protocol traffic — unsuspects it
    immediately, so the detector is eventually accurate in the partial-synchrony
    sense: wrong suspicions are corrected on the next contact.

    The detector never suspects the node it runs on, and it makes no
    liveness decision itself — the cluster layer reads {!tick}'s newly
    suspected peers to drive ownership handoff. *)

type config = {
  period : float;  (** heartbeat interval in simulated time *)
  suspect_after : int;  (** whole silent periods tolerated before suspicion *)
}

val default_config : config
(** period 25.0, suspect_after 3 — several RPC round trips of slack over
    {!Dsm_net.Latency.lan} so loss alone rarely triggers a false suspicion. *)

val validate : config -> unit
(** Raises [Invalid_argument] unless [period > 0] and [suspect_after >= 1]. *)

type t

val create : config -> nodes:int -> me:int -> now:float -> t
(** A detector for node [me] in a cluster of [nodes]; every peer counts as
    heard at [now], so nothing is suspected before a full silence window
    elapses. *)

val set_watched : t -> peer:int -> bool -> unit
(** Scope monitoring (partial replication): only watched peers are ever
    suspected by {!tick}.  Everyone is watched after {!create}; sharding
    narrows the mask to the node's share-set peers — silence from a node
    this one never exchanges traffic with is not evidence of anything.
    Unwatching a currently suspected peer clears the suspicion (without
    counting an unsuspect event). *)

val watched : t -> peer:int -> bool

val heard : t -> peer:int -> now:float -> bool
(** Record contact with [peer]; [true] iff this unsuspected it. *)

val reset : t -> now:float -> unit
(** Count every peer as heard at [now] and clear all suspicions (without
    counting unsuspect events).  Called on restart: a node heard nothing
    while it was down, and must not suspect the whole cluster on its first
    post-restart tick. *)

val tick : t -> now:float -> int list
(** Re-evaluate all peers at [now]; returns the peers that just became
    suspected (ascending), each counted once until unsuspected again. *)

val stale : t -> peer:int -> now:float -> bool
(** [peer] is suspected, or has been silent at this node for longer than
    the suspicion window as of [now] — even if no {!tick} has run to
    promote that silence into a suspicion.  This is the check-quorum test
    an OWNER_VOTE voter applies to the incumbent server: granting a vote
    against a server the voter itself heard from recently would let one
    node's transient false suspicion depose a perfectly healthy owner. *)

val suspected : t -> int -> bool

val suspected_now : t -> int list
(** Currently suspected peers, ascending. *)

val suspect_events : t -> int
(** Lifetime count of suspect transitions. *)

val unsuspect_events : t -> int
(** Lifetime count of unsuspect transitions (recoveries from suspicion). *)
