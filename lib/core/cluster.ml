module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Reliable = Dsm_net.Reliable

type rpc = { timeout : float; retries : int }

type timeout_info = {
  op : [ `Read | `Write ];
  loc : Loc.t;
  requester : int;
  owner_node : int;
  attempts : int;
}

exception Timed_out of timeout_info

let () =
  Printexc.register_printer (function
    | Timed_out { op; loc; requester; owner_node; attempts } ->
        Some
          (Printf.sprintf "Cluster.Timed_out(%s %s: node %d -> owner %d, %d attempt%s)"
             (match op with `Read -> "read" | `Write -> "write")
             (Loc.to_string loc) requester owner_node attempts
             (if attempts = 1 then "" else "s"))
    | _ -> None)

(* The transport under the protocol: either the network used directly (the
   paper's assumption: reliable exactly-once FIFO links), or the
   sliding-window reliable layer over a network that may drop and duplicate
   (the fault-tolerant configuration). *)
type transport =
  | Direct of Message.t Network.t
  | Framed of Message.t Reliable.t

type t = {
  sched : Proc.sched;
  transport : transport;
  nodes : Node.t array;
  owner : Owner.t;
  config : Config.t;
  rpc : rpc option;
  recorder : History.Recorder.t;
  pending : (int, Message.t Proc.ivar) Hashtbl.t array;
  crashed : bool array;
  mutable timers_stopped : bool;
  mutable timed : (Dsm_memory.Op.t * float * float) list; (* newest first *)
  mutable stale_replies : int;
  mutable dropped_at_crashed : int;
  mutable rpc_timeouts : int;
}

type handle = { cluster : t; node : Node.t }

(* Run one polymorphic network accessor against whichever network backs the
   transport (their message types differ, hence the record for the
   polymorphism). *)
type 'a net_fn = { on : 'msg. 'msg Network.t -> 'a }

let on_net t f = match t.transport with Direct n -> f.on n | Framed r -> f.on (Reliable.net r)

let send_msg t ~src ~dst ~kind ~size msg =
  match t.transport with
  | Direct n -> Network.send n ~src ~dst ~kind ~size msg
  | Framed r -> Reliable.send r ~src ~dst ~kind ~size msg

let entry_wire_size t (count : int) =
  count * t.config.Config.entry_size (Owner.nodes t.owner)

let digest_wire_size t digest =
  Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)

(* The owner-side services of Figure 4.  These run atomically as delivery
   events; replies go back over the same FIFO transport. *)
let handle_message t ~me ~src msg =
  if t.crashed.(me) then
    (* A crash-stop node loses everything that arrives while it is down. *)
    t.dropped_at_crashed <- t.dropped_at_crashed + 1
  else
    let node = t.nodes.(me) in
    match (msg : Message.t) with
    | Message.Read_req { req; loc } ->
        let entry =
          match Node.lookup node loc with
          | Some e -> e
          | None ->
              failwith
                (Printf.sprintf "node %d received READ for %s it does not own" me
                   (Loc.to_string loc))
        in
        let page = Node.page_entries node loc in
        let digest = Node.digest_export node in
        send_msg t ~src:me ~dst:src ~kind:"R_REPLY"
          ~size:(entry_wire_size t (1 + List.length page) + digest_wire_size t digest)
          (Message.Read_reply { req; loc; entry; page; digest })
    | Message.Write_req { req; loc; entry; digest } ->
        Node.digest_merge node digest;
        let accepted = ref false in
        let stored = Node.certify_write node loc entry ~accepted in
        let digest = Node.digest_export node in
        send_msg t ~src:me ~dst:src ~kind:"W_REPLY"
          ~size:(entry_wire_size t 1 + digest_wire_size t digest)
          (Message.Write_reply { req; loc; accepted = !accepted; entry = stored; digest })
    | Message.Read_reply { req; _ } | Message.Write_reply { req; _ } -> (
        match Hashtbl.find_opt t.pending.(me) req with
        | Some ivar ->
            Hashtbl.remove t.pending.(me) req;
            Proc.fill ivar msg
        | None ->
            (* A reply nobody is waiting for: the request timed out and was
               retried (the retry's reply won), or this node crashed and
               restarted since issuing it.  Discarding is safe — the request
               tag is never reused. *)
            t.stale_replies <- t.stale_replies + 1)

let start_discard_timer t node =
  match (Node.config node).Config.discard with
  | Config.No_discard | Config.Capacity _ -> ()
  | Config.Periodic period ->
      let engine = Proc.engine t.sched in
      let rec tick () =
        if not t.timers_stopped then begin
          ignore (Node.discard_all node);
          Dsm_sim.Engine.schedule engine ~delay:period tick
        end
      in
      Dsm_sim.Engine.schedule engine ~delay:period tick

let create ~sched ~owner ?(config = Config.default) ?latency ?fault ?reliability ?rpc
    ?(seed = 42L) () =
  Config.validate config;
  (match rpc with
  | Some r ->
      if r.timeout <= 0.0 then invalid_arg "Cluster.create: rpc timeout must be positive";
      if r.retries < 0 then invalid_arg "Cluster.create: rpc retries must be >= 0"
  | None -> ());
  let processes = Owner.nodes owner in
  let engine = Proc.engine sched in
  let transport =
    match reliability with
    | None -> Direct (Network.create engine ~nodes:processes ?latency ?fault ~seed ())
    | Some rconfig ->
        Framed
          (Reliable.create ~config:rconfig
             (Network.create engine ~nodes:processes ?latency ?fault ~seed ()))
  in
  let nodes = Array.init processes (fun id -> Node.create ~id ~owner ~config) in
  let t =
    {
      sched;
      transport;
      nodes;
      owner;
      config;
      rpc;
      recorder = History.Recorder.create ~processes;
      pending = Array.init processes (fun _ -> Hashtbl.create 8);
      crashed = Array.make processes false;
      timers_stopped = false;
      timed = [];
      stale_replies = 0;
      dropped_at_crashed = 0;
      rpc_timeouts = 0;
    }
  in
  for me = 0 to processes - 1 do
    let handler ~src msg = handle_message t ~me ~src msg in
    match transport with
    | Direct n -> Network.set_handler n ~node:me handler
    | Framed r -> Reliable.set_handler r ~node:me handler
  done;
  Array.iter (fun node -> start_discard_timer t node) nodes;
  t

let handle t pid = { cluster = t; node = t.nodes.(pid) }

let handles t = Array.init (Array.length t.nodes) (handle t)

let processes t = Array.length t.nodes

let sched t = t.sched

let net t =
  match t.transport with
  | Direct n -> n
  | Framed _ ->
      invalid_arg
        "Cluster.net: this cluster runs over the reliable transport; use Cluster.reliable, \
         Cluster.messages_total and the Cluster link controls"

let reliable t = match t.transport with Direct _ -> None | Framed r -> Some r

let messages_total t = on_net t { on = (fun n -> Network.lifetime_total n) }

let wire_counters t = on_net t { on = (fun n -> Network.counters n) }

let wire_dropped t = on_net t { on = (fun n -> Network.dropped n) }

let wire_duplicated t = on_net t { on = (fun n -> Network.duplicated n) }

let set_link_down t ~src ~dst down =
  on_net t { on = (fun n -> Network.set_link_down n ~src ~dst down) }

let set_link_fault t ~src ~dst fault =
  on_net t { on = (fun n -> Network.set_link_fault n ~src ~dst fault) }

let retransmissions t =
  match t.transport with Direct _ -> 0 | Framed r -> Reliable.retransmissions r

let stale_replies t = t.stale_replies

let rpc_timeouts t = t.rpc_timeouts

let node t pid = t.nodes.(pid)

let history t = History.Recorder.history t.recorder

let timed_history t = List.rev t.timed

let sim_now t = Dsm_sim.Engine.now (Proc.engine t.sched)

let log_timed t op start_time = t.timed <- (op, start_time, sim_now t) :: t.timed

let stats t = Array.to_list (Array.map Node.stats t.nodes)

let total_stats t = Node_stats.total (stats t)

let shutdown t = t.timers_stopped <- true

(* Crash-stop failures.  [crash] makes the node deaf (deliveries are
   dropped) and forgets which replies it was waiting for; [restart] brings
   it back with empty volatile state — the cache discarded (the paper's
   [discard], so trivially safe), the clock zeroed to be rebuilt from the
   first owner reply, and the transport links re-established. *)
let crash t pid =
  if t.crashed.(pid) then invalid_arg (Printf.sprintf "Cluster.crash: node %d already down" pid);
  t.crashed.(pid) <- true;
  Hashtbl.reset t.pending.(pid)

let restart t pid =
  if not t.crashed.(pid) then
    invalid_arg (Printf.sprintf "Cluster.restart: node %d is not crashed" pid);
  Node.reset_volatile t.nodes.(pid);
  (match t.transport with Direct _ -> () | Framed r -> Reliable.reset_node r pid);
  t.crashed.(pid) <- false

let is_crashed t pid = t.crashed.(pid)

let dropped_at_crashed t = t.dropped_at_crashed

let pid h = Node.id h.node

let check_up h =
  let t = h.cluster in
  let me = Node.id h.node in
  if t.crashed.(me) then
    failwith (Printf.sprintf "node %d is crashed: operations are unavailable until restart" me)

(* Round-trip a request to [dst] and block until its reply arrives.  With an
   RPC policy configured, a lost round trip times out and is retried with a
   fresh request tag (the old tag, if its reply ever shows up, is discarded
   as stale); when the attempts are exhausted the operation surfaces
   [Timed_out] instead of blocking forever. *)
let rendezvous h ~dst ~op ~loc ~kind ~size make_msg =
  let t = h.cluster in
  let me = Node.id h.node in
  match t.rpc with
  | None ->
      let req = Node.next_req h.node in
      let ivar = Proc.ivar t.sched in
      Hashtbl.replace t.pending.(me) req ivar;
      send_msg t ~src:me ~dst ~kind ~size (make_msg req);
      Proc.await ivar
  | Some { timeout; retries } ->
      let rec attempt n =
        let req = Node.next_req h.node in
        let ivar = Proc.ivar t.sched in
        Hashtbl.replace t.pending.(me) req ivar;
        send_msg t ~src:me ~dst ~kind ~size (make_msg req);
        match Proc.await_timeout ivar ~timeout with
        | Some reply -> reply
        | None ->
            Hashtbl.remove t.pending.(me) req;
            t.rpc_timeouts <- t.rpc_timeouts + 1;
            if n < retries then attempt (n + 1)
            else
              raise
                (Timed_out { op; loc; requester = me; owner_node = dst; attempts = n + 1 })
      in
      attempt 0

let read_stamped h loc =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  let stats = Node.stats node in
  let start_time = sim_now t in
  match Node.lookup node loc with
  | Some entry ->
      (* Owned or cached: the read completes locally. *)
      stats.Node_stats.read_hits <- stats.Node_stats.read_hits + 1;
      let op =
        History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
          ~value:entry.Stamped.value ~from:entry.Stamped.wid
      in
      log_timed t op start_time;
      entry
  | None -> (
      (* Read miss: fetch a current copy from the owner and install it,
         invalidating everything causally older (Figure 4, r_i(x)v). *)
      stats.Node_stats.read_misses <- stats.Node_stats.read_misses + 1;
      let dst = Node.owner_of node loc in
      (* Snapshot the clock: if it grows while we are blocked (this node
         certified writes meanwhile), the reply may be stale relative to
         what we now know and must not be retained in the cache. *)
      let vt_at_request = Node.vt node in
      let reply =
        rendezvous h ~dst ~op:`Read ~loc ~kind:"READ"
          ~size:t.config.Config.read_request_size (fun req -> Message.Read_req { req; loc })
      in
      match reply with
      | Message.Read_reply { entry; page; digest; _ } ->
          Node.digest_merge node digest;
          if Vclock.equal vt_at_request (Node.vt node) then
            Node.install_batch node ((loc, entry) :: page)
          else Node.install_transient node ((loc, entry) :: page);
          Node.enforce_capacity node;
          let op =
            History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
              ~value:entry.Stamped.value ~from:entry.Stamped.wid
          in
          log_timed t op start_time;
          entry
      | Message.Read_req _ | Message.Write_req _ | Message.Write_reply _ ->
          assert false)

let read h loc = (read_stamped h loc).Stamped.value

let write_resolved h loc value =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  let stats = Node.stats node in
  let start_time = sim_now t in
  if Node.owns node loc then begin
    let entry = Node.local_write node loc value in
    let op =
      History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value
        ~wid:entry.Stamped.wid
    in
    log_timed t op start_time;
    `Accepted
  end
  else begin
    (* w_i(x)v, non-owner branch: increment, ship to the owner for
       certification, then adopt the owner's clock and entry. *)
    Node.set_vt node (Vclock.increment (Node.vt node) (Node.id node));
    let wid = Node.fresh_wid node in
    let entry = Stamped.make ~value ~stamp:(Node.vt node) ~wid in
    let digest = Node.digest_export node in
    let reply =
      rendezvous h ~dst:(Node.owner_of node loc) ~op:`Write ~loc ~kind:"WRITE"
        ~size:(entry_wire_size t 1 + digest_wire_size t digest)
        (fun req -> Message.Write_req { req; loc; entry; digest })
    in
    match reply with
    | Message.Write_reply { accepted; entry = stored; digest; _ } ->
        (* Figure 4 performs no invalidation on the writer's reply path;
           the digest is still merged so later introductions act on it. *)
        Node.digest_merge node digest;
        Node.adopt_write_reply node loc stored;
        Node.enforce_capacity node;
        stats.Node_stats.writes_remote <- stats.Node_stats.writes_remote + 1;
        let op = History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value ~wid in
        log_timed t op start_time;
        if accepted then `Accepted
        else begin
          stats.Node_stats.writes_rejected <- stats.Node_stats.writes_rejected + 1;
          `Rejected
        end
    | Message.Read_req _ | Message.Write_req _ | Message.Read_reply _ -> assert false
  end

let write h loc value = ignore (write_resolved h loc value)

let read_result h loc =
  match read_stamped h loc with
  | entry -> Ok entry.Stamped.value
  | exception Timed_out info -> Error info

let write_result h loc value =
  match write_resolved h loc value with
  | outcome -> Ok outcome
  | exception Timed_out info -> Error info

let discard h = ignore (Node.discard_all h.node)

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Node.processes h.node

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  let refresh h loc = ignore (Node.discard_one h.node loc)
end
