module Protocol = Dsm_protocol.Protocol
module Trace = Dsm_protocol.Trace
module Message = Dsm_protocol.Message
module Node = Dsm_protocol.Node
module Node_stats = Dsm_protocol.Node_stats
module Config = Dsm_protocol.Config
module Stamped = Dsm_protocol.Stamped
module Write_digest = Dsm_protocol.Write_digest
module Detector = Dsm_protocol.Detector
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Shard = Dsm_memory.Shard
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Reliable = Dsm_net.Reliable
module Prng = Dsm_util.Prng

type rpc = { timeout : float; retries : int }

type timeout_info = {
  op : [ `Read | `Write ];
  loc : Loc.t;
  requester : int;
  owner_node : int;
  attempts : int;
}

exception Timed_out of timeout_info

type node_state_error = Already_crashed of int | Not_crashed of int

let pp_node_state_error ppf = function
  | Already_crashed pid -> Format.fprintf ppf "node %d is already down" pid
  | Not_crashed pid -> Format.fprintf ppf "node %d is not crashed" pid

exception Node_state of node_state_error

let () =
  Printexc.register_printer (function
    | Timed_out { op; loc; requester; owner_node; attempts } ->
        Some
          (Printf.sprintf "Cluster.Timed_out(%s %s: node %d -> owner %d, %d attempt%s)"
             (match op with `Read -> "read" | `Write -> "write")
             (Loc.to_string loc) requester owner_node attempts
             (if attempts = 1 then "" else "s"))
    | Node_state e -> Some (Format.asprintf "Cluster.Node_state(%a)" pp_node_state_error e)
    | _ -> None)

(* The transport under the protocol: either the network used directly (the
   paper's assumption: reliable exactly-once FIFO links), or the
   sliding-window reliable layer over a network that may drop and duplicate
   (the fault-tolerant configuration). *)
type transport =
  | Direct of Message.t Network.t
  | Framed of Message.t Reliable.t

(* The effect shell around {!Protocol}: this type holds only what the pure
   core must not know about — the scheduler and transport, the per-request
   reply ivars, the blocked-writer ivars, the write-ahead logs, the timers,
   and the counters for shell-side events (timeouts, redirects, stale
   replies).  All protocol decisions live in [core]; every mutation of it
   goes through [dispatch]. *)
type t = {
  sched : Proc.sched;
  transport : transport;
  core : Protocol.state;
  owner : Owner.t;
  config : Config.t;
  rpc : rpc option;
  recorder : History.Recorder.t;
  pending : (int, Message.t Proc.ivar) Hashtbl.t array;
  mutable timers_stopped : bool;
  mutable timed : (Dsm_memory.Op.t * float * float) list; (* newest first *)
  mutable stale_replies : int;
  mutable rpc_timeouts : int;
  (* Owner failover: durable logs, heartbeat timers, blocked local writers. *)
  disk : Wal.Disk.t;
  wals : Wal.t array;
  detector_config : Detector.config option;
  checkpoint_every : float option;
  (* Share-set GC: runtime subscribers that stop touching a shard are
     unsubscribed after this much access-quiet sim time ([None] = never).
     [shard_access] maps [(node, shard)] to the last client access. *)
  unsubscribe_idle : float option;
  shard_access : (int * int, float) Hashtbl.t;
  hb_prngs : Prng.t array; (* per-node heartbeat jitter *)
  writer_waits : (int, unit Proc.ivar) Hashtbl.t array;
  mutable writer_seq : int;
  mutable last_local_write : Stamped.t option;
  mutable shadow_reads : int;
  mutable redirects : int;
  mutable wal_sync_failures : int;
  (* Recovery accounting: restarts, what they replayed, and the host time
     the replays cost (the bench's measurement). *)
  mutable recoveries : int;
  mutable replayed_records : int;
  mutable recovery_seconds : float;
  trace : Trace.t option;
}

type handle = { cluster : t; node : Node.t }

(* Run one polymorphic network accessor against whichever network backs the
   transport (their message types differ, hence the record for the
   polymorphism). *)
type 'a net_fn = { on : 'msg. 'msg Network.t -> 'a }

let on_net t f = match t.transport with Direct n -> f.on n | Framed r -> f.on (Reliable.net r)

let send_msg t ~src ~dst ~kind ~size msg =
  match t.transport with
  | Direct n -> Network.send n ~src ~dst ~kind ~size msg
  | Framed r -> Reliable.send r ~src ~dst ~kind ~size msg

(* Mirrors Protocol's share-set-width wire accounting for the client-side
   sends the shell prices itself (outbound WRITEs): under sharding a
   location's writestamp costs its share-set's width on the wire, and a
   digest is priced per location at that location's shard width. *)
let entry_wire_size t ~loc (count : int) =
  let dim =
    match Protocol.sharding t.core with
    | None -> Owner.nodes t.owner
    | Some s -> Shard.width s (Shard.of_loc s loc)
  in
  count * t.config.Config.entry_size dim

let digest_wire_size t digest =
  match Protocol.sharding t.core with
  | None -> Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)
  | Some s ->
      List.fold_left (fun acc (l, _) -> acc + Shard.width s (Shard.of_loc s l) + 2) 0 digest

let sim_now t = Dsm_sim.Engine.now (Proc.engine t.sched)

let failover_on t = Protocol.failover_on t.core

let suspected t ~me ~peer = Protocol.suspected t.core ~me ~peer

let backup_of t ~serving = Protocol.backup_of t.core ~serving

(* Feed the share-set GC: stamp the shard behind every client read/write so
   the idle timer can tell a quiet runtime subscription from a live one.
   No-op unless sharding and a quiescence window are both configured. *)
let note_shard_access t ~node loc =
  match (t.unsubscribe_idle, Protocol.sharding t.core) with
  | Some _, Some s -> Hashtbl.replace t.shard_access (node, Shard.of_loc s loc) (sim_now t)
  | _ -> ()

(* Stamp a trace body with the simulated time and the acting node's vector
   clock and publish it.  No-op on an untraced cluster. *)
let emit_body t body =
  match t.trace with
  | None -> ()
  | Some bus ->
      let clock =
        match Trace.actor body with
        | Some n when n >= 0 && n < Protocol.processes t.core ->
            Some (Node.vt (Protocol.node t.core n))
        | Some _ | None -> None
      in
      Trace.emit bus ~time:(sim_now t) ?clock body

(* A failed log sync is counted and tolerated: the entry stays in volatile
   memory and reaches the disk at the next checkpoint — a crash before then
   loses it, which is exactly what the sync-fault tests observe. *)
let wal_append t me record =
  match Wal.append t.wals.(me) record with
  | () -> ()
  | exception Wal.Sync_failed _ -> t.wal_sync_failures <- t.wal_sync_failures + 1

let shadow_grace t =
  match t.detector_config with Some c -> c.Detector.period | None -> 10.0

(* The [Truncate_wal_early] mutation models an off-by-one in the retention
   cut: every compaction drops one record past the stable-checkpoint
   boundary. *)
let compact_extra t =
  match t.config.Config.mutation with Config.Truncate_wal_early -> 1 | _ -> 0

(* Snapshot one node onto its log, then compact away everything the new
   checkpoint covers.  A failed snapshot sync is counted and tolerated (no
   compaction happens, so nothing durable is lost); a torn snapshot is
   invisible here — recovery detects it and anchors on the previous
   complete one, which compaction is careful to keep. *)
let checkpoint_now t pid =
  match Wal.checkpoint t.wals.(pid) (Node.snapshot (Protocol.node t.core pid)) with
  | () -> ignore (Wal.compact ~extra:(compact_extra t) t.wals.(pid))
  | exception Wal.Sync_failed _ -> t.wal_sync_failures <- t.wal_sync_failures + 1

(* {1 The action interpreter}

   [dispatch] feeds one event to the pure core and performs the returned
   actions in order.  Network sends and timer arms only {e schedule} future
   engine events, so interpretation never re-enters the core. *)

let rec interpret t action =
  match (action : Protocol.action) with
  | Protocol.Send { src; dst; kind; size; msg } -> send_msg t ~src ~dst ~kind ~size msg
  | Protocol.Client_reply { node = me; req; msg } -> (
      match Hashtbl.find_opt t.pending.(me) req with
      | Some ivar ->
          Hashtbl.remove t.pending.(me) req;
          Proc.fill ivar msg
      | None ->
          (* A reply nobody is waiting for: the request timed out and was
             retried (the retry's reply won), or this node crashed and
             restarted since issuing it.  Discarding is safe — the request
             tag is never reused. *)
          t.stale_replies <- t.stale_replies + 1)
  | Protocol.Wake_writer { node = me; writer } -> (
      match Hashtbl.find_opt t.writer_waits.(me) writer with
      | Some ivar ->
          Hashtbl.remove t.writer_waits.(me) writer;
          if not (Proc.is_filled ivar) then Proc.fill ivar ()
      | None -> ())
  | Protocol.Append { node = me; record } -> wal_append t me record
  | Protocol.Arm_grace { node = me; seq } ->
      Dsm_sim.Engine.schedule (Proc.engine t.sched) ~delay:(shadow_grace t) (fun () ->
          dispatch t (Protocol.Grace_expired { node = me; seq }))
  | Protocol.Local_write_done { node = _; entry } -> t.last_local_write <- Some entry
  | Protocol.Take_checkpoint { node = me; round = _ } -> checkpoint_now t me
  | Protocol.Emit body -> emit_body t body

and dispatch t event =
  let _state, actions = Protocol.step t.core event in
  dispatch_actions t actions

(* With batching enabled, maximal runs of consecutive [Send] actions on the
   same directed link (an [install_batch] page, a shadow-replication fan,
   a takeover broadcast leg) are handed to the transport as one flush, so
   they can share physical frames.  Non-send actions are interpreted in
   place, preserving the exact action order the core emitted.  With
   [max_batch = 1] (the default) this is the historical per-action loop. *)
and dispatch_actions t actions =
  match t.transport with
  | Framed r when (Reliable.config r).Reliable.max_batch > 1 ->
      let flush = function
        | None -> ()
        | Some (src, dst, rev_run) -> Reliable.send_many r ~src ~dst (List.rev rev_run)
      in
      let pending =
        List.fold_left
          (fun pending action ->
            match (action : Protocol.action) with
            | Protocol.Send { src; dst; kind; size; msg } -> (
                match pending with
                | Some (psrc, pdst, run) when psrc = src && pdst = dst ->
                    Some (src, dst, (kind, size, msg) :: run)
                | _ ->
                    flush pending;
                    Some (src, dst, [ (kind, size, msg) ]))
            | other ->
                flush pending;
                interpret t other;
                None)
          None actions
      in
      flush pending
  | _ -> List.iter (interpret t) actions

let start_discard_timer t node =
  match (Node.config node).Config.discard with
  | Config.No_discard | Config.Capacity _ -> ()
  | Config.Periodic period ->
      let engine = Proc.engine t.sched in
      let rec tick () =
        if not t.timers_stopped then begin
          ignore (Node.discard_all node);
          Dsm_sim.Engine.schedule engine ~delay:period tick
        end
      in
      Dsm_sim.Engine.schedule engine ~delay:period tick

let start_heartbeats t =
  match t.detector_config with
  | Some cfg when failover_on t ->
      let engine = Proc.engine t.sched in
      let n = Protocol.processes t.core in
      for me = 0 to n - 1 do
        let prng = t.hb_prngs.(me) in
        let rec beat () =
          (* Same stop rule as the checkpoint timer: beat only while the
             workload runs, so the engine can quiesce afterwards. *)
          if (not t.timers_stopped) && Proc.active t.sched then begin
            dispatch t (Protocol.Hb_tick { node = me; now = sim_now t });
            Dsm_sim.Engine.schedule engine
              ~delay:(cfg.Detector.period *. (0.9 +. Prng.float prng 0.2))
              beat
          end
        in
        (* Staggered, jittered start so a cluster's beats never synchronise. *)
        Dsm_sim.Engine.schedule engine
          ~delay:(cfg.Detector.period *. (0.5 +. Prng.float prng 0.5))
          beat
      done
  | _ -> ()

let start_checkpoint_timers t =
  match t.checkpoint_every with
  | None -> ()
  | Some period ->
      let engine = Proc.engine t.sched in
      for pid = 0 to Protocol.processes t.core - 1 do
        let rec tick () =
          if (not t.timers_stopped) && Proc.active t.sched then begin
            if not (Protocol.is_crashed t.core pid) then checkpoint_now t pid;
            Dsm_sim.Engine.schedule engine ~delay:period tick
          end
        in
        Dsm_sim.Engine.schedule engine ~delay:period tick
      done

(* Share-set garbage collection: a periodic sweep unsubscribes any runtime
   subscriber (never a ring member — [Shard.unsubscribe] would refuse
   anyway) whose last client access to the shard is older than the
   quiescence window.  A subscription that has never been accessed from
   this node (an explicit [subscribe] warm-up) is stamped on first sight so
   it too gets a full window before collection.  The Unsubscribe event
   drops the node's cached copies of the shard's locations; a later access
   misses, fetches from the shard owner and resubscribes through the usual
   subscribe-on-access catch-up, so collection is always causally safe. *)
let start_unsubscribe_timers t =
  match t.unsubscribe_idle with
  | None -> ()
  | Some window ->
      let engine = Proc.engine t.sched in
      let period = window /. 2.0 in
      for me = 0 to Protocol.processes t.core - 1 do
        let rec tick () =
          if (not t.timers_stopped) && Proc.active t.sched then begin
            (match Protocol.sharding t.core with
            | None -> ()
            | Some s ->
                if not (Protocol.is_crashed t.core me) then
                  for shard = 0 to Shard.count s - 1 do
                    if Shard.subscribed s ~shard ~node:me && not (Shard.in_ring s ~shard ~node:me)
                    then begin
                      let now = sim_now t in
                      match Hashtbl.find_opt t.shard_access (me, shard) with
                      | None -> Hashtbl.replace t.shard_access (me, shard) now
                      | Some last ->
                          if now -. last >= window then begin
                            Hashtbl.remove t.shard_access (me, shard);
                            dispatch t (Protocol.Unsubscribe { node = me; shard })
                          end
                    end
                  done);
            Dsm_sim.Engine.schedule engine ~delay:period tick
          end
        in
        Dsm_sim.Engine.schedule engine ~delay:period tick
      done

let create ~sched ~owner ?(config = Config.default) ?latency ?fault ?reliability ?rpc
    ?detector ?sharding ?disk ?checkpoint_every ?unsubscribe_idle ?trace ?(seed = 42L) () =
  Config.validate config;
  (match rpc with
  | Some r ->
      if r.timeout <= 0.0 then invalid_arg "Cluster.create: rpc timeout must be positive";
      if r.retries < 0 then invalid_arg "Cluster.create: rpc retries must be >= 0"
  | None -> ());
  (match detector with Some d -> Detector.validate d | None -> ());
  (match checkpoint_every with
  | Some p when p <= 0.0 -> invalid_arg "Cluster.create: checkpoint_every must be positive"
  | _ -> ());
  (match unsubscribe_idle with
  | Some w when w <= 0.0 -> invalid_arg "Cluster.create: unsubscribe_idle must be positive"
  | Some _ when sharding = None ->
      invalid_arg "Cluster.create: unsubscribe_idle requires sharding"
  | _ -> ());
  let processes = Owner.nodes owner in
  let engine = Proc.engine sched in
  let transport =
    match reliability with
    | None -> Direct (Network.create engine ~nodes:processes ?latency ?fault ~seed ())
    | Some rconfig ->
        Framed
          (Reliable.create ~config:rconfig
             (Network.create engine ~nodes:processes ?latency ?fault ~seed ()))
  in
  let core =
    Protocol.create ~owner ~config ?detector ?sharding ~now:(Dsm_sim.Engine.now engine) ()
  in
  let disk = match disk with Some d -> d | None -> Wal.Disk.create () in
  let hb_master = Prng.create (Int64.logxor seed 0x6A09E667F3BCC909L) in
  let t =
    {
      sched;
      transport;
      core;
      owner;
      config;
      rpc;
      recorder = History.Recorder.create ~processes;
      pending = Array.init processes (fun _ -> Hashtbl.create 8);
      timers_stopped = false;
      timed = [];
      stale_replies = 0;
      rpc_timeouts = 0;
      disk;
      wals = Array.init processes (fun node -> Wal.attach disk ~node);
      detector_config = detector;
      checkpoint_every;
      unsubscribe_idle;
      shard_access = Hashtbl.create 16;
      hb_prngs = Array.init processes (fun _ -> Prng.split hb_master);
      writer_waits = Array.init processes (fun _ -> Hashtbl.create 4);
      writer_seq = 0;
      last_local_write = None;
      shadow_reads = 0;
      redirects = 0;
      wal_sync_failures = 0;
      recoveries = 0;
      replayed_records = 0;
      recovery_seconds = 0.0;
      trace;
    }
  in
  (match trace with
  | None -> ()
  | Some _ ->
      Protocol.set_tracing core true;
      (* Bridge the wire onto the bus: the tap is payload-agnostic, so the
         same bridge covers direct and framed transports (a framed cluster
         traces the reliable layer's frames — what the wire really sees). *)
      let tap =
        {
          Network.on_send =
            (fun ~src ~dst ~kind ~size -> emit_body t (Trace.Send { src; dst; kind; size }));
          on_deliver = (fun ~src ~dst ~kind -> emit_body t (Trace.Deliver { src; dst; kind }));
          on_drop = (fun ~src ~dst ~kind -> emit_body t (Trace.Drop { src; dst; kind }));
          on_duplicate =
            (fun ~src ~dst ~kind -> emit_body t (Trace.Duplicate { src; dst; kind }));
        }
      in
      on_net t { on = (fun n -> Network.set_tap n (Some tap)) });
  for me = 0 to processes - 1 do
    let handler ~src msg = dispatch t (Protocol.Deliver { dst = me; src; now = sim_now t; msg }) in
    match transport with
    | Direct n -> Network.set_handler n ~node:me handler
    | Framed r -> Reliable.set_handler r ~node:me handler
  done;
  for pid = 0 to processes - 1 do
    start_discard_timer t (Protocol.node core pid)
  done;
  start_heartbeats t;
  start_checkpoint_timers t;
  start_unsubscribe_timers t;
  t

let node t pid = Protocol.node t.core pid

let handle t pid = { cluster = t; node = node t pid }

let handles t = Array.init (Protocol.processes t.core) (handle t)

let processes t = Protocol.processes t.core

let sched t = t.sched

let trace t = t.trace

let net t =
  match t.transport with
  | Direct n -> n
  | Framed _ ->
      invalid_arg
        "Cluster.net: this cluster runs over the reliable transport; use Cluster.reliable, \
         Cluster.messages_total and the Cluster link controls"

let reliable t = match t.transport with Direct _ -> None | Framed r -> Some r

let messages_total t = on_net t { on = (fun n -> Network.lifetime_total n) }

(* Logical messages: protocol payloads handed to the transport — the unit
   the paper's message tables count, invariant under batching.  On a direct
   transport every payload is its own frame, so the wire total is already
   logical. *)
let logical_messages t =
  match t.transport with
  | Direct n -> Network.lifetime_total n
  | Framed r -> Reliable.sent r

let physical_frames t = messages_total t

let wire_counters t = on_net t { on = (fun n -> Network.counters n) }

let wire_dropped t = on_net t { on = (fun n -> Network.dropped n) }

let wire_duplicated t = on_net t { on = (fun n -> Network.duplicated n) }

let set_link_down t ~src ~dst down =
  on_net t { on = (fun n -> Network.set_link_down n ~src ~dst down) }

let set_link_fault t ~src ~dst fault =
  on_net t { on = (fun n -> Network.set_link_fault n ~src ~dst fault) }

(* Partition controls: plain link-state changes on whichever network backs
   the transport.  Healing goes through the network's heal hooks, so on a
   framed transport every revived link is resynchronised automatically. *)
let partition t ga gb = on_net t { on = (fun n -> Network.partition n ga gb) }

let partition_oneway t ga gb = on_net t { on = (fun n -> Network.partition_oneway n ga gb) }

let heal_partition t ga gb = on_net t { on = (fun n -> Network.heal_partition n ga gb) }

let heal_all_links t = on_net t { on = (fun n -> Network.heal_all n) }

let retransmissions t =
  match t.transport with Direct _ -> 0 | Framed r -> Reliable.retransmissions r

let stale_replies t = t.stale_replies

let rpc_timeouts t = t.rpc_timeouts

let history t = History.Recorder.history t.recorder

let timed_history t = List.rev t.timed

let log_timed t op start_time = t.timed <- (op, start_time, sim_now t) :: t.timed

let stats t = List.init (processes t) (fun pid -> Node.stats (node t pid))

let total_stats t = Node_stats.total (stats t)

let shutdown t = t.timers_stopped <- true

(* {1 Failover observability} *)

let disk t = t.disk

let wal t pid = t.wals.(pid)

let takeovers t = Protocol.takeovers t.core

let shadow_degraded t = Protocol.shadow_degraded t.core

let shadow_reads t = t.shadow_reads

let redirects t = t.redirects

let wal_sync_failures t = t.wal_sync_failures

let sum_wals t f = Array.fold_left (fun acc w -> acc + f w) 0 t.wals

let recoveries t = t.recoveries

let replayed_records t = t.replayed_records

let recovery_seconds t = t.recovery_seconds

let begin_checkpoint t pid = dispatch t (Protocol.Begin_checkpoint { node = pid })

(* {1 Partial replication} *)

let sharding t = Protocol.sharding t.core

let subscribe t ~node ~shard = dispatch t (Protocol.Subscribe { node; shard })

let unsubscribe t ~node ~shard = dispatch t (Protocol.Unsubscribe { node; shard })

let quorum_for t ~base = Protocol.quorum_for t.core ~base

let recovery_lines t = Protocol.checkpoint_rounds_completed t.core

let checkpoint_round t pid = Protocol.checkpoint_round t.core pid

let partition_degraded t pid = Protocol.partition_degraded t.core pid

let partition_heals t = Protocol.partition_heals t.core

let votes_granted t = Protocol.votes_granted t.core

let degraded_refusals t = Protocol.degraded_refusals t.core

let quorum t = Protocol.quorum t.core

let resyncs t = match t.transport with Direct _ -> 0 | Framed r -> Reliable.resyncs r

let suspect_events t = Protocol.suspect_events t.core

let unsuspect_events t = Protocol.unsuspect_events t.core

let suspected_by t pid = Protocol.suspected_by t.core pid

let view t = Protocol.view t.core

let epoch_of t ~base =
  List.fold_left (fun acc (b, e, _) -> if b = base then e else acc) 0 (view t)

let serving_of t ~base =
  List.fold_left (fun acc (b, _, s) -> if b = base then s else acc) base (view t)

(* One unified counter record (see Node_stats.cluster): the summed per-node
   protocol counters plus every cluster-level counter, wherever it lives —
   core, shell or wire. *)
let cluster_stats t =
  {
    Node_stats.protocol = total_stats t;
    logical_messages = logical_messages t;
    physical_frames = physical_frames t;
    wire_dropped = wire_dropped t;
    wire_duplicated = wire_duplicated t;
    retransmissions = retransmissions t;
    stale_replies = t.stale_replies;
    rpc_timeouts = t.rpc_timeouts;
    dropped_at_crashed = Protocol.dropped_at_crashed t.core;
    redirects = t.redirects;
    shadow_reads = t.shadow_reads;
    shadow_degraded = Protocol.shadow_degraded t.core;
    takeovers = Protocol.takeovers t.core;
    suspects = Protocol.suspect_events t.core;
    unsuspects = Protocol.unsuspect_events t.core;
    wal_sync_failures = t.wal_sync_failures;
    wal_records = sum_wals t Wal.length;
    wal_checkpoints = sum_wals t Wal.checkpoints;
    wal_torn_checkpoints = sum_wals t Wal.torn_checkpoints;
    wal_compactions = sum_wals t Wal.compactions;
    wal_truncated = sum_wals t Wal.truncated;
    recoveries = t.recoveries;
    replayed_records = t.replayed_records;
    recovery_lines = Protocol.checkpoint_rounds_completed t.core;
  }

(* Crash-stop failures.  [crash] makes the node deaf (deliveries are
   dropped) and forgets which replies it was waiting for; [restart] brings
   it back by resetting all volatile state and replaying the node's
   write-ahead log, which restores certified writes, view changes and
   shadow copies to the exact pre-crash durable frontier.  Cache-only nodes
   have empty logs, so for them this degenerates to cache-discard
   recovery. *)
let crash_result t pid =
  if Protocol.is_crashed t.core pid then Error (Already_crashed pid)
  else begin
    Hashtbl.reset t.pending.(pid);
    Hashtbl.reset t.writer_waits.(pid);
    dispatch t (Protocol.Crash { node = pid });
    Ok ()
  end

let restart_result t pid =
  if not (Protocol.is_crashed t.core pid) then Error (Not_crashed pid)
  else begin
    (match t.transport with Direct _ -> () | Framed r -> Reliable.reset_node r pid);
    (* Host (wall-clock) time around replay: the quantity the recovery
       bench plots against records-since-checkpoint. *)
    let started = Sys.time () in
    let records = Wal.replay t.wals.(pid) in
    dispatch t (Protocol.Restart { node = pid; now = sim_now t; records });
    t.recovery_seconds <- t.recovery_seconds +. (Sys.time () -. started);
    t.recoveries <- t.recoveries + 1;
    t.replayed_records <- t.replayed_records + List.length records;
    Ok ()
  end

let crash t pid =
  match crash_result t pid with Ok () -> () | Error e -> raise (Node_state e)

let restart t pid =
  match restart_result t pid with Ok () -> () | Error e -> raise (Node_state e)

let is_crashed t pid = Protocol.is_crashed t.core pid

let dropped_at_crashed t = Protocol.dropped_at_crashed t.core

let pid h = Node.id h.node

let check_up h =
  let t = h.cluster in
  let me = Node.id h.node in
  if Protocol.is_crashed t.core me then
    failwith (Printf.sprintf "node %d is crashed: operations are unavailable until restart" me)

(* Round-trip a request and block until its reply arrives.  [route] picks
   the destination afresh for every attempt, so retries follow ownership
   handoffs; a [Stale_epoch] fencing reply teaches this node the newer view
   and re-issues immediately (bounded, and without burning a timeout
   attempt).  With an RPC policy configured, a lost round trip times out and
   is retried with a fresh request tag (the old tag, if its reply ever shows
   up, is discarded as stale); when the attempts are exhausted the operation
   surfaces [Timed_out] instead of blocking forever. *)
let rendezvous h ~op ~loc ~kind ~size ~route make_msg =
  let t = h.cluster in
  let me = Node.id h.node in
  let max_redirects = 2 * processes t in
  let issue ~dst =
    let req = Node.next_req h.node in
    let ivar = Proc.ivar t.sched in
    Hashtbl.replace t.pending.(me) req ivar;
    let epoch = Node.epoch_of h.node ~base:(Node.base_owner_of h.node loc) in
    send_msg t ~src:me ~dst ~kind ~size (make_msg ~req ~epoch);
    (req, ivar)
  in
  (* [true] to redirect (view was updated), [false] to accept the reply. *)
  let stale_redirect reply =
    match (reply : Message.t) with
    | Message.Stale_epoch { base; epoch; serving; _ } ->
        t.redirects <- t.redirects + 1;
        dispatch t (Protocol.Learn_view { node = me; base; epoch; serving });
        true
    | _ -> false
  in
  match t.rpc with
  | None ->
      let rec go redirects =
        let dst = route () in
        let _req, ivar = issue ~dst in
        let reply = Proc.await ivar in
        if stale_redirect reply then
          if redirects >= max_redirects then
            raise (Timed_out { op; loc; requester = me; owner_node = dst; attempts = redirects + 1 })
          else go (redirects + 1)
        else reply
      in
      go 0
  | Some { timeout; retries } ->
      let rec attempt ~redirects n =
        let dst = route () in
        let req, ivar = issue ~dst in
        match Proc.await_timeout ivar ~timeout with
        | Some reply ->
            if stale_redirect reply then
              if redirects >= max_redirects then
                raise (Timed_out { op; loc; requester = me; owner_node = dst; attempts = n + 1 })
              else attempt ~redirects:(redirects + 1) n
            else reply
        | None ->
            Hashtbl.remove t.pending.(me) req;
            t.rpc_timeouts <- t.rpc_timeouts + 1;
            if n < retries then attempt ~redirects (n + 1)
            else
              raise
                (Timed_out { op; loc; requester = me; owner_node = dst; attempts = n + 1 })
      in
      attempt ~redirects:0 0

let read_stamped h loc =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  note_shard_access t ~node:(Node.id node) loc;
  let stats = Node.stats node in
  let start_time = sim_now t in
  let record_read entry =
    let op =
      History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
        ~value:entry.Stamped.value ~from:entry.Stamped.wid
    in
    log_timed t op start_time;
    emit_body t
      (Trace.Op_read
         { node = Node.id node; loc; value = entry.Stamped.value; from = entry.Stamped.wid });
    entry
  in
  match Node.lookup node loc with
  | Some entry ->
      (* Served or cached: the read completes locally. *)
      stats.Node_stats.read_hits <- stats.Node_stats.read_hits + 1;
      record_read entry
  | None -> (
      (* Read miss: fetch a current copy from the owner and install it,
         invalidating everything causally older (Figure 4, r_i(x)v). *)
      stats.Node_stats.read_misses <- stats.Node_stats.read_misses + 1;
      let me = Node.id node in
      let dst = Node.owner_of node loc in
      let fetch_from_owner () =
        (* Snapshot the clock: if it grows while we are blocked (this node
           certified writes meanwhile), the reply may be stale relative to
           what we now know and must not be retained in the cache. *)
        let vt_at_request = Node.vt node in
        let reply =
          rendezvous h ~op:`Read ~loc ~kind:"READ" ~size:t.config.Config.read_request_size
            ~route:(fun () -> Node.owner_of node loc)
            (fun ~req ~epoch -> Message.Read_req { req; loc; epoch })
        in
        match reply with
        | Message.Read_reply { entry; page; digest; _ } ->
            Node.digest_merge node digest;
            if Vclock.equal vt_at_request (Node.vt node) then
              Node.install_batch node ((loc, entry) :: page)
            else Node.install_transient node ((loc, entry) :: page);
            Node.enforce_capacity node;
            record_read entry
        | _ -> assert false
      in
      if failover_on t && dst <> me && suspected t ~me ~peer:dst then begin
        (* Degraded read during failover: the owner is suspected, so serve
           the backup's shadow copy — the last acknowledged write, a live
           value under Definition 2 — instead of blocking on a dead node.
           The entry is installed transiently: knowledge (clock, digest,
           invalidation) is kept, the value itself is not cached. *)
        let base = Node.base_owner_of node loc in
        match backup_of t ~serving:dst with
        | Some b when b = me ->
            (* This node is the backup: its own shadow is the freshest
               acknowledged copy available anywhere. *)
            let entry =
              match Node.shadow_lookup node ~base loc with
              | Some e -> e
              | None -> Stamped.initial ~processes:(processes t) (t.config.Config.init loc)
            in
            t.shadow_reads <- t.shadow_reads + 1;
            Node.install_transient node [ (loc, entry) ];
            record_read entry
        | Some b -> (
            let reply =
              rendezvous h ~op:`Read ~loc ~kind:"SH_READ"
                ~size:t.config.Config.read_request_size
                ~route:(fun () -> b)
                (fun ~req ~epoch:_ -> Message.Shadow_read_req { req; loc })
            in
            match reply with
            | Message.Shadow_read_reply { entry; _ } ->
                t.shadow_reads <- t.shadow_reads + 1;
                Node.install_transient node [ (loc, entry) ];
                record_read entry
            | _ -> assert false)
        | None -> fetch_from_owner ()
      end
      else fetch_from_owner ())

let read h loc = (read_stamped h loc).Stamped.value

let write_resolved h loc value =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  note_shard_access t ~node:(Node.id node) loc;
  let stats = Node.stats node in
  let start_time = sim_now t in
  if Node.owns node loc then begin
    let me = Node.id node in
    (* A partition-degraded owner (quorum contact lost) refuses writes
       locally for the same reason it silently drops remote [WRITE]s:
       accepting one could diverge from a majority-side takeover.  Reads
       stay available — they return acknowledged values, safe under
       Definition 2. *)
    if Protocol.partition_degraded t.core me then
      raise (Timed_out { op = `Write; loc; requester = me; owner_node = me; attempts = 0 });
    (* The owner-write path runs through the core (certify, log, shadow);
       this process blocks on [ivar] until the designated backup has the
       entry or the grace timer degrades.  When the core completes the
       write during [dispatch] (failover off, no live backup), the ivar is
       already filled and the writer never yields. *)
    let writer = t.writer_seq in
    t.writer_seq <- writer + 1;
    let ivar = Proc.ivar t.sched in
    Hashtbl.replace t.writer_waits.(me) writer ivar;
    t.last_local_write <- None;
    dispatch t (Protocol.Owner_write { node = me; loc; value; writer });
    let entry =
      match t.last_local_write with Some e -> e | None -> assert false
    in
    if not (Proc.is_filled ivar) then Proc.await ivar;
    let op =
      History.Recorder.record_write t.recorder ~pid:me ~loc ~value ~wid:entry.Stamped.wid
    in
    log_timed t op start_time;
    emit_body t (Trace.Op_write { node = me; loc; value; wid = entry.Stamped.wid });
    `Accepted
  end
  else begin
    (* w_i(x)v, non-owner branch: increment, ship to the owner for
       certification, then adopt the owner's clock and entry. *)
    Node.set_vt node (Vclock.increment (Node.vt node) (Node.id node));
    let wid = Node.fresh_wid node in
    let entry = Stamped.make ~value ~stamp:(Node.vt node) ~wid in
    let digest = Node.digest_export node in
    let reply =
      rendezvous h ~op:`Write ~loc ~kind:"WRITE"
        ~size:(entry_wire_size t ~loc 1 + digest_wire_size t digest)
        ~route:(fun () -> Node.owner_of node loc)
        (fun ~req ~epoch -> Message.Write_req { req; loc; entry; digest; epoch })
    in
    match reply with
    | Message.Write_reply { accepted; entry = stored; digest; _ } ->
        (* Figure 4 performs no invalidation on the writer's reply path;
           the digest is still merged so later introductions act on it. *)
        Node.digest_merge node digest;
        Node.adopt_write_reply node loc stored;
        Node.enforce_capacity node;
        stats.Node_stats.writes_remote <- stats.Node_stats.writes_remote + 1;
        let op = History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value ~wid in
        log_timed t op start_time;
        emit_body t (Trace.Op_write { node = Node.id node; loc; value; wid });
        if accepted then `Accepted
        else begin
          stats.Node_stats.writes_rejected <- stats.Node_stats.writes_rejected + 1;
          `Rejected
        end
    | _ -> assert false
  end

let write h loc value = ignore (write_resolved h loc value)

let read_result h loc =
  match read_stamped h loc with
  | entry -> Ok entry.Stamped.value
  | exception Timed_out info -> Error info

let write_result h loc value =
  match write_resolved h loc value with
  | outcome -> Ok outcome
  | exception Timed_out info -> Error info

let discard h = ignore (Node.discard_all h.node)

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Node.processes h.node

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  let refresh h loc = ignore (Node.discard_one h.node loc)
end
