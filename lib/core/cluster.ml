module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Reliable = Dsm_net.Reliable
module Prng = Dsm_util.Prng

type rpc = { timeout : float; retries : int }

type timeout_info = {
  op : [ `Read | `Write ];
  loc : Loc.t;
  requester : int;
  owner_node : int;
  attempts : int;
}

exception Timed_out of timeout_info

let () =
  Printexc.register_printer (function
    | Timed_out { op; loc; requester; owner_node; attempts } ->
        Some
          (Printf.sprintf "Cluster.Timed_out(%s %s: node %d -> owner %d, %d attempt%s)"
             (match op with `Read -> "read" | `Write -> "write")
             (Loc.to_string loc) requester owner_node attempts
             (if attempts = 1 then "" else "s"))
    | _ -> None)

(* The transport under the protocol: either the network used directly (the
   paper's assumption: reliable exactly-once FIFO links), or the
   sliding-window reliable layer over a network that may drop and duplicate
   (the fault-tolerant configuration). *)
type transport =
  | Direct of Message.t Network.t
  | Framed of Message.t Reliable.t

(* What completes once a certified write's shadow is acknowledged (or the
   grace timer degrades the replication): a deferred W_REPLY for a remote
   writer, or the owner's own blocked write process. *)
type shadow_wait =
  | Shadow_reply of { dst : int; kind : string; size : int; msg : Message.t }
  | Shadow_wake of unit Proc.ivar

type t = {
  sched : Proc.sched;
  transport : transport;
  nodes : Node.t array;
  owner : Owner.t;
  config : Config.t;
  rpc : rpc option;
  recorder : History.Recorder.t;
  pending : (int, Message.t Proc.ivar) Hashtbl.t array;
  crashed : bool array;
  mutable timers_stopped : bool;
  mutable timed : (Dsm_memory.Op.t * float * float) list; (* newest first *)
  mutable stale_replies : int;
  mutable dropped_at_crashed : int;
  mutable rpc_timeouts : int;
  (* Owner failover (PR 2): durable logs, failure detection, handoff. *)
  disk : Wal.Disk.t;
  wals : Wal.t array;
  detectors : Detector.t array option; (* Some iff failover is enabled *)
  detector_config : Detector.config option;
  checkpoint_every : float option;
  hb_prngs : Prng.t array; (* per-node heartbeat jitter *)
  shadow_pending : (int, shadow_wait) Hashtbl.t array;
  mutable shadow_seq : int;
  mutable takeovers : int;
  mutable shadow_degraded : int;
  mutable shadow_reads : int;
  mutable redirects : int;
  mutable wal_sync_failures : int;
}

type handle = { cluster : t; node : Node.t }

(* Run one polymorphic network accessor against whichever network backs the
   transport (their message types differ, hence the record for the
   polymorphism). *)
type 'a net_fn = { on : 'msg. 'msg Network.t -> 'a }

let on_net t f = match t.transport with Direct n -> f.on n | Framed r -> f.on (Reliable.net r)

let send_msg t ~src ~dst ~kind ~size msg =
  match t.transport with
  | Direct n -> Network.send n ~src ~dst ~kind ~size msg
  | Framed r -> Reliable.send r ~src ~dst ~kind ~size msg

let entry_wire_size t (count : int) =
  count * t.config.Config.entry_size (Owner.nodes t.owner)

let digest_wire_size t digest =
  Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)

let sim_now t = Dsm_sim.Engine.now (Proc.engine t.sched)

(* {1 Failover helpers} *)

let failover_on t = t.detectors <> None

let suspected t ~me ~peer =
  match t.detectors with Some dets -> Detector.suspected dets.(me) peer | None -> false

(* The designated backup for whatever [serving] certifies: its ring
   successor.  [None] in a single-node cluster. *)
let backup_of t ~serving =
  let n = Array.length t.nodes in
  let b = (serving + 1) mod n in
  if b = serving then None else Some b

(* A failed log sync is counted and tolerated: the entry stays in volatile
   memory and reaches the disk at the next checkpoint — a crash before then
   loses it, which is exactly what the sync-fault tests observe. *)
let wal_append t me record =
  match Wal.append t.wals.(me) record with
  | () -> ()
  | exception Wal.Sync_failed _ -> t.wal_sync_failures <- t.wal_sync_failures + 1

(* Fold in a view entry learned from any channel (takeover broadcast,
   heartbeat gossip, fencing reply), logging real changes for replay. *)
let learn_view t ~me ~base ~epoch ~serving =
  match Node.adopt_view t.nodes.(me) ~base ~epoch ~serving with
  | Node.View_ignored -> ()
  | Node.View_adopted | Node.View_demoted ->
      wal_append t me (Wal.View_change { base; epoch; serving })

let next_shadow_seq t =
  let s = t.shadow_seq in
  t.shadow_seq <- s + 1;
  s

let send_shadow t ~me ~backup ~base ~seq entries =
  send_msg t ~src:me ~dst:backup ~kind:"SHADOW"
    ~size:(entry_wire_size t (List.length entries))
    (Message.Shadow { seq; base; entries })

let complete_shadow t ~me wait =
  match wait with
  | Shadow_reply { dst; kind; size; msg } ->
      (* The owner may have crashed while the shadow was in flight; a dead
         node sends nothing. *)
      if not t.crashed.(me) then send_msg t ~src:me ~dst ~kind ~size msg
  | Shadow_wake ivar ->
      (* Always wake the blocked writer — its write completed before any
         crash could happen (crashes strike between operations). *)
      if not (Proc.is_filled ivar) then Proc.fill ivar ()

let shadow_grace t =
  match t.detector_config with Some c -> c.Detector.period | None -> 10.0

let arm_shadow_grace t ~me ~seq =
  Dsm_sim.Engine.schedule (Proc.engine t.sched) ~delay:(shadow_grace t) (fun () ->
      match Hashtbl.find_opt t.shadow_pending.(me) seq with
      | Some wait ->
          (* The backup never acknowledged within the grace window: degrade
             to unreplicated operation rather than blocking the writer on a
             possibly-dead backup. *)
          Hashtbl.remove t.shadow_pending.(me) seq;
          t.shadow_degraded <- t.shadow_degraded + 1;
          complete_shadow t ~me wait
      | None -> ())

(* Replicate freshly certified [entries] of [base] to the designated backup
   and run [wait]'s completion once acknowledged.  Degrades to completing
   immediately when failover is off or the backup is itself suspected. *)
let shadow_then t ~me ~base entries wait =
  let proceed () = complete_shadow t ~me wait in
  if not (failover_on t) then proceed ()
  else
    match backup_of t ~serving:me with
    | None -> proceed ()
    | Some backup when suspected t ~me ~peer:backup ->
        t.shadow_degraded <- t.shadow_degraded + 1;
        proceed ()
    | Some backup ->
        let seq = next_shadow_seq t in
        Hashtbl.replace t.shadow_pending.(me) seq wait;
        send_shadow t ~me ~backup ~base ~seq entries;
        arm_shadow_grace t ~me ~seq

(* Epoch fencing: a request is served only by the node currently serving the
   location under an epoch at least as new as the client's.  Everything else
   gets the server's own view back and re-routes. *)
let fence t node loc epoch =
  ignore t;
  let base = Node.base_owner_of node loc in
  if (not (Node.owns node loc)) || epoch < Node.epoch_of node ~base then
    Some (base, Node.epoch_of node ~base, Node.serving_of node ~base)
  else None

(* The owner-side services of Figure 4 plus the failover machinery.  These
   run atomically as delivery events; replies go back over the same FIFO
   transport. *)
let handle_message t ~me ~src msg =
  if t.crashed.(me) then
    (* A crash-stop node loses everything that arrives while it is down. *)
    t.dropped_at_crashed <- t.dropped_at_crashed + 1
  else begin
    (* Any delivery is proof of life: protocol traffic unsuspects a peer
       just as heartbeats do. *)
    (match t.detectors with
    | Some dets when src <> me -> ignore (Detector.heard dets.(me) ~peer:src ~now:(sim_now t))
    | _ -> ());
    let node = t.nodes.(me) in
    match (msg : Message.t) with
    | Message.Read_req { req; loc; epoch } -> (
        match fence t node loc epoch with
        | Some (base, my_epoch, serving) ->
            send_msg t ~src:me ~dst:src ~kind:"STALE" ~size:1
              (Message.Stale_epoch { req; base; epoch = my_epoch; serving })
        | None ->
            let entry =
              match Node.lookup node loc with Some e -> e | None -> assert false
              (* served locations always present after lookup *)
            in
            let page = Node.page_entries node loc in
            let digest = Node.digest_export node in
            send_msg t ~src:me ~dst:src ~kind:"R_REPLY"
              ~size:(entry_wire_size t (1 + List.length page) + digest_wire_size t digest)
              (Message.Read_reply { req; loc; entry; page; digest }))
    | Message.Write_req { req; loc; entry; digest; epoch } -> (
        match fence t node loc epoch with
        | Some (base, my_epoch, serving) ->
            send_msg t ~src:me ~dst:src ~kind:"STALE" ~size:1
              (Message.Stale_epoch { req; base; epoch = my_epoch; serving })
        | None ->
            Node.digest_merge node digest;
            let accepted = ref false in
            let stored = Node.certify_write node loc entry ~accepted in
            (* Durable before the reply leaves the node: an acknowledged
               write must survive a crash (the rejected case still logs the
               clock merge, so replay reaches the exact frontier). *)
            if !accepted then wal_append t me (Wal.Write { loc; entry = stored })
            else wal_append t me (Wal.Clock (Node.vt node));
            let digest = Node.digest_export node in
            let reply =
              Message.Write_reply { req; loc; accepted = !accepted; entry = stored; digest }
            in
            let size = entry_wire_size t 1 + digest_wire_size t digest in
            let wait = Shadow_reply { dst = src; kind = "W_REPLY"; size; msg = reply } in
            if !accepted then
              shadow_then t ~me ~base:(Node.base_owner_of node loc) [ (loc, stored) ] wait
            else complete_shadow t ~me wait)
    | Message.Heartbeat { view } ->
        List.iter (fun (base, epoch, serving) -> learn_view t ~me ~base ~epoch ~serving) view
    | Message.Takeover { base; epoch; serving } -> learn_view t ~me ~base ~epoch ~serving
    | Message.Shadow { seq; base; entries } ->
        List.iter
          (fun (loc, entry) ->
            Node.shadow_store node ~base loc entry;
            wal_append t me (Wal.Shadow_entry { base; loc; entry }))
          entries;
        send_msg t ~src:me ~dst:src ~kind:"SH_ACK" ~size:1 (Message.Shadow_ack { seq })
    | Message.Shadow_ack { seq } -> (
        match Hashtbl.find_opt t.shadow_pending.(me) seq with
        | Some wait ->
            Hashtbl.remove t.shadow_pending.(me) seq;
            complete_shadow t ~me wait
        | None ->
            (* An ack after the grace timer already degraded, or for a
               fire-and-forget snapshot shadow: nothing left to do. *)
            ())
    | Message.Shadow_read_req { req; loc } ->
        (* Degraded read while the owner is suspected: serve the shadow copy
           (every acknowledged write is in it), the served copy if this
           backup already promoted, or the initial value if the location was
           never written — all live values under Definition 2. *)
        let base = Node.base_owner_of node loc in
        let entry =
          if Node.owns node loc then
            match Node.lookup node loc with Some e -> e | None -> assert false
          else
            match Node.shadow_lookup node ~base loc with
            | Some e -> e
            | None ->
                Stamped.initial ~processes:(Array.length t.nodes) (t.config.Config.init loc)
        in
        send_msg t ~src:me ~dst:src ~kind:"SH_REPLY" ~size:(entry_wire_size t 1)
          (Message.Shadow_read_reply { req; loc; entry })
    | Message.Read_reply { req; _ }
    | Message.Write_reply { req; _ }
    | Message.Stale_epoch { req; _ }
    | Message.Shadow_read_reply { req; _ } -> (
        match Hashtbl.find_opt t.pending.(me) req with
        | Some ivar ->
            Hashtbl.remove t.pending.(me) req;
            Proc.fill ivar msg
        | None ->
            (* A reply nobody is waiting for: the request timed out and was
               retried (the retry's reply won), or this node crashed and
               restarted since issuing it.  Discarding is safe — the request
               tag is never reused. *)
            t.stale_replies <- t.stale_replies + 1)
  end

let start_discard_timer t node =
  match (Node.config node).Config.discard with
  | Config.No_discard | Config.Capacity _ -> ()
  | Config.Periodic period ->
      let engine = Proc.engine t.sched in
      let rec tick () =
        if not t.timers_stopped then begin
          ignore (Node.discard_all node);
          Dsm_sim.Engine.schedule engine ~delay:period tick
        end
      in
      Dsm_sim.Engine.schedule engine ~delay:period tick

(* A heartbeat tick suspecting [peer] triggers handoff: if this node is the
   designated backup for a base [peer] was serving, it promotes itself under
   the next epoch, broadcasts the takeover, and primes its own backup with
   the inherited state. *)
let on_suspect t ~me ~peer =
  let node = t.nodes.(me) in
  let n = Array.length t.nodes in
  for base = 0 to n - 1 do
    if Node.serving_of node ~base = peer then
      match backup_of t ~serving:peer with
      | Some b when b = me ->
          let epoch = Node.epoch_of node ~base + 1 in
          let inherited = Node.promote node ~base ~epoch in
          t.takeovers <- t.takeovers + 1;
          wal_append t me (Wal.View_change { base; epoch; serving = me });
          for dst = 0 to n - 1 do
            if dst <> me then
              send_msg t ~src:me ~dst ~kind:"TAKEOVER" ~size:1
                (Message.Takeover { base; epoch; serving = me })
          done;
          (match backup_of t ~serving:me with
          | Some next_backup
            when next_backup <> peer
                 && (not (suspected t ~me ~peer:next_backup))
                 && inherited <> [] ->
              (* Fire-and-forget snapshot: no reply is gated on it, the
                 per-write shadows that follow keep it current. *)
              let seq = next_shadow_seq t in
              send_shadow t ~me ~backup:next_backup ~base ~seq inherited
          | _ -> ())
      | _ -> ()
  done

let start_heartbeats t =
  match (t.detectors, t.detector_config) with
  | Some dets, Some cfg ->
      let engine = Proc.engine t.sched in
      let n = Array.length t.nodes in
      for me = 0 to n - 1 do
        let prng = t.hb_prngs.(me) in
        let rec beat () =
          (* Same stop rule as the checkpoint timer: beat only while the
             workload runs, so the engine can quiesce afterwards. *)
          if (not t.timers_stopped) && Proc.active t.sched then begin
            if not t.crashed.(me) then begin
              let view = Node.view t.nodes.(me) in
              for dst = 0 to n - 1 do
                if dst <> me then
                  send_msg t ~src:me ~dst ~kind:"HB" ~size:(1 + List.length view)
                    (Message.Heartbeat { view })
              done;
              let newly = Detector.tick dets.(me) ~now:(sim_now t) in
              List.iter (fun peer -> on_suspect t ~me ~peer) newly
            end;
            Dsm_sim.Engine.schedule engine
              ~delay:(cfg.Detector.period *. (0.9 +. Prng.float prng 0.2))
              beat
          end
        in
        (* Staggered, jittered start so a cluster's beats never synchronise. *)
        Dsm_sim.Engine.schedule engine
          ~delay:(cfg.Detector.period *. (0.5 +. Prng.float prng 0.5))
          beat
      done
  | _ -> ()

let checkpoint_now t pid =
  match Wal.checkpoint t.wals.(pid) (Node.snapshot t.nodes.(pid)) with
  | () -> ()
  | exception Wal.Sync_failed _ -> t.wal_sync_failures <- t.wal_sync_failures + 1

let start_checkpoint_timers t =
  match t.checkpoint_every with
  | None -> ()
  | Some period ->
      let engine = Proc.engine t.sched in
      for pid = 0 to Array.length t.nodes - 1 do
        let rec tick () =
          if (not t.timers_stopped) && Proc.active t.sched then begin
            if not t.crashed.(pid) then checkpoint_now t pid;
            Dsm_sim.Engine.schedule engine ~delay:period tick
          end
        in
        Dsm_sim.Engine.schedule engine ~delay:period tick
      done

let create ~sched ~owner ?(config = Config.default) ?latency ?fault ?reliability ?rpc
    ?detector ?disk ?checkpoint_every ?(seed = 42L) () =
  Config.validate config;
  (match rpc with
  | Some r ->
      if r.timeout <= 0.0 then invalid_arg "Cluster.create: rpc timeout must be positive";
      if r.retries < 0 then invalid_arg "Cluster.create: rpc retries must be >= 0"
  | None -> ());
  (match detector with Some d -> Detector.validate d | None -> ());
  (match checkpoint_every with
  | Some p when p <= 0.0 -> invalid_arg "Cluster.create: checkpoint_every must be positive"
  | _ -> ());
  let processes = Owner.nodes owner in
  let engine = Proc.engine sched in
  let transport =
    match reliability with
    | None -> Direct (Network.create engine ~nodes:processes ?latency ?fault ~seed ())
    | Some rconfig ->
        Framed
          (Reliable.create ~config:rconfig
             (Network.create engine ~nodes:processes ?latency ?fault ~seed ()))
  in
  let nodes = Array.init processes (fun id -> Node.create ~id ~owner ~config) in
  let disk = match disk with Some d -> d | None -> Wal.Disk.create () in
  let detectors =
    (* Failover needs a peer to fail over to. *)
    match detector with
    | Some cfg when processes >= 2 ->
        Some
          (Array.init processes (fun me ->
               Detector.create cfg ~nodes:processes ~me ~now:(Dsm_sim.Engine.now engine)))
    | Some _ | None -> None
  in
  let hb_master = Prng.create (Int64.logxor seed 0x6A09E667F3BCC909L) in
  let t =
    {
      sched;
      transport;
      nodes;
      owner;
      config;
      rpc;
      recorder = History.Recorder.create ~processes;
      pending = Array.init processes (fun _ -> Hashtbl.create 8);
      crashed = Array.make processes false;
      timers_stopped = false;
      timed = [];
      stale_replies = 0;
      dropped_at_crashed = 0;
      rpc_timeouts = 0;
      disk;
      wals = Array.init processes (fun node -> Wal.attach disk ~node);
      detectors;
      detector_config = detector;
      checkpoint_every;
      hb_prngs = Array.init processes (fun _ -> Prng.split hb_master);
      shadow_pending = Array.init processes (fun _ -> Hashtbl.create 8);
      shadow_seq = 0;
      takeovers = 0;
      shadow_degraded = 0;
      shadow_reads = 0;
      redirects = 0;
      wal_sync_failures = 0;
    }
  in
  for me = 0 to processes - 1 do
    let handler ~src msg = handle_message t ~me ~src msg in
    match transport with
    | Direct n -> Network.set_handler n ~node:me handler
    | Framed r -> Reliable.set_handler r ~node:me handler
  done;
  Array.iter (fun node -> start_discard_timer t node) nodes;
  start_heartbeats t;
  start_checkpoint_timers t;
  t

let handle t pid = { cluster = t; node = t.nodes.(pid) }

let handles t = Array.init (Array.length t.nodes) (handle t)

let processes t = Array.length t.nodes

let sched t = t.sched

let net t =
  match t.transport with
  | Direct n -> n
  | Framed _ ->
      invalid_arg
        "Cluster.net: this cluster runs over the reliable transport; use Cluster.reliable, \
         Cluster.messages_total and the Cluster link controls"

let reliable t = match t.transport with Direct _ -> None | Framed r -> Some r

let messages_total t = on_net t { on = (fun n -> Network.lifetime_total n) }

let wire_counters t = on_net t { on = (fun n -> Network.counters n) }

let wire_dropped t = on_net t { on = (fun n -> Network.dropped n) }

let wire_duplicated t = on_net t { on = (fun n -> Network.duplicated n) }

let set_link_down t ~src ~dst down =
  on_net t { on = (fun n -> Network.set_link_down n ~src ~dst down) }

let set_link_fault t ~src ~dst fault =
  on_net t { on = (fun n -> Network.set_link_fault n ~src ~dst fault) }

let retransmissions t =
  match t.transport with Direct _ -> 0 | Framed r -> Reliable.retransmissions r

let stale_replies t = t.stale_replies

let rpc_timeouts t = t.rpc_timeouts

let node t pid = t.nodes.(pid)

let history t = History.Recorder.history t.recorder

let timed_history t = List.rev t.timed

let log_timed t op start_time = t.timed <- (op, start_time, sim_now t) :: t.timed

let stats t = Array.to_list (Array.map Node.stats t.nodes)

let total_stats t = Node_stats.total (stats t)

let shutdown t = t.timers_stopped <- true

(* {1 Failover observability} *)

let disk t = t.disk

let wal t pid = t.wals.(pid)

let takeovers t = t.takeovers

let shadow_degraded t = t.shadow_degraded

let shadow_reads t = t.shadow_reads

let redirects t = t.redirects

let wal_sync_failures t = t.wal_sync_failures

let suspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.suspect_events d) 0 dets

let unsuspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.unsuspect_events d) 0 dets

let suspected_by t pid =
  match t.detectors with None -> [] | Some dets -> Detector.suspected_now dets.(pid)

(* The cluster-wide view: per base, the highest epoch any node has adopted. *)
let view t =
  let n = Array.length t.nodes in
  let best = Array.init n (fun base -> (0, base)) in
  Array.iter
    (fun node ->
      List.iter
        (fun (base, epoch, serving) ->
          let e, _ = best.(base) in
          if epoch > e then best.(base) <- (epoch, serving))
        (Node.view node))
    t.nodes;
  let acc = ref [] in
  for base = n - 1 downto 0 do
    let e, s = best.(base) in
    if e > 0 then acc := (base, e, s) :: !acc
  done;
  !acc

let epoch_of t ~base =
  List.fold_left (fun acc (b, e, _) -> if b = base then e else acc) 0 (view t)

let serving_of t ~base =
  List.fold_left (fun acc (b, _, s) -> if b = base then s else acc) base (view t)

(* Crash-stop failures.  [crash] makes the node deaf (deliveries are
   dropped) and forgets which replies it was waiting for; [restart] brings
   it back by resetting all volatile state and replaying the node's
   write-ahead log, which restores certified writes, view changes and
   shadow copies to the exact pre-crash durable frontier.  Cache-only nodes
   have empty logs, so for them this degenerates to PR 1's cache-discard
   recovery. *)
let crash t pid =
  if t.crashed.(pid) then invalid_arg (Printf.sprintf "Cluster.crash: node %d already down" pid);
  t.crashed.(pid) <- true;
  Hashtbl.reset t.pending.(pid);
  Hashtbl.reset t.shadow_pending.(pid)

let restart t pid =
  if not t.crashed.(pid) then
    invalid_arg (Printf.sprintf "Cluster.restart: node %d is not crashed" pid);
  let node = t.nodes.(pid) in
  Node.reset_volatile node;
  (match t.transport with Direct _ -> () | Framed r -> Reliable.reset_node r pid);
  (match t.detectors with
  | Some dets -> Detector.reset dets.(pid) ~now:(sim_now t)
  | None -> ());
  List.iter (fun record -> Node.apply_record node record) (Wal.replay t.wals.(pid));
  t.crashed.(pid) <- false

let is_crashed t pid = t.crashed.(pid)

let dropped_at_crashed t = t.dropped_at_crashed

let pid h = Node.id h.node

let check_up h =
  let t = h.cluster in
  let me = Node.id h.node in
  if t.crashed.(me) then
    failwith (Printf.sprintf "node %d is crashed: operations are unavailable until restart" me)

(* Round-trip a request and block until its reply arrives.  [route] picks
   the destination afresh for every attempt, so retries follow ownership
   handoffs; a [Stale_epoch] fencing reply teaches this node the newer view
   and re-issues immediately (bounded, and without burning a timeout
   attempt).  With an RPC policy configured, a lost round trip times out and
   is retried with a fresh request tag (the old tag, if its reply ever shows
   up, is discarded as stale); when the attempts are exhausted the operation
   surfaces [Timed_out] instead of blocking forever. *)
let rendezvous h ~op ~loc ~kind ~size ~route make_msg =
  let t = h.cluster in
  let me = Node.id h.node in
  let max_redirects = 2 * Array.length t.nodes in
  let issue ~dst =
    let req = Node.next_req h.node in
    let ivar = Proc.ivar t.sched in
    Hashtbl.replace t.pending.(me) req ivar;
    let epoch = Node.epoch_of h.node ~base:(Node.base_owner_of h.node loc) in
    send_msg t ~src:me ~dst ~kind ~size (make_msg ~req ~epoch);
    (req, ivar)
  in
  (* [Some ()] to redirect (view was updated), [None] to accept the reply. *)
  let stale_redirect reply =
    match (reply : Message.t) with
    | Message.Stale_epoch { base; epoch; serving; _ } ->
        t.redirects <- t.redirects + 1;
        learn_view t ~me ~base ~epoch ~serving;
        true
    | _ -> false
  in
  match t.rpc with
  | None ->
      let rec go redirects =
        let dst = route () in
        let _req, ivar = issue ~dst in
        let reply = Proc.await ivar in
        if stale_redirect reply then
          if redirects >= max_redirects then
            raise (Timed_out { op; loc; requester = me; owner_node = dst; attempts = redirects + 1 })
          else go (redirects + 1)
        else reply
      in
      go 0
  | Some { timeout; retries } ->
      let rec attempt ~redirects n =
        let dst = route () in
        let req, ivar = issue ~dst in
        match Proc.await_timeout ivar ~timeout with
        | Some reply ->
            if stale_redirect reply then
              if redirects >= max_redirects then
                raise (Timed_out { op; loc; requester = me; owner_node = dst; attempts = n + 1 })
              else attempt ~redirects:(redirects + 1) n
            else reply
        | None ->
            Hashtbl.remove t.pending.(me) req;
            t.rpc_timeouts <- t.rpc_timeouts + 1;
            if n < retries then attempt ~redirects (n + 1)
            else
              raise
                (Timed_out { op; loc; requester = me; owner_node = dst; attempts = n + 1 })
      in
      attempt ~redirects:0 0

let read_stamped h loc =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  let stats = Node.stats node in
  let start_time = sim_now t in
  let record_read entry =
    let op =
      History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
        ~value:entry.Stamped.value ~from:entry.Stamped.wid
    in
    log_timed t op start_time;
    entry
  in
  match Node.lookup node loc with
  | Some entry ->
      (* Served or cached: the read completes locally. *)
      stats.Node_stats.read_hits <- stats.Node_stats.read_hits + 1;
      record_read entry
  | None -> (
      (* Read miss: fetch a current copy from the owner and install it,
         invalidating everything causally older (Figure 4, r_i(x)v). *)
      stats.Node_stats.read_misses <- stats.Node_stats.read_misses + 1;
      let me = Node.id node in
      let dst = Node.owner_of node loc in
      let fetch_from_owner () =
        (* Snapshot the clock: if it grows while we are blocked (this node
           certified writes meanwhile), the reply may be stale relative to
           what we now know and must not be retained in the cache. *)
        let vt_at_request = Node.vt node in
        let reply =
          rendezvous h ~op:`Read ~loc ~kind:"READ" ~size:t.config.Config.read_request_size
            ~route:(fun () -> Node.owner_of node loc)
            (fun ~req ~epoch -> Message.Read_req { req; loc; epoch })
        in
        match reply with
        | Message.Read_reply { entry; page; digest; _ } ->
            Node.digest_merge node digest;
            if Vclock.equal vt_at_request (Node.vt node) then
              Node.install_batch node ((loc, entry) :: page)
            else Node.install_transient node ((loc, entry) :: page);
            Node.enforce_capacity node;
            record_read entry
        | _ -> assert false
      in
      if failover_on t && dst <> me && suspected t ~me ~peer:dst then begin
        (* Degraded read during failover: the owner is suspected, so serve
           the backup's shadow copy — the last acknowledged write, a live
           value under Definition 2 — instead of blocking on a dead node.
           The entry is installed transiently: knowledge (clock, digest,
           invalidation) is kept, the value itself is not cached. *)
        let base = Node.base_owner_of node loc in
        match backup_of t ~serving:dst with
        | Some b when b = me ->
            (* This node is the backup: its own shadow is the freshest
               acknowledged copy available anywhere. *)
            let entry =
              match Node.shadow_lookup node ~base loc with
              | Some e -> e
              | None -> Stamped.initial ~processes:(processes t) (t.config.Config.init loc)
            in
            t.shadow_reads <- t.shadow_reads + 1;
            Node.install_transient node [ (loc, entry) ];
            record_read entry
        | Some b -> (
            let reply =
              rendezvous h ~op:`Read ~loc ~kind:"SH_READ"
                ~size:t.config.Config.read_request_size
                ~route:(fun () -> b)
                (fun ~req ~epoch:_ -> Message.Shadow_read_req { req; loc })
            in
            match reply with
            | Message.Shadow_read_reply { entry; _ } ->
                t.shadow_reads <- t.shadow_reads + 1;
                Node.install_transient node [ (loc, entry) ];
                record_read entry
            | _ -> assert false)
        | None -> fetch_from_owner ()
      end
      else fetch_from_owner ())

let read h loc = (read_stamped h loc).Stamped.value

let write_resolved h loc value =
  let t = h.cluster in
  let node = h.node in
  check_up h;
  let stats = Node.stats node in
  let start_time = sim_now t in
  if Node.owns node loc then begin
    let entry = Node.local_write node loc value in
    let me = Node.id node in
    wal_append t me (Wal.Write { loc; entry });
    (* Local writes replicate synchronously too: block until the designated
       backup has the entry (or the grace timer degrades), so a takeover
       preserves read-your-writes for the owner's own operations. *)
    if failover_on t then begin
      match backup_of t ~serving:me with
      | Some backup when not (suspected t ~me ~peer:backup) ->
          let seq = next_shadow_seq t in
          let ivar = Proc.ivar t.sched in
          Hashtbl.replace t.shadow_pending.(me) seq (Shadow_wake ivar);
          send_shadow t ~me ~backup ~base:(Node.base_owner_of node loc) ~seq [ (loc, entry) ];
          arm_shadow_grace t ~me ~seq;
          Proc.await ivar
      | Some _ -> t.shadow_degraded <- t.shadow_degraded + 1
      | None -> ()
    end;
    let op =
      History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value
        ~wid:entry.Stamped.wid
    in
    log_timed t op start_time;
    `Accepted
  end
  else begin
    (* w_i(x)v, non-owner branch: increment, ship to the owner for
       certification, then adopt the owner's clock and entry. *)
    Node.set_vt node (Vclock.increment (Node.vt node) (Node.id node));
    let wid = Node.fresh_wid node in
    let entry = Stamped.make ~value ~stamp:(Node.vt node) ~wid in
    let digest = Node.digest_export node in
    let reply =
      rendezvous h ~op:`Write ~loc ~kind:"WRITE"
        ~size:(entry_wire_size t 1 + digest_wire_size t digest)
        ~route:(fun () -> Node.owner_of node loc)
        (fun ~req ~epoch -> Message.Write_req { req; loc; entry; digest; epoch })
    in
    match reply with
    | Message.Write_reply { accepted; entry = stored; digest; _ } ->
        (* Figure 4 performs no invalidation on the writer's reply path;
           the digest is still merged so later introductions act on it. *)
        Node.digest_merge node digest;
        Node.adopt_write_reply node loc stored;
        Node.enforce_capacity node;
        stats.Node_stats.writes_remote <- stats.Node_stats.writes_remote + 1;
        let op = History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value ~wid in
        log_timed t op start_time;
        if accepted then `Accepted
        else begin
          stats.Node_stats.writes_rejected <- stats.Node_stats.writes_rejected + 1;
          `Rejected
        end
    | _ -> assert false
  end

let write h loc value = ignore (write_resolved h loc value)

let read_result h loc =
  match read_stamped h loc with
  | entry -> Ok entry.Stamped.value
  | exception Timed_out info -> Error info

let write_result h loc value =
  match write_resolved h loc value with
  | outcome -> Ok outcome
  | exception Timed_out info -> Error info

let discard h = ignore (Node.discard_all h.node)

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Node.processes h.node

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  let refresh h loc = ignore (Node.discard_one h.node loc)
end
