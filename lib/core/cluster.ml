module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network

type t = {
  sched : Proc.sched;
  net : Message.t Network.t;
  nodes : Node.t array;
  owner : Owner.t;
  config : Config.t;
  recorder : History.Recorder.t;
  pending : (int, Message.t Proc.ivar) Hashtbl.t array;
  mutable timers_stopped : bool;
  mutable timed : (Dsm_memory.Op.t * float * float) list; (* newest first *)
}

type handle = { cluster : t; node : Node.t }

let entry_wire_size t (count : int) =
  count * t.config.Config.entry_size (Owner.nodes t.owner)

let digest_wire_size t digest =
  Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)

(* The owner-side services of Figure 4.  These run atomically as delivery
   events; replies go back over the same reliable FIFO transport. *)
let handle_message t ~me ~src msg =
  let node = t.nodes.(me) in
  match (msg : Message.t) with
  | Message.Read_req { req; loc } ->
      let entry =
        match Node.lookup node loc with
        | Some e -> e
        | None ->
            failwith
              (Printf.sprintf "node %d received READ for %s it does not own" me
                 (Loc.to_string loc))
      in
      let page = Node.page_entries node loc in
      let digest = Node.digest_export node in
      Network.send t.net ~src:me ~dst:src ~kind:"R_REPLY"
        ~size:(entry_wire_size t (1 + List.length page) + digest_wire_size t digest)
        (Message.Read_reply { req; loc; entry; page; digest })
  | Message.Write_req { req; loc; entry; digest } ->
      Node.digest_merge node digest;
      let accepted = ref false in
      let stored = Node.certify_write node loc entry ~accepted in
      let digest = Node.digest_export node in
      Network.send t.net ~src:me ~dst:src ~kind:"W_REPLY"
        ~size:(entry_wire_size t 1 + digest_wire_size t digest)
        (Message.Write_reply { req; loc; accepted = !accepted; entry = stored; digest })
  | Message.Read_reply { req; _ } | Message.Write_reply { req; _ } -> (
      match Hashtbl.find_opt t.pending.(me) req with
      | Some ivar ->
          Hashtbl.remove t.pending.(me) req;
          Proc.fill ivar msg
      | None -> failwith (Printf.sprintf "node %d: reply for unknown request %d" me req))

let start_discard_timer t node =
  match (Node.config node).Config.discard with
  | Config.No_discard | Config.Capacity _ -> ()
  | Config.Periodic period ->
      let engine = Proc.engine t.sched in
      let rec tick () =
        if not t.timers_stopped then begin
          ignore (Node.discard_all node);
          Dsm_sim.Engine.schedule engine ~delay:period tick
        end
      in
      Dsm_sim.Engine.schedule engine ~delay:period tick

let create ~sched ~owner ?(config = Config.default) ?latency ?(seed = 42L) () =
  Config.validate config;
  let processes = Owner.nodes owner in
  let engine = Proc.engine sched in
  let net = Network.create engine ~nodes:processes ?latency ~seed () in
  let nodes = Array.init processes (fun id -> Node.create ~id ~owner ~config) in
  let t =
    {
      sched;
      net;
      nodes;
      owner;
      config;
      recorder = History.Recorder.create ~processes;
      pending = Array.init processes (fun _ -> Hashtbl.create 8);
      timers_stopped = false;
      timed = [];
    }
  in
  for me = 0 to processes - 1 do
    Network.set_handler net ~node:me (fun ~src msg -> handle_message t ~me ~src msg)
  done;
  Array.iter (fun node -> start_discard_timer t node) nodes;
  t

let handle t pid = { cluster = t; node = t.nodes.(pid) }

let handles t = Array.init (Array.length t.nodes) (handle t)

let processes t = Array.length t.nodes

let sched t = t.sched

let net t = t.net

let node t pid = t.nodes.(pid)

let history t = History.Recorder.history t.recorder

let timed_history t = List.rev t.timed

let sim_now t = Dsm_sim.Engine.now (Proc.engine t.sched)

let log_timed t op start_time = t.timed <- (op, start_time, sim_now t) :: t.timed

let stats t = Array.to_list (Array.map Node.stats t.nodes)

let total_stats t = Node_stats.total (stats t)

let shutdown t = t.timers_stopped <- true

let pid h = Node.id h.node

(* Round-trip a request to [dst] and block until its reply arrives. *)
let rendezvous h ~dst ~kind ~size make_msg =
  let t = h.cluster in
  let me = Node.id h.node in
  let req = Node.next_req h.node in
  let ivar = Proc.ivar t.sched in
  Hashtbl.replace t.pending.(me) req ivar;
  Network.send t.net ~src:me ~dst ~kind ~size (make_msg req);
  Proc.await ivar

let read_stamped h loc =
  let t = h.cluster in
  let node = h.node in
  let stats = Node.stats node in
  let start_time = sim_now t in
  match Node.lookup node loc with
  | Some entry ->
      (* Owned or cached: the read completes locally. *)
      stats.Node_stats.read_hits <- stats.Node_stats.read_hits + 1;
      let op =
        History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
          ~value:entry.Stamped.value ~from:entry.Stamped.wid
      in
      log_timed t op start_time;
      entry
  | None -> (
      (* Read miss: fetch a current copy from the owner and install it,
         invalidating everything causally older (Figure 4, r_i(x)v). *)
      stats.Node_stats.read_misses <- stats.Node_stats.read_misses + 1;
      let dst = Node.owner_of node loc in
      (* Snapshot the clock: if it grows while we are blocked (this node
         certified writes meanwhile), the reply may be stale relative to
         what we now know and must not be retained in the cache. *)
      let vt_at_request = Node.vt node in
      let reply =
        rendezvous h ~dst ~kind:"READ" ~size:t.config.Config.read_request_size (fun req ->
            Message.Read_req { req; loc })
      in
      match reply with
      | Message.Read_reply { entry; page; digest; _ } ->
          Node.digest_merge node digest;
          if Vclock.equal vt_at_request (Node.vt node) then
            Node.install_batch node ((loc, entry) :: page)
          else Node.install_transient node ((loc, entry) :: page);
          Node.enforce_capacity node;
          let op =
            History.Recorder.record_read t.recorder ~pid:(Node.id node) ~loc
              ~value:entry.Stamped.value ~from:entry.Stamped.wid
          in
          log_timed t op start_time;
          entry
      | Message.Read_req _ | Message.Write_req _ | Message.Write_reply _ ->
          assert false)

let read h loc = (read_stamped h loc).Stamped.value

let write_resolved h loc value =
  let t = h.cluster in
  let node = h.node in
  let stats = Node.stats node in
  let start_time = sim_now t in
  if Node.owns node loc then begin
    let entry = Node.local_write node loc value in
    let op =
      History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value
        ~wid:entry.Stamped.wid
    in
    log_timed t op start_time;
    `Accepted
  end
  else begin
    (* w_i(x)v, non-owner branch: increment, ship to the owner for
       certification, then adopt the owner's clock and entry. *)
    Node.set_vt node (Vclock.increment (Node.vt node) (Node.id node));
    let wid = Node.fresh_wid node in
    let entry = Stamped.make ~value ~stamp:(Node.vt node) ~wid in
    let digest = Node.digest_export node in
    let reply =
      rendezvous h ~dst:(Node.owner_of node loc) ~kind:"WRITE"
        ~size:(entry_wire_size t 1 + digest_wire_size t digest)
        (fun req -> Message.Write_req { req; loc; entry; digest })
    in
    match reply with
    | Message.Write_reply { accepted; entry = stored; digest; _ } ->
        (* Figure 4 performs no invalidation on the writer's reply path;
           the digest is still merged so later introductions act on it. *)
        Node.digest_merge node digest;
        Node.adopt_write_reply node loc stored;
        Node.enforce_capacity node;
        stats.Node_stats.writes_remote <- stats.Node_stats.writes_remote + 1;
        let op = History.Recorder.record_write t.recorder ~pid:(Node.id node) ~loc ~value ~wid in
        log_timed t op start_time;
        if accepted then `Accepted
        else begin
          stats.Node_stats.writes_rejected <- stats.Node_stats.writes_rejected + 1;
          `Rejected
        end
    | Message.Read_req _ | Message.Write_req _ | Message.Read_reply _ -> assert false
  end

let write h loc value = ignore (write_resolved h loc value)

let discard h = ignore (Node.discard_all h.node)

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Node.processes h.node

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  let refresh h loc = ignore (Node.discard_one h.node loc)
end
