(** The flattened Figure-4 data path: the owner-write / certify /
    install-remote / adopt services of the causal-memory protocol over
    preallocated flat [int] arenas, allocation-free after {!create}.

    This is the data plane twin of {!Node} under the default configuration
    (Coarse invalidation, no mutation): same clock-merge order, same
    certification verdicts, same invalidate-older rule — property tests pin
    the agreement step for step.  Locations are dense ids from a
    {!Dsm_memory.Loc.Interner}; values are plain ints (the data plane
    carries machine words, the structured {!Dsm_memory.Value} stays in the
    control plane).  Results of each operation are exposed through [last_*]
    out-fields indexed by the acting node instead of returned records; read
    them before that node's next step.

    Every mutable cell is indexed by the acting node, so shards that
    partition the nodes (see {!Dsm_sim.Par_engine}) may run services
    concurrently from several domains with no synchronisation beyond their
    own message barriers — provided no two domains act as the same node
    and stamp windows passed in are domain-local.

    Control-plane machinery (failover epochs, quorum fencing, shadows,
    checkpoints, sharding, tracing) is deliberately absent — that traffic
    runs at failure timescales through {!Protocol.step}. *)

type t

type policy = Lww  (** {!Policy.Last_writer_wins} *) | Owner_favored

val create :
  ?policy:policy -> ?init_value:int -> nodes:int -> locs:int -> owner:int array -> unit -> t
(** [owner.(loc)] is the owning node of each interned location id.  All
    arenas are sized here; no later operation allocates.  Owned locations
    start present with [init_value], a zero stamp, and the virtual initial
    wid, as {!Node.lookup} materialises them. *)

val nodes : t -> int

val locations : t -> int

val owner_of : t -> int -> int

(** {1 The Figure-4 services}

    [stamp]/[stamp_off] arguments are windows of [nodes t] ints in any
    arena (a message buffer, another node's clock row, this state's own
    {!stamp_arena}).  For {!certify} the window must not alias the
    certifying node's own clock row — the merge runs first and would
    corrupt the comparison. *)

val owner_write : t -> node:int -> loc:int -> value:int -> unit
(** {!Node.local_write}: bump own clock component, store under the updated
    clock with a fresh wid.  No invalidation pass. *)

val certify :
  t ->
  node:int ->
  loc:int ->
  value:int ->
  wid_node:int ->
  wid_seq:int ->
  stamp:int array ->
  stamp_off:int ->
  unit
(** {!Node.certify_write}: merge the incoming writestamp into the owner's
    clock, resolve against the current entry (After accepts, Before/Equal
    rejects, Concurrent goes to policy), store accepted writes under the
    merged clock, and run the invalidate-older pass against it.  A
    duplicate wid (RPC retry) is idempotently accepted.  [last_accepted t]
    is the W_REPLY verdict; the [last_*] fields carry the surviving entry
    either way. *)

val install_remote :
  t ->
  node:int ->
  loc:int ->
  value:int ->
  wid_node:int ->
  wid_seq:int ->
  stamp:int array ->
  stamp_off:int ->
  unit
(** {!Node.install_remote}: R_REPLY at the client — merge the entry's
    stamp, cache the copy, invalidate cached entries strictly older than
    it. *)

val adopt_write_reply :
  t ->
  node:int ->
  loc:int ->
  value:int ->
  wid_node:int ->
  wid_seq:int ->
  stamp:int array ->
  stamp_off:int ->
  unit
(** {!Node.adopt_write_reply}: W_REPLY at the client — merge and cache the
    certified entry; no invalidation pass. *)

val read : t -> node:int -> loc:int -> unit
(** Local read into the [last_*] fields: [last_accepted] is the hit flag; a
    miss reports [init_value] under the initial wid and changes nothing. *)

val cached_hit : t -> node:int -> loc:int -> bool

val fresh_seq : t -> node:int -> int
(** Next write sequence number for wids minted outside {!owner_write} (the
    remote-write path); shares the counter with {!owner_write} so a node's
    wids stay unique. *)

val entry_value : t -> node:int -> loc:int -> int
(** Raw entry fields, allocation-free; meaningful only when the entry is
    present ({!cached_hit}). *)

val entry_wid_node : t -> node:int -> loc:int -> int

val entry_wid_seq : t -> node:int -> loc:int -> int

(** {1 Completion out-fields} — per acting node. *)

val last_accepted : t -> node:int -> bool

val last_value : t -> node:int -> int

val last_wid_node : t -> node:int -> int
(** [-1] is the virtual initial write, as {!Dsm_memory.Wid.initial}. *)

val last_wid_seq : t -> node:int -> int

(** {1 Observers} — setup/verification-time; these may allocate. *)

val clock_of : t -> int -> int array
(** Copy of a node's vector clock. *)

val clock_arena : t -> int array
(** The live clock arena; node [i]'s clock is the window at
    [clock_off t i].  Exposed so workloads can pass a writer's own clock
    row as the [stamp] of a {!certify} without copying. *)

val clock_off : t -> int -> int

val stamp_arena : t -> int array
(** The live per-entry writestamp arena; entry windows at {!entry_off}. *)

val entry_off : t -> node:int -> loc:int -> int

val entry_view : t -> node:int -> loc:int -> (int * int array * int * int) option
(** [(value, stamp copy, wid_node, wid_seq)] of a present entry. *)

val cached_count : t -> int -> int
(** How many non-owned locations the node currently caches. *)

val digest : t -> int
(** Structural fingerprint of clocks plus every present entry; equal
    digests mean equal memories.  The determinism tests compare runs
    (notably across domain counts) through this. *)

type counters = {
  writes_owned : int;
  writes_certified : int;
  writes_rejected : int;
  invalidations : int;
  installs : int;
  read_hits : int;
  read_misses : int;
}

val counters : t -> counters
