(** A value-writestamp pair, the unit the protocol stores and ships.

    Section 3.1: "each location x in a processor's local memory M_i contains
    a value-writestamp pair M_i[x] = (v, VT)".  We additionally carry the
    write identity so recorded histories have an explicit reads-from
    relation. *)

type t = { value : Dsm_memory.Value.t; stamp : Vclock.t; wid : Dsm_memory.Wid.t }

val make : value:Dsm_memory.Value.t -> stamp:Vclock.t -> wid:Dsm_memory.Wid.t -> t

val initial : processes:int -> Dsm_memory.Value.t -> t
(** The virtual initial write: zero stamp, initial write identity. *)

val newer_than : t -> t -> bool
(** [newer_than a b] iff [b.stamp < a.stamp]: [a] causally overwrites [b]. *)

val concurrent : t -> t -> bool

val pp : Format.formatter -> t -> unit
