type config = { period : float; suspect_after : int }

let default_config = { period = 25.0; suspect_after = 3 }

let validate c =
  if c.period <= 0.0 then invalid_arg "Detector: period must be positive";
  if c.suspect_after < 1 then invalid_arg "Detector: suspect_after must be >= 1"

type t = {
  me : int;
  config : config;
  last_heard : float array;
  is_suspected : bool array;
  (* Scoped monitoring (partial replication): only watched peers are ever
     suspected.  Everyone is watched by default; sharding narrows the mask
     to the node's share-set peers — silence from a node it never
     exchanges traffic with is not evidence of anything. *)
  watched : bool array;
  mutable suspect_events : int;
  mutable unsuspect_events : int;
}

let create config ~nodes ~me ~now =
  validate config;
  if nodes < 1 then invalid_arg "Detector.create: nodes must be >= 1";
  if me < 0 || me >= nodes then invalid_arg "Detector.create: me out of range";
  {
    me;
    config;
    last_heard = Array.make nodes now;
    is_suspected = Array.make nodes false;
    watched = Array.make nodes true;
    suspect_events = 0;
    unsuspect_events = 0;
  }

let set_watched t ~peer watched =
  if peer < 0 || peer >= Array.length t.watched then
    invalid_arg "Detector.set_watched: peer out of range";
  t.watched.(peer) <- watched;
  if (not watched) && t.is_suspected.(peer) then t.is_suspected.(peer) <- false

let watched t ~peer = t.watched.(peer)

let heard t ~peer ~now =
  t.last_heard.(peer) <- Float.max t.last_heard.(peer) now;
  if t.is_suspected.(peer) then begin
    t.is_suspected.(peer) <- false;
    t.unsuspect_events <- t.unsuspect_events + 1;
    true
  end
  else false

let silence_limit t = float_of_int t.config.suspect_after *. t.config.period

let tick t ~now =
  let newly = ref [] in
  for peer = Array.length t.last_heard - 1 downto 0 do
    if
      peer <> t.me
      && t.watched.(peer)
      && (not t.is_suspected.(peer))
      && now -. t.last_heard.(peer) > silence_limit t
    then begin
      t.is_suspected.(peer) <- true;
      t.suspect_events <- t.suspect_events + 1;
      newly := peer :: !newly
    end
  done;
  !newly

let reset t ~now =
  (* A node heard nothing while it was down; without this, its first tick
     after a restart would suspect every peer at once (and promote itself
     for bases it merely failed to hear about). *)
  Array.fill t.last_heard 0 (Array.length t.last_heard) now;
  Array.fill t.is_suspected 0 (Array.length t.is_suspected) false

let stale t ~peer ~now =
  t.is_suspected.(peer) || now -. t.last_heard.(peer) > silence_limit t

let suspected t peer = t.is_suspected.(peer)

let suspected_now t =
  let acc = ref [] in
  for peer = Array.length t.is_suspected - 1 downto 0 do
    if t.is_suspected.(peer) then acc := peer :: !acc
  done;
  !acc

let suspect_events t = t.suspect_events

let unsuspect_events t = t.unsuspect_events
