module Loc = Dsm_memory.Loc

type entry = { stamp : Vclock.t; wid : Dsm_memory.Wid.t }

type t = entry Loc.Table.t

let create () = Loc.Table.create 32

let reset t = Loc.Table.reset t

let find t loc = Loc.Table.find_opt t loc

let observe t loc (incoming : entry) =
  match Loc.Table.find_opt t loc with
  | None -> Loc.Table.replace t loc incoming
  | Some current -> (
      match Vclock.compare_vt incoming.stamp current.stamp with
      | Vclock.After -> Loc.Table.replace t loc incoming
      | Vclock.Before | Vclock.Equal -> ()
      | Vclock.Concurrent ->
          (* Keep a single safe upper bound: the merged stamp with the
             deterministically larger identity (ties cannot matter for the
             "is there a newer write than mine" test, which only compares
             stamps). *)
          let stamp = Vclock.update current.stamp incoming.stamp in
          let wid =
            if Dsm_memory.Wid.compare incoming.wid current.wid > 0 then incoming.wid
            else current.wid
          in
          Loc.Table.replace t loc { stamp; wid })

let merge t entries = List.iter (fun (loc, entry) -> observe t loc entry) entries

let export t = Loc.Table.fold (fun loc entry acc -> (loc, entry) :: acc) t []

let size t = Loc.Table.length t

let wire_size entries ~dim = List.length entries * (dim + 2)
