module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid
module Value = Dsm_memory.Value

type body =
  | Send of { src : int; dst : int; kind : string; size : int }
  | Deliver of { src : int; dst : int; kind : string }
  | Drop of { src : int; dst : int; kind : string }
  | Duplicate of { src : int; dst : int; kind : string }
  | Apply of { node : int; loc : Loc.t; wid : Wid.t }
  | Invalidate of { node : int; loc : Loc.t; wid : Wid.t }
  | Certify of { node : int; loc : Loc.t; wid : Wid.t; accepted : bool }
  | Wal_append of { node : int; kind : string }
  | Suspect of { node : int; peer : int }
  | Unsuspect of { node : int; peer : int }
  | Promote of { node : int; base : int; epoch : int }
  | Demote of { node : int; base : int; serving : int }
  | Adopt_view of { node : int; base : int; epoch : int; serving : int }
  | Shadow_degraded of { node : int; seq : int }
  | Degraded of { node : int; reachable : int; quorum : int }
  | Partition_healed of { node : int; reachable : int }
  | Vote_granted of { node : int; candidate : int; base : int; epoch : int }
  | Crash of { node : int }
  | Restart of { node : int; replayed : int }
  | Checkpoint_taken of { node : int; round : int }
  | Recovery_line of { node : int; round : int }
  | Op_read of { node : int; loc : Loc.t; value : Value.t; from : Wid.t }
  | Op_write of { node : int; loc : Loc.t; value : Value.t; wid : Wid.t }
  | Op_query of { node : int; obj : string; ret : string }
  | Violation of { node : int; reason : string }

type event = { seq : int; time : float; clock : Vclock.t option; body : body }

type t = {
  record : bool;
  mutable subscribers : (event -> unit) list;  (* reversed subscription order *)
  mutable recorded : event list;  (* newest first *)
  mutable count : int;
}

let create ?(record = true) () = { record; subscribers = []; recorded = []; count = 0 }

let subscribe t f = t.subscribers <- f :: t.subscribers

let emit t ~time ?clock body =
  let ev = { seq = t.count; time; clock; body } in
  t.count <- t.count + 1;
  if t.record then t.recorded <- ev :: t.recorded;
  (* Subscribers run in subscription order. *)
  List.iter (fun f -> f ev) (List.rev t.subscribers)

let events t = List.rev t.recorded

let count t = t.count

let kind = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Duplicate _ -> "duplicate"
  | Apply _ -> "apply"
  | Invalidate _ -> "invalidate"
  | Certify _ -> "certify"
  | Wal_append _ -> "wal"
  | Suspect _ -> "suspect"
  | Unsuspect _ -> "unsuspect"
  | Promote _ -> "promote"
  | Demote _ -> "demote"
  | Adopt_view _ -> "adopt_view"
  | Shadow_degraded _ -> "degraded"
  | Degraded _ -> "partition_degraded"
  | Partition_healed _ -> "partition_healed"
  | Vote_granted _ -> "vote"
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Checkpoint_taken _ -> "checkpoint"
  | Recovery_line _ -> "recovery_line"
  | Op_read _ -> "read"
  | Op_write _ -> "write"
  | Op_query _ -> "query"
  | Violation _ -> "violation"

let actor = function
  | Send { src; _ } -> Some src
  | Deliver { dst; _ } | Duplicate { dst; _ } -> Some dst
  | Drop _ -> None
  | Apply { node; _ } | Invalidate { node; _ } | Certify { node; _ } | Wal_append { node; _ }
  | Suspect { node; _ } | Unsuspect { node; _ } | Promote { node; _ } | Demote { node; _ }
  | Adopt_view { node; _ } | Shadow_degraded { node; _ } | Degraded { node; _ }
  | Partition_healed { node; _ } | Vote_granted { node; _ }
  | Crash { node } | Restart { node; _ }
  | Checkpoint_taken { node; _ } | Recovery_line { node; _ }
  | Op_read { node; _ } | Op_write { node; _ } | Op_query { node; _ }
  | Violation { node; _ } ->
      Some node

let milestone = function
  | Suspect _ | Unsuspect _ | Promote _ | Demote _ | Adopt_view _ | Crash _ | Restart _
  | Recovery_line _ | Degraded _ | Partition_healed _ | Op_read _ | Op_write _ | Op_query _
  | Violation _ ->
      true
  | Send _ | Deliver _ | Drop _ | Duplicate _ | Apply _ | Invalidate _ | Certify _
  | Wal_append _ | Shadow_degraded _ | Vote_granted _ | Checkpoint_taken _ ->
      false

(* Minimal JSON: every string we embed is an identifier-like token (message
   kinds, location names, value renderings), but escape defensively anyway. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let body_fields = function
  | Send { src; dst; kind; size } ->
      [ ("src", string_of_int src); ("dst", string_of_int dst); ("kind", json_string kind);
        ("size", string_of_int size) ]
  | Deliver { src; dst; kind } | Drop { src; dst; kind } | Duplicate { src; dst; kind } ->
      [ ("src", string_of_int src); ("dst", string_of_int dst); ("kind", json_string kind) ]
  | Apply { node; loc; wid } | Invalidate { node; loc; wid } ->
      [ ("node", string_of_int node); ("loc", json_string (Loc.to_string loc));
        ("wid", json_string (Wid.to_string wid)) ]
  | Certify { node; loc; wid; accepted } ->
      [ ("node", string_of_int node); ("loc", json_string (Loc.to_string loc));
        ("wid", json_string (Wid.to_string wid)); ("accepted", string_of_bool accepted) ]
  | Wal_append { node; kind } ->
      [ ("node", string_of_int node); ("kind", json_string kind) ]
  | Suspect { node; peer } | Unsuspect { node; peer } ->
      [ ("node", string_of_int node); ("peer", string_of_int peer) ]
  | Promote { node; base; epoch } ->
      [ ("node", string_of_int node); ("base", string_of_int base);
        ("epoch", string_of_int epoch) ]
  | Demote { node; base; serving } ->
      [ ("node", string_of_int node); ("base", string_of_int base);
        ("serving", string_of_int serving) ]
  | Adopt_view { node; base; epoch; serving } ->
      [ ("node", string_of_int node); ("base", string_of_int base);
        ("epoch", string_of_int epoch); ("serving", string_of_int serving) ]
  | Shadow_degraded { node; seq } ->
      [ ("node", string_of_int node); ("seq", string_of_int seq) ]
  | Degraded { node; reachable; quorum } ->
      [ ("node", string_of_int node); ("reachable", string_of_int reachable);
        ("quorum", string_of_int quorum) ]
  | Partition_healed { node; reachable } ->
      [ ("node", string_of_int node); ("reachable", string_of_int reachable) ]
  | Vote_granted { node; candidate; base; epoch } ->
      [ ("node", string_of_int node); ("candidate", string_of_int candidate);
        ("base", string_of_int base); ("epoch", string_of_int epoch) ]
  | Crash { node } -> [ ("node", string_of_int node) ]
  | Restart { node; replayed } ->
      [ ("node", string_of_int node); ("replayed", string_of_int replayed) ]
  | Checkpoint_taken { node; round } | Recovery_line { node; round } ->
      [ ("node", string_of_int node); ("round", string_of_int round) ]
  | Op_read { node; loc; value; from } ->
      [ ("node", string_of_int node); ("loc", json_string (Loc.to_string loc));
        ("value", json_string (Value.to_string value));
        ("from", json_string (Wid.to_string from)) ]
  | Op_write { node; loc; value; wid } ->
      [ ("node", string_of_int node); ("loc", json_string (Loc.to_string loc));
        ("value", json_string (Value.to_string value));
        ("wid", json_string (Wid.to_string wid)) ]
  | Op_query { node; obj; ret } ->
      [ ("node", string_of_int node); ("obj", json_string obj); ("ret", json_string ret) ]
  | Violation { node; reason } ->
      [ ("node", string_of_int node); ("reason", json_string reason) ]

let to_json ev =
  let fields =
    [ ("seq", string_of_int ev.seq); ("t", Printf.sprintf "%.3f" ev.time);
      ("ev", json_string (kind ev.body)) ]
    @ body_fields ev.body
    @ (match ev.clock with
      | None -> []
      | Some vt ->
          [ ("vt",
             "["
             ^ String.concat "," (List.map string_of_int (Array.to_list (Vclock.to_array vt)))
             ^ "]" ) ])
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let pp_body ppf body =
  Format.fprintf ppf "%s{%s}" (kind body)
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) (body_fields body)))

let pp_event ppf ev = Format.fprintf ppf "[%.3f] #%d %a" ev.time ev.seq pp_body ev.body
