(** The pure protocol core: every server-side decision of the causal DSM,
    with no effects.

    [step state event] consumes one input — a message delivery, a
    heartbeat tick, a grace-timer expiry, an owner-local write, a crash or
    a restart — mutates the protocol state in place, and returns the list
    of {!action}s the caller must perform, in order.  The core never
    touches the network, the scheduler, the clock or the disk: it does not
    know they exist.  Everything observable it wants done comes back as
    data, so the same state and the same event sequence always produce the
    same action sequences — the determinism the replay test and the golden
    traces rely on (see test/test_protocol.ml).

    The effect shell around it is {!Cluster}: it feeds deliveries from the
    transport handlers, timer expiries from the simulation engine, and
    interprets actions as [Network]/[Reliable] sends, [Wal] appends,
    engine-scheduled grace timers and [Proc] ivar fills.  The shell also
    keeps everything that is inherently effectful or per-request: the
    pending-reply ivars, the RPC retry loops, the blocked-writer ivars.

    What lives here (the Figure-4 service plus the failover machinery):
    - READ/WRITE service with epoch fencing ([Stale_epoch]);
    - write certification, invalidation and the digest bookkeeping (via
      {!Node});
    - shadow replication of certified writes to the ring-successor backup,
      with the grace-timer degrade;
    - heartbeat gossip, failure suspicion ({!Detector}) and ownership
      takeover, quorum-gated: a suspecting backup canvasses for ⌊n/2⌋+1
      OWNER_VOTE grants (its own included) before promoting, so a
      minority-side backup can never take over during a partition;
    - partition degradation: an owner that can reach fewer than ⌊n/2⌋+1
      nodes drops to read-only degraded mode (writes silently refused,
      reads still Definition-2 safe) until quorum contact returns
      ([Partition_healed]); on demotion it ships its served frontier to
      the new server ([FRONTIER]), which merges it newest-wins;
    - crash-stop semantics (a down node drops deliveries) and restart by
      log replay;
    - partial replication (see PROTOCOL.md, "Partial replication &
      sharding"): when created with a {!Dsm_memory.Shard} layout,
      invalidation digests ship only to each location's subscribers, wire
      writestamps are priced at share-set width, takeover/vote/heartbeat
      traffic and the quorum arithmetic scope to the shard's ring, and
      {!event.Subscribe}/{!event.Unsubscribe} grow and shrink share-sets at
      runtime with a causally safe catch-up transfer ([SUB_REQ] /
      [SUB_REPLY]).  Without a layout every fan-out below is cluster-wide
      and behavior is bit-identical to the unsharded protocol. *)

(** What a certified write's shadow acknowledgement (or its grace-timer
    degrade) completes: a deferred [W_REPLY] for a remote writer, or a
    blocked local writer identified by a shell-allocated token. *)
type completion =
  | Reply of { dst : int; kind : string; size : int; msg : Message.t }
  | Writer of int

type event =
  | Deliver of { dst : int; src : int; now : float; msg : Message.t }
      (** the transport delivered [msg] from [src] at node [dst] *)
  | Hb_tick of { node : int; now : float }
      (** [node]'s heartbeat timer fired: gossip the view, re-evaluate the
          failure detector, hand off ownership from newly suspected peers *)
  | Grace_expired of { node : int; seq : int }
      (** the shadow-replication grace timer for [seq] fired *)
  | Owner_write of { node : int; loc : Dsm_memory.Loc.t; value : Dsm_memory.Value.t; writer : int }
      (** [node] writes a location it serves; [writer] is the shell's token
          for the blocked writing process *)
  | Learn_view of { node : int; base : int; epoch : int; serving : int }
      (** [node] learned a view entry outside a delivery (a [Stale_epoch]
          reply consumed by the shell's RPC loop) *)
  | Crash of { node : int }
  | Restart of { node : int; now : float; records : Log_record.t list }
      (** [records] is the node's replayed write-ahead log, in log order *)
  | Begin_checkpoint of { node : int }
      (** [node] initiates a coordinated checkpoint round: it snapshots
          itself ([Take_checkpoint]) and floods [Cp_marker]s; each first
          marker receipt snapshots the receiver before any later traffic on
          the same FIFO link, so the per-node snapshots form a consistent
          recovery line (PROTOCOL.md, "Checkpointing & recovery").  Ignored
          at a crashed node. *)
  | Subscribe of { node : int; shard : int }
      (** [node] joins [shard]'s share-set: it starts receiving the shard's
          invalidation digests and asks each of the shard's serving nodes
          for a catch-up transfer ([SUB_REQ]) so its clock covers every
          write it could be told about indirectly.  No-op without sharding,
          at a crashed node, for an out-of-range shard, or if already
          subscribed (ring members are born subscribed). *)
  | Unsubscribe of { node : int; shard : int }
      (** [node] leaves [shard]'s share-set and drops its cached copies of
          the shard's locations (their invalidation metadata will no longer
          arrive).  Ring members cannot leave — the shard's quorum
          arithmetic depends on them. *)

type action =
  | Send of { src : int; dst : int; kind : string; size : int; msg : Message.t }
  | Client_reply of { node : int; req : int; msg : Message.t }
      (** hand a reply to the process of [node] waiting on request tag
          [req]; if nobody is waiting the shell counts it stale *)
  | Wake_writer of { node : int; writer : int }
      (** unblock the local writer identified by [writer] (idempotent) *)
  | Append of { node : int; record : Log_record.t }
      (** append to [node]'s write-ahead log {e before} performing any
          action that follows in the list — durability orders the reply *)
  | Arm_grace of { node : int; seq : int }
      (** start the shadow grace timer; feed {!Grace_expired} when it fires *)
  | Local_write_done of { node : int; entry : Stamped.t }
      (** the certified entry of an {!Owner_write} (always precedes the
          completion of its [writer]) *)
  | Take_checkpoint of { node : int; round : int }
      (** snapshot [node]'s state onto stable storage {e now}, before any
          later event runs at it — the shell checkpoints the node's WAL and
          may then compact it *)
  | Emit of Trace.body
      (** publish on the event bus (only produced while tracing is on) *)

type state

val create :
  owner:Dsm_memory.Owner.t ->
  config:Config.t ->
  ?detector:Detector.config ->
  ?sharding:Dsm_memory.Shard.t ->
  now:float ->
  unit ->
  state
(** Fresh protocol state.  A detector config enables failover when the
    cluster has at least two nodes (a lone node has nobody to fail over
    to); [now] seeds the detectors' heard-from times.  A [sharding] layout
    (which must agree with [owner] on the cluster size) switches on partial
    replication; omitting it keeps the legacy full-replication behavior
    bit-identical. *)

val step : state -> event -> state * action list
(** The transition function.  The returned state is physically the input
    state (mutated in place); it is returned so consumers can thread it
    functionally.  Actions must be performed in list order. *)

val set_tracing : state -> bool -> unit
(** Toggle [Emit] production.  Off (the default) costs nothing. *)

(** {1 Read-only accessors the shell and tests use} *)

val processes : state -> int

val node : state -> int -> Node.t

val is_crashed : state -> int -> bool

val failover_on : state -> bool

val quorum : state -> int
(** ⌊n/2⌋+1 over the whole cluster — the legacy electorate. *)

val quorum_for : state -> base:int -> int
(** The grants a takeover of [base] needs and the reachability its owner
    needs to keep serving writes: a majority of [base]'s shard ring under
    sharding, {!quorum} otherwise. *)

val sharding : state -> Dsm_memory.Shard.t option

val subscriptions : state -> (int * int list) list
(** Per shard, the current subscribers ascending — [[]] without sharding.
    Exposed so the model checker can fingerprint the share-set state. *)

val suspected : state -> me:int -> peer:int -> bool

val backup_of : state -> serving:int -> int option
(** The designated backup of whatever [serving] certifies: its ring
    successor; [None] in a single-node cluster. *)

val view : state -> (int * int * int) list
(** Cluster-wide view: per base with any takeover, the highest epoch any
    node has adopted, as [(base, epoch, serving)] ascending by base. *)

val dropped_at_crashed : state -> int

val takeovers : state -> int

val shadow_degraded : state -> int

val partition_degraded : state -> int -> bool
(** Whether one node is currently in read-only degraded mode. *)

val votes_granted : state -> int
(** OWNER_VOTE grants sent, cluster-wide. *)

val degraded_refusals : state -> int
(** Write requests silently refused by degraded owners. *)

val partition_heals : state -> int
(** Degraded owners that regained quorum contact ([Partition_healed]). *)

val candidacies : state -> int -> (int * int * int list) list
(** One node's open takeover canvasses as [(base, epoch, granting peers
    ascending)], ascending by base; exposed so the model checker can
    fingerprint the full protocol state. *)

val vote_promises : state -> int -> (int * int * int) list
(** One node's outstanding vote promises as [(base, epoch, candidate)],
    ascending by base; exposed for model-checker fingerprinting. *)

val suspect_events : state -> int

val unsuspect_events : state -> int

val suspected_by : state -> int -> int list
(** Peers currently suspected by one node, ascending. *)

val shadow_pending_list : state -> int -> (int * completion) list
(** One node's in-flight shadow replications awaiting acknowledgement, as
    [(seq, completion)] ascending by seq.  Exposed so the model checker can
    fingerprint the full protocol state. *)

val shadow_seqno : state -> int
(** The next shadow sequence number to be allocated (cluster-global). *)

val checkpoint_round : state -> int -> int
(** The highest coordinated round one node has snapshotted; 0 before any.
    Monotone, and deliberately not reset by crash/restart — the snapshot it
    names is on stable storage. *)

val checkpoint_rounds_started : state -> int
(** Coordinated rounds initiated ({!event.Begin_checkpoint} at a live
    node). *)

val checkpoint_rounds_completed : state -> int
(** Rounds whose initiator collected every participant's [Cp_ack] — stable
    recovery lines.  A round with a crashed participant never completes
    (and blocks nothing). *)

val checkpoint_acks_pending : state -> int -> (int * int) list
(** One node's open initiated rounds as [(round, acks received)] ascending
    by round; exposed so the model checker can fingerprint the full
    protocol state. *)
