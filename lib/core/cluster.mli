(** A causal DSM: the owner protocol of Figure 4 over the simulated network.

    [create] builds one protocol node per process, installs the message
    handlers (the [READ]/[WRITE] services of Figure 4), and returns a
    cluster.  Application processes obtain a per-process {!handle} and
    issue blocking [read]/[write] operations; every operation is recorded in
    an execution history for the checker.

    Message handlers run atomically at delivery time even while the node's
    application process is blocked, which is the paper's requirement that
    owners "fairly alternate between issuing reads and writes and responding
    to READ and WRITE messages". *)

type t

type handle

val create :
  sched:Dsm_runtime.Proc.sched ->
  owner:Dsm_memory.Owner.t ->
  ?config:Config.t ->
  ?latency:Dsm_net.Latency.t ->
  ?seed:int64 ->
  unit ->
  t

val handle : t -> int -> handle
(** The memory handle of process [pid]. *)

val handles : t -> handle array

val processes : t -> int

val sched : t -> Dsm_runtime.Proc.sched

val net : t -> Message.t Dsm_net.Network.t

val node : t -> int -> Node.t
(** Direct access to protocol state, for tests and ablations. *)

val history : t -> Dsm_memory.History.t
(** Everything recorded so far. *)

val timed_history : t -> (Dsm_memory.Op.t * float * float) list
(** Every application operation with its (start, end) simulated times —
    input to the linearizability checker; causal memory's weak executions
    show up here as non-linearizable interval sets. *)

val stats : t -> Node_stats.t list
(** Per-node counters, pid order. *)

val total_stats : t -> Node_stats.t

val shutdown : t -> unit
(** Stop periodic discard timers so the engine can quiesce. *)

(** {1 Operations (must run inside a spawned process)} *)

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit

val write_resolved :
  handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> [ `Accepted | `Rejected ]
(** Like [write] but reports whether the owner's resolution policy kept the
    write; the dictionary's delete path cares. *)

val read_stamped : handle -> Dsm_memory.Loc.t -> Stamped.t
(** [read] exposing the writestamp; recorded as an ordinary read. *)

val discard : handle -> unit
(** Voluntarily drop this node's whole cache (the paper's [discard]). *)

(** The {!Dsm_memory.Memory_intf.MEMORY} instance applications are
    functorised over. *)
module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
