(** A causal DSM: the owner protocol of Figure 4 over the simulated network.

    [create] builds one protocol node per process, installs the message
    handlers (the [READ]/[WRITE] services of Figure 4), and returns a
    cluster.  Application processes obtain a per-process {!handle} and
    issue blocking [read]/[write] operations; every operation is recorded in
    an execution history for the checker.

    Message handlers run atomically at delivery time even while the node's
    application process is blocked, which is the paper's requirement that
    owners "fairly alternate between issuing reads and writes and responding
    to READ and WRITE messages".

    {b Transports.}  By default messages travel directly over the network —
    the paper's assumption of reliable exactly-once FIFO links.  Passing
    [?reliability] interposes the {!Dsm_net.Reliable} sliding-window layer,
    which restores that contract over a network configured (via [?fault])
    to drop and duplicate packets.

    {b Timeouts.}  Passing [?rpc] bounds every remote operation: a request
    whose reply does not arrive within [timeout] is reissued with a fresh
    request tag (up to [retries] times), and exhausting the budget raises
    {!Timed_out} instead of blocking the process forever.  Late replies to
    abandoned tags are discarded and counted in {!stale_replies}.

    {b Crash-stop failures.}  {!crash} silences a node (deliveries are
    dropped while it is down); {!restart} revives it by resetting volatile
    state and replaying the node's write-ahead log, so owner nodes recover
    their certified writes, view changes and shadow copies to the exact
    pre-crash durable frontier.  Cache-only nodes have empty logs and
    degenerate to cache-discard recovery.

    {b Owner failover.}  Passing [?detector] enables the failure-detection
    and handoff machinery: nodes exchange seeded heartbeats, a timeout
    detector suspects silent peers, and when a serving owner is suspected
    its designated backup (ring successor) — which shadows every
    acknowledged write synchronously — promotes itself under the next epoch
    and broadcasts a takeover.  Requests carry the client's epoch; a node
    that is not the current server (or sees a newer epoch) answers with a
    fencing reply that re-routes the client.  Reads addressed to a
    suspected owner degrade to the backup's shadow copy — the most recent
    acknowledged value, live under Definition 2 (see docs/PROTOCOL.md,
    "Owner failover"). *)

type t

type handle

(** Timeout/retry policy for the remote operations. *)
type rpc = {
  timeout : float;  (** simulated time to wait for each attempt's reply *)
  retries : int;  (** re-sends after the first attempt; total tries = retries + 1 *)
}

type timeout_info = {
  op : [ `Read | `Write ];
  loc : Dsm_memory.Loc.t;
  requester : int;
  owner_node : int;
  attempts : int;  (** total attempts made, including the first *)
}

exception Timed_out of timeout_info
(** Raised by {!read}/{!write} (and friends) when every RPC attempt timed
    out; only possible when [?rpc] was given. *)

(** Why a crash/restart request made no sense: the typed refusal reasons of
    {!crash_result}/{!restart_result}. *)
type node_state_error =
  | Already_crashed of int  (** {!crash} of a node that is already down *)
  | Not_crashed of int  (** {!restart} of a node that is up *)

exception Node_state of node_state_error
(** Raised by the non-[_result] {!crash}/{!restart} wrappers. *)

val pp_node_state_error : Format.formatter -> node_state_error -> unit

val create :
  sched:Dsm_runtime.Proc.sched ->
  owner:Dsm_memory.Owner.t ->
  ?config:Dsm_protocol.Config.t ->
  ?latency:Dsm_net.Latency.t ->
  ?fault:Dsm_net.Network.fault ->
  ?reliability:Dsm_net.Reliable.config ->
  ?rpc:rpc ->
  ?detector:Dsm_protocol.Detector.config ->
  ?sharding:Dsm_memory.Shard.t ->
  ?disk:Wal.Disk.t ->
  ?checkpoint_every:float ->
  ?unsubscribe_idle:float ->
  ?trace:Dsm_protocol.Trace.t ->
  ?seed:int64 ->
  unit ->
  t
(** [?detector] enables heartbeats, failure detection and ownership handoff
    (ignored on a single-node cluster — there is nobody to fail over to).
    [?disk] supplies the stable storage backing every node's write-ahead
    log; by default each cluster gets a private in-memory disk.  Passing it
    explicitly lets tests inject sync faults ({!Wal.Disk.fail_next_syncs})
    or inspect logs after the cluster is gone.  [?checkpoint_every] starts a
    per-node periodic snapshot checkpoint that compacts the log behind the
    snapshot (must be positive); without it logs grow without bound and
    {!checkpoint_now}/{!begin_checkpoint} are the only truncation.
    [?trace] attaches the structured event bus: the
    wire is tapped, the core's trace actions are stamped and published, and
    every application operation is emitted — consumers (the online checker,
    the [dsm trace] dump) subscribe to the same bus.  Without it, tracing
    costs nothing.  [?sharding] (which must agree with [owner] on the
    cluster size) switches the core to partial replication (PROTOCOL.md,
    "Partial replication & sharding"); omitted, behavior is bit-identical
    to the unsharded cluster.  [?unsubscribe_idle] (sharded clusters only,
    must be positive) garbage-collects share-sets: a periodic sweep
    unsubscribes any {e runtime} subscriber — never a ring member — whose
    last client access to the shard is at least this much sim time old,
    dropping its cached copies of the shard; the next access resubscribes
    it through the usual subscribe-on-access catch-up transfer, which is
    causally safe.  Without it share-sets only ever grow. *)

val handle : t -> int -> handle
(** The memory handle of process [pid]. *)

val handles : t -> handle array

val processes : t -> int

val sched : t -> Dsm_runtime.Proc.sched

val trace : t -> Dsm_protocol.Trace.t option
(** The event bus passed at creation, if any. *)

val net : t -> Dsm_protocol.Message.t Dsm_net.Network.t
(** The raw network of a cluster created {e without} [?reliability].
    Raises [Invalid_argument] on a reliable cluster (its network carries
    framed messages); use {!reliable} and the uniform accessors below. *)

val reliable : t -> Dsm_protocol.Message.t Dsm_net.Reliable.t option
(** The reliable transport, when the cluster was created with
    [?reliability]. *)

(** {1 Uniform wire accessors (work for both transports)} *)

val messages_total : t -> int
(** Lifetime messages accepted by the underlying network (for the reliable
    transport this includes acks and retransmissions). *)

val logical_messages : t -> int
(** Protocol payloads handed to the transport — the paper's accounting
    unit (the [2n+6] message tables), invariant under frame batching and
    ack coalescing.  Equals {!messages_total} on a direct cluster. *)

val physical_frames : t -> int
(** Frames the wire actually carried (data/batch frames, explicit acks,
    retransmissions) — what batching reduces.  Alias of
    {!messages_total}, named for the logical/physical split. *)

val wire_counters : t -> Dsm_net.Network.counters

val wire_dropped : t -> int
(** Messages lost to down links and the fault model. *)

val wire_duplicated : t -> int
(** Extra copies injected by the duplication fault. *)

val set_link_down : t -> src:int -> dst:int -> bool -> unit

val set_link_fault : t -> src:int -> dst:int -> Dsm_net.Network.fault -> unit

(** {2 Partitions}

    Link-state wrappers over {!Dsm_net.Network.partition} and friends,
    working on whichever network backs the transport.  Healing fires the
    network's heal hooks, so on a reliable (framed) transport every revived
    link is resynchronised automatically ({!Dsm_net.Reliable.resync_link})
    — including links where {e both} directions had given up. *)

val partition : t -> int list -> int list -> unit
(** Symmetric partition: fail every link between the two groups, both
    directions. *)

val partition_oneway : t -> int list -> int list -> unit
(** Asymmetric partition: fail only the links {e from} the first group
    {e to} the second; replies still flow the other way. *)

val heal_partition : t -> int list -> int list -> unit
(** Restore every link between the two groups, both directions. *)

val heal_all_links : t -> unit
(** Restore every downed link in the cluster. *)

val retransmissions : t -> int
(** Data packets re-sent by the reliable layer; [0] for a direct cluster. *)

val stale_replies : t -> int
(** Replies that arrived for abandoned request tags (timed-out attempts or
    pre-crash requests) and were discarded. *)

val rpc_timeouts : t -> int
(** Individual RPC attempts that timed out (whether or not a retry later
    succeeded). *)

(** {1 Crash-stop failures} *)

val crash_result : t -> int -> (unit, node_state_error) result
(** Take node [pid] down: incoming messages are dropped and its pending
    replies forgotten.  Operations on its handle fail until restarted.
    [Error (Already_crashed pid)] if it is already down (nothing is
    touched). *)

val restart_result : t -> int -> (unit, node_state_error) result
(** Bring a crashed node back: volatile state is reset (cache discarded,
    clock zeroed, view forgotten), the reliable transport's links are
    reset, and the node's recovery stream ({!Wal.replay}: the newest
    complete snapshot plus the records appended since) is replayed,
    restoring certified writes, adopted view changes and shadow copies to
    the durable frontier.  [Error (Not_crashed pid)] if the node is up. *)

val crash : t -> int -> unit
(** {!crash_result}, raising {!Node_state} on [Error]. *)

val restart : t -> int -> unit
(** {!restart_result}, raising {!Node_state} on [Error]. *)

val is_crashed : t -> int -> bool

val dropped_at_crashed : t -> int
(** Deliveries dropped because the destination was crashed. *)

(** {1 Durability and failover observability} *)

val disk : t -> Wal.Disk.t
(** The stable storage backing all nodes' write-ahead logs. *)

val wal : t -> int -> Wal.t
(** Node [pid]'s write-ahead log. *)

val checkpoint_now : t -> int -> unit
(** Snapshot node [pid]'s durable state onto its log, then compact away
    everything the new checkpoint covers (a failed sync is counted, not
    raised, and skips the compaction). *)

val begin_checkpoint : t -> int -> unit
(** Have node [pid] initiate a coordinated checkpoint round: it snapshots
    itself and floods [Cp_marker]s; every node snapshots on first marker
    receipt and acks the initiator, which records a stable recovery line
    once all acks are in ({!recovery_lines}).  See PROTOCOL.md,
    "Checkpointing & recovery". *)

val recovery_lines : t -> int
(** Coordinated rounds whose initiator collected every ack. *)

val checkpoint_round : t -> int -> int
(** The highest coordinated round node [pid] has snapshotted (0 before
    any). *)

val recoveries : t -> int
(** Restarts that replayed a log. *)

val replayed_records : t -> int
(** Records replayed across all restarts — bounded by
    records-since-checkpoint per node, not log lifetime. *)

val recovery_seconds : t -> float
(** Cumulative host (wall-clock) time spent replaying logs in
    {!restart}; what [dsm bench recovery] measures. *)

val takeovers : t -> int
(** Ownership promotions performed by backups. *)

val shadow_degraded : t -> int
(** Certified writes acknowledged without backup replication (no live
    backup, or the shadow ack missed the grace window). *)

val shadow_reads : t -> int
(** Reads served from a shadow copy while the owner was suspected. *)

val redirects : t -> int
(** Requests re-routed after an epoch-fencing [Stale_epoch] reply. *)

val wal_sync_failures : t -> int
(** Log appends/checkpoints whose injected sync fault fired; the entry
    stayed volatile until the next successful checkpoint. *)

val partition_degraded : t -> int -> bool
(** Whether node [pid] is currently in read-only degraded mode: it serves
    locations but can reach fewer than {!quorum} nodes, so it refuses
    writes (local writes raise {!Timed_out} with [attempts = 0]; remote
    [WRITE]s are silently dropped) while still serving reads. *)

val partition_heals : t -> int
(** Times a degraded node regained quorum contact and resumed serving
    writes (the [Partition_healed] trace milestone). *)

val votes_granted : t -> int
(** [OWNER_VOTE] grants sent cluster-wide — the currency of quorum-gated
    takeover. *)

val degraded_refusals : t -> int
(** Remote write requests silently refused by partition-degraded owners
    (the requester's RPC times out). *)

val quorum : t -> int
(** ⌊n/2⌋+1 over the whole cluster — the legacy electorate. *)

val quorum_for : t -> base:int -> int
(** The grants a takeover of [base] needs and the reachability its owner
    needs to keep accepting writes: a majority of [base]'s shard ring under
    sharding, {!quorum} otherwise. *)

val sharding : t -> Dsm_memory.Shard.t option

val subscribe : t -> node:int -> shard:int -> unit
(** Join [shard]'s share-set at runtime: [node] starts receiving the
    shard's invalidation digests and fetches a causally safe catch-up
    transfer from each of the shard's serving nodes ([SUB_REQ] /
    [SUB_REPLY]).  No-op without sharding, at a crashed node, or if
    already subscribed. *)

val unsubscribe : t -> node:int -> shard:int -> unit
(** Leave [shard]'s share-set and drop cached copies of its locations.
    Ring members cannot leave; no-op without sharding. *)

val resyncs : t -> int
(** Heal-time link resynchronisations performed by the reliable transport;
    [0] for a direct cluster. *)

val suspect_events : t -> int
(** Suspicion transitions across all detectors ([0] without [?detector]). *)

val unsuspect_events : t -> int
(** Recoveries from suspicion across all detectors. *)

val suspected_by : t -> int -> int list
(** Peers node [pid] currently suspects, ascending. *)

val view : t -> (int * int * int) list
(** The cluster-wide ownership view: for each base owner with a takeover,
    [(base, epoch, serving)] under the highest epoch any node has adopted;
    bases still under their static owner (epoch 0) are omitted. *)

val epoch_of : t -> base:int -> int
(** The highest adopted epoch for [base] ([0] = static assignment). *)

val serving_of : t -> base:int -> int
(** The node serving [base]'s locations under {!epoch_of}. *)

val node : t -> int -> Dsm_protocol.Node.t
(** Direct access to protocol state, for tests and ablations. *)

val history : t -> Dsm_memory.History.t
(** Everything recorded so far. *)

val timed_history : t -> (Dsm_memory.Op.t * float * float) list
(** Every application operation with its (start, end) simulated times —
    input to the linearizability checker; causal memory's weak executions
    show up here as non-linearizable interval sets. *)

val stats : t -> Dsm_protocol.Node_stats.t list
(** Per-node counters, pid order. *)

val total_stats : t -> Dsm_protocol.Node_stats.t

val cluster_stats : t -> Dsm_protocol.Node_stats.cluster
(** Every counter the cluster keeps — protocol, wire, RPC, crash and
    failover — in one record (see {!Dsm_protocol.Node_stats.cluster}); what the chaos
    health line prints. *)

val shutdown : t -> unit
(** Stop periodic discard timers so the engine can quiesce. *)

(** {1 Operations (must run inside a spawned process)} *)

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit

val write_resolved :
  handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> [ `Accepted | `Rejected ]
(** Like [write] but reports whether the owner's resolution policy kept the
    write; the dictionary's delete path cares. *)

val read_stamped : handle -> Dsm_memory.Loc.t -> Dsm_protocol.Stamped.t
(** [read] exposing the writestamp; recorded as an ordinary read. *)

val read_result : handle -> Dsm_memory.Loc.t -> (Dsm_memory.Value.t, timeout_info) result
(** {!read} with {!Timed_out} reified into [Error] instead of raised. *)

val write_result :
  handle ->
  Dsm_memory.Loc.t ->
  Dsm_memory.Value.t ->
  ([ `Accepted | `Rejected ], timeout_info) result
(** {!write_resolved} with {!Timed_out} reified into [Error]. *)

val discard : handle -> unit
(** Voluntarily drop this node's whole cache (the paper's [discard]). *)

(** The {!Dsm_memory.Memory_intf.MEMORY} instance applications are
    functorised over. *)
module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
