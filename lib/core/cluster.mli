(** A causal DSM: the owner protocol of Figure 4 over the simulated network.

    [create] builds one protocol node per process, installs the message
    handlers (the [READ]/[WRITE] services of Figure 4), and returns a
    cluster.  Application processes obtain a per-process {!handle} and
    issue blocking [read]/[write] operations; every operation is recorded in
    an execution history for the checker.

    Message handlers run atomically at delivery time even while the node's
    application process is blocked, which is the paper's requirement that
    owners "fairly alternate between issuing reads and writes and responding
    to READ and WRITE messages".

    {b Transports.}  By default messages travel directly over the network —
    the paper's assumption of reliable exactly-once FIFO links.  Passing
    [?reliability] interposes the {!Dsm_net.Reliable} sliding-window layer,
    which restores that contract over a network configured (via [?fault])
    to drop and duplicate packets.

    {b Timeouts.}  Passing [?rpc] bounds every remote operation: a request
    whose reply does not arrive within [timeout] is reissued with a fresh
    request tag (up to [retries] times), and exhausting the budget raises
    {!Timed_out} instead of blocking the process forever.  Late replies to
    abandoned tags are discarded and counted in {!stale_replies}.

    {b Crash-stop failures.}  {!crash} silences a node (deliveries are
    dropped while it is down); {!restart} revives it with empty volatile
    state — cache discarded, clock zeroed — which is safe for non-owner
    nodes because every post-restart value is re-fetched from its owner
    (see docs/PROTOCOL.md, "Reliability layer"). *)

type t

type handle

(** Timeout/retry policy for the remote operations. *)
type rpc = {
  timeout : float;  (** simulated time to wait for each attempt's reply *)
  retries : int;  (** re-sends after the first attempt; total tries = retries + 1 *)
}

type timeout_info = {
  op : [ `Read | `Write ];
  loc : Dsm_memory.Loc.t;
  requester : int;
  owner_node : int;
  attempts : int;  (** total attempts made, including the first *)
}

exception Timed_out of timeout_info
(** Raised by {!read}/{!write} (and friends) when every RPC attempt timed
    out; only possible when [?rpc] was given. *)

val create :
  sched:Dsm_runtime.Proc.sched ->
  owner:Dsm_memory.Owner.t ->
  ?config:Config.t ->
  ?latency:Dsm_net.Latency.t ->
  ?fault:Dsm_net.Network.fault ->
  ?reliability:Dsm_net.Reliable.config ->
  ?rpc:rpc ->
  ?seed:int64 ->
  unit ->
  t

val handle : t -> int -> handle
(** The memory handle of process [pid]. *)

val handles : t -> handle array

val processes : t -> int

val sched : t -> Dsm_runtime.Proc.sched

val net : t -> Message.t Dsm_net.Network.t
(** The raw network of a cluster created {e without} [?reliability].
    Raises [Invalid_argument] on a reliable cluster (its network carries
    framed messages); use {!reliable} and the uniform accessors below. *)

val reliable : t -> Message.t Dsm_net.Reliable.t option
(** The reliable transport, when the cluster was created with
    [?reliability]. *)

(** {1 Uniform wire accessors (work for both transports)} *)

val messages_total : t -> int
(** Lifetime messages accepted by the underlying network (for the reliable
    transport this includes acks and retransmissions). *)

val wire_counters : t -> Dsm_net.Network.counters

val wire_dropped : t -> int
(** Messages lost to down links and the fault model. *)

val wire_duplicated : t -> int
(** Extra copies injected by the duplication fault. *)

val set_link_down : t -> src:int -> dst:int -> bool -> unit

val set_link_fault : t -> src:int -> dst:int -> Dsm_net.Network.fault -> unit

val retransmissions : t -> int
(** Data packets re-sent by the reliable layer; [0] for a direct cluster. *)

val stale_replies : t -> int
(** Replies that arrived for abandoned request tags (timed-out attempts or
    pre-crash requests) and were discarded. *)

val rpc_timeouts : t -> int
(** Individual RPC attempts that timed out (whether or not a retry later
    succeeded). *)

(** {1 Crash-stop failures} *)

val crash : t -> int -> unit
(** Take node [pid] down: incoming messages are dropped and its pending
    replies forgotten.  Operations on its handle fail until {!restart}.
    Raises [Invalid_argument] if already crashed. *)

val restart : t -> int -> unit
(** Bring a crashed node back with empty volatile state: the cache is
    discarded, the vector clock zeroed (rebuilt from the first owner
    reply), and — under the reliable transport — its links reset.  Raises
    [Invalid_argument] if the node is not crashed, or (via
    {!Node.reset_volatile}) if it owns locations, since an owner's
    certified writes are not recoverable by discard. *)

val is_crashed : t -> int -> bool

val dropped_at_crashed : t -> int
(** Deliveries dropped because the destination was crashed. *)

val node : t -> int -> Node.t
(** Direct access to protocol state, for tests and ablations. *)

val history : t -> Dsm_memory.History.t
(** Everything recorded so far. *)

val timed_history : t -> (Dsm_memory.Op.t * float * float) list
(** Every application operation with its (start, end) simulated times —
    input to the linearizability checker; causal memory's weak executions
    show up here as non-linearizable interval sets. *)

val stats : t -> Node_stats.t list
(** Per-node counters, pid order. *)

val total_stats : t -> Node_stats.t

val shutdown : t -> unit
(** Stop periodic discard timers so the engine can quiesce. *)

(** {1 Operations (must run inside a spawned process)} *)

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit

val write_resolved :
  handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> [ `Accepted | `Rejected ]
(** Like [write] but reports whether the owner's resolution policy kept the
    write; the dictionary's delete path cares. *)

val read_stamped : handle -> Dsm_memory.Loc.t -> Stamped.t
(** [read] exposing the writestamp; recorded as an ordinary read. *)

val read_result : handle -> Dsm_memory.Loc.t -> (Dsm_memory.Value.t, timeout_info) result
(** {!read} with {!Timed_out} reified into [Error] instead of raised. *)

val write_result :
  handle ->
  Dsm_memory.Loc.t ->
  Dsm_memory.Value.t ->
  ([ `Accepted | `Rejected ], timeout_info) result
(** {!write_resolved} with {!Timed_out} reified into [Error]. *)

val discard : handle -> unit
(** Voluntarily drop this node's whole cache (the paper's [discard]). *)

(** The {!Dsm_memory.Memory_intf.MEMORY} instance applications are
    functorised over. *)
module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
