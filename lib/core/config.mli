(** Protocol configuration: the §3.2 enhancement knobs.

    The basic algorithm of Figure 4 is [default].  The enhancements the
    paper defers to its tech report are exposed as configuration:
    page-granularity sharing, cache replacement ([discard]) policies, and
    the concurrent-write resolution policy of Section 4.2. *)

type granularity =
  | Word  (** the basic algorithm: one location per transfer *)
  | Page of int
      (** a read miss returns every co-paged location the owner holds;
          pages group [Page of k] consecutive indices of the same array *)

type discard =
  | No_discard  (** cache grows without bound; the basic algorithm *)
  | Periodic of float
      (** every period (simulated time), drop all cached copies — the
          paper's liveness device ("occasional execution of discard can ...
          ensure eventual communication") *)
  | Capacity of int  (** LRU eviction beyond this many cached locations *)

type invalidation =
  | Coarse
      (** Figure 4's rule: invalidate every cached value older than the
          incoming writestamp — cheap, over-approximate *)
  | Precise
      (** the [3]-style bookkeeping the paper declines: piggyback a
          per-location newest-write digest on replies and invalidate a
          cached copy only when a newer write of that location is actually
          known; costs digest bytes on every reply (see {!Write_digest}) *)

type mutation =
  | No_mutation  (** the faithful protocol *)
  | Skip_invalidation
      (** skip the Figure-4 invalidation rule entirely: stale cached
          copies survive the arrival of causally newer state *)
  | Skip_writestamp_merge
      (** the owner certifies a write without merging the writer's
          writestamp into its own clock, so the stored stamp no longer
          dominates the writer's causal history *)
  | Reorder_apply_ack
      (** acknowledge a certified write before the backup has applied the
          shadow copy (asynchronous replication): an acked write can be
          lost by a takeover *)
  | Ignore_epoch_fence
      (** serve READ requests without the epoch fence: a deposed or
          restarted owner answers for locations it no longer serves,
          fabricating initial values *)
  | Skip_shadow_replication
      (** never replicate certified writes to the backup at all; every
          takeover silently loses the victim's certified writes *)
  | Truncate_wal_early
      (** WAL compaction truncates one record past the stable-checkpoint
          boundary (an off-by-one in the retention cut): recovery silently
          loses one durable record, so a post-rollback read can contradict
          an acknowledged write *)
  | Takeover_without_quorum
      (** a suspecting backup promotes itself immediately, skipping the
          ⌊n/2⌋+1 OWNER_VOTE round: a network partition yields two
          simultaneous owners for the same base (split-brain) *)
  | Prune_share_set_wrongly
      (** under sharding, reply digests are filtered as if runtime
          subscribers were not in the share-set (only ring members keep
          their entries): a genuine subscriber's cached copy misses the
          invalidation a causally newer write should have forced, so it
          re-reads stale state after observing the newer write *)
  | Merge_drops_op
      (** the {e client-side} object merge silently drops the causally
          greatest observed update before folding a query's return value
          (a lost-op bug in the [Causal_object] merge): every individual
          probe read stays register-legal, so only the generalized object
          checker — spec-legal returns over causal-past linearizations —
          can flag it *)

val mutations : (string * mutation) list
(** CLI names for every breaking variant (excludes [No_mutation]). *)

val mutation_name : mutation -> string

val mutation_of_string : string -> mutation option

type t = {
  granularity : granularity;
  discard : discard;
  invalidation : invalidation;
  policy : Policy.t;
  init : Dsm_memory.Loc.t -> Dsm_memory.Value.t;
      (** initial value of owned locations (default: [Value.initial]) *)
  read_request_size : int;
  entry_size : int -> int;
      (** wire size of a stamped entry as a function of the vector-clock
          dimension; used only for byte accounting *)
  mutation : mutation;
      (** {b Test-only fault injection — never enable in real use.}
          Selectively breaks one Figure-4 rule (see {!mutation}) so the
          checkers can prove they catch genuine protocol bugs, not just
          synthetic histories.  [No_mutation] in {!default}. *)
}

val default : t
(** Word granularity, no discard, last-writer-wins, all-zero initial
    values. *)

val with_policy : Policy.t -> t -> t

val with_granularity : granularity -> t -> t

val with_discard : discard -> t -> t

val with_invalidation : invalidation -> t -> t

val with_init : (Dsm_memory.Loc.t -> Dsm_memory.Value.t) -> t -> t

val with_mutation : mutation -> t -> t

val page_of : granularity -> Dsm_memory.Loc.t -> (string * int) option
(** The page a location belongs to under the given granularity; [None] for
    word granularity or unpageable (named scalar) locations. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical settings (page size < 2,
    capacity < 1, period <= 0). *)
