module Loc = Dsm_memory.Loc
module Owner = Dsm_memory.Owner
module Shard = Dsm_memory.Shard

type completion =
  | Reply of { dst : int; kind : string; size : int; msg : Message.t }
  | Writer of int

type event =
  | Deliver of { dst : int; src : int; now : float; msg : Message.t }
  | Hb_tick of { node : int; now : float }
  | Grace_expired of { node : int; seq : int }
  | Owner_write of { node : int; loc : Loc.t; value : Dsm_memory.Value.t; writer : int }
  | Learn_view of { node : int; base : int; epoch : int; serving : int }
  | Crash of { node : int }
  | Restart of { node : int; now : float; records : Log_record.t list }
  | Begin_checkpoint of { node : int }
  | Subscribe of { node : int; shard : int }
  | Unsubscribe of { node : int; shard : int }

type action =
  | Send of { src : int; dst : int; kind : string; size : int; msg : Message.t }
  | Client_reply of { node : int; req : int; msg : Message.t }
  | Wake_writer of { node : int; writer : int }
  | Append of { node : int; record : Log_record.t }
  | Arm_grace of { node : int; seq : int }
  | Local_write_done of { node : int; entry : Stamped.t }
  | Take_checkpoint of { node : int; round : int }
  | Emit of Trace.body

(* A backup canvassing for takeover of one base: the epoch it is asking
   for and the peers (itself included) that granted an OWNER_VOTE. *)
type candidacy = { cand_epoch : int; mutable grants : int list }

type state = {
  nodes : Node.t array;
  owner : Owner.t;
  config : Config.t;
  (* Partial replication: [None] is the legacy full-replication layout
     (every node replicates everything, broadcasts go cluster-wide,
     metadata is cluster-width).  [Some] scopes routing, failure detection,
     quorum and wire accounting to each shard's share-set. *)
  sharding : Shard.t option;
  crashed : bool array;
  detectors : Detector.t array option; (* Some iff failover is enabled *)
  shadow_pending : (int, completion) Hashtbl.t array;
  mutable shadow_seq : int;
  mutable dropped_at_crashed : int;
  mutable takeovers : int;
  mutable shadow_degraded : int;
  (* Quorum-gated takeover: per node, the open canvasses (base -> candidacy)
     and the vote promises made to other candidates (base -> epoch,
     candidate); [degraded] marks owners that lost majority contact and
     serve read-only until the partition heals. *)
  candidacies : (int, candidacy) Hashtbl.t array;
  promises : (int, int * int) Hashtbl.t array;
  degraded : bool array;
  mutable votes_granted : int;
  mutable degraded_refusals : int;
  mutable partition_heals : int;
  (* Coordinated checkpoints: the highest round each node has snapshotted,
     and (at initiators) the outstanding ack counts per open round. *)
  cp_round : int array;
  cp_acks : (int, int) Hashtbl.t array;
  mutable cp_seq : int;
  mutable cp_started : int;
  mutable cp_completed : int;
  mutable tracing : bool;
}

(* Narrow every detector's watch mask to the node's share-set peers.
   Re-run after any subscription change: joining a shard means watching its
   share-set (and being watched back — [Shard.peers] is symmetric). *)
let refresh_watch_masks ~detectors ~sharding ~nodes =
  match (detectors, sharding) with
  | Some dets, Some s ->
      Array.iteri
        (fun me det ->
          let peers = Shard.peers s ~node:me in
          for p = 0 to nodes - 1 do
            if p <> me then Detector.set_watched det ~peer:p (List.mem p peers)
          done)
        dets
  | _ -> ()

let create ~owner ~config ?detector ?sharding ~now () =
  let processes = Owner.nodes owner in
  (match sharding with
  | Some s when Shard.nodes s <> processes ->
      invalid_arg "Protocol.create: sharding and owner disagree on cluster size"
  | _ -> ());
  let detectors =
    (* Failover needs a peer to fail over to. *)
    match detector with
    | Some cfg when processes >= 2 ->
        Some (Array.init processes (fun me -> Detector.create cfg ~nodes:processes ~me ~now))
    | Some _ | None -> None
  in
  refresh_watch_masks ~detectors ~sharding ~nodes:processes;
  {
    nodes = Array.init processes (fun id -> Node.create ~id ~owner ~config);
    owner;
    config;
    sharding;
    crashed = Array.make processes false;
    detectors;
    shadow_pending = Array.init processes (fun _ -> Hashtbl.create 8);
    shadow_seq = 0;
    dropped_at_crashed = 0;
    takeovers = 0;
    shadow_degraded = 0;
    candidacies = Array.init processes (fun _ -> Hashtbl.create 2);
    promises = Array.init processes (fun _ -> Hashtbl.create 2);
    degraded = Array.make processes false;
    votes_granted = 0;
    degraded_refusals = 0;
    partition_heals = 0;
    cp_round = Array.make processes 0;
    cp_acks = Array.init processes (fun _ -> Hashtbl.create 4);
    cp_seq = 0;
    cp_started = 0;
    cp_completed = 0;
    tracing = false;
  }

let processes t = Array.length t.nodes

let node t pid = t.nodes.(pid)

let is_crashed t pid = t.crashed.(pid)

let failover_on t = t.detectors <> None

let sharding t = t.sharding

let subscriptions t = match t.sharding with None -> [] | Some s -> Shard.subscriptions s

let quorum t = (Array.length t.nodes / 2) + 1

(* Shard-local quorum: under sharding the electorate for [base] is its
   shard's owner ring — a majority of the ring, not of the cluster, gates
   takeover and write service, so a fault in one shard cannot stall the
   others (and a ring minority still cannot fork a base's history). *)
let quorum_for t ~base =
  match t.sharding with
  | None -> quorum t
  | Some s -> (Shard.ring_size s (Shard.of_base s base) / 2) + 1

let suspected t ~me ~peer =
  match t.detectors with Some dets -> Detector.suspected dets.(me) peer | None -> false

let backup_of t ~serving =
  match t.sharding with
  | Some s -> Shard.ring_successor s ~node:serving
  | None ->
      let n = Array.length t.nodes in
      let b = (serving + 1) mod n in
      if b = serving then None else Some b

(* The cluster-wide view: per base, the highest epoch any node has adopted. *)
let view t =
  let n = Array.length t.nodes in
  let best = Array.init n (fun base -> (0, base)) in
  Array.iter
    (fun node ->
      List.iter
        (fun (base, epoch, serving) ->
          let e, _ = best.(base) in
          if epoch > e then best.(base) <- (epoch, serving))
        (Node.view node))
    t.nodes;
  let acc = ref [] in
  for base = n - 1 downto 0 do
    let e, s = best.(base) in
    if e > 0 then acc := (base, e, s) :: !acc
  done;
  !acc

let dropped_at_crashed t = t.dropped_at_crashed

let takeovers t = t.takeovers

let shadow_degraded t = t.shadow_degraded

let suspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.suspect_events d) 0 dets

let unsuspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.unsuspect_events d) 0 dets

let suspected_by t pid =
  match t.detectors with None -> [] | Some dets -> Detector.suspected_now dets.(pid)

let partition_degraded t pid = t.degraded.(pid)

let votes_granted t = t.votes_granted

let degraded_refusals t = t.degraded_refusals

let partition_heals t = t.partition_heals

let candidacies t pid =
  Hashtbl.fold
    (fun base c acc -> (base, c.cand_epoch, List.sort compare c.grants) :: acc)
    t.candidacies.(pid) []
  |> List.sort compare

let vote_promises t pid =
  Hashtbl.fold (fun base (epoch, candidate) acc -> (base, epoch, candidate) :: acc)
    t.promises.(pid) []
  |> List.sort compare

let shadow_pending_list t pid =
  Hashtbl.fold (fun seq wait acc -> (seq, wait) :: acc) t.shadow_pending.(pid) []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let shadow_seqno t = t.shadow_seq

let checkpoint_round t pid = t.cp_round.(pid)

let checkpoint_rounds_started t = t.cp_started

let checkpoint_rounds_completed t = t.cp_completed

let checkpoint_acks_pending t pid =
  Hashtbl.fold (fun round got acc -> (round, got) :: acc) t.cp_acks.(pid) []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let set_tracing t on =
  t.tracing <- on;
  Array.iter (fun node -> Node.set_tracing node on) t.nodes

(* {1 Action accumulation}

   Actions are consed onto a reversed list and flipped once at the end of
   [step]. *)

let act acc a = acc := a :: !acc

let emitq t acc body = if t.tracing then act acc (Emit body)

(* Node mutators queue their own trace bodies internally (they cannot emit
   effects); [flush] moves whatever one node queued into the action list at
   the point the caller chooses, preserving order. *)
let flush t me acc =
  if t.tracing then List.iter (fun body -> act acc (Emit body)) (Node.drain_trace t.nodes.(me))

(* {1 Share-set-width wire accounting}

   Under sharding, an entry shipped for a location is priced at its
   share-set's width, not at cluster width — the writestamp a real partial
   replication puts on the wire is indexed through the shard's membership
   map (see {!Dsm_memory.Membership}).  In-memory stamps stay full-width
   (owner clocks mix cross-shard components through certification, so a
   lossy projection would be unsound for comparisons); this is the same
   logical-vs-physical split the transport layer uses for frames. *)

let entry_dim t ~base =
  match t.sharding with
  | None -> Owner.nodes t.owner
  | Some s -> Shard.width s (Shard.of_base s base)

let entry_wire_size t ~base count = count * t.config.Config.entry_size (entry_dim t ~base)

let digest_wire_size t digest =
  match t.sharding with
  | None -> Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)
  | Some s ->
      List.fold_left
        (fun acc (loc, _) -> acc + Shard.width s (Shard.of_loc s loc) + 2)
        0 digest

(* Subscriber-only digest routing: a reply ships digest entries only for
   shards the requester subscribes to — metadata for locations a node does
   not replicate buys it nothing.  The [Prune_share_set_wrongly] mutation
   is the planted bug: it treats runtime subscribers as if they were not
   in the share-set (only ring members keep their entries), so a genuine
   subscriber's cached copy misses the invalidation a causally newer write
   should have forced. *)
let digest_for t ~dst digest =
  match t.sharding with
  | None -> digest
  | Some s ->
      List.filter
        (fun (loc, _) ->
          let shard = Shard.of_loc s loc in
          Shard.subscribed s ~shard ~node:dst
          &&
          match t.config.Config.mutation with
          | Config.Prune_share_set_wrongly -> Shard.in_ring s ~shard ~node:dst
          | _ -> true)
        digest

(* Interest-based subscribe-on-access: serving a request for a location
   implicitly enrols the requester in its shard's share-set, so the
   invalidation metadata for the copy it is about to cache keeps flowing
   to it.  (The reply itself is the catch-up transfer for this first
   access; explicit {!event.Subscribe} covers joining ahead of access.) *)
let note_access t ~src loc =
  match t.sharding with
  | None -> ()
  | Some s ->
      let shard = Shard.of_loc s loc in
      if not (Shard.subscribed s ~shard ~node:src) then begin
        Shard.subscribe s ~shard ~node:src;
        refresh_watch_masks ~detectors:t.detectors ~sharding:t.sharding
          ~nodes:(Array.length t.nodes)
      end

(* Broadcast scoping: with sharding, per-base traffic fans out to the
   base's share-set only (takeover announcements, demotion frontiers), and
   votes are canvassed from its ring. *)
let subscriber_targets t ~me ~base =
  let all () = List.filter (fun d -> d <> me) (List.init (Array.length t.nodes) Fun.id) in
  match t.sharding with
  | None -> all ()
  | Some s -> List.filter (fun d -> d <> me) (Shard.subscribers s (Shard.of_base s base))

let ring_targets t ~me ~base =
  match t.sharding with
  | None -> List.filter (fun d -> d <> me) (List.init (Array.length t.nodes) Fun.id)
  | Some s -> List.filter (fun d -> d <> me) (Shard.ring s (Shard.of_base s base))

let hb_targets t ~me =
  match t.sharding with
  | None -> List.filter (fun d -> d <> me) (List.init (Array.length t.nodes) Fun.id)
  | Some s -> Shard.peers s ~node:me

(* Reachability for the owner-side lease check, scoped to the electorate
   that matters: under sharding an owner's quorum is over its own ring. *)
let reachable_of t ~me det =
  match t.sharding with
  | None -> Array.length t.nodes - List.length (Detector.suspected_now det)
  | Some s ->
      let ring = Shard.ring s (Shard.of_base s me) in
      List.length (List.filter (fun p -> p = me || not (Detector.suspected det p)) ring)

let append t acc me record =
  act acc (Append { node = me; record });
  emitq t acc (Trace.Wal_append { node = me; kind = Log_record.kind record })

(* Any delivery is proof of life: protocol traffic unsuspects a peer just
   as heartbeats do.  An unsuspect edge also settles partition state: open
   canvasses against the revived node are abandoned, and a degraded owner
   that regains quorum contact resumes normal service. *)
let heard t acc ~me ~src ~now =
  match t.detectors with
  | Some dets when src <> me ->
      if Detector.heard dets.(me) ~peer:src ~now then begin
        emitq t acc (Trace.Unsuspect { node = me; peer = src });
        let node = t.nodes.(me) in
        let stale =
          Hashtbl.fold
            (fun base _ acc -> if Node.serving_of node ~base = src then base :: acc else acc)
            t.candidacies.(me) []
        in
        List.iter (Hashtbl.remove t.candidacies.(me)) stale;
        if t.degraded.(me) then begin
          let reachable = reachable_of t ~me dets.(me) in
          if reachable >= quorum_for t ~base:me then begin
            t.degraded.(me) <- false;
            t.partition_heals <- t.partition_heals + 1;
            emitq t acc (Trace.Partition_healed { node = me; reachable })
          end
        end
      end
  | _ -> ()

(* Fold in a view entry learned from any channel (takeover broadcast,
   heartbeat gossip, fencing reply), logging real changes for replay.  A
   demotion additionally ships the entries this node was serving to the
   new server (FRONTIER): adoption drops them locally, and the new server
   merges them newest-wins — the reconciliation half of a partition heal,
   which also recovers writes acknowledged without shadow replication. *)
let learn_view t acc ~me ~base ~epoch ~serving =
  let node = t.nodes.(me) in
  let will_demote =
    epoch > Node.epoch_of node ~base && Node.serving_of node ~base = me && serving <> me
  in
  let served = if will_demote then Node.served_entries node ~base else [] in
  match Node.adopt_view node ~base ~epoch ~serving with
  | Node.View_ignored -> ()
  | (Node.View_adopted | Node.View_demoted) as outcome ->
      flush t me acc;
      append t acc me (Log_record.View_change { base; epoch; serving });
      (* A newer adopted epoch settles any open canvass at or below it. *)
      (match Hashtbl.find_opt t.candidacies.(me) base with
      | Some c when c.cand_epoch <= epoch -> Hashtbl.remove t.candidacies.(me) base
      | _ -> ());
      if outcome = Node.View_demoted && served <> [] then
        act acc
          (Send
             {
               src = me;
               dst = serving;
               kind = "FRONTIER";
               size = entry_wire_size t ~base (List.length served);
               msg = Message.Frontier { base; epoch; entries = served };
             })

let next_shadow_seq t =
  let s = t.shadow_seq in
  t.shadow_seq <- s + 1;
  s

let send_shadow t acc ~me ~backup ~base ~seq entries =
  act acc
    (Send
       {
         src = me;
         dst = backup;
         kind = "SHADOW";
         size = entry_wire_size t ~base (List.length entries);
         msg = Message.Shadow { seq; base; entries };
       })

let complete t acc ~me wait =
  match wait with
  | Reply { dst; kind; size; msg } ->
      (* The owner may have crashed while the shadow was in flight; a dead
         node sends nothing. *)
      if not t.crashed.(me) then act acc (Send { src = me; dst; kind; size; msg })
  | Writer writer ->
      (* Always wake the blocked writer — its write completed before any
         crash could happen (crashes strike between operations). *)
      act acc (Wake_writer { node = me; writer })

let degrade t acc ~me ~seq =
  t.shadow_degraded <- t.shadow_degraded + 1;
  emitq t acc (Trace.Shadow_degraded { node = me; seq })

(* Replicate freshly certified [entries] of [base] to the designated backup
   and run [wait]'s completion once acknowledged.  Degrades to completing
   immediately when failover is off or the backup is itself suspected.
   The [Reorder_apply_ack] mutation acknowledges first and replicates
   asynchronously; [Skip_shadow_replication] never replicates at all. *)
let shadow_then t acc ~me ~base entries wait =
  let proceed () = complete t acc ~me wait in
  match t.config.Config.mutation with
  | Config.Skip_shadow_replication -> proceed ()
  | Config.Reorder_apply_ack ->
      proceed ();
      if failover_on t then begin
        match backup_of t ~serving:me with
        | Some backup when not (suspected t ~me ~peer:backup) ->
            let seq = next_shadow_seq t in
            send_shadow t acc ~me ~backup ~base ~seq entries
        | Some _ | None -> ()
      end
  | _ ->
      if not (failover_on t) then proceed ()
      else (
        match backup_of t ~serving:me with
        | None -> proceed ()
        | Some backup when suspected t ~me ~peer:backup ->
            degrade t acc ~me ~seq:(-1);
            proceed ()
        | Some backup ->
            let seq = next_shadow_seq t in
            Hashtbl.replace t.shadow_pending.(me) seq wait;
            send_shadow t acc ~me ~backup ~base ~seq entries;
            act acc (Arm_grace { node = me; seq }))

(* Epoch fencing: a request is served only by the node currently serving
   the location under an epoch at least as new as the client's.  Everything
   else gets the server's own view back and re-routes. *)
let fence node loc epoch =
  let base = Node.base_owner_of node loc in
  if (not (Node.owns node loc)) || epoch < Node.epoch_of node ~base then
    Some (base, Node.epoch_of node ~base, Node.serving_of node ~base)
  else None

(* Record a checkpoint for [round] at [me]: the caller (shell or model)
   must snapshot the node's state onto stable storage before any later
   event runs at this node — that ordering is what makes the per-node
   snapshots a consistent cut over FIFO links. *)
let take_checkpoint t acc ~me ~round =
  t.cp_round.(me) <- round;
  if round > t.cp_seq then t.cp_seq <- round;
  act acc (Take_checkpoint { node = me; round });
  emitq t acc (Trace.Checkpoint_taken { node = me; round })

let cp_round_complete t acc ~me ~round =
  t.cp_completed <- t.cp_completed + 1;
  emitq t acc (Trace.Recovery_line { node = me; round })

(* The promotion itself, once authorised (quorum of OWNER_VOTEs, or the
   [Takeover_without_quorum] mutation skipping the canvass): install the
   shadow state under the new epoch, broadcast the takeover, and prime this
   node's own backup with the inherited state. *)
let promote_takeover t acc ~me ~base ~epoch =
  let node = t.nodes.(me) in
  let deposed = Node.serving_of node ~base in
  let inherited = Node.promote node ~base ~epoch in
  t.takeovers <- t.takeovers + 1;
  flush t me acc;
  append t acc me (Log_record.View_change { base; epoch; serving = me });
  (* Only the base's subscribers route requests to it, so only they need
     the announcement; stragglers outside the share-set learn lazily from
     STALE fencing if they ever subscribe later. *)
  List.iter
    (fun dst ->
      act acc
        (Send
           {
             src = me;
             dst;
             kind = "TAKEOVER";
             size = 1;
             msg = Message.Takeover { base; epoch; serving = me };
           }))
    (subscriber_targets t ~me ~base);
  match backup_of t ~serving:me with
  | Some next_backup
    when next_backup <> deposed
         && (not (suspected t ~me ~peer:next_backup))
         && inherited <> [] ->
      (* Fire-and-forget snapshot: no reply is gated on it, the per-write
         shadows that follow keep it current. *)
      let seq = next_shadow_seq t in
      send_shadow t acc ~me ~backup:next_backup ~base ~seq inherited
  | _ -> ()

(* A heartbeat tick suspecting [peer] opens a canvass: if this node is the
   designated backup for a base [peer] was serving, it asks every peer for
   an OWNER_VOTE and promotes only once ⌊n/2⌋+1 grants (its own included)
   are in — a minority-side backup can suspect all it wants, it will never
   reach quorum, which is what prevents split-brain.  The
   [Takeover_without_quorum] mutation is the planted bug: it promotes on
   suspicion alone, exactly the pre-quorum behavior. *)
let on_suspect t acc ~me ~peer =
  let node = t.nodes.(me) in
  let n = Array.length t.nodes in
  for base = 0 to n - 1 do
    if Node.serving_of node ~base = peer then
      match backup_of t ~serving:peer with
      | Some b when b = me ->
          let epoch = Node.epoch_of node ~base + 1 in
          if t.config.Config.mutation = Config.Takeover_without_quorum then
            promote_takeover t acc ~me ~base ~epoch
          else if not (Hashtbl.mem t.candidacies.(me) base) then begin
            Hashtbl.replace t.candidacies.(me) base { cand_epoch = epoch; grants = [ me ] };
            List.iter
              (fun dst ->
                act acc
                  (Send
                     {
                       src = me;
                       dst;
                       kind = "VOTE_REQ";
                       size = 1;
                       msg = Message.Vote_req { base; epoch; candidate = me };
                     }))
              (ring_targets t ~me ~base)
          end
      | _ -> ()
  done

(* Owner-side lease check, run on every heartbeat tick: an owner that can
   reach fewer than ⌊n/2⌋+1 nodes (itself included) may be on the minority
   side of a partition whose majority is electing a replacement, so it
   drops to read-only degraded mode — reads of its (possibly stale but
   causally consistent) copies stay Definition-2 safe, while writes are
   refused until {!heard} sees quorum contact again. *)
let maybe_degrade t acc ~me det =
  if not t.degraded.(me) then begin
    let node = t.nodes.(me) in
    let n = Array.length t.nodes in
    let serves = ref false in
    for base = 0 to n - 1 do
      if Node.serving_of node ~base = me then serves := true
    done;
    let reachable = reachable_of t ~me det in
    let q = quorum_for t ~base:me in
    if !serves && reachable < q then begin
      t.degraded.(me) <- true;
      emitq t acc (Trace.Degraded { node = me; reachable; quorum = q })
    end
  end

(* The owner-side services of Figure 4 plus the failover machinery; one
   message delivery, handled atomically. *)
let handle_message t acc ~me ~src ~now msg =
  if t.crashed.(me) then
    (* A crash-stop node loses everything that arrives while it is down. *)
    t.dropped_at_crashed <- t.dropped_at_crashed + 1
  else begin
    heard t acc ~me ~src ~now;
    let node = t.nodes.(me) in
    match (msg : Message.t) with
    | Message.Read_req { req; loc; epoch } -> (
        let fenced =
          (* The [Ignore_epoch_fence] mutation serves reads unconditionally:
             a deposed or restarted owner answers for locations it no longer
             serves. *)
          if t.config.Config.mutation = Config.Ignore_epoch_fence then None
          else fence node loc epoch
        in
        match fenced with
        | Some (base, my_epoch, serving) ->
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "STALE";
                   size = 1;
                   msg = Message.Stale_epoch { req; base; epoch = my_epoch; serving };
                 })
        | None ->
            let entry =
              match Node.lookup node loc with
              | Some e -> e
              | None ->
                  (* Served locations are always present after lookup; only
                     the fence mutation reaches here, answering for a
                     location this node does not serve. *)
                  Stamped.initial ~processes:(Array.length t.nodes) (t.config.Config.init loc)
            in
            let page = Node.page_entries node loc in
            note_access t ~src loc;
            let digest = digest_for t ~dst:src (Node.digest_export node) in
            let base = Node.base_owner_of node loc in
            flush t me acc;
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "R_REPLY";
                   size =
                     entry_wire_size t ~base (1 + List.length page)
                     + digest_wire_size t digest;
                   msg = Message.Read_reply { req; loc; entry; page; digest };
                 }))
    | Message.Write_req { req; loc; entry; digest; epoch } -> (
        match fence node loc epoch with
        | Some (base, my_epoch, serving) ->
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "STALE";
                   size = 1;
                   msg = Message.Stale_epoch { req; base; epoch = my_epoch; serving };
                 })
        | None when t.degraded.(me) ->
            (* Read-only degraded mode: certifying a write while cut off
               from the majority could fork this location's history against
               a quorum-elected replacement.  Stay silent — the client's
               RPC machinery times out and retries after the heal. *)
            t.degraded_refusals <- t.degraded_refusals + 1
        | None ->
            Node.digest_merge node digest;
            let accepted = ref false in
            let stored = Node.certify_write node loc entry ~accepted in
            flush t me acc;
            (* Durable before the reply leaves the node: an acknowledged
               write must survive a crash (the rejected case still logs the
               clock merge, so replay reaches the exact frontier). *)
            if !accepted then append t acc me (Log_record.Write { loc; entry = stored })
            else append t acc me (Log_record.Clock (Node.vt node));
            note_access t ~src loc;
            let digest = digest_for t ~dst:src (Node.digest_export node) in
            let reply =
              Message.Write_reply { req; loc; accepted = !accepted; entry = stored; digest }
            in
            let size =
              entry_wire_size t ~base:(Node.base_owner_of node loc) 1
              + digest_wire_size t digest
            in
            let wait = Reply { dst = src; kind = "W_REPLY"; size; msg = reply } in
            if !accepted then
              shadow_then t acc ~me ~base:(Node.base_owner_of node loc) [ (loc, stored) ] wait
            else complete t acc ~me wait)
    | Message.Heartbeat { view } ->
        List.iter (fun (base, epoch, serving) -> learn_view t acc ~me ~base ~epoch ~serving) view
    | Message.Takeover { base; epoch; serving } -> learn_view t acc ~me ~base ~epoch ~serving
    | Message.Shadow { seq; base; entries } ->
        List.iter
          (fun (loc, entry) ->
            Node.shadow_store node ~base loc entry;
            append t acc me (Log_record.Shadow_entry { base; loc; entry }))
          entries;
        act acc
          (Send
             { src = me; dst = src; kind = "SH_ACK"; size = 1; msg = Message.Shadow_ack { seq } })
    | Message.Shadow_ack { seq } -> (
        match Hashtbl.find_opt t.shadow_pending.(me) seq with
        | Some wait ->
            Hashtbl.remove t.shadow_pending.(me) seq;
            complete t acc ~me wait
        | None ->
            (* An ack after the grace timer already degraded, or for a
               fire-and-forget snapshot shadow: nothing left to do. *)
            ())
    | Message.Shadow_read_req { req; loc } ->
        (* Degraded read while the owner is suspected: serve the shadow copy
           (every acknowledged write is in it), the served copy if this
           backup already promoted, or the initial value if the location was
           never written — all live values under Definition 2. *)
        let base = Node.base_owner_of node loc in
        let entry =
          if Node.owns node loc then
            match Node.lookup node loc with Some e -> e | None -> assert false
          else
            match Node.shadow_lookup node ~base loc with
            | Some e -> e
            | None ->
                Stamped.initial ~processes:(Array.length t.nodes) (t.config.Config.init loc)
        in
        flush t me acc;
        act acc
          (Send
             {
               src = me;
               dst = src;
               kind = "SH_REPLY";
               size = entry_wire_size t ~base 1;
               msg = Message.Shadow_read_reply { req; loc; entry };
             })
    | Message.Vote_req { base; epoch; candidate } ->
        (* Grant iff the canvassed epoch is news, this node is not itself
           serving the base, the incumbent server also looks dead from
           here (check-quorum: silent beyond the detector window — a
           candidate's transient false suspicion must not be able to
           collect a quorum against a healthy owner everyone else still
           hears from), and no conflicting promise is outstanding at this
           or a higher epoch.  Re-asking (a retried canvass) re-sends the
           same grant — promises are idempotent per candidate. *)
        let server = Node.serving_of node ~base in
        let ok =
          epoch > Node.epoch_of node ~base
          && server <> me
          && (match t.detectors with
             | Some dets -> Detector.stale dets.(me) ~peer:server ~now
             | None -> false)
          && (match Hashtbl.find_opt t.promises.(me) base with
             | Some (promised_epoch, promised_to) ->
                 promised_to = candidate || epoch > promised_epoch
             | None -> true)
        in
        if ok then begin
          Hashtbl.replace t.promises.(me) base (epoch, candidate);
          t.votes_granted <- t.votes_granted + 1;
          emitq t acc (Trace.Vote_granted { node = me; candidate; base; epoch });
          act acc
            (Send
               {
                 src = me;
                 dst = src;
                 kind = "OWNER_VOTE";
                 size = 1;
                 msg = Message.Vote_grant { base; epoch; candidate };
               })
        end
    | Message.Vote_grant { base; epoch; candidate } -> (
        if candidate = me then
          match Hashtbl.find_opt t.candidacies.(me) base with
          | Some c when c.cand_epoch = epoch ->
              if not (List.mem src c.grants) then c.grants <- src :: c.grants;
              if List.length c.grants >= quorum_for t ~base then begin
                Hashtbl.remove t.candidacies.(me) base;
                (* The canvass can outlive its purpose: gossip may have
                   advanced the epoch while the votes were in flight. *)
                if epoch > Node.epoch_of node ~base then
                  promote_takeover t acc ~me ~base ~epoch
              end
          | Some _ | None -> ())
    | Message.Frontier { base; epoch = _; entries } ->
        (* Reconciliation from a demoted server: merge its entries
           newest-wins, make the winners durable, and re-shadow them so the
           recovered writes survive this node too. *)
        if Node.serving_of node ~base = me && entries <> [] then begin
          let won =
            List.filter (fun (loc, entry) -> Node.reconcile_served node loc entry) entries
          in
          flush t me acc;
          List.iter (fun (loc, entry) -> append t acc me (Log_record.Write { loc; entry })) won;
          append t acc me (Log_record.Clock (Node.vt node));
          match backup_of t ~serving:me with
          | Some backup when won <> [] && not (suspected t ~me ~peer:backup) ->
              let seq = next_shadow_seq t in
              send_shadow t acc ~me ~backup ~base ~seq won
          | _ -> ()
        end
    | Message.Cp_marker { round; initiator } ->
        (* First marker for a round: snapshot before touching anything that
           arrives later, then relay the marker on every other outgoing
           channel (Chandy–Lamport) and tell the initiator the snapshot is
           stable.  Later markers for the same round are duplicates. *)
        if round > t.cp_round.(me) then begin
          take_checkpoint t acc ~me ~round;
          let n = Array.length t.nodes in
          for dst = 0 to n - 1 do
            if dst <> me && dst <> src && dst <> initiator then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "CP_MARK";
                     size = 1;
                     msg = Message.Cp_marker { round; initiator };
                   })
          done;
          act acc
            (Send
               {
                 src = me;
                 dst = initiator;
                 kind = "CP_ACK";
                 size = 1;
                 msg = Message.Cp_ack { round };
               })
        end
    | Message.Cp_ack { round } -> (
        match Hashtbl.find_opt t.cp_acks.(me) round with
        | Some got ->
            let got = got + 1 in
            if got >= Array.length t.nodes - 1 then begin
              Hashtbl.remove t.cp_acks.(me) round;
              cp_round_complete t acc ~me ~round
            end
            else Hashtbl.replace t.cp_acks.(me) round got
        | None ->
            (* An ack for an already-completed round (relayed markers can
               produce none, but be robust) — nothing left to count. *)
            ())
    | Message.Sub_req { base } ->
        (* A share-set join: record the subscription server-side (so digests
           and takeover announcements start flowing to [src]) and ship a
           catch-up transfer of everything served for [base].  Installing
           those entries before any post-subscription read is what makes the
           join causally safe — the subscriber's clock advances past every
           write it could now be told about indirectly. *)
        (match t.sharding with
        | Some s ->
            let shard = Shard.of_base s base in
            if not (Shard.subscribed s ~shard ~node:src) then begin
              Shard.subscribe s ~shard ~node:src;
              refresh_watch_masks ~detectors:t.detectors ~sharding:t.sharding
                ~nodes:(Array.length t.nodes)
            end
        | None -> ());
        if Node.serving_of node ~base = me then begin
          let entries = Node.served_entries node ~base in
          act acc
            (Send
               {
                 src = me;
                 dst = src;
                 kind = "SUB_REPLY";
                 size = entry_wire_size t ~base (List.length entries);
                 msg = Message.Sub_reply { base; entries };
               })
        end
    | Message.Sub_reply { entries; _ } ->
        Node.install_batch node entries;
        flush t me acc
    | Message.Read_reply { req; _ }
    | Message.Write_reply { req; _ }
    | Message.Stale_epoch { req; _ }
    | Message.Shadow_read_reply { req; _ } ->
        (* Replies route to whichever process is waiting on the tag — a
           per-request ivar the shell owns; it also counts stale replies. *)
        act acc (Client_reply { node = me; req; msg })
  end

let step t event =
  let acc = ref [] in
  (match event with
  | Deliver { dst = me; src; now; msg } ->
      handle_message t acc ~me ~src ~now msg;
      flush t me acc
  | Hb_tick { node = me; now } -> (
      match t.detectors with
      | Some dets when not t.crashed.(me) ->
          let view = Node.view t.nodes.(me) in
          (* Heartbeats go to share-set peers only: liveness evidence about
             nodes this one shares no location with drives no decision here,
             so beaconing at them is pure overhead. *)
          List.iter
            (fun dst ->
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "HB";
                     size = 1 + List.length view;
                     msg = Message.Heartbeat { view };
                   }))
            (hb_targets t ~me);
          let newly = Detector.tick dets.(me) ~now in
          List.iter
            (fun peer ->
              emitq t acc (Trace.Suspect { node = me; peer });
              on_suspect t acc ~me ~peer)
            newly;
          (* Re-drive unanswered vote requests: message loss must not wedge
             a canvass short of quorum forever. *)
          let open_canvasses =
            Hashtbl.fold (fun base c acc -> (base, c) :: acc) t.candidacies.(me) []
            |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
          in
          List.iter
            (fun (base, c) ->
              List.iter
                (fun dst ->
                  if not (List.mem dst c.grants) then
                    act acc
                      (Send
                         {
                           src = me;
                           dst;
                           kind = "VOTE_REQ";
                           size = 1;
                           msg = Message.Vote_req { base; epoch = c.cand_epoch; candidate = me };
                         }))
                (ring_targets t ~me ~base))
            open_canvasses;
          maybe_degrade t acc ~me dets.(me);
          flush t me acc
      | _ -> ())
  | Grace_expired { node = me; seq } -> (
      match Hashtbl.find_opt t.shadow_pending.(me) seq with
      | Some wait ->
          (* The backup never acknowledged within the grace window: degrade
             to unreplicated operation rather than blocking the writer on a
             possibly-dead backup. *)
          Hashtbl.remove t.shadow_pending.(me) seq;
          degrade t acc ~me ~seq;
          complete t acc ~me wait
      | None -> ())
  | Owner_write { node = me; loc; value; writer } ->
      let node = t.nodes.(me) in
      let entry = Node.local_write node loc value in
      flush t me acc;
      append t acc me (Log_record.Write { loc; entry });
      act acc (Local_write_done { node = me; entry });
      (* Local writes replicate synchronously too: the writer stays blocked
         until the designated backup has the entry (or the grace timer
         degrades), so a takeover preserves read-your-writes for the
         owner's own operations. *)
      shadow_then t acc ~me ~base:(Node.base_owner_of node loc) [ (loc, entry) ]
        (Writer writer)
  | Learn_view { node = me; base; epoch; serving } ->
      learn_view t acc ~me ~base ~epoch ~serving;
      flush t me acc
  | Crash { node = me } ->
      t.crashed.(me) <- true;
      (* Pending shadow completions die with the node: the grace timer
         finds nothing and the acks go nowhere, exactly crash-stop.  Open
         checkpoint rounds this node initiated die the same way. *)
      Hashtbl.reset t.shadow_pending.(me);
      Hashtbl.reset t.cp_acks.(me);
      (* Canvasses, promises and degraded mode are volatile too. *)
      Hashtbl.reset t.candidacies.(me);
      Hashtbl.reset t.promises.(me);
      t.degraded.(me) <- false;
      emitq t acc (Trace.Crash { node = me })
  | Restart { node = me; now; records } ->
      let node = t.nodes.(me) in
      Node.reset_volatile node;
      (match t.detectors with Some dets -> Detector.reset dets.(me) ~now | None -> ());
      List.iter (fun record -> Node.apply_record node record) records;
      t.crashed.(me) <- false;
      flush t me acc;
      emitq t acc (Trace.Restart { node = me; replayed = List.length records })
  | Subscribe { node = me; shard } -> (
      (* Explicit share-set join ahead of access: subscribe, then ask the
         serving node of each base in the shard's ring for a catch-up
         transfer.  Ring members are born subscribed, and a crashed node
         cannot join. *)
      match t.sharding with
      | Some s
        when (not t.crashed.(me))
             && shard >= 0
             && shard < Shard.count s
             && not (Shard.subscribed s ~shard ~node:me) ->
          Shard.subscribe s ~shard ~node:me;
          refresh_watch_masks ~detectors:t.detectors ~sharding:t.sharding
            ~nodes:(Array.length t.nodes);
          let node = t.nodes.(me) in
          List.iter
            (fun base ->
              let serving = Node.serving_of node ~base in
              if serving <> me then
                act acc
                  (Send
                     {
                       src = me;
                       dst = serving;
                       kind = "SUB_REQ";
                       size = 1;
                       msg = Message.Sub_req { base };
                     }))
            (Shard.ring s shard)
      | _ -> ())
  | Unsubscribe { node = me; shard } -> (
      (* Leaving a share-set drops the cached copies whose invalidation
         metadata will no longer arrive — keeping them would serve reads
         nothing can ever invalidate.  Ring members cannot leave (the
         shard's quorum arithmetic depends on them). *)
      match t.sharding with
      | Some s
        when (not t.crashed.(me))
             && shard >= 0
             && shard < Shard.count s
             && Shard.subscribed s ~shard ~node:me
             && not (Shard.in_ring s ~shard ~node:me) ->
          Shard.unsubscribe s ~shard ~node:me;
          refresh_watch_masks ~detectors:t.detectors ~sharding:t.sharding
            ~nodes:(Array.length t.nodes);
          let node = t.nodes.(me) in
          List.iter
            (fun loc ->
              if Shard.of_loc s loc = shard && not (Node.owns node loc) then
                ignore (Node.discard_one node loc))
            (Node.cached_locs node);
          flush t me acc
      | _ -> ())
  | Begin_checkpoint { node = me } ->
      if not t.crashed.(me) then begin
        let round = t.cp_seq + 1 in
        t.cp_started <- t.cp_started + 1;
        take_checkpoint t acc ~me ~round;
        let n = Array.length t.nodes in
        if n = 1 then cp_round_complete t acc ~me ~round
        else begin
          Hashtbl.replace t.cp_acks.(me) round 0;
          for dst = 0 to n - 1 do
            if dst <> me then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "CP_MARK";
                     size = 1;
                     msg = Message.Cp_marker { round; initiator = me };
                   })
          done
        end
      end);
  (t, List.rev !acc)
