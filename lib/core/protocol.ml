module Loc = Dsm_memory.Loc
module Owner = Dsm_memory.Owner

type completion =
  | Reply of { dst : int; kind : string; size : int; msg : Message.t }
  | Writer of int

type event =
  | Deliver of { dst : int; src : int; now : float; msg : Message.t }
  | Hb_tick of { node : int; now : float }
  | Grace_expired of { node : int; seq : int }
  | Owner_write of { node : int; loc : Loc.t; value : Dsm_memory.Value.t; writer : int }
  | Learn_view of { node : int; base : int; epoch : int; serving : int }
  | Crash of { node : int }
  | Restart of { node : int; now : float; records : Log_record.t list }
  | Begin_checkpoint of { node : int }

type action =
  | Send of { src : int; dst : int; kind : string; size : int; msg : Message.t }
  | Client_reply of { node : int; req : int; msg : Message.t }
  | Wake_writer of { node : int; writer : int }
  | Append of { node : int; record : Log_record.t }
  | Arm_grace of { node : int; seq : int }
  | Local_write_done of { node : int; entry : Stamped.t }
  | Take_checkpoint of { node : int; round : int }
  | Emit of Trace.body

type state = {
  nodes : Node.t array;
  owner : Owner.t;
  config : Config.t;
  crashed : bool array;
  detectors : Detector.t array option; (* Some iff failover is enabled *)
  shadow_pending : (int, completion) Hashtbl.t array;
  mutable shadow_seq : int;
  mutable dropped_at_crashed : int;
  mutable takeovers : int;
  mutable shadow_degraded : int;
  (* Coordinated checkpoints: the highest round each node has snapshotted,
     and (at initiators) the outstanding ack counts per open round. *)
  cp_round : int array;
  cp_acks : (int, int) Hashtbl.t array;
  mutable cp_seq : int;
  mutable cp_started : int;
  mutable cp_completed : int;
  mutable tracing : bool;
}

let create ~owner ~config ?detector ~now () =
  let processes = Owner.nodes owner in
  let detectors =
    (* Failover needs a peer to fail over to. *)
    match detector with
    | Some cfg when processes >= 2 ->
        Some (Array.init processes (fun me -> Detector.create cfg ~nodes:processes ~me ~now))
    | Some _ | None -> None
  in
  {
    nodes = Array.init processes (fun id -> Node.create ~id ~owner ~config);
    owner;
    config;
    crashed = Array.make processes false;
    detectors;
    shadow_pending = Array.init processes (fun _ -> Hashtbl.create 8);
    shadow_seq = 0;
    dropped_at_crashed = 0;
    takeovers = 0;
    shadow_degraded = 0;
    cp_round = Array.make processes 0;
    cp_acks = Array.init processes (fun _ -> Hashtbl.create 4);
    cp_seq = 0;
    cp_started = 0;
    cp_completed = 0;
    tracing = false;
  }

let processes t = Array.length t.nodes

let node t pid = t.nodes.(pid)

let is_crashed t pid = t.crashed.(pid)

let failover_on t = t.detectors <> None

let suspected t ~me ~peer =
  match t.detectors with Some dets -> Detector.suspected dets.(me) peer | None -> false

let backup_of t ~serving =
  let n = Array.length t.nodes in
  let b = (serving + 1) mod n in
  if b = serving then None else Some b

(* The cluster-wide view: per base, the highest epoch any node has adopted. *)
let view t =
  let n = Array.length t.nodes in
  let best = Array.init n (fun base -> (0, base)) in
  Array.iter
    (fun node ->
      List.iter
        (fun (base, epoch, serving) ->
          let e, _ = best.(base) in
          if epoch > e then best.(base) <- (epoch, serving))
        (Node.view node))
    t.nodes;
  let acc = ref [] in
  for base = n - 1 downto 0 do
    let e, s = best.(base) in
    if e > 0 then acc := (base, e, s) :: !acc
  done;
  !acc

let dropped_at_crashed t = t.dropped_at_crashed

let takeovers t = t.takeovers

let shadow_degraded t = t.shadow_degraded

let suspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.suspect_events d) 0 dets

let unsuspect_events t =
  match t.detectors with
  | None -> 0
  | Some dets -> Array.fold_left (fun acc d -> acc + Detector.unsuspect_events d) 0 dets

let suspected_by t pid =
  match t.detectors with None -> [] | Some dets -> Detector.suspected_now dets.(pid)

let shadow_pending_list t pid =
  Hashtbl.fold (fun seq wait acc -> (seq, wait) :: acc) t.shadow_pending.(pid) []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let shadow_seqno t = t.shadow_seq

let checkpoint_round t pid = t.cp_round.(pid)

let checkpoint_rounds_started t = t.cp_started

let checkpoint_rounds_completed t = t.cp_completed

let checkpoint_acks_pending t pid =
  Hashtbl.fold (fun round got acc -> (round, got) :: acc) t.cp_acks.(pid) []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let set_tracing t on =
  t.tracing <- on;
  Array.iter (fun node -> Node.set_tracing node on) t.nodes

(* {1 Action accumulation}

   Actions are consed onto a reversed list and flipped once at the end of
   [step]. *)

let act acc a = acc := a :: !acc

let emitq t acc body = if t.tracing then act acc (Emit body)

(* Node mutators queue their own trace bodies internally (they cannot emit
   effects); [flush] moves whatever one node queued into the action list at
   the point the caller chooses, preserving order. *)
let flush t me acc =
  if t.tracing then List.iter (fun body -> act acc (Emit body)) (Node.drain_trace t.nodes.(me))

let entry_wire_size t count = count * t.config.Config.entry_size (Owner.nodes t.owner)

let digest_wire_size t digest = Write_digest.wire_size digest ~dim:(Owner.nodes t.owner)

let append t acc me record =
  act acc (Append { node = me; record });
  emitq t acc (Trace.Wal_append { node = me; kind = Log_record.kind record })

(* Any delivery is proof of life: protocol traffic unsuspects a peer just
   as heartbeats do. *)
let heard t acc ~me ~src ~now =
  match t.detectors with
  | Some dets when src <> me ->
      if Detector.heard dets.(me) ~peer:src ~now then
        emitq t acc (Trace.Unsuspect { node = me; peer = src })
  | _ -> ()

(* Fold in a view entry learned from any channel (takeover broadcast,
   heartbeat gossip, fencing reply), logging real changes for replay. *)
let learn_view t acc ~me ~base ~epoch ~serving =
  match Node.adopt_view t.nodes.(me) ~base ~epoch ~serving with
  | Node.View_ignored -> ()
  | Node.View_adopted | Node.View_demoted ->
      flush t me acc;
      append t acc me (Log_record.View_change { base; epoch; serving })

let next_shadow_seq t =
  let s = t.shadow_seq in
  t.shadow_seq <- s + 1;
  s

let send_shadow t acc ~me ~backup ~base ~seq entries =
  act acc
    (Send
       {
         src = me;
         dst = backup;
         kind = "SHADOW";
         size = entry_wire_size t (List.length entries);
         msg = Message.Shadow { seq; base; entries };
       })

let complete t acc ~me wait =
  match wait with
  | Reply { dst; kind; size; msg } ->
      (* The owner may have crashed while the shadow was in flight; a dead
         node sends nothing. *)
      if not t.crashed.(me) then act acc (Send { src = me; dst; kind; size; msg })
  | Writer writer ->
      (* Always wake the blocked writer — its write completed before any
         crash could happen (crashes strike between operations). *)
      act acc (Wake_writer { node = me; writer })

let degrade t acc ~me ~seq =
  t.shadow_degraded <- t.shadow_degraded + 1;
  emitq t acc (Trace.Shadow_degraded { node = me; seq })

(* Replicate freshly certified [entries] of [base] to the designated backup
   and run [wait]'s completion once acknowledged.  Degrades to completing
   immediately when failover is off or the backup is itself suspected.
   The [Reorder_apply_ack] mutation acknowledges first and replicates
   asynchronously; [Skip_shadow_replication] never replicates at all. *)
let shadow_then t acc ~me ~base entries wait =
  let proceed () = complete t acc ~me wait in
  match t.config.Config.mutation with
  | Config.Skip_shadow_replication -> proceed ()
  | Config.Reorder_apply_ack ->
      proceed ();
      if failover_on t then begin
        match backup_of t ~serving:me with
        | Some backup when not (suspected t ~me ~peer:backup) ->
            let seq = next_shadow_seq t in
            send_shadow t acc ~me ~backup ~base ~seq entries
        | Some _ | None -> ()
      end
  | _ ->
      if not (failover_on t) then proceed ()
      else (
        match backup_of t ~serving:me with
        | None -> proceed ()
        | Some backup when suspected t ~me ~peer:backup ->
            degrade t acc ~me ~seq:(-1);
            proceed ()
        | Some backup ->
            let seq = next_shadow_seq t in
            Hashtbl.replace t.shadow_pending.(me) seq wait;
            send_shadow t acc ~me ~backup ~base ~seq entries;
            act acc (Arm_grace { node = me; seq }))

(* Epoch fencing: a request is served only by the node currently serving
   the location under an epoch at least as new as the client's.  Everything
   else gets the server's own view back and re-routes. *)
let fence node loc epoch =
  let base = Node.base_owner_of node loc in
  if (not (Node.owns node loc)) || epoch < Node.epoch_of node ~base then
    Some (base, Node.epoch_of node ~base, Node.serving_of node ~base)
  else None

(* Record a checkpoint for [round] at [me]: the caller (shell or model)
   must snapshot the node's state onto stable storage before any later
   event runs at this node — that ordering is what makes the per-node
   snapshots a consistent cut over FIFO links. *)
let take_checkpoint t acc ~me ~round =
  t.cp_round.(me) <- round;
  if round > t.cp_seq then t.cp_seq <- round;
  act acc (Take_checkpoint { node = me; round });
  emitq t acc (Trace.Checkpoint_taken { node = me; round })

let cp_round_complete t acc ~me ~round =
  t.cp_completed <- t.cp_completed + 1;
  emitq t acc (Trace.Recovery_line { node = me; round })

(* A heartbeat tick suspecting [peer] triggers handoff: if this node is the
   designated backup for a base [peer] was serving, it promotes itself
   under the next epoch, broadcasts the takeover, and primes its own backup
   with the inherited state. *)
let on_suspect t acc ~me ~peer =
  let node = t.nodes.(me) in
  let n = Array.length t.nodes in
  for base = 0 to n - 1 do
    if Node.serving_of node ~base = peer then
      match backup_of t ~serving:peer with
      | Some b when b = me ->
          let epoch = Node.epoch_of node ~base + 1 in
          let inherited = Node.promote node ~base ~epoch in
          t.takeovers <- t.takeovers + 1;
          flush t me acc;
          append t acc me (Log_record.View_change { base; epoch; serving = me });
          for dst = 0 to n - 1 do
            if dst <> me then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "TAKEOVER";
                     size = 1;
                     msg = Message.Takeover { base; epoch; serving = me };
                   })
          done;
          (match backup_of t ~serving:me with
          | Some next_backup
            when next_backup <> peer
                 && (not (suspected t ~me ~peer:next_backup))
                 && inherited <> [] ->
              (* Fire-and-forget snapshot: no reply is gated on it, the
                 per-write shadows that follow keep it current. *)
              let seq = next_shadow_seq t in
              send_shadow t acc ~me ~backup:next_backup ~base ~seq inherited
          | _ -> ())
      | _ -> ()
  done

(* The owner-side services of Figure 4 plus the failover machinery; one
   message delivery, handled atomically. *)
let handle_message t acc ~me ~src ~now msg =
  if t.crashed.(me) then
    (* A crash-stop node loses everything that arrives while it is down. *)
    t.dropped_at_crashed <- t.dropped_at_crashed + 1
  else begin
    heard t acc ~me ~src ~now;
    let node = t.nodes.(me) in
    match (msg : Message.t) with
    | Message.Read_req { req; loc; epoch } -> (
        let fenced =
          (* The [Ignore_epoch_fence] mutation serves reads unconditionally:
             a deposed or restarted owner answers for locations it no longer
             serves. *)
          if t.config.Config.mutation = Config.Ignore_epoch_fence then None
          else fence node loc epoch
        in
        match fenced with
        | Some (base, my_epoch, serving) ->
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "STALE";
                   size = 1;
                   msg = Message.Stale_epoch { req; base; epoch = my_epoch; serving };
                 })
        | None ->
            let entry =
              match Node.lookup node loc with
              | Some e -> e
              | None ->
                  (* Served locations are always present after lookup; only
                     the fence mutation reaches here, answering for a
                     location this node does not serve. *)
                  Stamped.initial ~processes:(Array.length t.nodes) (t.config.Config.init loc)
            in
            let page = Node.page_entries node loc in
            let digest = Node.digest_export node in
            flush t me acc;
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "R_REPLY";
                   size = entry_wire_size t (1 + List.length page) + digest_wire_size t digest;
                   msg = Message.Read_reply { req; loc; entry; page; digest };
                 }))
    | Message.Write_req { req; loc; entry; digest; epoch } -> (
        match fence node loc epoch with
        | Some (base, my_epoch, serving) ->
            act acc
              (Send
                 {
                   src = me;
                   dst = src;
                   kind = "STALE";
                   size = 1;
                   msg = Message.Stale_epoch { req; base; epoch = my_epoch; serving };
                 })
        | None ->
            Node.digest_merge node digest;
            let accepted = ref false in
            let stored = Node.certify_write node loc entry ~accepted in
            flush t me acc;
            (* Durable before the reply leaves the node: an acknowledged
               write must survive a crash (the rejected case still logs the
               clock merge, so replay reaches the exact frontier). *)
            if !accepted then append t acc me (Log_record.Write { loc; entry = stored })
            else append t acc me (Log_record.Clock (Node.vt node));
            let digest = Node.digest_export node in
            let reply =
              Message.Write_reply { req; loc; accepted = !accepted; entry = stored; digest }
            in
            let size = entry_wire_size t 1 + digest_wire_size t digest in
            let wait = Reply { dst = src; kind = "W_REPLY"; size; msg = reply } in
            if !accepted then
              shadow_then t acc ~me ~base:(Node.base_owner_of node loc) [ (loc, stored) ] wait
            else complete t acc ~me wait)
    | Message.Heartbeat { view } ->
        List.iter (fun (base, epoch, serving) -> learn_view t acc ~me ~base ~epoch ~serving) view
    | Message.Takeover { base; epoch; serving } -> learn_view t acc ~me ~base ~epoch ~serving
    | Message.Shadow { seq; base; entries } ->
        List.iter
          (fun (loc, entry) ->
            Node.shadow_store node ~base loc entry;
            append t acc me (Log_record.Shadow_entry { base; loc; entry }))
          entries;
        act acc
          (Send
             { src = me; dst = src; kind = "SH_ACK"; size = 1; msg = Message.Shadow_ack { seq } })
    | Message.Shadow_ack { seq } -> (
        match Hashtbl.find_opt t.shadow_pending.(me) seq with
        | Some wait ->
            Hashtbl.remove t.shadow_pending.(me) seq;
            complete t acc ~me wait
        | None ->
            (* An ack after the grace timer already degraded, or for a
               fire-and-forget snapshot shadow: nothing left to do. *)
            ())
    | Message.Shadow_read_req { req; loc } ->
        (* Degraded read while the owner is suspected: serve the shadow copy
           (every acknowledged write is in it), the served copy if this
           backup already promoted, or the initial value if the location was
           never written — all live values under Definition 2. *)
        let base = Node.base_owner_of node loc in
        let entry =
          if Node.owns node loc then
            match Node.lookup node loc with Some e -> e | None -> assert false
          else
            match Node.shadow_lookup node ~base loc with
            | Some e -> e
            | None ->
                Stamped.initial ~processes:(Array.length t.nodes) (t.config.Config.init loc)
        in
        flush t me acc;
        act acc
          (Send
             {
               src = me;
               dst = src;
               kind = "SH_REPLY";
               size = entry_wire_size t 1;
               msg = Message.Shadow_read_reply { req; loc; entry };
             })
    | Message.Cp_marker { round; initiator } ->
        (* First marker for a round: snapshot before touching anything that
           arrives later, then relay the marker on every other outgoing
           channel (Chandy–Lamport) and tell the initiator the snapshot is
           stable.  Later markers for the same round are duplicates. *)
        if round > t.cp_round.(me) then begin
          take_checkpoint t acc ~me ~round;
          let n = Array.length t.nodes in
          for dst = 0 to n - 1 do
            if dst <> me && dst <> src && dst <> initiator then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "CP_MARK";
                     size = 1;
                     msg = Message.Cp_marker { round; initiator };
                   })
          done;
          act acc
            (Send
               {
                 src = me;
                 dst = initiator;
                 kind = "CP_ACK";
                 size = 1;
                 msg = Message.Cp_ack { round };
               })
        end
    | Message.Cp_ack { round } -> (
        match Hashtbl.find_opt t.cp_acks.(me) round with
        | Some got ->
            let got = got + 1 in
            if got >= Array.length t.nodes - 1 then begin
              Hashtbl.remove t.cp_acks.(me) round;
              cp_round_complete t acc ~me ~round
            end
            else Hashtbl.replace t.cp_acks.(me) round got
        | None ->
            (* An ack for an already-completed round (relayed markers can
               produce none, but be robust) — nothing left to count. *)
            ())
    | Message.Read_reply { req; _ }
    | Message.Write_reply { req; _ }
    | Message.Stale_epoch { req; _ }
    | Message.Shadow_read_reply { req; _ } ->
        (* Replies route to whichever process is waiting on the tag — a
           per-request ivar the shell owns; it also counts stale replies. *)
        act acc (Client_reply { node = me; req; msg })
  end

let step t event =
  let acc = ref [] in
  (match event with
  | Deliver { dst = me; src; now; msg } ->
      handle_message t acc ~me ~src ~now msg;
      flush t me acc
  | Hb_tick { node = me; now } -> (
      match t.detectors with
      | Some dets when not t.crashed.(me) ->
          let view = Node.view t.nodes.(me) in
          let n = Array.length t.nodes in
          for dst = 0 to n - 1 do
            if dst <> me then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "HB";
                     size = 1 + List.length view;
                     msg = Message.Heartbeat { view };
                   })
          done;
          let newly = Detector.tick dets.(me) ~now in
          List.iter
            (fun peer ->
              emitq t acc (Trace.Suspect { node = me; peer });
              on_suspect t acc ~me ~peer)
            newly;
          flush t me acc
      | _ -> ())
  | Grace_expired { node = me; seq } -> (
      match Hashtbl.find_opt t.shadow_pending.(me) seq with
      | Some wait ->
          (* The backup never acknowledged within the grace window: degrade
             to unreplicated operation rather than blocking the writer on a
             possibly-dead backup. *)
          Hashtbl.remove t.shadow_pending.(me) seq;
          degrade t acc ~me ~seq;
          complete t acc ~me wait
      | None -> ())
  | Owner_write { node = me; loc; value; writer } ->
      let node = t.nodes.(me) in
      let entry = Node.local_write node loc value in
      flush t me acc;
      append t acc me (Log_record.Write { loc; entry });
      act acc (Local_write_done { node = me; entry });
      (* Local writes replicate synchronously too: the writer stays blocked
         until the designated backup has the entry (or the grace timer
         degrades), so a takeover preserves read-your-writes for the
         owner's own operations. *)
      shadow_then t acc ~me ~base:(Node.base_owner_of node loc) [ (loc, entry) ]
        (Writer writer)
  | Learn_view { node = me; base; epoch; serving } ->
      learn_view t acc ~me ~base ~epoch ~serving;
      flush t me acc
  | Crash { node = me } ->
      t.crashed.(me) <- true;
      (* Pending shadow completions die with the node: the grace timer
         finds nothing and the acks go nowhere, exactly crash-stop.  Open
         checkpoint rounds this node initiated die the same way. *)
      Hashtbl.reset t.shadow_pending.(me);
      Hashtbl.reset t.cp_acks.(me);
      emitq t acc (Trace.Crash { node = me })
  | Restart { node = me; now; records } ->
      let node = t.nodes.(me) in
      Node.reset_volatile node;
      (match t.detectors with Some dets -> Detector.reset dets.(me) ~now | None -> ());
      List.iter (fun record -> Node.apply_record node record) records;
      t.crashed.(me) <- false;
      flush t me acc;
      emitq t acc (Trace.Restart { node = me; replayed = List.length records })
  | Begin_checkpoint { node = me } ->
      if not t.crashed.(me) then begin
        let round = t.cp_seq + 1 in
        t.cp_started <- t.cp_started + 1;
        take_checkpoint t acc ~me ~round;
        let n = Array.length t.nodes in
        if n = 1 then cp_round_complete t acc ~me ~round
        else begin
          Hashtbl.replace t.cp_acks.(me) round 0;
          for dst = 0 to n - 1 do
            if dst <> me then
              act acc
                (Send
                   {
                     src = me;
                     dst;
                     kind = "CP_MARK";
                     size = 1;
                     msg = Message.Cp_marker { round; initiator = me };
                   })
          done
        end
      end);
  (t, List.rev !acc)
