type granularity = Word | Page of int

type discard = No_discard | Periodic of float | Capacity of int

type invalidation = Coarse | Precise

type mutation =
  | No_mutation
  | Skip_invalidation
  | Skip_writestamp_merge
  | Reorder_apply_ack
  | Ignore_epoch_fence
  | Skip_shadow_replication
  | Truncate_wal_early
  | Takeover_without_quorum
  | Prune_share_set_wrongly
  | Merge_drops_op

let mutations =
  [
    ("skip-invalidation", Skip_invalidation);
    ("skip-writestamp-merge", Skip_writestamp_merge);
    ("reorder-apply-ack", Reorder_apply_ack);
    ("ignore-epoch-fence", Ignore_epoch_fence);
    ("skip-shadow-replication", Skip_shadow_replication);
    ("truncate-wal-early", Truncate_wal_early);
    ("takeover-without-quorum", Takeover_without_quorum);
    ("prune-share-set-wrongly", Prune_share_set_wrongly);
    ("merge-drops-op", Merge_drops_op);
  ]

let mutation_name = function
  | No_mutation -> "none"
  | m -> fst (List.find (fun (_, m') -> m = m') mutations)

let mutation_of_string = function
  | "none" -> Some No_mutation
  | s -> List.assoc_opt s mutations

type t = {
  granularity : granularity;
  discard : discard;
  invalidation : invalidation;
  policy : Policy.t;
  init : Dsm_memory.Loc.t -> Dsm_memory.Value.t;
  read_request_size : int;
  entry_size : int -> int;
  mutation : mutation;
}

let default =
  {
    granularity = Word;
    discard = No_discard;
    invalidation = Coarse;
    policy = Policy.Last_writer_wins;
    init = (fun _ -> Dsm_memory.Value.initial);
    read_request_size = 1;
    entry_size = (fun dim -> 2 + dim);
    mutation = No_mutation;
  }

let with_policy policy t = { t with policy }

let with_granularity granularity t = { t with granularity }

let with_discard discard t = { t with discard }

let with_invalidation invalidation t = { t with invalidation }

let with_init init t = { t with init }

let with_mutation mutation t = { t with mutation }

let page_of granularity loc =
  match granularity with
  | Word -> None
  | Page size -> (
      match loc with
      | Dsm_memory.Loc.Indexed (name, i) -> Some (name, i / size)
      | Dsm_memory.Loc.Cell (name, i, j) -> Some (Printf.sprintf "%s.%d" name i, j / size)
      | Dsm_memory.Loc.Named _ -> None)

let validate t =
  (match t.granularity with
  | Word -> ()
  | Page size -> if size < 2 then invalid_arg "Config: page size must be >= 2");
  match t.discard with
  | No_discard -> ()
  | Periodic period -> if period <= 0.0 then invalid_arg "Config: discard period must be positive"
  | Capacity cap -> if cap < 1 then invalid_arg "Config: cache capacity must be >= 1"
