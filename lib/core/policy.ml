type outcome = Accept | Reject

type t =
  | Last_writer_wins
  | Owner_favored
  | Custom of (owner:int -> current:Stamped.t -> incoming:Stamped.t -> outcome)

let resolve t ~owner ~current ~incoming =
  match t with
  | Last_writer_wins -> Accept
  | Owner_favored ->
      if (current : Stamped.t).wid.node = owner then Reject else Accept
  | Custom f -> f ~owner ~current ~incoming

let decide t ~owner ~current ~incoming =
  match Vclock.compare_vt (incoming : Stamped.t).stamp (current : Stamped.t).stamp with
  | Vclock.After -> Accept
  | Vclock.Concurrent -> resolve t ~owner ~current ~incoming
  | Vclock.Before | Vclock.Equal -> Reject

let pp ppf = function
  | Last_writer_wins -> Format.pp_print_string ppf "last-writer-wins"
  | Owner_favored -> Format.pp_print_string ppf "owner-favored"
  | Custom _ -> Format.pp_print_string ppf "custom"
