(** Durable owner state: a per-node write-ahead log on a simulated disk.

    The Figure 4 owner protocol keeps each location's authoritative copy in
    one node's volatile memory, so before this module an owner crash lost
    certified writes forever ({!Node.reset_volatile} refused owner nodes).
    The WAL makes owner crashes survivable: every certified write (and every
    clock merge a rejected certification performed) is appended before the
    reply leaves the node, so a restart can replay the log and reach the
    exact pre-crash writestamp frontier.

    The "disk" is an in-memory store shared by all nodes of a cluster that
    survives {!Node.reset_volatile} — the simulated analogue of stable
    storage.  Sync faults can be injected ({!Disk.fail_next_syncs}) to
    exercise the append error path: a failed append raises {!Sync_failed}
    and logs nothing, modelling a full or failing device.

    Periodic {e checkpoints} bound recovery work.  {!checkpoint} appends a
    snapshot record (it does {e not} rewrite the log in place — the previous
    contents stay until an explicit {!compact}), and {!replay} returns only
    the newest {e complete} snapshot plus the records appended after it, so
    recovery cost is [O(snapshot + records since checkpoint)] instead of the
    node's whole history.  A checkpoint write can be {e torn}
    ({!Disk.tear_next_checkpoints}): the writer believes it succeeded, but
    recovery detects the damage (a failed checksum) and falls back to the
    previous complete snapshot — which {!compact} is careful never to
    discard. *)

(** The stable store.  One [Disk.t] backs every node of a cluster; each
    node's log lives under its node id. *)
module Disk : sig
  type t

  val create : unit -> t

  val fail_next_syncs : t -> int -> unit
  (** Make the next [n] appends/checkpoints (across all nodes on this disk)
      raise {!Sync_failed} without logging anything. *)

  val sync_failures : t -> int
  (** Injected sync failures that have fired so far. *)

  val tear_next_checkpoints : t -> int -> unit
  (** Make the next [n] checkpoint writes (across all nodes on this disk)
      {e tear}: the snapshot is written damaged and the writer sees success
      — the crash-during-checkpoint failure mode.  The damage surfaces only
      at recovery, when {!replay} skips the torn snapshot and anchors on the
      previous complete one. *)

  val corrupt_next_records : t -> int -> unit
  (** Make the next [n] appends/checkpoints (across all nodes on this disk)
      write a {e corrupted} record: the contents land damaged while the
      stored per-record checksum no longer matches them — bit rot or a
      misdirected write, as opposed to a torn (partially missing)
      checkpoint.  The writer sees success; only the recovery-time checksum
      walk ({!replay}) detects and skips the record.  A corrupted checkpoint
      is never a recovery anchor, so replay falls back to the previous
      complete one, exactly as for a torn checkpoint. *)

  val corruptions : t -> int
  (** Injected record corruptions that have fired so far. *)
end

exception Sync_failed of int
(** Raised by {!append}/{!checkpoint} under an injected sync fault; the
    argument is the node id whose write was lost. *)

type snapshot = Dsm_protocol.Log_record.snapshot = {
  snap_clock : Vclock.t;  (** the node's vector clock at checkpoint time *)
  snap_view : (int * int * int) list;
      (** non-default ownership view entries: [(base, epoch, serving)] *)
  snap_served : (Dsm_memory.Loc.t * Dsm_protocol.Stamped.t) list;
      (** every location the node currently serves (base-owned or inherited
          via takeover) *)
  snap_shadows : (int * (Dsm_memory.Loc.t * Dsm_protocol.Stamped.t) list) list;
      (** shadow copies held as backup, grouped by base owner *)
}

(** Record and snapshot types are defined in {!Log_record} (the pure
    protocol library, which logs them as data without knowing about this
    module's disk) and re-exported here by equation, so [Wal.Write] and
    [Log_record.Write] are the same constructor. *)
type record = Dsm_protocol.Log_record.t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Dsm_protocol.Stamped.t }
      (** a write this node certified (or performed locally) as owner *)
  | Clock of Vclock.t
      (** a clock merge with no stored entry (rejected certification) — kept
          so replay reaches the exact pre-crash clock frontier *)
  | View_change of { base : int; epoch : int; serving : int }
      (** an adopted or self-originated ownership epoch change *)
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Dsm_protocol.Stamped.t }
      (** a backup copy accepted from the owner of [base] *)
  | Checkpoint of snapshot  (** full-state snapshot appended by {!checkpoint} *)

type t
(** One node's log handle. *)

val attach : Disk.t -> node:int -> t
(** The node's log on [disk], created empty on first attach.  Attaching
    again (after a simulated restart) returns the same log contents. *)

val node : t -> int

val append : t -> record -> unit
(** Append and sync one record.  Raises {!Sync_failed} (logging nothing)
    when a sync fault is injected. *)

val checkpoint : t -> snapshot -> unit
(** Append [Checkpoint snapshot] to the log.  Raises {!Sync_failed}
    (leaving the log intact) under a sync fault; under an injected tear
    ({!Disk.tear_next_checkpoints}) the snapshot is written damaged and no
    error is reported.  Does not truncate — call {!compact} once the
    checkpoint is stable. *)

val compact : ?extra:int -> t -> int
(** Truncate everything strictly older than the newest {e complete}
    checkpoint, returning the number of entries dropped (0 when there is no
    complete checkpoint to anchor on, or nothing older than it).  A torn
    newest checkpoint is never used as the anchor, so the previous complete
    snapshot — the one recovery would fall back to — always survives.

    [extra] (default 0, test-only) drops that many additional entries
    {e past} the safe boundary, starting with the anchor checkpoint itself:
    the off-by-one truncation bug the model checker's
    [Truncate_wal_early] mutation must catch. *)

val replay : t -> record list
(** The recovery stream, oldest-first: the newest complete [Checkpoint]
    followed by every record appended after it.  Every record's per-record
    checksum is verified on the way: torn checkpoints and corrupted records
    ({!Disk.corrupt_next_records}) are detected and skipped — if the newest
    checkpoint is torn or corrupted, replay anchors on the previous
    complete one (plus the longer suffix, including the records between the
    two), so a crash during a checkpoint write loses nothing.  With no
    complete checkpoint at all, the whole log. *)

val corrupted_records : t -> int
(** Records currently in the log whose stored checksum fails verification
    (torn checkpoints excluded — those are counted by
    {!torn_checkpoints}). *)

val length : t -> int
(** Entries physically in the log (torn checkpoints included). *)

val records_since_checkpoint : t -> int
(** Entries newer than the recovery anchor — the suffix replay must apply
    on top of the snapshot.  Equals {!length} when no complete checkpoint
    exists. *)

(** {1 Accounting} *)

val appends : t -> int
(** Successful appends over the log's lifetime (checkpoints excluded). *)

val checkpoints : t -> int
(** Checkpoint records written (torn ones included — the writer can't
    tell). *)

val torn_checkpoints : t -> int
(** Checkpoint writes that tore. *)

val compactions : t -> int
(** {!compact} calls that dropped at least one entry. *)

val truncated : t -> int
(** Entries dropped by compaction over the log's lifetime. *)
