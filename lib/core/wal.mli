(** Durable owner state: a per-node write-ahead log on a simulated disk.

    The Figure 4 owner protocol keeps each location's authoritative copy in
    one node's volatile memory, so before this module an owner crash lost
    certified writes forever ({!Node.reset_volatile} refused owner nodes).
    The WAL makes owner crashes survivable: every certified write (and every
    clock merge a rejected certification performed) is appended before the
    reply leaves the node, so a restart can replay the log and reach the
    exact pre-crash writestamp frontier.

    The "disk" is an in-memory store shared by all nodes of a cluster that
    survives {!Node.reset_volatile} — the simulated analogue of stable
    storage.  Sync faults can be injected ({!Disk.fail_next_syncs}) to
    exercise the append error path: a failed append raises {!Sync_failed}
    and logs nothing, modelling a full or failing device.

    Periodic {e checkpoints} bound replay work: {!checkpoint} atomically
    replaces the whole log with a single snapshot record, so replay cost is
    [O(snapshot + writes since last checkpoint)] instead of the node's whole
    history. *)

(** The stable store.  One [Disk.t] backs every node of a cluster; each
    node's log lives under its node id. *)
module Disk : sig
  type t

  val create : unit -> t

  val fail_next_syncs : t -> int -> unit
  (** Make the next [n] appends/checkpoints (across all nodes on this disk)
      raise {!Sync_failed} without logging anything. *)

  val sync_failures : t -> int
  (** Injected sync failures that have fired so far. *)
end

exception Sync_failed of int
(** Raised by {!append}/{!checkpoint} under an injected sync fault; the
    argument is the node id whose write was lost. *)

type snapshot = Dsm_protocol.Log_record.snapshot = {
  snap_clock : Vclock.t;  (** the node's vector clock at checkpoint time *)
  snap_view : (int * int * int) list;
      (** non-default ownership view entries: [(base, epoch, serving)] *)
  snap_served : (Dsm_memory.Loc.t * Dsm_protocol.Stamped.t) list;
      (** every location the node currently serves (base-owned or inherited
          via takeover) *)
  snap_shadows : (int * (Dsm_memory.Loc.t * Dsm_protocol.Stamped.t) list) list;
      (** shadow copies held as backup, grouped by base owner *)
}

(** Record and snapshot types are defined in {!Log_record} (the pure
    protocol library, which logs them as data without knowing about this
    module's disk) and re-exported here by equation, so [Wal.Write] and
    [Log_record.Write] are the same constructor. *)
type record = Dsm_protocol.Log_record.t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Dsm_protocol.Stamped.t }
      (** a write this node certified (or performed locally) as owner *)
  | Clock of Vclock.t
      (** a clock merge with no stored entry (rejected certification) — kept
          so replay reaches the exact pre-crash clock frontier *)
  | View_change of { base : int; epoch : int; serving : int }
      (** an adopted or self-originated ownership epoch change *)
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Dsm_protocol.Stamped.t }
      (** a backup copy accepted from the owner of [base] *)
  | Checkpoint of snapshot  (** full-state snapshot; always the log's head *)

type t
(** One node's log handle. *)

val attach : Disk.t -> node:int -> t
(** The node's log on [disk], created empty on first attach.  Attaching
    again (after a simulated restart) returns the same log contents. *)

val node : t -> int

val append : t -> record -> unit
(** Append and sync one record.  Raises {!Sync_failed} (logging nothing)
    when a sync fault is injected. *)

val checkpoint : t -> snapshot -> unit
(** Atomically replace the log with [Checkpoint snapshot].  Raises
    {!Sync_failed} (leaving the previous log intact) under a sync fault. *)

val replay : t -> record list
(** The log oldest-first: at most one leading [Checkpoint] followed by the
    records appended since. *)

val length : t -> int

(** {1 Accounting} *)

val appends : t -> int
(** Successful appends over the log's lifetime (checkpoints excluded). *)

val checkpoints : t -> int

val truncated : t -> int
(** Records dropped by checkpoint truncation over the log's lifetime. *)
