module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid

type slot = { mutable entry : Stamped.t; mutable last_touch : int }

type t = {
  id : int;
  owner : Dsm_memory.Owner.t;
  config : Config.t;
  memory : slot Loc.Table.t;
  (* What the causality rule last invalidated per location, to detect
     refetches of the very same write (over-invalidation accounting). *)
  last_invalidated : Wid.t Loc.Table.t;
  (* Newest known write per location; only consulted (and shipped) under
     Config.Precise invalidation. *)
  digest : Write_digest.t;
  mutable clock : Vclock.t;
  mutable wseq : int;
  mutable reqseq : int;
  mutable touch_counter : int;
  stats : Node_stats.t;
}

let create ~id ~owner ~config =
  Config.validate config;
  let processes = Dsm_memory.Owner.nodes owner in
  if id < 0 || id >= processes then invalid_arg "Node.create: id out of range";
  {
    id;
    owner;
    config;
    memory = Loc.Table.create 64;
    last_invalidated = Loc.Table.create 16;
    digest = Write_digest.create ();
    clock = Vclock.zero processes;
    wseq = 0;
    reqseq = 0;
    touch_counter = 0;
    stats = Node_stats.create ();
  }

let id t = t.id

let processes t = Dsm_memory.Owner.nodes t.owner

let vt t = t.clock

let set_vt t clock =
  if not (Vclock.leq t.clock clock) then failwith "Node.set_vt: clock would shrink";
  t.clock <- clock

let stats t = t.stats

let config t = t.config

let owner_of t loc = Dsm_memory.Owner.owner t.owner loc

let owns t loc = owner_of t loc = t.id

let touch t slot =
  t.touch_counter <- t.touch_counter + 1;
  slot.last_touch <- t.touch_counter

let store t loc entry =
  match Loc.Table.find_opt t.memory loc with
  | Some slot ->
      slot.entry <- entry;
      touch t slot
  | None ->
      let slot = { entry; last_touch = 0 } in
      touch t slot;
      Loc.Table.replace t.memory loc slot

let lookup t loc =
  match Loc.Table.find_opt t.memory loc with
  | Some slot ->
      touch t slot;
      Some slot.entry
  | None ->
      if owns t loc then begin
        (* Owned locations are born holding the initial value with a zero
           writestamp: the virtual initial write precedes everything. *)
        let entry = Stamped.initial ~processes:(processes t) (t.config.Config.init loc) in
        store t loc entry;
        Some entry
      end
      else None

let fresh_wid t =
  let seq = t.wseq in
  t.wseq <- seq + 1;
  Wid.make ~node:t.id ~seq

let next_req t =
  let r = t.reqseq in
  t.reqseq <- r + 1;
  r

(* Invalidate every cached (non-owned) entry whose writestamp is strictly
   older than [threshold]: the rule of Figure 4.  Owned locations are never
   invalidated. *)
let drop_invalidated t loc (slot : slot) =
  Loc.Table.remove t.memory loc;
  Loc.Table.replace t.last_invalidated loc slot.entry.Stamped.wid;
  t.stats.Node_stats.invalidations <- t.stats.Node_stats.invalidations + 1

(* On (re)introducing a value, check whether the causality rule had thrown
   away this very write earlier: if so the invalidation bought nothing. *)
let note_refetch t loc (entry : Stamped.t) =
  match Loc.Table.find_opt t.last_invalidated loc with
  | Some wid ->
      Loc.Table.remove t.last_invalidated loc;
      if Wid.equal wid entry.Stamped.wid then
        t.stats.Node_stats.redundant_fetches <- t.stats.Node_stats.redundant_fetches + 1
  | None -> ()

let precise t = t.config.Config.invalidation = Config.Precise

let digest_observe t loc (entry : Stamped.t) =
  if precise t then
    Write_digest.observe t.digest loc
      { Write_digest.stamp = entry.Stamped.stamp; wid = entry.Stamped.wid }

(* Precise rule: a cached copy dies only when the digest proves a strictly
   newer write of the same location. *)
let invalidate_per_digest t =
  let stale = ref [] in
  Loc.Table.iter
    (fun loc slot ->
      if not (owns t loc) then begin
        match Write_digest.find t.digest loc with
        | Some { Write_digest.stamp; _ } when Vclock.lt slot.entry.Stamped.stamp stamp ->
            stale := (loc, slot) :: !stale
        | Some _ | None -> ()
      end)
    t.memory;
  List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale

let invalidate_older t threshold =
  if precise t then invalidate_per_digest t
  else begin
    let stale = ref [] in
    Loc.Table.iter
      (fun loc slot ->
        if (not (owns t loc)) && Vclock.lt slot.entry.Stamped.stamp threshold then
          stale := (loc, slot) :: !stale)
      t.memory;
    List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale
  end

let digest_export t = if precise t then Write_digest.export t.digest else []

let digest_merge t entries = if precise t then Write_digest.merge t.digest entries

let local_write t loc value =
  if not (owns t loc) then invalid_arg "Node.local_write: location not owned";
  t.clock <- Vclock.increment t.clock t.id;
  let entry = Stamped.make ~value ~stamp:t.clock ~wid:(fresh_wid t) in
  store t loc entry;
  digest_observe t loc entry;
  t.stats.Node_stats.writes_owned <- t.stats.Node_stats.writes_owned + 1;
  entry

let certify_write t loc (incoming : Stamped.t) ~accepted =
  if not (owns t loc) then invalid_arg "Node.certify_write: location not owned";
  (* [WRITE, x, v, VT] handler: VT_i := update(VT_i, VT), then resolve. *)
  t.clock <- Vclock.update t.clock incoming.stamp;
  let current =
    match lookup t loc with
    | Some e -> e
    | None -> assert false (* owned locations always present after lookup *)
  in
  if Wid.equal current.Stamped.wid incoming.Stamped.wid then begin
    (* Duplicate certification of a write already stored (an RPC retry after
       a lost W_REPLY): idempotent, and still "accepted" — the original
       decision stands. *)
    accepted := true;
    current
  end
  else begin
    let decision = Policy.decide t.config.Config.policy ~owner:t.id ~current ~incoming in
    t.stats.Node_stats.writes_certified <- t.stats.Node_stats.writes_certified + 1;
    let stored =
      match decision with
      | Policy.Accept ->
          (* The certified writestamp is the owner's merged clock, as in
             Figure 4's [M_i[x] := (v, VT_i)]. *)
          let entry = Stamped.make ~value:incoming.value ~stamp:t.clock ~wid:incoming.wid in
          store t loc entry;
          digest_observe t loc entry;
          accepted := true;
          entry
      | Policy.Reject ->
          accepted := false;
          current
    in
    invalidate_older t t.clock;
    stored
  end

let adopt_write_reply t loc (entry : Stamped.t) =
  if owns t loc then invalid_arg "Node.adopt_write_reply: location is owned";
  t.clock <- Vclock.update t.clock entry.stamp;
  store t loc entry

let install_remote t loc (entry : Stamped.t) =
  if owns t loc then invalid_arg "Node.install_remote: location is owned";
  (* R_REPLY path: VT_i := update(VT_i, VT'); M_i[x] := (v', VT');
     invalidate cached y with M_i[y].VT < VT'. *)
  note_refetch t loc entry;
  t.clock <- Vclock.update t.clock entry.stamp;
  store t loc entry;
  digest_observe t loc entry;
  invalidate_older t entry.stamp

let install_batch t entries =
  (* Keep only entries we may cache: not locally owned, and not already
     cached at least as new. *)
  let installable =
    List.filter
      (fun (loc, (entry : Stamped.t)) ->
        (not (owns t loc))
        &&
        match Loc.Table.find_opt t.memory loc with
        | None -> true
        | Some slot -> Vclock.lt slot.entry.Stamped.stamp entry.stamp)
      entries
  in
  List.iter
    (fun (loc, (entry : Stamped.t)) ->
      note_refetch t loc entry;
      t.clock <- Vclock.update t.clock entry.stamp;
      store t loc entry;
      digest_observe t loc entry)
    installable;
  if precise t then invalidate_per_digest t
  else begin
    (* One invalidation pass over the rest of the cache: anything strictly
       older than some installed stamp goes, but the batch spares itself. *)
    let in_batch loc = List.exists (fun (l, _) -> Loc.equal l loc) installable in
    let stale = ref [] in
    Loc.Table.iter
      (fun loc slot ->
        if (not (owns t loc)) && not (in_batch loc) then
          if
            List.exists
              (fun (_, (entry : Stamped.t)) -> Vclock.lt slot.entry.Stamped.stamp entry.stamp)
              installable
          then stale := (loc, slot) :: !stale)
      t.memory;
    List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale
  end

let page_entries t loc =
  match Config.page_of t.config.Config.granularity loc with
  | None -> []
  | Some page ->
      let same_page other = Config.page_of t.config.Config.granularity other = Some page in
      Loc.Table.fold
        (fun other slot acc ->
          if (not (Loc.equal other loc)) && owns t other && same_page other then
            (other, slot.entry) :: acc
          else acc)
        t.memory []

let install_transient t entries =
  List.iter
    (fun (loc, (entry : Stamped.t)) ->
      if not (owns t loc) then begin
        t.clock <- Vclock.update t.clock entry.stamp;
        digest_observe t loc entry;
        t.stats.Node_stats.stale_drops <- t.stats.Node_stats.stale_drops + 1
      end)
    entries;
  (* The reply still carries knowledge: run the usual invalidation pass so
     anything older than what we just learned is dropped. *)
  if precise t then invalidate_per_digest t
  else
    List.iter (fun (_, (entry : Stamped.t)) -> invalidate_older t entry.stamp) entries

let cached_locs t =
  Loc.Table.fold (fun loc _ acc -> if owns t loc then acc else loc :: acc) t.memory []

let cache_size t = List.length (cached_locs t)

let discard_all t =
  let cached = cached_locs t in
  List.iter
    (fun loc ->
      Loc.Table.remove t.memory loc;
      t.stats.Node_stats.discards <- t.stats.Node_stats.discards + 1)
    cached;
  List.length cached

let discard_one t loc =
  match Loc.Table.find_opt t.memory loc with
  | Some _ when not (owns t loc) ->
      Loc.Table.remove t.memory loc;
      t.stats.Node_stats.discards <- t.stats.Node_stats.discards + 1;
      true
  | Some _ | None -> false

let reset_volatile t =
  (* Crash-stop restart.  Everything a restarted node held in memory is
     lost: the cache, the invalidation bookkeeping, the digest, and the
     vector clock (rebuilt from the first owner reply, whose stamp merges
     into the zero clock).  The write and request counters deliberately
     survive so recycled writestamps or request tags can never collide with
     pre-crash traffic still in flight. *)
  let owned =
    Loc.Table.fold (fun loc _ acc -> acc || owns t loc) t.memory false
  in
  if owned then
    invalid_arg
      (Printf.sprintf
         "Node.reset_volatile: node %d stores locations it owns; crash recovery would lose \
          certified writes (only non-owner nodes may restart)"
         t.id);
  Loc.Table.reset t.memory;
  Loc.Table.reset t.last_invalidated;
  Write_digest.reset t.digest;
  t.clock <- Vclock.zero (processes t)

let enforce_capacity t =
  match t.config.Config.discard with
  | Config.No_discard | Config.Periodic _ -> ()
  | Config.Capacity cap ->
      let cached =
        Loc.Table.fold
          (fun loc slot acc -> if owns t loc then acc else (loc, slot.last_touch) :: acc)
          t.memory []
      in
      let excess = List.length cached - cap in
      if excess > 0 then begin
        let by_age = List.sort (fun (_, a) (_, b) -> Int.compare a b) cached in
        List.iteri (fun i (loc, _) -> if i < excess then ignore (discard_one t loc)) by_age
      end
