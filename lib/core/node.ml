module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid

type slot = { mutable entry : Stamped.t; mutable last_touch : int }

type t = {
  id : int;
  owner : Dsm_memory.Owner.t;
  config : Config.t;
  (* Structured-event capture: when tracing, state transitions are queued
     as Trace bodies for the caller (Protocol.step or the cluster shell) to
     drain and publish.  The node never touches a bus itself — recording
     into its own state keeps it effect-free and replay-deterministic. *)
  mutable tracing : bool;
  mutable trace_rev : Trace.body list;
  memory : slot Loc.Table.t;
  (* What the causality rule last invalidated per location, to detect
     refetches of the very same write (over-invalidation accounting). *)
  last_invalidated : Wid.t Loc.Table.t;
  (* Newest known write per location; only consulted (and shipped) under
     Config.Precise invalidation. *)
  digest : Write_digest.t;
  mutable clock : Vclock.t;
  mutable wseq : int;
  mutable reqseq : int;
  mutable touch_counter : int;
  stats : Node_stats.t;
  (* Ownership view, indexed by base owner id: which node currently serves
     each base owner's locations, and under which takeover epoch.  Epoch 0
     with serving = base is the paper's static assignment. *)
  view_epoch : int array;
  view_serving : int array;
  (* Backup copies held for other owners' locations, grouped by base owner:
     the state a promotion installs. *)
  shadows : (int, Stamped.t Loc.Table.t) Hashtbl.t;
}

let create ~id ~owner ~config =
  Config.validate config;
  let processes = Dsm_memory.Owner.nodes owner in
  if id < 0 || id >= processes then invalid_arg "Node.create: id out of range";
  {
    id;
    owner;
    config;
    tracing = false;
    trace_rev = [];
    memory = Loc.Table.create 64;
    last_invalidated = Loc.Table.create 16;
    digest = Write_digest.create ();
    clock = Vclock.zero processes;
    wseq = 0;
    reqseq = 0;
    touch_counter = 0;
    stats = Node_stats.create ();
    view_epoch = Array.make processes 0;
    view_serving = Array.init processes Fun.id;
    shadows = Hashtbl.create 4;
  }

let id t = t.id

let processes t = Dsm_memory.Owner.nodes t.owner

let set_tracing t on = t.tracing <- on

let trace t body = if t.tracing then t.trace_rev <- body :: t.trace_rev

let drain_trace t =
  match t.trace_rev with
  | [] -> []
  | rev ->
      t.trace_rev <- [];
      List.rev rev

let vt t = t.clock

let set_vt t clock =
  if not (Vclock.leq t.clock clock) then failwith "Node.set_vt: clock would shrink";
  t.clock <- clock

let stats t = t.stats

let config t = t.config

(* The paper's static assignment; routing goes through the view so a
   promoted backup transparently serves a dead owner's locations. *)
let base_owner_of t loc = Dsm_memory.Owner.owner t.owner loc

let owner_of t loc = t.view_serving.(base_owner_of t loc)

let owns t loc = owner_of t loc = t.id

let epoch_of t ~base = t.view_epoch.(base)

let serving_of t ~base = t.view_serving.(base)

let view t =
  let acc = ref [] in
  for base = Array.length t.view_epoch - 1 downto 0 do
    if t.view_epoch.(base) > 0 then
      acc := (base, t.view_epoch.(base), t.view_serving.(base)) :: !acc
  done;
  !acc

let touch t slot =
  t.touch_counter <- t.touch_counter + 1;
  slot.last_touch <- t.touch_counter

let store t loc entry =
  match Loc.Table.find_opt t.memory loc with
  | Some slot ->
      slot.entry <- entry;
      touch t slot
  | None ->
      let slot = { entry; last_touch = 0 } in
      touch t slot;
      Loc.Table.replace t.memory loc slot

let lookup t loc =
  match Loc.Table.find_opt t.memory loc with
  | Some slot ->
      touch t slot;
      Some slot.entry
  | None ->
      if owns t loc then begin
        (* Owned locations are born holding the initial value with a zero
           writestamp: the virtual initial write precedes everything. *)
        let entry = Stamped.initial ~processes:(processes t) (t.config.Config.init loc) in
        store t loc entry;
        Some entry
      end
      else None

let fresh_wid t =
  let seq = t.wseq in
  t.wseq <- seq + 1;
  Wid.make ~node:t.id ~seq

let next_req t =
  let r = t.reqseq in
  t.reqseq <- r + 1;
  r

(* Invalidate every cached (non-owned) entry whose writestamp is strictly
   older than [threshold]: the rule of Figure 4.  Owned locations are never
   invalidated. *)
let drop_invalidated t loc (slot : slot) =
  Loc.Table.remove t.memory loc;
  Loc.Table.replace t.last_invalidated loc slot.entry.Stamped.wid;
  t.stats.Node_stats.invalidations <- t.stats.Node_stats.invalidations + 1;
  trace t (Trace.Invalidate { node = t.id; loc; wid = slot.entry.Stamped.wid })

(* On (re)introducing a value, check whether the causality rule had thrown
   away this very write earlier: if so the invalidation bought nothing. *)
let note_refetch t loc (entry : Stamped.t) =
  match Loc.Table.find_opt t.last_invalidated loc with
  | Some wid ->
      Loc.Table.remove t.last_invalidated loc;
      if Wid.equal wid entry.Stamped.wid then
        t.stats.Node_stats.redundant_fetches <- t.stats.Node_stats.redundant_fetches + 1
  | None -> ()

let precise t = t.config.Config.invalidation = Config.Precise

let digest_observe t loc (entry : Stamped.t) =
  if precise t then
    Write_digest.observe t.digest loc
      { Write_digest.stamp = entry.Stamped.stamp; wid = entry.Stamped.wid }

(* Precise rule: a cached copy dies only when the digest proves a strictly
   newer write of the same location. *)
let invalidate_per_digest t =
  if t.config.Config.mutation = Config.Skip_invalidation then ()
  else begin
  let stale = ref [] in
  Loc.Table.iter
    (fun loc slot ->
      if not (owns t loc) then begin
        match Write_digest.find t.digest loc with
        | Some { Write_digest.stamp; _ } when Vclock.lt slot.entry.Stamped.stamp stamp ->
            stale := (loc, slot) :: !stale
        | Some _ | None -> ()
      end)
    t.memory;
  List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale
  end

let invalidate_older t threshold =
  if t.config.Config.mutation = Config.Skip_invalidation then ()
  else if precise t then invalidate_per_digest t
  else begin
    let stale = ref [] in
    Loc.Table.iter
      (fun loc slot ->
        if (not (owns t loc)) && Vclock.lt slot.entry.Stamped.stamp threshold then
          stale := (loc, slot) :: !stale)
      t.memory;
    List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale
  end

let digest_export t = if precise t then Write_digest.export t.digest else []

let digest_merge t entries = if precise t then Write_digest.merge t.digest entries

let local_write t loc value =
  if not (owns t loc) then invalid_arg "Node.local_write: location not owned";
  t.clock <- Vclock.increment t.clock t.id;
  let entry = Stamped.make ~value ~stamp:t.clock ~wid:(fresh_wid t) in
  store t loc entry;
  digest_observe t loc entry;
  t.stats.Node_stats.writes_owned <- t.stats.Node_stats.writes_owned + 1;
  trace t (Trace.Apply { node = t.id; loc; wid = entry.Stamped.wid });
  entry

let certify_write t loc (incoming : Stamped.t) ~accepted =
  if not (owns t loc) then invalid_arg "Node.certify_write: location not owned";
  (* [WRITE, x, v, VT] handler: VT_i := update(VT_i, VT), then resolve. *)
  if t.config.Config.mutation <> Config.Skip_writestamp_merge then
    t.clock <- Vclock.update t.clock incoming.stamp;
  let current =
    match lookup t loc with
    | Some e -> e
    | None -> assert false (* owned locations always present after lookup *)
  in
  if Wid.equal current.Stamped.wid incoming.Stamped.wid then begin
    (* Duplicate certification of a write already stored (an RPC retry after
       a lost W_REPLY): idempotent, and still "accepted" — the original
       decision stands. *)
    accepted := true;
    current
  end
  else begin
    let decision = Policy.decide t.config.Config.policy ~owner:t.id ~current ~incoming in
    t.stats.Node_stats.writes_certified <- t.stats.Node_stats.writes_certified + 1;
    let stored =
      match decision with
      | Policy.Accept ->
          (* The certified writestamp is the owner's merged clock, as in
             Figure 4's [M_i[x] := (v, VT_i)]. *)
          let entry = Stamped.make ~value:incoming.value ~stamp:t.clock ~wid:incoming.wid in
          store t loc entry;
          digest_observe t loc entry;
          accepted := true;
          entry
      | Policy.Reject ->
          accepted := false;
          current
    in
    trace t
      (Trace.Certify { node = t.id; loc; wid = incoming.Stamped.wid; accepted = !accepted });
    invalidate_older t t.clock;
    stored
  end

let adopt_write_reply t loc (entry : Stamped.t) =
  if owns t loc then invalid_arg "Node.adopt_write_reply: location is owned";
  t.clock <- Vclock.update t.clock entry.stamp;
  store t loc entry

let install_remote t loc (entry : Stamped.t) =
  if owns t loc then invalid_arg "Node.install_remote: location is owned";
  (* R_REPLY path: VT_i := update(VT_i, VT'); M_i[x] := (v', VT');
     invalidate cached y with M_i[y].VT < VT'. *)
  note_refetch t loc entry;
  t.clock <- Vclock.update t.clock entry.stamp;
  store t loc entry;
  digest_observe t loc entry;
  trace t (Trace.Apply { node = t.id; loc; wid = entry.Stamped.wid });
  invalidate_older t entry.stamp

let install_batch t entries =
  (* Keep only entries we may cache: not locally owned, and not already
     cached at least as new. *)
  let installable =
    List.filter
      (fun (loc, (entry : Stamped.t)) ->
        (not (owns t loc))
        &&
        match Loc.Table.find_opt t.memory loc with
        | None -> true
        | Some slot -> Vclock.lt slot.entry.Stamped.stamp entry.stamp)
      entries
  in
  List.iter
    (fun (loc, (entry : Stamped.t)) ->
      note_refetch t loc entry;
      t.clock <- Vclock.update t.clock entry.stamp;
      store t loc entry;
      digest_observe t loc entry;
      trace t (Trace.Apply { node = t.id; loc; wid = entry.Stamped.wid }))
    installable;
  if t.config.Config.mutation = Config.Skip_invalidation then ()
  else if precise t then invalidate_per_digest t
  else begin
    (* One invalidation pass over the rest of the cache: anything strictly
       older than some installed stamp goes, but the batch spares itself. *)
    let in_batch loc = List.exists (fun (l, _) -> Loc.equal l loc) installable in
    let stale = ref [] in
    Loc.Table.iter
      (fun loc slot ->
        if (not (owns t loc)) && not (in_batch loc) then
          if
            List.exists
              (fun (_, (entry : Stamped.t)) -> Vclock.lt slot.entry.Stamped.stamp entry.stamp)
              installable
          then stale := (loc, slot) :: !stale)
      t.memory;
    List.iter (fun (loc, slot) -> drop_invalidated t loc slot) !stale
  end

let page_entries t loc =
  match Config.page_of t.config.Config.granularity loc with
  | None -> []
  | Some page ->
      let same_page other = Config.page_of t.config.Config.granularity other = Some page in
      Loc.Table.fold
        (fun other slot acc ->
          if (not (Loc.equal other loc)) && owns t other && same_page other then
            (other, slot.entry) :: acc
          else acc)
        t.memory []

let install_transient t entries =
  List.iter
    (fun (loc, (entry : Stamped.t)) ->
      if not (owns t loc) then begin
        t.clock <- Vclock.update t.clock entry.stamp;
        digest_observe t loc entry;
        t.stats.Node_stats.stale_drops <- t.stats.Node_stats.stale_drops + 1
      end)
    entries;
  (* The reply still carries knowledge: run the usual invalidation pass so
     anything older than what we just learned is dropped. *)
  if precise t then invalidate_per_digest t
  else
    List.iter (fun (_, (entry : Stamped.t)) -> invalidate_older t entry.stamp) entries

let cached_locs t =
  Loc.Table.fold (fun loc _ acc -> if owns t loc then acc else loc :: acc) t.memory []

let entries t =
  Loc.Table.fold (fun loc slot acc -> (loc, slot.entry) :: acc) t.memory []
  |> List.sort (fun (a, _) (b, _) -> compare (Loc.to_string a) (Loc.to_string b))

let cache_size t = List.length (cached_locs t)

let discard_all t =
  let cached = cached_locs t in
  List.iter
    (fun loc ->
      Loc.Table.remove t.memory loc;
      t.stats.Node_stats.discards <- t.stats.Node_stats.discards + 1)
    cached;
  List.length cached

let discard_one t loc =
  match Loc.Table.find_opt t.memory loc with
  | Some _ when not (owns t loc) ->
      Loc.Table.remove t.memory loc;
      t.stats.Node_stats.discards <- t.stats.Node_stats.discards + 1;
      true
  | Some _ | None -> false

(* {1 Ownership view and shadow replication (owner failover)} *)

let shadow_table t base =
  match Hashtbl.find_opt t.shadows base with
  | Some tbl -> tbl
  | None ->
      let tbl = Loc.Table.create 16 in
      Hashtbl.replace t.shadows base tbl;
      tbl

let shadow_store t ~base loc (entry : Stamped.t) =
  let tbl = shadow_table t base in
  match Loc.Table.find_opt tbl loc with
  | Some existing when Vclock.lt entry.Stamped.stamp existing.Stamped.stamp ->
      (* A strictly older copy (a late snapshot racing per-write shadows)
         never regresses the shadow. *)
      ()
  | Some _ | None -> Loc.Table.replace tbl loc entry

let shadow_lookup t ~base loc =
  match Hashtbl.find_opt t.shadows base with
  | None -> None
  | Some tbl -> Loc.Table.find_opt tbl loc

let shadow_entries t ~base =
  match Hashtbl.find_opt t.shadows base with
  | None -> []
  | Some tbl ->
      Loc.Table.fold (fun loc entry acc -> (loc, entry) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare (Loc.to_string a) (Loc.to_string b))

let shadow_size t ~base =
  match Hashtbl.find_opt t.shadows base with None -> 0 | Some tbl -> Loc.Table.length tbl

let served_entries t ~base =
  Loc.Table.fold
    (fun loc slot acc ->
      if base_owner_of t loc = base && owns t loc then (loc, slot.entry) :: acc else acc)
    t.memory []
  |> List.sort (fun (a, _) (b, _) -> compare (Loc.to_string a) (Loc.to_string b))

(* Demotion: a node that learns (view gossip, takeover broadcast) that it no
   longer serves [base] drops its copies of those locations — after the
   handoff they would be an unsupervised fork of the authoritative state. *)
let drop_served t ~base =
  let mine =
    Loc.Table.fold
      (fun loc _ acc -> if base_owner_of t loc = base then loc :: acc else acc)
      t.memory []
  in
  List.iter
    (fun loc ->
      Loc.Table.remove t.memory loc;
      t.stats.Node_stats.discards <- t.stats.Node_stats.discards + 1)
    mine;
  List.length mine

type view_outcome = View_ignored | View_adopted | View_demoted

let adopt_view t ~base ~epoch ~serving =
  if epoch <= t.view_epoch.(base) then View_ignored
  else begin
    let deposed = t.view_serving.(base) = t.id && serving <> t.id in
    t.view_epoch.(base) <- epoch;
    t.view_serving.(base) <- serving;
    trace t (Trace.Adopt_view { node = t.id; base; epoch; serving });
    if deposed then begin
      ignore (drop_served t ~base);
      trace t (Trace.Demote { node = t.id; base; serving });
      View_demoted
    end
    else View_adopted
  end

let promote t ~base ~epoch =
  if epoch <= t.view_epoch.(base) then invalid_arg "Node.promote: epoch must grow";
  t.view_epoch.(base) <- epoch;
  t.view_serving.(base) <- t.id;
  trace t (Trace.Promote { node = t.id; base; epoch });
  let inherited = shadow_entries t ~base in
  List.iter
    (fun (loc, (entry : Stamped.t)) ->
      (* Keep whichever copy is newest: the shadow holds every acknowledged
         write, but this node may also have cached the same value. *)
      (match Loc.Table.find_opt t.memory loc with
      | Some slot when not (Vclock.lt slot.entry.Stamped.stamp entry.Stamped.stamp) -> ()
      | Some _ | None -> store t loc entry);
      t.clock <- Vclock.update t.clock entry.Stamped.stamp;
      digest_observe t loc entry)
    inherited;
  Hashtbl.remove t.shadows base;
  (* Same conservative rule as write certification: anything cached that is
     older than the merged clock may have been overwritten. *)
  invalidate_older t t.clock;
  served_entries t ~base

(* Reconciliation on partition heal: merge one entry a demoted server
   shipped (FRONTIER) into served memory, newest-wins — the same rule
   {!promote} applies to inherited shadow copies.  The clock merge happens
   whether or not the copy wins, so the server's causal history covers
   everything the minority side certified before demotion. *)
let reconcile_served t loc (entry : Stamped.t) =
  if not (owns t loc) then false
  else begin
    let install =
      match Loc.Table.find_opt t.memory loc with
      | Some slot -> Vclock.lt slot.entry.Stamped.stamp entry.Stamped.stamp
      | None -> true
    in
    t.clock <- Vclock.update t.clock entry.Stamped.stamp;
    if install then begin
      store t loc entry;
      digest_observe t loc entry;
      trace t (Trace.Apply { node = t.id; loc; wid = entry.Stamped.wid });
      invalidate_older t entry.Stamped.stamp
    end;
    install
  end

(* {1 Durable-log integration} *)

let snapshot t =
  {
    Log_record.snap_clock = t.clock;
    snap_view = view t;
    snap_served =
      Loc.Table.fold
        (fun loc slot acc -> if owns t loc then (loc, slot.entry) :: acc else acc)
        t.memory []
      |> List.sort (fun (a, _) (b, _) -> compare (Loc.to_string a) (Loc.to_string b));
    snap_shadows =
      Hashtbl.fold (fun base _ acc -> base :: acc) t.shadows []
      |> List.sort compare
      |> List.map (fun base -> (base, shadow_entries t ~base));
  }

(* Replay helper: reinstate a serving-side entry without the [owns] guards
   of the client-side install paths (the log is the authority here). *)
let restore_entry t loc (entry : Stamped.t) =
  store t loc entry;
  t.clock <- Vclock.update t.clock entry.Stamped.stamp;
  digest_observe t loc entry

let apply_record t (record : Log_record.t) =
  match record with
  | Log_record.Write { loc; entry } -> restore_entry t loc entry
  | Log_record.Clock clock -> t.clock <- Vclock.update t.clock clock
  | Log_record.View_change { base; epoch; serving } ->
      (* Replay applies view changes verbatim, in log order: a record that
         deposed this node precedes any write it logged afterwards. *)
      t.view_epoch.(base) <- epoch;
      t.view_serving.(base) <- serving;
      if serving = t.id && base <> t.id then begin
        (* This view change was our own promotion: re-install the shadow
           copies it inherited into served memory (the [Shadow_entry]
           records that fed them precede this record in log order), exactly
           as {!promote} did before the crash. *)
        List.iter (fun (loc, entry) -> restore_entry t loc entry) (shadow_entries t ~base);
        Hashtbl.remove t.shadows base
      end
  | Log_record.Shadow_entry { base; loc; entry } -> shadow_store t ~base loc entry
  | Log_record.Checkpoint snap ->
      t.clock <- Vclock.update t.clock snap.Log_record.snap_clock;
      List.iter
        (fun (base, epoch, serving) ->
          t.view_epoch.(base) <- epoch;
          t.view_serving.(base) <- serving)
        snap.Log_record.snap_view;
      List.iter (fun (loc, entry) -> restore_entry t loc entry) snap.Log_record.snap_served;
      List.iter
        (fun (base, entries) ->
          List.iter (fun (loc, entry) -> shadow_store t ~base loc entry) entries)
        snap.Log_record.snap_shadows

let reset_volatile t =
  (* Crash-stop restart.  Everything a restarted node held in memory is
     lost: the cache, the invalidation bookkeeping, the digest, the vector
     clock, the ownership view and the shadow copies.  Owner state is no
     longer a reason to refuse: the cluster layer replays the node's
     write-ahead log (see {!apply_record}) immediately after this reset, so
     certified writes, view changes and shadows all come back from stable
     storage.  The write and request counters deliberately survive so
     recycled writestamps or request tags can never collide with pre-crash
     traffic still in flight. *)
  Loc.Table.reset t.memory;
  Loc.Table.reset t.last_invalidated;
  Write_digest.reset t.digest;
  t.clock <- Vclock.zero (processes t);
  Array.fill t.view_epoch 0 (Array.length t.view_epoch) 0;
  Array.iteri (fun i _ -> t.view_serving.(i) <- i) t.view_serving;
  Hashtbl.reset t.shadows

let enforce_capacity t =
  match t.config.Config.discard with
  | Config.No_discard | Config.Periodic _ -> ()
  | Config.Capacity cap ->
      let cached =
        Loc.Table.fold
          (fun loc slot acc -> if owns t loc then acc else (loc, slot.last_touch) :: acc)
          t.memory []
      in
      let excess = List.length cached - cap in
      if excess > 0 then begin
        let by_age = List.sort (fun (_, a) (_, b) -> Int.compare a b) cached in
        List.iteri (fun i (loc, _) -> if i < excess then ignore (discard_one t loc)) by_age
      end
