(** Resolution policies for concurrent writes to the same location.

    Causal memory does not totally order writes to a location, so the owner
    may receive a write request whose writestamp is concurrent with the value
    it currently stores.  Section 2 notes that "allowing the programmer to
    select among such policies can significantly simplify programming"; the
    dictionary of Section 4.2 relies on the policy that "writes by the owner
    are always favored when resolving concurrent writes".

    The policy is consulted {e only} when the incoming write is concurrent
    with the stored value; a causally newer write always overwrites. *)

type outcome = Accept | Reject

type t =
  | Last_writer_wins
      (** accept every certified write (arrival order at the owner wins) *)
  | Owner_favored
      (** reject an incoming write concurrent with a value the owner itself
          wrote; accept otherwise *)
  | Custom of (owner:int -> current:Stamped.t -> incoming:Stamped.t -> outcome)

val resolve : t -> owner:int -> current:Stamped.t -> incoming:Stamped.t -> outcome
(** Decide an incoming write that is {e concurrent} with [current]. *)

val decide : t -> owner:int -> current:Stamped.t -> incoming:Stamped.t -> outcome
(** Full decision: [Accept] when [incoming] causally overwrites [current],
    the policy's answer when they are concurrent, [Reject] when [incoming]
    is causally older (cannot happen with the owner protocol's stamping, but
    the rule is total for robustness). *)

val pp : Format.formatter -> t -> unit
