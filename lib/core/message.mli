(** Wire messages of the owner protocol (Figure 4) plus the failover
    extensions.

    Four message kinds are exactly the paper's: [READ, x] requesting a
    current copy, [R_REPLY, x, v', VT'] carrying it, [WRITE, x, v, VT]
    shipping a write for certification, and [W_REPLY, x, v, VT'] completing
    it.  The [req] tags match replies to the blocked operation that issued
    the request; [page] and [digest] carry the §3.2 enhancements
    (page-granular transfer and precise-invalidation bookkeeping) and are
    empty under the basic configuration.

    The remaining kinds implement owner failover (see PROTOCOL.md, "Owner
    failover"): requests carry an ownership {e epoch} so deposed owners are
    fenced with [Stale_epoch]; [Heartbeat] drives the failure detector and
    gossips the ownership view; [Shadow]/[Shadow_ack] replicate certified
    writes to the designated backup; [Shadow_read_req]/[Shadow_read_reply]
    serve degraded reads from the backup's shadow copy while an owner is
    suspected; [Takeover] announces a backup's epoch-numbered promotion. *)

type digest = (Dsm_memory.Loc.t * Write_digest.entry) list
(** Piggybacked newest-known-write table; non-empty only under
    [Config.Precise] invalidation. *)

type view = (int * int * int) list
(** Ownership-view gossip: [(base, epoch, serving)] triples for every base
    owner whose serving node has changed at least once (epoch > 0). *)

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t; epoch : int }  (** [READ, x] *)
  | Read_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      page : (Dsm_memory.Loc.t * Stamped.t) list;
          (** co-paged entries under page granularity *)
      digest : digest;
    }  (** [R_REPLY, x, v', VT'] *)
  | Write_req of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      digest : digest;
      epoch : int;
    }
      (** [WRITE, x, v, VT] — [entry.stamp] is the writer's incremented
          clock *)
  | Write_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      accepted : bool;
          (** [false] when the owner's resolution policy rejected the write *)
      entry : Stamped.t;
          (** the entry now stored at the owner: the certified write, or the
              surviving current value on rejection *)
      digest : digest;
    }  (** [W_REPLY, x, v, VT'] *)
  | Stale_epoch of { req : int; base : int; epoch : int; serving : int }
      (** fencing reply: the request's epoch for [base] was behind the
          server's [(epoch, serving)]; the client adopts the newer view and
          re-routes the retry *)
  | Heartbeat of { view : view }
  | Shadow of { seq : int; base : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
  | Shadow_ack of { seq : int }
  | Shadow_read_req of { req : int; loc : Dsm_memory.Loc.t }
  | Shadow_read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Takeover of { base : int; epoch : int; serving : int }
  | Vote_req of { base : int; epoch : int; candidate : int }
      (** a suspecting backup canvassing for takeover of [base] under
          [epoch]; promotion requires ⌊n/2⌋+1 grants including its own *)
  | Vote_grant of { base : int; epoch : int; candidate : int }
      (** OWNER_VOTE: the sender promises not to grant [base] at [epoch]
          (or below) to any other candidate *)
  | Frontier of { base : int; epoch : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
      (** reconciliation on heal: a demoted server ships its served entries
          for [base] to the new owner, which merges newest-wins *)
  | Cp_marker of { round : int; initiator : int }
      (** coordinated-checkpoint marker (see PROTOCOL.md, "Checkpointing &
          recovery"): the receiver checkpoints for [round] before processing
          anything that arrives after this message on the same FIFO link *)
  | Cp_ack of { round : int }
      (** back to [initiator]: the sender's checkpoint for [round] is on
          stable storage *)
  | Sub_req of { base : int }
      (** share-set join (see PROTOCOL.md, "Partial replication &
          sharding"): the sender subscribes to the shard of [base] and asks
          its serving node for a causally safe catch-up transfer *)
  | Sub_reply of { base : int; entries : (Dsm_memory.Loc.t * Stamped.t) list }
      (** catch-up transfer: the entries currently served for [base]; the
          subscriber installs them newest-wins, merging their stamps into
          its clock before any post-subscription read *)

val kind : t -> string
(** Counter bucket: ["READ"], ["R_REPLY"], ["WRITE"], ["W_REPLY"],
    ["STALE"], ["HB"], ["SHADOW"], ["SH_ACK"], ["SH_READ"], ["SH_REPLY"],
    ["TAKEOVER"], ["VOTE_REQ"], ["OWNER_VOTE"], ["FRONTIER"], ["CP_MARK"],
    ["CP_ACK"], ["SUB_REQ"] or ["SUB_REPLY"]. *)

val pp : Format.formatter -> t -> unit
