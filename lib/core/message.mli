(** Wire messages of the owner protocol (Figure 4).

    Four message kinds, exactly the paper's: [READ, x] requesting a current
    copy, [R_REPLY, x, v', VT'] carrying it, [WRITE, x, v, VT] shipping a
    write for certification, and [W_REPLY, x, v, VT'] completing it.  The
    [req] tags match replies to the blocked operation that issued the
    request; [page] and [digest] carry the §3.2 enhancements (page-granular
    transfer and precise-invalidation bookkeeping) and are empty under the
    basic configuration. *)

type digest = (Dsm_memory.Loc.t * Write_digest.entry) list
(** Piggybacked newest-known-write table; non-empty only under
    [Config.Precise] invalidation. *)

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t }  (** [READ, x] *)
  | Read_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      entry : Stamped.t;
      page : (Dsm_memory.Loc.t * Stamped.t) list;
          (** co-paged entries under page granularity *)
      digest : digest;
    }  (** [R_REPLY, x, v', VT'] *)
  | Write_req of { req : int; loc : Dsm_memory.Loc.t; entry : Stamped.t; digest : digest }
      (** [WRITE, x, v, VT] — [entry.stamp] is the writer's incremented
          clock *)
  | Write_reply of {
      req : int;
      loc : Dsm_memory.Loc.t;
      accepted : bool;
          (** [false] when the owner's resolution policy rejected the write *)
      entry : Stamped.t;
          (** the entry now stored at the owner: the certified write, or the
              surviving current value on rejection *)
      digest : digest;
    }  (** [W_REPLY, x, v, VT'] *)

val kind : t -> string
(** Counter bucket: ["READ"], ["R_REPLY"], ["WRITE"] or ["W_REPLY"]. *)

val pp : Format.formatter -> t -> unit
