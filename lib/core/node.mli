(** Per-node protocol state of Figure 4, minus the messaging.

    A node holds the local memory [M_i] (owned locations plus the cache
    [C_i]), the vector clock [VT_i], and the statistics counters.  All the
    state transitions of the algorithm — install, invalidate-older, discard,
    write certification — live here as atomic in-memory operations; the
    cluster layer (see {!Cluster}) drives them from message handlers and the
    blocking application operations.

    Invariants maintained:
    - locations owned by this node are always present and never invalidated
      (lazily initialised from the configured initial value on first touch);
    - a cached (non-owned) location is either absent (the paper's ⊥) or holds
      the last entry introduced for it;
    - [VT_i] only grows. *)

type t

val create :
  id:int -> owner:Dsm_memory.Owner.t -> config:Config.t -> t
(** [owner] also fixes the number of processes (clock dimension). *)

val id : t -> int

val processes : t -> int

val vt : t -> Vclock.t

val set_vt : t -> Vclock.t -> unit
(** Replace the clock (used by the update steps); must not shrink it. *)

val stats : t -> Node_stats.t

val set_tracing : t -> bool -> unit
(** Enable or disable the internal trace queue.  Off by default: an
    untraced node never allocates for tracing. *)

val drain_trace : t -> Trace.body list
(** Pop the trace bodies queued since the last drain, oldest first.  The
    node is pure, so it cannot stamp or publish events itself; the caller
    (the protocol step function) drains this queue after each transition
    and turns the bodies into [Emit] actions. *)

val config : t -> Config.t

val owns : t -> Dsm_memory.Loc.t -> bool
(** Whether this node currently {e serves} [loc] — its base owner per the
    static assignment, or a backup that promoted itself over that base
    (see the failover section below). *)

val owner_of : t -> Dsm_memory.Loc.t -> int
(** The node currently serving [loc] per this node's ownership view. *)

val base_owner_of : t -> Dsm_memory.Loc.t -> int
(** The paper's static assignment, independent of any takeover. *)

val lookup : t -> Dsm_memory.Loc.t -> Stamped.t option
(** Current entry: owned locations always yield [Some] (lazily initialised);
    non-owned yield [None] when invalid (⊥).  Counts as a cache touch for
    LRU purposes. *)

val fresh_wid : t -> Dsm_memory.Wid.t
(** Next write identity for this node. *)

val next_req : t -> int
(** Next request tag for matching replies. *)

val local_write : t -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> Stamped.t
(** The owner-write path of [w_i(x)v]: increment [VT_i], store, return the
    stored entry.  Requires [owns t loc]. *)

val certify_write :
  t -> Dsm_memory.Loc.t -> Stamped.t -> accepted:bool ref -> Stamped.t
(** The owner's [WRITE] handler: merge the incoming stamp into [VT_i],
    consult the resolution policy, store the certified entry (or keep the
    current one on rejection), invalidate older cached entries, and return
    the entry now stored.  Certifying the write currently stored again (an
    RPC retry after a lost [W_REPLY]) is idempotent and reports accepted.
    Requires [owns t loc]. *)

val adopt_write_reply : t -> Dsm_memory.Loc.t -> Stamped.t -> unit
(** The writer's tail of [w_i(x)v] after [W_REPLY]: merge the owner's clock
    and cache the entry the owner now stores.  Figure 4 performs {e no}
    invalidation on this path — a write certification establishes no
    reads-from edge.  Requires [not (owns t loc)]. *)

val install_remote : t -> Dsm_memory.Loc.t -> Stamped.t -> unit
(** Introduce an entry received from the owner (the [R_REPLY]/[W_REPLY]
    paths): merge the stamp into [VT_i], store the entry, and invalidate all
    cached values older than the entry's stamp.  Requires [not (owns t loc)]. *)

val install_transient : t -> (Dsm_memory.Loc.t * Stamped.t) list -> unit
(** Like {!install_batch} but does {e not} retain the entries in the cache:
    the clocks are merged and older cached values invalidated (the entries
    still carry knowledge), while the fetched values themselves are used
    once and dropped.  This is the stale-install guard: when the node's
    clock grew while the READ request was in flight (it certified writes
    meanwhile), the reply may be older than what the node now causally
    knows, and caching it would let a later read return an overwritten
    value — the violation the literal Figure 4 pseudocode admits (see
    DESIGN.md, "Findings", and the model checker's
    [Figure4_literal] variant). *)

val install_batch : t -> (Dsm_memory.Loc.t * Stamped.t) list -> unit
(** Install all entries of one owner reply (the requested location plus any
    co-paged entries) as a unit: merge every stamp into [VT_i], store each
    entry (skipping locations owned locally or already cached at least as
    new), then invalidate cached values older than any installed stamp —
    {e sparing the batch itself}.  The exemption is sound because every
    batch entry is the owner's current (most recently certified) value of a
    location that owner serialises, so none of them can be an overwritten
    value.  [install_batch t [(loc, e)]] coincides with
    [install_remote t loc e]. *)

val page_entries : t -> Dsm_memory.Loc.t -> (Dsm_memory.Loc.t * Stamped.t) list
(** Owner side of page granularity: the other entries of [loc]'s page this
    node owns and currently stores.  Empty under word granularity. *)

val discard_all : t -> int
(** Drop every cached entry; returns how many were dropped. *)

val discard_one : t -> Dsm_memory.Loc.t -> bool
(** Drop one cached entry if present ([false] if absent or owned). *)

val cache_size : t -> int

val cached_locs : t -> Dsm_memory.Loc.t list
(** The set [C_i], in unspecified order. *)

val entries : t -> (Dsm_memory.Loc.t * Stamped.t) list
(** Every entry in [M_i] — served and cached — ascending by location name.
    Read-only (no LRU touch); the model checker fingerprints with it. *)

val reset_volatile : t -> unit
(** Crash-stop restart: drop everything volatile — the cache, the
    invalidation bookkeeping, the digest, the vector clock, the ownership
    view and the shadow copies.  Owner nodes are accepted: the cluster
    layer replays the node's write-ahead log via {!apply_record} right
    after the reset, restoring certified writes, view changes and shadows
    from stable storage.  The write and request counters keep growing so
    recycled writestamps or request tags never collide with pre-crash
    traffic. *)

val enforce_capacity : t -> unit
(** Evict least-recently-used cached entries until within the configured
    capacity (no-op for other discard policies). *)

(** {1 Precise-invalidation support (Config.Precise)} *)

val digest_export : t -> (Dsm_memory.Loc.t * Write_digest.entry) list
(** This node's newest-known-write table, for piggybacking on replies;
    empty under coarse invalidation, so coarse messages stay small. *)

val digest_merge : t -> (Dsm_memory.Loc.t * Write_digest.entry) list -> unit
(** Fold a peer's digest in; no-op under coarse invalidation. *)

(** {1 Owner failover: ownership view, shadow replication, durable log}

    Each node holds a {e view} mapping every base owner to the node
    currently serving its locations, with an epoch number that grows on
    each takeover (epoch 0 = the static assignment).  Backups additionally
    hold {e shadow} copies of an owner's certified writes, keyed by base
    owner, which a promotion installs as served state. *)

val epoch_of : t -> base:int -> int

val serving_of : t -> base:int -> int

val view : t -> (int * int * int) list
(** Non-default view entries [(base, epoch, serving)], ascending by base —
    the payload heartbeats gossip. *)

type view_outcome = View_ignored | View_adopted | View_demoted

val adopt_view : t -> base:int -> epoch:int -> serving:int -> view_outcome
(** Fold in a view entry learned from a takeover broadcast, gossip or a
    [Stale_epoch] fencing reply.  Entries at or below the known epoch are
    ignored.  A node that learns it was deposed drops its copies of the
    base's locations ([View_demoted]) — they are no longer authoritative. *)

val promote : t -> base:int -> epoch:int -> (Dsm_memory.Loc.t * Stamped.t) list
(** Take over [base]'s locations at [epoch]: install this node's shadow
    copies as served state (keeping any newer local copy), merge their
    stamps into the clock, run the conservative invalidation pass, and
    return the full served state for [base] (for re-shadowing to the next
    backup).  Raises [Invalid_argument] unless [epoch] exceeds the view's
    current epoch for [base]. *)

val shadow_store : t -> base:int -> Dsm_memory.Loc.t -> Stamped.t -> unit
(** Accept a shadow copy from [base]'s owner; an incoming entry strictly
    older than the held one is ignored (snapshots racing per-write
    shadows must not regress the backup). *)

val shadow_lookup : t -> base:int -> Dsm_memory.Loc.t -> Stamped.t option

val shadow_entries : t -> base:int -> (Dsm_memory.Loc.t * Stamped.t) list
(** Held shadow copies for [base], ascending by location name. *)

val shadow_size : t -> base:int -> int

val served_entries : t -> base:int -> (Dsm_memory.Loc.t * Stamped.t) list
(** The entries this node currently serves whose base owner is [base]. *)

val reconcile_served : t -> Dsm_memory.Loc.t -> Stamped.t -> bool
(** Merge one entry shipped by a demoted server (a [FRONTIER] message on
    partition heal) into served memory, newest-wins — the rule {!promote}
    applies to inherited shadows.  The entry's stamp is merged into the
    clock either way; returns whether the shipped copy won.  [false]
    without side effects when this node does not serve the location. *)

val snapshot : t -> Log_record.snapshot
(** Full durable state for a checkpoint: clock, view, every served entry,
    every shadow. *)

val apply_record : t -> Log_record.t -> unit
(** Replay one log record after {!reset_volatile}, in log order: restore a
    served entry, merge a logged clock, reinstate a view change or shadow,
    or load a whole checkpoint snapshot. *)
