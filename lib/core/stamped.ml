type t = { value : Dsm_memory.Value.t; stamp : Vclock.t; wid : Dsm_memory.Wid.t }

let make ~value ~stamp ~wid = { value; stamp; wid }

let initial ~processes value =
  { value; stamp = Vclock.zero processes; wid = Dsm_memory.Wid.initial }

let newer_than a b = Vclock.lt b.stamp a.stamp

let concurrent a b = Vclock.concurrent a.stamp b.stamp

let pp ppf t =
  Format.fprintf ppf "(%a, %a, %a)" Dsm_memory.Value.pp t.value Vclock.pp t.stamp
    Dsm_memory.Wid.pp t.wid
