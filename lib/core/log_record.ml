type snapshot = {
  snap_clock : Vclock.t;
  snap_view : (int * int * int) list;
  snap_served : (Dsm_memory.Loc.t * Stamped.t) list;
  snap_shadows : (int * (Dsm_memory.Loc.t * Stamped.t) list) list;
}

type t =
  | Write of { loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Clock of Vclock.t
  | View_change of { base : int; epoch : int; serving : int }
  | Shadow_entry of { base : int; loc : Dsm_memory.Loc.t; entry : Stamped.t }
  | Checkpoint of snapshot

let kind = function
  | Write _ -> "write"
  | Clock _ -> "clock"
  | View_change _ -> "view"
  | Shadow_entry _ -> "shadow"
  | Checkpoint _ -> "checkpoint"

let pp ppf = function
  | Write { loc; entry } ->
      Format.fprintf ppf "write(%a=%a)" Dsm_memory.Loc.pp loc Stamped.pp entry
  | Clock vt -> Format.fprintf ppf "clock(%a)" Vclock.pp vt
  | View_change { base; epoch; serving } ->
      Format.fprintf ppf "view(base %d -> e%d@@%d)" base epoch serving
  | Shadow_entry { base; loc; entry } ->
      Format.fprintf ppf "shadow(base %d, %a=%a)" base Dsm_memory.Loc.pp loc Stamped.pp entry
  | Checkpoint snap ->
      Format.fprintf ppf "checkpoint(%d served, %d shadow groups)"
        (List.length snap.snap_served)
        (List.length snap.snap_shadows)
