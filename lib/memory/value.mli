(** Values storable in the shared memory.

    A small dynamic value type so all the paper's programs share one memory
    implementation: the solver stores floats, the handshake flags booleans,
    the dictionary strings with [Free] playing the paper's λ ("location is
    free / value deleted"). *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Free  (** the dictionary's λ: previously held value was deleted *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val initial : t
(** The distinguished initial value every location is born with; the paper's
    examples assume initial writes of 0, so this is [Int 0]. *)

(** Coercions raise [Invalid_argument] on a type mismatch — an application
    reading a location it never wrote with the expected type is a bug. *)

val to_int : t -> int

val to_float : t -> float
(** Accepts [Int] (promoted) and [Float]: locations start life as [Int 0]. *)

val to_bool : t -> bool

val to_str : t -> string

val is_free : t -> bool
