(** Interest-based sharding: shards, owner rings and share-sets.

    A sharding partitions the cluster's nodes into [count] {e owner rings}
    and assigns every location to exactly one shard.  A shard's
    {e share-set} is the set of nodes replicating its locations: the ring
    members (permanent) plus any runtime subscribers.  The protocol routes
    invalidation metadata, shadow replication, takeover broadcasts and
    FRONTIER reconciliation only to the share-set, scopes failure
    detection to it, and computes takeover quorum as a majority of the
    {e ring} (not of the cluster) — see PROTOCOL.md, "Partial replication
    & sharding".

    The value is shared by every node of a simulation, like the {!Owner}
    map: the ring layout is static configuration, and the mutable
    subscriber sets model the interest directory.  [full ~nodes] (one
    shard ringing everyone) reproduces full replication exactly. *)

type t

val make : nodes:int -> shards:int -> t
(** Contiguous near-equal rings: shard [s] rings nodes
    [⌊s·nodes/shards⌋, ⌊(s+1)·nodes/shards⌋).  Requires
    [1 <= shards <= nodes]. *)

val full : nodes:int -> t
(** [make ~nodes ~shards:1]: the legacy full-replication layout. *)

val nodes : t -> int

val count : t -> int
(** Number of shards. *)

val of_loc : t -> Loc.t -> int
(** The shard a location belongs to: indexed families stripe by index
    modulo [count], named scalars hash. *)

val of_base : t -> int -> int
(** The shard whose ring contains a base owner — every base a node can
    serve lives in its own shard. *)

val ring : t -> int -> int list
(** A shard's owner-ring members, ascending. *)

val ring_size : t -> int -> int

val in_ring : t -> shard:int -> node:int -> bool

val ring_successor : t -> node:int -> int option
(** The designated backup under sharding: the next ring member of the
    node's own shard; [None] in a singleton ring. *)

val subscribed : t -> shard:int -> node:int -> bool

val subscribe : t -> shard:int -> node:int -> unit
(** Add a runtime subscriber to the shard's share-set; idempotent. *)

val unsubscribe : t -> shard:int -> node:int -> unit
(** Remove a runtime subscriber.  Ring members are the shard's replication
    floor and cannot leave; for them this is a no-op. *)

val subscribers : t -> int -> int list
(** The share-set, ascending; always a superset of the ring. *)

val membership : t -> int -> Membership.t
(** The share-set as a {!Membership}: the index map and width that price
    this shard's wire metadata. *)

val width : t -> int -> int
(** [Membership.width (membership t shard)], without the allocation. *)

val peers : t -> node:int -> int list
(** The nodes one node exchanges protocol traffic with: the union of the
    share-sets of every shard it subscribes to, itself excluded,
    ascending.  Symmetric: [a] lists [b] iff [b] lists [a]. *)

val subscriptions : t -> (int * int list) list
(** Every shard's share-set, [(shard, subscribers)] ascending — the
    canonical form model-checker fingerprints fold in. *)

val owner : t -> Owner.t
(** The induced owner map: each location's base owner is a ring member of
    its shard, so per-base epochs, votes and takeovers stay inside one
    ring. *)

val pp : Format.formatter -> t -> unit
