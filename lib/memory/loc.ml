type t = Named of string | Indexed of string * int | Cell of string * int * int
[@@deriving eq, ord]

let hash = Hashtbl.hash

let to_string = function
  | Named s -> s
  | Indexed (s, i) -> Printf.sprintf "%s.%d" s i
  | Cell (s, i, j) -> Printf.sprintf "%s.%d.%d" s i j

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.split_on_char '.' s with
  | [ name; i ] -> (
      match int_of_string_opt i with Some i -> Indexed (name, i) | None -> Named s)
  | [ name; i; j ] -> (
      match (int_of_string_opt i, int_of_string_opt j) with
      | Some i, Some j -> Cell (name, i, j)
      | _, _ -> Named s)
  | _ -> Named s

let named s = Named s

let indexed s i = Indexed (s, i)

let cell s i j = Cell (s, i, j)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)

(* {1 Interning}

   The flat hot path indexes memory by dense location ids instead of
   hashing structured locations on every step.  An interner is built once
   per run (ids are assigned in first-intern order, so a fixed intern order
   gives a stable layout); after the setup phase the hot loop only carries
   ids and never allocates. *)

module Interner = struct
  type loc = t

  type t = { ids : int Table.t; mutable rev : loc array; mutable n : int }

  let dummy = Named "_"

  let create ?(capacity = 64) () =
    { ids = Table.create capacity; rev = Array.make (max capacity 1) dummy; n = 0 }

  let count t = t.n

  let intern t loc =
    match Table.find_opt t.ids loc with
    | Some id -> id
    | None ->
        let id = t.n in
        if id >= Array.length t.rev then begin
          let rev = Array.make (2 * Array.length t.rev) dummy in
          Array.blit t.rev 0 rev 0 t.n;
          t.rev <- rev
        end;
        t.rev.(id) <- loc;
        t.n <- id + 1;
        Table.replace t.ids loc id;
        id

  let find_opt t loc = Table.find_opt t.ids loc

  let of_id t id =
    if id < 0 || id >= t.n then invalid_arg "Loc.Interner.of_id: unknown id";
    t.rev.(id)
end
