type t = Named of string | Indexed of string * int | Cell of string * int * int
[@@deriving eq, ord]

let hash = Hashtbl.hash

let to_string = function
  | Named s -> s
  | Indexed (s, i) -> Printf.sprintf "%s.%d" s i
  | Cell (s, i, j) -> Printf.sprintf "%s.%d.%d" s i j

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.split_on_char '.' s with
  | [ name; i ] -> (
      match int_of_string_opt i with Some i -> Indexed (name, i) | None -> Named s)
  | [ name; i; j ] -> (
      match (int_of_string_opt i, int_of_string_opt j) with
      | Some i, Some j -> Cell (name, i, j)
      | _, _ -> Named s)
  | _ -> Named s

let named s = Named s

let indexed s i = Indexed (s, i)

let cell s i j = Cell (s, i, j)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
