type t = { nodes : int; assign : Loc.t -> int }

let owner t loc =
  let node = t.assign loc in
  if node < 0 || node >= t.nodes then
    failwith
      (Printf.sprintf "Owner: assignment maps %s to node %d (out of %d)" (Loc.to_string loc)
         node t.nodes)
  else node

let nodes t = t.nodes

let make ~nodes assign =
  if nodes < 1 then invalid_arg "Owner.make: need at least one node";
  { nodes; assign }

let by_hash ~nodes = make ~nodes (fun loc -> Loc.hash loc mod nodes)

let by_index ~nodes =
  make ~nodes (fun loc ->
      match loc with
      | Loc.Indexed (_, i) -> abs i mod nodes
      | Loc.Cell (_, i, _) -> abs i mod nodes
      | Loc.Named _ -> Loc.hash loc mod nodes)

let all_to ~nodes node =
  if node < 0 || node >= nodes then invalid_arg "Owner.all_to: node out of range";
  make ~nodes (fun _ -> node)
