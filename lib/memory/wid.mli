(** Write identities.

    The paper assumes "all writes are unique (easily implemented by
    associating a timestamp with writes)" so each read can be identified with
    the unique write it reads from.  A [Wid.t] is that timestamp: the writing
    node plus a per-node sequence number.  The distinguished [initial]
    identity stands for the virtual initial write of every location. *)

type t = { node : int; seq : int }

val make : node:int -> seq:int -> t

val initial : t
(** The virtual write that initialises every location; causally precedes all
    operations. *)

val is_initial : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
