(* A share-set as an explicit, ordered membership: the bridge between
   cluster-wide node identifiers and the compact share-set-indexed vector
   clocks partial replication wants on the wire.  [members] is sorted and
   duplicate-free, so a membership is canonical: two share-sets with the
   same nodes are structurally equal. *)

type t = { members : int array; index : (int, int) Hashtbl.t }

let build members =
  let index = Hashtbl.create (Array.length members * 2) in
  Array.iteri (fun i node -> Hashtbl.replace index node i) members;
  { members; index }

let of_list nodes =
  List.iter (fun n -> if n < 0 then invalid_arg "Membership.of_list: negative node id") nodes;
  build (Array.of_list (List.sort_uniq compare nodes))

let full ~nodes =
  if nodes < 1 then invalid_arg "Membership.full: nodes must be >= 1";
  build (Array.init nodes Fun.id)

let members t = Array.to_list t.members

let width t = Array.length t.members

let mem t node = Hashtbl.mem t.index node

let index_of t node = Hashtbl.find_opt t.index node

let node_at t i =
  if i < 0 || i >= Array.length t.members then invalid_arg "Membership.node_at: out of range";
  t.members.(i)

let add t node =
  if node < 0 then invalid_arg "Membership.add: negative node id";
  if mem t node then t else of_list (node :: members t)

let remove t node = if mem t node then of_list (List.filter (( <> ) node) (members t)) else t

let equal a b = a.members = b.members

(* Projection keeps exactly the members' components: the share-set-width
   stamp shipped for a location replicated only at [t].  Sound for
   comparisons between stamps of the same share-set whenever every writer
   of the location is a member — component [i] of the projection is the
   member's own counter, and the dropped components belong to nodes whose
   writes the share-set never certifies. *)
let project t full_clock =
  Vclock.of_array (Array.map (fun node -> Vclock.get full_clock node) t.members)

(* Re-embedding into cluster width: non-members get zero, which is the
   least conservative sound choice (a missing component never claims
   knowledge the stamp does not carry). *)
let expand t ~nodes narrow =
  if Vclock.dim narrow <> width t then invalid_arg "Membership.expand: dimension mismatch";
  let arr = Array.make nodes 0 in
  Array.iteri (fun i node -> arr.(node) <- Vclock.get narrow i) t.members;
  Vclock.of_array arr

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (members t)))
