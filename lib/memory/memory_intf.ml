(** The programming interface applications are written against.

    Both DSM implementations (the causal owner protocol and the atomic
    write-invalidate baseline) expose a per-process handle satisfying
    [MEMORY], so the paper's point — "similar code may be used to program
    applications on both atomic and causal memories" — is literal here: the
    solver and the dictionary are functors over this signature and run
    unchanged on either memory. *)

module type MEMORY = sig
  type handle
  (** One process's view of the shared memory. *)

  val pid : handle -> int
  (** The process identifier (also the node it runs on). *)

  val processes : handle -> int
  (** Total number of processes sharing the memory. *)

  val read : handle -> Loc.t -> Value.t
  (** May block the calling process (remote read miss). *)

  val write : handle -> Loc.t -> Value.t -> unit
  (** May block the calling process (write to a location owned elsewhere). *)

  val yield : handle -> unit
  (** Cooperative pause; busy-wait loops must call this between polls. *)

  val refresh : handle -> Loc.t -> unit
  (** Freshness hint for polling loops: ensure a subsequent [read] of the
      location can observe remote progress.  On causal memory this is the
      paper's [discard] applied to one cached location (the next read
      misses and refetches from the owner) — without it two processes that
      cache everything and write only their own locations "need never
      communicate" (Section 3.1).  On invalidation-based memories staleness
      is pushed by the protocol, so this is a no-op. *)
end
