(** Owner maps: the static partition of the namespace among processors.

    Section 3.1: "The shared causal memory is partitioned among the
    processors in the system.  The locations assigned to a processor are
    owned by that processor." *)

type t
(** Total function from locations to owning node. *)

val owner : t -> Loc.t -> int

val nodes : t -> int

val make : nodes:int -> (Loc.t -> int) -> t
(** Wrap an arbitrary assignment; results are range-checked on use. *)

val by_hash : nodes:int -> t
(** Deterministic hash of the location modulo [nodes]. *)

val by_index : nodes:int -> t
(** [Indexed (_, i)] and [Cell (_, i, _)] belong to node [i mod nodes];
    named scalars hash.  This gives the paper's solver and dictionary
    layouts: process [i] owns [x_i], its handshake bits, and row [i]. *)

val all_to : nodes:int -> int -> t
(** Every location owned by one node (a "server" layout, useful in tests
    and ablations). *)
