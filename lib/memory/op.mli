(** Read and write operations as recorded in an execution history.

    A write [w(x)v] carries its own identity; a read [r(x)v] carries the
    identity of the write it read from, so the reads-from relation is
    explicit in the history and the checker never has to guess it from
    values. *)

type kind = Read | Write

type t = {
  pid : int;  (** issuing process *)
  index : int;  (** position in that process's program order, from 0 *)
  kind : kind;
  loc : Loc.t;
  value : Value.t;
  wid : Wid.t;  (** own identity for writes; reads-from identity for reads *)
}

val read : pid:int -> index:int -> loc:Loc.t -> value:Value.t -> from:Wid.t -> t

val write : pid:int -> index:int -> loc:Loc.t -> value:Value.t -> wid:Wid.t -> t

val is_read : t -> bool

val is_write : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper notation: [w2(x.1)5] / [r2(x.1)5]. *)

val to_string : t -> string
