(** Execution histories: one program-ordered operation sequence per process.

    Histories are what the protocols record and the checkers consume.  The
    textual format is the paper's own notation, one process per line:

    {v
    P1: w(x)1 w(y)2 r(y)2 r(x)1
    P2: w(z)1 r(y)2 r(x)1
    v}

    Values are integers, [T]/[F] booleans, or [~] for the dictionary's λ.
    When parsing, the reads-from relation is resolved the way the paper does:
    writes must be unique per (location, value), and a read of the initial
    value [0] with no matching write reads from the virtual initial write. *)

type t = private Op.t array array
(** [t.(pid).(k)] is process [pid]'s [k]-th operation. *)

val processes : t -> int

val ops : t -> Op.t list
(** All operations, processes concatenated in pid order. *)

val op_count : t -> int

val of_ops : Op.t array array -> t
(** Validates that [pid]/[index] fields match positions; raises
    [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Paper-style rendering, inverse of [parse] up to whitespace. *)

val parse : string -> (t, string) result
(** Parse the paper-style notation; blank lines and [#] comments ignored. *)

val parse_exn : string -> t

(** {1 Recording executions} *)

module Recorder : sig
  type history = t

  type t

  val create : processes:int -> t

  val record_read : t -> pid:int -> loc:Loc.t -> value:Value.t -> from:Wid.t -> Op.t
  (** Returns the recorded operation (with its program-order index). *)

  val record_write : t -> pid:int -> loc:Loc.t -> value:Value.t -> wid:Wid.t -> Op.t

  val history : t -> history
  (** Snapshot of everything recorded so far. *)

  val op_count : t -> int
end
