type t = Int of int | Float of float | Bool of bool | Str of string | Free
[@@deriving eq, ord]

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> if b then "T" else "F"
  | Str s -> Printf.sprintf "%S" s
  | Free -> "λ"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let initial = Int 0

let type_error expected got =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" expected (to_string got))

let to_int = function Int i -> i | v -> type_error "Int" v

let to_float = function Float f -> f | Int i -> float_of_int i | v -> type_error "Float" v

let to_bool = function Bool b -> b | v -> type_error "Bool" v

let to_str = function Str s -> s | v -> type_error "Str" v

let is_free = function Free -> true | Int _ | Float _ | Bool _ | Str _ -> false
