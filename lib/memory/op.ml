type kind = Read | Write [@@deriving eq]

type t = {
  pid : int;
  index : int;
  kind : kind;
  loc : Loc.t;
  value : Value.t;
  wid : Wid.t;
}
[@@deriving eq]

let read ~pid ~index ~loc ~value ~from = { pid; index; kind = Read; loc; value; wid = from }

let write ~pid ~index ~loc ~value ~wid = { pid; index; kind = Write; loc; value; wid }

let is_read t = t.kind = Read

let is_write t = t.kind = Write

let to_string t =
  let tag = match t.kind with Read -> "r" | Write -> "w" in
  Printf.sprintf "%s%d(%s)%s" tag t.pid (Loc.to_string t.loc) (Value.to_string t.value)

let pp ppf t = Format.pp_print_string ppf (to_string t)
