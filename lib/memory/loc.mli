(** Locations of the shared causal memory namespace [N].

    Locations are structured so the applications read naturally: the solver
    uses [Indexed ("x", i)] for vector elements, the dictionary uses
    [Cell ("dict", row, col)] for its two-dimensional array, and scalars such
    as handshake flags are [Indexed ("complete", i)]. *)

type t =
  | Named of string  (** a scalar variable *)
  | Indexed of string * int  (** element of a one-dimensional array *)
  | Cell of string * int * int  (** element of a two-dimensional array *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** [x], [x.3], [dict.2.5]. *)

val of_string : string -> t
(** Inverse of [to_string]; unparseable dotted suffixes fall back to
    [Named]. *)

val named : string -> t

val indexed : string -> int -> t

val cell : string -> int -> int -> t

module Map : Map.S with type key = t

module Set : Set.S with type elt = t

module Table : Hashtbl.S with type key = t

(** Dense int ids for locations, built once per run: the flat hot path
    ({!Dsm_protocol.Flat}) carries ids instead of hashing structured
    locations per step.  Ids are assigned in first-intern order and are
    stable for the interner's lifetime. *)
module Interner : sig
  type loc = t

  type t

  val create : ?capacity:int -> unit -> t

  val intern : t -> loc -> int
  (** Existing id, or the next dense id for a new location. *)

  val find_opt : t -> loc -> int option

  val of_id : t -> int -> loc
  (** Raises [Invalid_argument] on an id never handed out. *)

  val count : t -> int
end
