(* Interest-based sharding: the cluster's nodes are partitioned into
   shards, each with its own owner ring, and every location belongs to
   exactly one shard.  A shard's share-set — its ring members plus every
   runtime subscriber — is the set of nodes that replicate its locations;
   protocol broadcasts, failure detection and quorum all scope to it.

   The registry is deliberately a single shared value (like the [Owner]
   map): the static ring layout is configuration, and the mutable
   subscriber sets model the interest directory every real partial-
   replication system keeps (the causal safety of joining lives in the
   protocol's catch-up transfer, not here). *)

module Loc = Loc

type t = {
  nodes : int;
  count : int;
  rings : int array array; (* shard -> ring members, ascending *)
  shard_of_node : int array; (* node -> the shard whose ring holds it *)
  subscribers : (int, unit) Hashtbl.t array; (* shard -> share-set ⊇ ring *)
}

let make ~nodes ~shards =
  if nodes < 1 then invalid_arg "Shard.make: nodes must be >= 1";
  if shards < 1 || shards > nodes then invalid_arg "Shard.make: need 1 <= shards <= nodes";
  (* Contiguous near-equal blocks: shard [s] rings nodes
     [s*nodes/shards, (s+1)*nodes/shards). *)
  let lo s = s * nodes / shards in
  let rings = Array.init shards (fun s -> Array.init (lo (s + 1) - lo s) (fun i -> lo s + i)) in
  let shard_of_node = Array.make nodes 0 in
  Array.iteri (fun s ring -> Array.iter (fun node -> shard_of_node.(node) <- s) ring) rings;
  let subscribers =
    Array.map
      (fun ring ->
        let tbl = Hashtbl.create (Array.length ring * 2) in
        Array.iter (fun node -> Hashtbl.replace tbl node ()) ring;
        tbl)
      rings
  in
  { nodes; count = shards; rings; shard_of_node; subscribers }

let full ~nodes = make ~nodes ~shards:1

let nodes t = t.nodes

let count t = t.count

let check_shard t shard =
  if shard < 0 || shard >= t.count then invalid_arg "Shard: shard index out of range"

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Shard: node id out of range"

(* The static location -> shard assignment, mirroring [Owner.by_index]:
   indexed families stripe across shards, named scalars hash. *)
let of_loc t loc =
  match (loc : Loc.t) with
  | Loc.Indexed (_, i) | Loc.Cell (_, i, _) -> abs i mod t.count
  | Loc.Named _ -> Loc.hash loc mod t.count

let of_base t base =
  check_node t base;
  t.shard_of_node.(base)

let ring t shard =
  check_shard t shard;
  Array.to_list t.rings.(shard)

let ring_size t shard =
  check_shard t shard;
  Array.length t.rings.(shard)

let in_ring t ~shard ~node =
  check_shard t shard;
  Array.exists (( = ) node) t.rings.(shard)

(* The designated backup under sharding: the ring successor within the
   node's own shard (never a node from another shard — failover must not
   leak ownership across the shard boundary). *)
let ring_successor t ~node =
  check_node t node;
  let ring = t.rings.(t.shard_of_node.(node)) in
  let len = Array.length ring in
  if len <= 1 then None
  else begin
    let i = ref 0 in
    Array.iteri (fun j m -> if m = node then i := j) ring;
    Some ring.((!i + 1) mod len)
  end

let subscribed t ~shard ~node =
  check_shard t shard;
  Hashtbl.mem t.subscribers.(shard) node

let subscribe t ~shard ~node =
  check_shard t shard;
  check_node t node;
  Hashtbl.replace t.subscribers.(shard) node ()

let unsubscribe t ~shard ~node =
  (* Ring members are permanent: the owner ring is the shard's replication
     floor, so only runtime subscribers can leave. *)
  if not (in_ring t ~shard ~node) then Hashtbl.remove t.subscribers.(shard) node

let subscribers t shard =
  check_shard t shard;
  Hashtbl.fold (fun node () acc -> node :: acc) t.subscribers.(shard) [] |> List.sort compare

let membership t shard = Membership.of_list (subscribers t shard)

let width t shard = Hashtbl.length t.subscribers.(shard)

(* The nodes one node exchanges protocol traffic with: the union of the
   share-sets it belongs to.  Symmetric by construction — [a] is a peer of
   [b] iff both subscribe to some common shard — so heartbeat scoping keeps
   the failure detectors consistent in both directions. *)
let peers t ~node =
  check_node t node;
  let acc = Hashtbl.create 16 in
  Array.iter
    (fun subs ->
      if Hashtbl.mem subs node then
        Hashtbl.iter (fun peer () -> if peer <> node then Hashtbl.replace acc peer ()) subs)
    t.subscribers;
  Hashtbl.fold (fun peer () l -> peer :: l) acc [] |> List.sort compare

let subscriptions t = List.init t.count (fun shard -> (shard, subscribers t shard))

(* The induced owner map: a location's base owner is a ring member of its
   shard, so the per-base failover machinery (epochs, votes, takeover)
   stays inside one ring.  Indexed families spread across the ring the
   same way [Owner.by_index] spreads them across the cluster. *)
let owner t =
  Owner.make ~nodes:t.nodes (fun loc ->
      let ring = t.rings.(of_loc t loc) in
      let k =
        match (loc : Loc.t) with
        | Loc.Indexed (_, i) | Loc.Cell (_, i, _) -> abs i / t.count
        | Loc.Named _ -> Loc.hash loc
      in
      ring.(k mod Array.length ring))

let pp ppf t =
  Format.fprintf ppf "%d shard%s over %d nodes" t.count (if t.count = 1 then "" else "s") t.nodes
