type t = Op.t array array

let processes = Array.length

let ops t = Array.to_list t |> List.concat_map Array.to_list

let op_count t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t

let of_ops rows =
  Array.iteri
    (fun pid row ->
      Array.iteri
        (fun index (op : Op.t) ->
          if op.pid <> pid || op.index <> index then
            invalid_arg
              (Printf.sprintf "History.of_ops: op %s misplaced at P%d[%d]" (Op.to_string op)
                 pid index))
        row)
    rows;
  rows

(* Parser-compatible op rendering: the line label carries the pid, so ops
   print as w(x)1 rather than Op.to_string's w0(x)1. *)
let op_token (op : Op.t) =
  let tag = match op.Op.kind with Op.Read -> "r" | Op.Write -> "w" in
  Printf.sprintf "%s(%s)%s" tag (Loc.to_string op.Op.loc) (Value.to_string op.Op.value)

let pp ppf t =
  Array.iteri
    (fun pid row ->
      Format.fprintf ppf "P%d:" pid;
      Array.iter (fun op -> Format.fprintf ppf " %s" (op_token op)) row;
      if pid < Array.length t - 1 then Format.pp_print_newline ppf ())
    t

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Parsing the paper's notation                                        *)
(* ------------------------------------------------------------------ *)

type raw_op = { raw_kind : Op.kind; raw_loc : Loc.t; raw_value : Value.t }

let parse_value s =
  match s with
  | "T" -> Ok (Value.Bool true)
  | "F" -> Ok (Value.Bool false)
  | "~" -> Ok Value.Free
  | _ -> (
      match int_of_string_opt s with
      | Some i -> Ok (Value.Int i)
      | None -> (
          match float_of_string_opt s with
          | Some f -> Ok (Value.Float f)
          | None -> Error (Printf.sprintf "unparseable value %S" s)))

(* One operation token looks like w(x)1 or r(dict.0.3)~ *)
let parse_op token =
  let fail msg = Error (Printf.sprintf "bad op %S: %s" token msg) in
  if String.length token < 4 then fail "too short"
  else begin
    let kind =
      match token.[0] with
      | 'w' -> Ok Op.Write
      | 'r' -> Ok Op.Read
      | _ -> Error "must start with r or w"
    in
    match kind with
    | Error e -> fail e
    | Ok raw_kind -> (
        if token.[1] <> '(' then fail "expected '(' after r/w"
        else
          match String.index_opt token ')' with
          | None -> fail "missing ')'"
          | Some close ->
              let loc = Loc.of_string (String.sub token 2 (close - 2)) in
              let value_str = String.sub token (close + 1) (String.length token - close - 1) in
              if value_str = "" then fail "missing value"
              else begin
                match parse_value value_str with
                | Error e -> fail e
                | Ok v -> Ok { raw_kind; raw_loc = loc; raw_value = v }
              end)
  end

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "missing ':' in line %S" line)
  | Some colon ->
      let label = String.trim (String.sub line 0 colon) in
      let rest = String.sub line (colon + 1) (String.length line - colon - 1) in
      let pid =
        if String.length label >= 2 && (label.[0] = 'P' || label.[0] = 'p') then
          int_of_string_opt (String.sub label 1 (String.length label - 1))
        else None
      in
      (match pid with
      | None -> Error (Printf.sprintf "bad process label %S (want P<n>)" label)
      | Some pid ->
          let rec collect acc = function
            | [] -> Ok (pid, List.rev acc)
            | token :: rest -> (
                match parse_op token with
                | Ok op -> collect (op :: acc) rest
                | Error e -> Error e)
          in
          collect [] (split_words rest))

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

(* Resolve reads-from: every read is matched to the unique write of the same
   (location, value); a read of Value.initial with no such write reads from
   the virtual initial write. *)
let resolve (lines : (int * raw_op list) list) =
  let max_pid = List.fold_left (fun acc (pid, _) -> max acc pid) (-1) lines in
  if max_pid < 0 then Error "empty history"
  else begin
    let by_pid = Array.make (max_pid + 1) None in
    let dup =
      List.exists
        (fun (pid, ops) ->
          match by_pid.(pid) with
          | Some _ -> true
          | None ->
              by_pid.(pid) <- Some ops;
              false)
        lines
    in
    if dup then Error "duplicate process label"
    else begin
      let writers : (Loc.t * Value.t, Wid.t) Hashtbl.t = Hashtbl.create 64 in
      let duplicate_write = ref None in
      Array.iteri
        (fun pid row ->
          match row with
          | None -> ()
          | Some ops ->
              List.iteri
                (fun index raw ->
                  if raw.raw_kind = Op.Write then begin
                    let key = (raw.raw_loc, raw.raw_value) in
                    if Hashtbl.mem writers key then
                      duplicate_write :=
                        Some
                          (Printf.sprintf "duplicate write w(%s)%s: writes must be unique"
                             (Loc.to_string raw.raw_loc)
                             (Value.to_string raw.raw_value))
                    else Hashtbl.replace writers key (Wid.make ~node:pid ~seq:index)
                  end)
                ops)
        by_pid;
      match !duplicate_write with
      | Some msg -> Error msg
      | None ->
          let error = ref None in
          let rows =
            Array.mapi
              (fun pid row ->
                match row with
                | None -> [||]
                | Some ops ->
                    Array.of_list
                      (List.mapi
                         (fun index raw ->
                           match raw.raw_kind with
                           | Op.Write ->
                               Op.write ~pid ~index ~loc:raw.raw_loc ~value:raw.raw_value
                                 ~wid:(Wid.make ~node:pid ~seq:index)
                           | Op.Read -> (
                               let key = (raw.raw_loc, raw.raw_value) in
                               match Hashtbl.find_opt writers key with
                               | Some wid ->
                                   Op.read ~pid ~index ~loc:raw.raw_loc ~value:raw.raw_value
                                     ~from:wid
                               | None ->
                                   if Value.equal raw.raw_value Value.initial then
                                     Op.read ~pid ~index ~loc:raw.raw_loc
                                       ~value:raw.raw_value ~from:Wid.initial
                                   else begin
                                     error :=
                                       Some
                                         (Printf.sprintf "read %s has no matching write"
                                            (Printf.sprintf "r(%s)%s"
                                               (Loc.to_string raw.raw_loc)
                                               (Value.to_string raw.raw_value)));
                                     Op.read ~pid ~index ~loc:raw.raw_loc
                                       ~value:raw.raw_value ~from:Wid.initial
                                   end))
                         ops))
              by_pid
          in
          (match !error with Some e -> Error e | None -> Ok rows)
    end
  end

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map strip_comment
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok parsed -> parse_all (parsed :: acc) rest
        | Error e -> Error e)
  in
  match parse_all [] lines with Ok lines -> resolve lines | Error e -> Error e

let parse_exn text =
  match parse text with Ok h -> h | Error e -> failwith ("History.parse: " ^ e)

module Recorder = struct
  type history = t

  type t = { rows : Op.t list array; counts : int array }

  let create ~processes =
    if processes < 1 then invalid_arg "Recorder.create: need at least one process";
    { rows = Array.make processes []; counts = Array.make processes 0 }

  let next_index t pid =
    let index = t.counts.(pid) in
    t.counts.(pid) <- index + 1;
    index

  let record_read t ~pid ~loc ~value ~from =
    let index = next_index t pid in
    let op = Op.read ~pid ~index ~loc ~value ~from in
    t.rows.(pid) <- op :: t.rows.(pid);
    op

  let record_write t ~pid ~loc ~value ~wid =
    let index = next_index t pid in
    let op = Op.write ~pid ~index ~loc ~value ~wid in
    t.rows.(pid) <- op :: t.rows.(pid);
    op

  let history t = Array.map (fun row -> Array.of_list (List.rev row)) t.rows

  let op_count t = Array.fold_left ( + ) 0 t.counts
end
