type t = { node : int; seq : int } [@@deriving eq, ord]

let make ~node ~seq =
  if node < 0 then invalid_arg "Wid.make: negative node";
  { node; seq }

let initial = { node = -1; seq = 0 }

let is_initial t = t.node < 0

let hash = Hashtbl.hash

let to_string t = if is_initial t then "w#init" else Printf.sprintf "w#%d.%d" t.node t.seq

let pp ppf t = Format.pp_print_string ppf (to_string t)
