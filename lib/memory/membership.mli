(** Share-set memberships: the node-id ↔ share-set-index mapping partial
    replication indexes vector clocks through.

    A membership is a canonical (sorted, duplicate-free) set of node ids.
    Under full replication every location's membership is [full ~nodes] and
    share-set width equals cluster width; under interest-based sharding a
    location's membership is its share-set — the owner-ring members plus
    every runtime subscriber — and wire metadata is accounted at [width],
    not at cluster width (Nédelec et al.'s observation that causal metadata
    need only cover the nodes that actually communicate).

    [project]/[expand] translate between cluster-width and share-set-width
    clocks.  The protocol keeps full-width stamps in memory — owner clocks
    mix cross-shard components through certification, and Xiang & Vaidya's
    lower bound says a sound projection cannot be free — and uses the
    membership for wire-size accounting and subscriber routing; the
    projection itself is exercised by the unit tests and available to
    consumers whose writers provably stay inside one share-set. *)

type t

val of_list : int list -> t
(** Canonicalises (sorts, deduplicates); negative ids are rejected. *)

val full : nodes:int -> t
(** The whole cluster [{0, …, nodes-1}]: full replication's share-set. *)

val members : t -> int list
(** Ascending. *)

val width : t -> int
(** The share-set's size: the dimension of its projected clocks and the
    per-entry metadata cost on the wire. *)

val mem : t -> int -> bool

val index_of : t -> int -> int option
(** The share-set index of a node, [None] for non-members. *)

val node_at : t -> int -> int
(** Inverse of [index_of]; raises [Invalid_argument] out of range. *)

val add : t -> int -> t
(** Functional insert (a subscriber joining); idempotent. *)

val remove : t -> int -> t
(** Functional delete (a subscriber leaving); idempotent. *)

val equal : t -> t -> bool

val project : t -> Vclock.t -> Vclock.t
(** [project t full] keeps exactly the members' components, in membership
    order: a [width t]-dimensional clock. *)

val expand : t -> nodes:int -> Vclock.t -> Vclock.t
(** [expand t ~nodes narrow] re-embeds a projected clock into cluster
    width; non-members get zero.  Raises [Invalid_argument] if [narrow]'s
    dimension is not [width t]. *)

val pp : Format.formatter -> t -> unit
