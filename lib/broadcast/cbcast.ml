type mode = [ `Causal | `Fifo ]

type 'payload tagged = { tag : int array; sender : int; payload : 'payload }

type 'payload node_state = {
  delivered : int array; (* D_j: broadcasts delivered, per sender *)
  mutable held : 'payload tagged list; (* delay queue, arrival order (oldest first) *)
}

type 'payload t = {
  mode : mode;
  node_count : int;
  net : 'payload tagged Dsm_net.Network.t;
  states : 'payload node_state array;
  deliver : node:int -> src:int -> 'payload -> unit;
  mutable delayed_total : int;
}

let deliverable t ~node (m : _ tagged) =
  let d = t.states.(node).delivered in
  match t.mode with
  | `Fifo -> m.tag.(m.sender) = d.(m.sender) + 1
  | `Causal ->
      m.tag.(m.sender) = d.(m.sender) + 1
      && begin
           let ok = ref true in
           for k = 0 to t.node_count - 1 do
             if k <> m.sender && m.tag.(k) > d.(k) then ok := false
           done;
           !ok
         end

let rec deliver_now t ~node (m : _ tagged) =
  let state = t.states.(node) in
  state.delivered.(m.sender) <- state.delivered.(m.sender) + 1;
  t.deliver ~node ~src:m.sender m.payload;
  (* Delivery may unblock held messages; drain to fixpoint. *)
  drain t ~node

and drain t ~node =
  let state = t.states.(node) in
  let rec find_ready before = function
    | [] -> None
    | m :: rest ->
        if deliverable t ~node m then Some (m, List.rev_append before rest)
        else find_ready (m :: before) rest
  in
  match find_ready [] state.held with
  | None -> ()
  | Some (m, rest) ->
      state.held <- rest;
      t.delayed_total <- t.delayed_total - 1;
      deliver_now t ~node m

let on_receive t ~node ~src:_ (m : _ tagged) =
  if deliverable t ~node m then deliver_now t ~node m
  else begin
    t.states.(node).held <- t.states.(node).held @ [ m ];
    t.delayed_total <- t.delayed_total + 1
  end

let create engine ~nodes ?(mode = `Causal) ?latency ?(seed = 7L) ~deliver () =
  if nodes < 1 then invalid_arg "Cbcast.create: need at least one node";
  let net = Dsm_net.Network.create engine ~nodes ?latency ~seed () in
  let t =
    {
      mode;
      node_count = nodes;
      net;
      states = Array.init nodes (fun _ -> { delivered = Array.make nodes 0; held = [] });
      deliver;
      delayed_total = 0;
    }
  in
  for node = 0 to nodes - 1 do
    Dsm_net.Network.set_handler net ~node (fun ~src m -> on_receive t ~node ~src m)
  done;
  t

let broadcast t ~src ?(size = 2) payload =
  (* The tag is the sender's delivered vector with its own component bumped:
     "I have delivered these; my message is my next one."  Receivers hold the
     message until they have caught up with that causal past. *)
  let tag = Array.copy t.states.(src).delivered in
  tag.(src) <- tag.(src) + 1;
  let m = { tag; sender = src; payload } in
  for dst = 0 to t.node_count - 1 do
    if dst <> src then Dsm_net.Network.send t.net ~src ~dst ~kind:"CBCAST" ~size m
  done;
  (* The sender delivers its own broadcast immediately. *)
  deliver_now t ~node:src m

let nodes t = t.node_count

let set_link_latency t ~src ~dst latency =
  Dsm_net.Network.set_link_latency t.net ~src ~dst latency

let counters t = Dsm_net.Network.counters t.net

let delayed t = t.delayed_total

let delivered_counts t node = Vclock.of_array t.states.(node).delivered
