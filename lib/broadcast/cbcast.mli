(** Causally ordered broadcast (the ISIS CBCAST the paper contrasts with).

    Standard vector-clock delivery (Birman-Schiper-Stephenson): node [i]
    increments its own component before broadcasting and tags the message;
    node [j] delays a message [m] from [i] until it has delivered every
    message [m] causally depends on, i.e. until [tag(m).(i) = D_j.(i) + 1]
    and [tag(m).(k) <= D_j.(k)] for all [k <> i], where [D_j] counts the
    broadcasts [j] has delivered per sender.

    A [`Fifo] mode weakens the condition to per-sender order only, for the
    delivery-order ablation. *)

type 'payload t

type mode = [ `Causal | `Fifo ]

val create :
  Dsm_sim.Engine.t ->
  nodes:int ->
  ?mode:mode ->
  ?latency:Dsm_net.Latency.t ->
  ?seed:int64 ->
  deliver:(node:int -> src:int -> 'payload -> unit) ->
  unit ->
  'payload t
(** [deliver] is invoked exactly once per (message, node), in an order
    satisfying the mode's constraint; the sender delivers its own message
    immediately at broadcast time. *)

val broadcast : 'payload t -> src:int -> ?size:int -> 'payload -> unit

val nodes : 'payload t -> int

val set_link_latency : 'payload t -> src:int -> dst:int -> Dsm_net.Latency.t -> unit
(** Shape one directed link of the underlying transport (the Figure 3
    reproduction slows specific links). *)

val counters : 'payload t -> Dsm_net.Network.counters
(** Message accounting of the underlying transport. *)

val delayed : 'payload t -> int
(** Messages currently held back by the delivery condition, summed over
    nodes (zero once the engine quiesces). *)

val delivered_counts : 'payload t -> int -> Vclock.t
(** Node's per-sender delivered counts [D_j]; for tests. *)
