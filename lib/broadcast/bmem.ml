module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Wid = Dsm_memory.Wid
module History = Dsm_memory.History
module Proc = Dsm_runtime.Proc

type payload = { loc : Loc.t; value : Value.t; wid : Wid.t }

type entry = { e_value : Value.t; e_wid : Wid.t }

type t = {
  sched : Proc.sched;
  bcast : payload Cbcast.t;
  stores : entry Loc.Table.t array;
  recorder : History.Recorder.t;
  wseq : int array;
}

type handle = { cluster : t; me : int }

let apply t ~node (p : payload) =
  Loc.Table.replace t.stores.(node) p.loc { e_value = p.value; e_wid = p.wid }

let create ~sched ~processes ?(mode = `Causal) ?latency ?(seed = 11L) () =
  if processes < 1 then invalid_arg "Bmem.create: need at least one process";
  let engine = Proc.engine sched in
  let stores = Array.init processes (fun _ -> Loc.Table.create 64) in
  let recorder = History.Recorder.create ~processes in
  let rec t =
    lazy
      {
        sched;
        bcast =
          Cbcast.create engine ~nodes:processes ~mode ?latency ~seed
            ~deliver:(fun ~node ~src:_ p -> apply (Lazy.force t) ~node p)
            ();
        stores;
        recorder;
        wseq = Array.make processes 0;
      }
  in
  Lazy.force t

let handle t me = { cluster = t; me }

let handles t = Array.init (Array.length t.stores) (handle t)

let processes t = Array.length t.stores

let bcast t = t.bcast

let history t = History.Recorder.history t.recorder

let messages t = (Cbcast.counters t.bcast).Dsm_net.Network.total

let pid h = h.me

let read h loc =
  let t = h.cluster in
  match Loc.Table.find_opt t.stores.(h.me) loc with
  | Some entry ->
      ignore
        (History.Recorder.record_read t.recorder ~pid:h.me ~loc ~value:entry.e_value
           ~from:entry.e_wid);
      entry.e_value
  | None ->
      ignore
        (History.Recorder.record_read t.recorder ~pid:h.me ~loc ~value:Value.initial
           ~from:Wid.initial);
      Value.initial

let write h loc value =
  let t = h.cluster in
  let seq = t.wseq.(h.me) in
  t.wseq.(h.me) <- seq + 1;
  let wid = Wid.make ~node:h.me ~seq in
  ignore (History.Recorder.record_write t.recorder ~pid:h.me ~loc ~value ~wid);
  Cbcast.broadcast t.bcast ~src:h.me { loc; value; wid }

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = processes h.cluster

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  (* Every node holds a full replica kept fresh by deliveries. *)
  let refresh (_ : handle) (_ : Loc.t) = ()
end
