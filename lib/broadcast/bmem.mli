(** "Memory as causal broadcast" — the strawman of the paper's Figure 3.

    Each node keeps a full copy of the memory; a write is applied locally
    and broadcast with causal ordering; delivery stores the value; a read
    returns the local copy.  Section 2 shows this is {e not} causal memory:
    concurrent writes of the same location may be applied in different
    orders at different nodes, and a reader can return a value the causal
    past of its own earlier reads has already overwritten.

    The recorded histories let the checker demonstrate the violation
    mechanically (experiment E-FIG3). *)

type t

type handle

type payload
(** The broadcast message: one (location, value, write-identity) update. *)

val create :
  sched:Dsm_runtime.Proc.sched ->
  processes:int ->
  ?mode:Cbcast.mode ->
  ?latency:Dsm_net.Latency.t ->
  ?seed:int64 ->
  unit ->
  t

val handle : t -> int -> handle

val handles : t -> handle array

val processes : t -> int

val bcast : t -> payload Cbcast.t
(** The underlying broadcast engine (tests shape link latencies through
    [Cbcast.set_link_latency]). *)

val history : t -> Dsm_memory.History.t

val messages : t -> int
(** Broadcast messages sent so far. *)

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit
(** Non-blocking: applies locally (via self-delivery) and broadcasts the
    update. *)

module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
