(* Conservative domain-parallel simulation of the flat Figure-4 data path.

   The sequential {!Engine} is a closure heap: general, but one event at a
   time.  This engine trades generality for scale — it simulates exactly
   the hot-path workload (owner writes, cached reads, and blocking
   remote-read/remote-write round trips over {!Dsm_protocol.Flat}) under a
   synchronous timing model, and extracts parallelism the classic
   conservative-PDES way:

   - Nodes are partitioned into [shards] {e logical} shards (node [mod]
     shards).  Time advances in {e epochs}; one epoch is the network
     latency, i.e. the lookahead: a message sent during epoch [k] cannot
     affect any shard before epoch [k+1], so within an epoch every shard
     is independent and shards can run on any number of domains.

   - Messages cross shards through double-buffered int-encoded mailboxes,
     one per (src shard, dst shard) pair.  During an epoch each shard
     appends to its own out-row; at the epoch barrier the main domain
     swaps the banks.  {e All} traffic goes through the mailboxes — also
     between nodes of the same shard — so behaviour cannot depend on the
     shard layout.

   - Each shard's epoch is a pure function of (its nodes' state, its
     inbox, its nodes' PRNGs): inboxes are drained in ascending source
     shard order FIFO, then each of the shard's nodes (ascending) takes
     its turn to issue operations.  Shard count fixed, results are
     therefore {e bit-identical for any domain count} — [~domains:1] is
     the reference semantics and the determinism tests hold 2- and
     4-domain runs to its digest, op for op.

   - The barrier is a generation-counting [Mutex]/[Condition] barrier; the
     happens-before edges its lock hand-offs create are the only
     synchronisation.  The Flat state is shared, but every cell is indexed
     by the acting node (see {!Dsm_protocol.Flat}), and an epoch only acts
     as its own shard's nodes, so there are no data races.

   Op streams for the online checker are collected per node in packed int
   logs and handed to [on_ops] at each barrier, on the main domain, in
   ascending node order — which preserves per-process program order, all a
   causal checker may assume.

   Workload choreography (one blocking client per node, at most one
   outstanding request):
   - read of a present location (owned or cached): immediate hit;
   - read miss: R_REQ to the owner, R_REPLY installs (install_remote);
   - write to an owned location: immediate owner_write;
   - write elsewhere: the writer ticks its own clock component (the write
     is an event at the writer, mirroring [local_write]'s increment),
     stamps with its clock, sends W_REQ; the owner certifies; W_REPLY
     adopts whatever the owner now stores.  Under last-writer-wins the
     fresh tick makes the stamp either After or Concurrent with the
     owner's entry, so workload writes are never rejected — but the
     R_REPLY/W_REPLY machinery handles rejection anyway. *)

module Flat = Dsm_protocol.Flat
module Prng = Dsm_util.Prng

type params = {
  nodes : int;
  locs : int;  (** location [l] is owned by node [l mod nodes] *)
  shards : int;  (** logical shards; fixed per run, independent of domains *)
  seed : int;
  read_pct : int;  (** percent of issued ops that are reads *)
  remote_pct : int;  (** percent of ops aimed at a uniformly random (mostly non-owned) location *)
  ops_per_node_per_epoch : int;  (** issue budget per idle node per epoch *)
}

let default_params ~nodes =
  {
    nodes;
    locs = nodes;
    shards = min nodes 16;
    seed = 1;
    read_pct = 60;
    remote_pct = 30;
    ops_per_node_per_epoch = 4;
  }

(* Message kinds.  Fixed stride [7 + nodes] ints:
   [kind; src; dst; loc; value; wid_node; wid_seq; stamp[0..n-1]]. *)
let m_r_req = 0

let m_w_req = 1

let m_r_reply = 2

let m_w_reply_acc = 3

let m_w_reply_rej = 4

(* Packed op-log records, stride 5: [kind(0=read,1=write); loc; value;
   wid_node; wid_seq].  For reads the wid is the reads-from wid. *)
let log_stride = 5

type buf = { mutable data : int array; mutable len : int }

type t = {
  p : params;
  flat : Flat.t;
  stride : int;
  nshards : int;
  (* Double-buffered mailboxes, row-major [src * nshards + dst].  During an
     epoch shards append to [out] and drain [inbox]; the main domain swaps
     the banks at the barrier. *)
  mutable out : buf array;
  mutable inbox : buf array;
  prng : Prng.t array;
  status : int array; (* 0 idle; 1 blocked on a reply *)
  pending_loc : int array;
  pending_value : int array;
  pending_seq : int array;
  issued : int array;
  completed : int array;
  logs : buf array; (* per node *)
  zeros : int array; (* all-zero stamp for requests that carry none *)
  mutable gen_enabled : bool;
  mutable stop : bool;
  mutable epochs : int;
}

type stats = {
  epochs : int;
  issued : int;
  completed : int;
  reads : int;
  writes : int;
  remote_ops : int;
  digest : int;
  domains_used : int;
}

let create p =
  if p.nodes < 1 then invalid_arg "Par_engine.create: nodes must be >= 1";
  if p.locs < 1 then invalid_arg "Par_engine.create: locs must be >= 1";
  if p.shards < 1 || p.shards > p.nodes then
    invalid_arg "Par_engine.create: shards must be in [1, nodes]";
  if p.ops_per_node_per_epoch < 1 then
    invalid_arg "Par_engine.create: ops_per_node_per_epoch must be >= 1";
  let flat =
    Flat.create ~nodes:p.nodes ~locs:p.locs ~owner:(Array.init p.locs (fun l -> l mod p.nodes)) ()
  in
  let mbanks () = Array.init (p.shards * p.shards) (fun _ -> { data = [||]; len = 0 }) in
  {
    p;
    flat;
    stride = 7 + p.nodes;
    nshards = p.shards;
    out = mbanks ();
    inbox = mbanks ();
    prng =
      Array.init p.nodes (fun n ->
          Prng.create (Int64.add (Int64.of_int p.seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (n + 1)))));
    status = Array.make p.nodes 0;
    pending_loc = Array.make p.nodes (-1);
    pending_value = Array.make p.nodes 0;
    pending_seq = Array.make p.nodes 0;
    issued = Array.make p.nodes 0;
    completed = Array.make p.nodes 0;
    logs = Array.init p.nodes (fun _ -> { data = [||]; len = 0 });
    zeros = Array.make p.nodes 0;
    gen_enabled = true;
    stop = false;
    epochs = 0;
  }

let shard_of t node = node mod t.nshards

let reserve b extra =
  if b.len + extra > Array.length b.data then begin
    let cap = ref (max 256 (Array.length b.data)) in
    while b.len + extra > !cap do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end

let send t ~kind ~src ~dst ~loc ~value ~wid_node ~wid_seq ~stamp ~stamp_off =
  let mb = t.out.((shard_of t src * t.nshards) + shard_of t dst) in
  reserve mb t.stride;
  let b = mb.data and o = mb.len in
  b.(o) <- kind;
  b.(o + 1) <- src;
  b.(o + 2) <- dst;
  b.(o + 3) <- loc;
  b.(o + 4) <- value;
  b.(o + 5) <- wid_node;
  b.(o + 6) <- wid_seq;
  Array.blit stamp stamp_off b (o + 7) t.p.nodes;
  mb.len <- o + t.stride

let log_op t ~node ~kind ~loc ~value ~wid_node ~wid_seq =
  let lb = t.logs.(node) in
  reserve lb log_stride;
  let b = lb.data and o = lb.len in
  b.(o) <- kind;
  b.(o + 1) <- loc;
  b.(o + 2) <- value;
  b.(o + 3) <- wid_node;
  b.(o + 4) <- wid_seq;
  lb.len <- o + log_stride

(* {2 One shard, one epoch} *)

let serve_message t b o =
  let kind = b.(o)
  and src = b.(o + 1)
  and dst = b.(o + 2)
  and loc = b.(o + 3)
  and value = b.(o + 4)
  and wid_node = b.(o + 5)
  and wid_seq = b.(o + 6) in
  let soff = o + 7 in
  let flat = t.flat in
  if kind = m_r_req then begin
    (* Owner serves a read: reply with the current entry (owned locations
       are always present). *)
    let stamps = Flat.stamp_arena flat in
    send t ~kind:m_r_reply ~src:dst ~dst:src ~loc
      ~value:(Flat.entry_value flat ~node:dst ~loc)
      ~wid_node:(Flat.entry_wid_node flat ~node:dst ~loc)
      ~wid_seq:(Flat.entry_wid_seq flat ~node:dst ~loc)
      ~stamp:stamps
      ~stamp_off:(Flat.entry_off flat ~node:dst ~loc)
  end
  else if kind = m_w_req then begin
    Flat.certify flat ~node:dst ~loc ~value ~wid_node ~wid_seq ~stamp:b ~stamp_off:soff;
    let accepted = Flat.last_accepted flat ~node:dst in
    let stamps = Flat.stamp_arena flat in
    send t
      ~kind:(if accepted then m_w_reply_acc else m_w_reply_rej)
      ~src:dst ~dst:src ~loc
      ~value:(Flat.last_value flat ~node:dst)
      ~wid_node:(Flat.last_wid_node flat ~node:dst)
      ~wid_seq:(Flat.last_wid_seq flat ~node:dst)
      ~stamp:stamps
      ~stamp_off:(Flat.entry_off flat ~node:dst ~loc)
  end
  else if kind = m_r_reply then begin
    Flat.install_remote flat ~node:dst ~loc ~value ~wid_node ~wid_seq ~stamp:b ~stamp_off:soff;
    log_op t ~node:dst ~kind:0 ~loc ~value ~wid_node ~wid_seq;
    t.status.(dst) <- 0;
    t.completed.(dst) <- t.completed.(dst) + 1
  end
  else begin
    (* W_REPLY (accepted or not): adopt what the owner stores, and log the
       client's own write — its wid was fixed at issue time. *)
    Flat.adopt_write_reply flat ~node:dst ~loc ~value ~wid_node ~wid_seq ~stamp:b
      ~stamp_off:soff;
    log_op t ~node:dst ~kind:1 ~loc:t.pending_loc.(dst) ~value:t.pending_value.(dst)
      ~wid_node:dst ~wid_seq:t.pending_seq.(dst);
    t.status.(dst) <- 0;
    t.completed.(dst) <- t.completed.(dst) + 1
  end

let drain_inbox t shard =
  for src = 0 to t.nshards - 1 do
    let mb = t.inbox.((src * t.nshards) + shard) in
    let o = ref 0 in
    while !o < mb.len do
      serve_message t mb.data !o;
      o := !o + t.stride
    done
  done

(* How many locations node [n] owns under the [l mod nodes] layout, and the
   j-th of them. *)
let owned_count t n = if n >= t.p.locs then 0 else ((t.p.locs - 1 - n) / t.p.nodes) + 1

let owned_loc t n j = n + (j * t.p.nodes)

let generate t node =
  let p = t.p in
  let flat = t.flat in
  let g = t.prng.(node) in
  let budget = ref p.ops_per_node_per_epoch in
  while !budget > 0 && t.status.(node) = 0 do
    decr budget;
    let remote = p.nodes > 1 && Prng.int g 100 < p.remote_pct in
    let loc =
      if remote || owned_count t node = 0 then Prng.int g p.locs
      else owned_loc t node (Prng.int g (owned_count t node))
    in
    let is_read = Prng.int g 100 < p.read_pct in
    t.issued.(node) <- t.issued.(node) + 1;
    if is_read then begin
      if Flat.cached_hit flat ~node ~loc then begin
        Flat.read flat ~node ~loc;
        log_op t ~node ~kind:0 ~loc
          ~value:(Flat.last_value flat ~node)
          ~wid_node:(Flat.last_wid_node flat ~node)
          ~wid_seq:(Flat.last_wid_seq flat ~node);
        t.completed.(node) <- t.completed.(node) + 1
      end
      else begin
        t.status.(node) <- 1;
        t.pending_loc.(node) <- loc;
        send t ~kind:m_r_req ~src:node ~dst:(Flat.owner_of flat loc) ~loc ~value:0
          ~wid_node:(-1) ~wid_seq:0 ~stamp:t.zeros ~stamp_off:0
      end
    end
    else begin
      let value = Prng.int g 1_000_000 in
      if Flat.owner_of flat loc = node then begin
        Flat.owner_write flat ~node ~loc ~value;
        log_op t ~node ~kind:1 ~loc ~value ~wid_node:node
          ~wid_seq:(Flat.last_wid_seq flat ~node);
        t.completed.(node) <- t.completed.(node) + 1
      end
      else begin
        let seq = Flat.fresh_seq flat ~node in
        let clock = Flat.clock_arena flat in
        let coff = Flat.clock_off flat node in
        Vclock.Flat.bump clock ~off:coff node;
        t.status.(node) <- 1;
        t.pending_loc.(node) <- loc;
        t.pending_value.(node) <- value;
        t.pending_seq.(node) <- seq;
        send t ~kind:m_w_req ~src:node ~dst:(Flat.owner_of flat loc) ~loc ~value
          ~wid_node:node ~wid_seq:seq ~stamp:clock ~stamp_off:coff
      end
    end
  done

let epoch_shard t shard =
  drain_inbox t shard;
  if t.gen_enabled then begin
    let n = ref shard in
    while !n < t.p.nodes do
      generate t !n;
      n := !n + t.nshards
    done
  end

(* {2 The barrier phase (main domain only)} *)

let main_phase t ~target_ops ~max_epochs ~on_ops =
  (* Swap mailbox banks: last epoch's out becomes this epoch's inbox; the
     drained inbox is recycled as the empty out bank. *)
  let drained = t.inbox in
  t.inbox <- t.out;
  t.out <- drained;
  Array.iter (fun mb -> mb.len <- 0) t.out;
  (* Hand each node's ops to the consumer, in node order (per-process
     program order), then reset the logs. *)
  (match on_ops with
  | None -> Array.iter (fun lb -> lb.len <- 0) t.logs
  | Some f ->
      for node = 0 to t.p.nodes - 1 do
        let lb = t.logs.(node) in
        if lb.len > 0 then begin
          f ~node ~buf:lb.data ~len:lb.len;
          lb.len <- 0
        end
      done);
  t.epochs <- t.epochs + 1;
  let total_completed = Array.fold_left ( + ) 0 t.completed in
  if total_completed >= target_ops || t.epochs >= max_epochs then t.gen_enabled <- false;
  if not t.gen_enabled then begin
    let idle = Array.for_all (fun s -> s = 0) t.status in
    let in_flight = Array.fold_left (fun acc mb -> acc + mb.len) 0 t.inbox in
    if (idle && in_flight = 0) || t.epochs >= max_epochs + 8 then t.stop <- true
  end

(* {2 The run loop}

   Every participant (the main domain is participant 0) runs the same
   loop: compute my shards' epoch, barrier, [main domain: swap + drain +
   stop decision], barrier, check stop.  A sense-reversing barrier; its
   [Atomic] operations carry the happens-before edges that publish each
   epoch's writes to the next. *)

type barrier = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable count : int;
  mutable generation : int;
}

let barrier_make parties =
  { parties; mutex = Mutex.create (); cond = Condition.create (); count = 0; generation = 0 }

(* A brief spin covers the common case of shards finishing together; the
   condvar keeps oversubscribed runs (more domains than cores) from burning
   whole scheduler timeslices per epoch.  Mutex release/acquire carries the
   happens-before edges that publish each epoch's writes to the next. *)
let barrier_await bar =
  Mutex.lock bar.mutex;
  let gen = bar.generation in
  bar.count <- bar.count + 1;
  if bar.count = bar.parties then begin
    bar.count <- 0;
    bar.generation <- gen + 1;
    Condition.broadcast bar.cond
  end
  else
    while bar.generation = gen do
      Condition.wait bar.cond bar.mutex
    done;
  Mutex.unlock bar.mutex

let participant t bar ~rank ~parties ~target_ops ~max_epochs ~on_ops =
  let running = ref true in
  while !running do
    let s = ref rank in
    while !s < t.nshards do
      epoch_shard t !s;
      s := !s + parties
    done;
    barrier_await bar;
    if rank = 0 then main_phase t ~target_ops ~max_epochs ~on_ops;
    barrier_await bar;
    if t.stop then running := false
  done

let run ?(domains = 1) ?(target_ops = 10_000) ?(max_epochs = 1_000_000) ?on_ops t =
  if t.stop || t.epochs > 0 then invalid_arg "Par_engine.run: engine already ran";
  let parties = max 1 (min domains t.nshards) in
  let bar = barrier_make parties in
  let workers =
    Array.init (parties - 1) (fun i ->
        Domain.spawn (fun () ->
            participant t bar ~rank:(i + 1) ~parties ~target_ops ~max_epochs ~on_ops:None))
  in
  participant t bar ~rank:0 ~parties ~target_ops ~max_epochs ~on_ops;
  Array.iter Domain.join workers;
  let c = Flat.counters t.flat in
  {
    epochs = t.epochs;
    issued = Array.fold_left ( + ) 0 t.issued;
    completed = Array.fold_left ( + ) 0 t.completed;
    reads = c.Flat.read_hits + c.Flat.installs;
    writes = c.Flat.writes_owned + c.Flat.writes_certified;
    remote_ops = c.Flat.installs + c.Flat.writes_certified;
    digest = Flat.digest t.flat;
    domains_used = parties;
  }

let flat t = t.flat

let params t = t.p
