(** Conservative domain-parallel simulation of the flat Figure-4 data path.

    Nodes are partitioned into a fixed number of {e logical} shards; time
    advances in epochs of one network latency (the conservative lookahead),
    all cross-node traffic crosses epochs through double-buffered
    int-encoded mailboxes, and shards are scheduled over any number of
    OCaml domains.  Because the shard layout and all processing orders are
    fixed independently of the domain count, a run is {e bit-identical for
    any [~domains]} — [~domains:1] is the reference semantics.

    The workload is one blocking client per node over
    {!Dsm_protocol.Flat}: local reads/writes complete immediately; a read
    miss or a write to a non-owned location blocks the client for a
    request/reply round trip through the owner (R_REQ/R_REPLY install,
    W_REQ certification/W_REPLY adoption).

    Op streams are delivered per node in packed int logs at each epoch
    barrier, on the calling domain, in ascending node order — preserving
    per-process program order for the online causal checker. *)

type params = {
  nodes : int;
  locs : int;  (** location [l] is owned by node [l mod nodes] *)
  shards : int;  (** logical shards; fixed per run, independent of domains *)
  seed : int;
  read_pct : int;  (** percent of issued ops that are reads *)
  remote_pct : int;
      (** percent of ops aimed at a uniformly random (mostly non-owned) location *)
  ops_per_node_per_epoch : int;  (** issue budget per idle node per epoch *)
}

val default_params : nodes:int -> params
(** [locs = nodes], [shards = min nodes 16], 60% reads, 30% remote,
    4 ops/node/epoch. *)

type t

val create : params -> t

val log_stride : int
(** Packed op-log record width: [kind(0=read,1=write); loc; value;
    wid_node; wid_seq].  For reads the wid is the reads-from wid. *)

type stats = {
  epochs : int;
  issued : int;
  completed : int;  (** every issued op completes before {!run} returns *)
  reads : int;
  writes : int;
  remote_ops : int;  (** round trips through an owner *)
  digest : int;  (** {!Dsm_protocol.Flat.digest} of the final memory *)
  domains_used : int;
}

val run :
  ?domains:int ->
  ?target_ops:int ->
  ?max_epochs:int ->
  ?on_ops:(node:int -> buf:int array -> len:int -> unit) ->
  t ->
  stats
(** Run epochs until at least [target_ops] operations completed (then a
    short drain until every outstanding request is answered), on
    [domains] domains (clamped to [[1, shards]]).  [on_ops] receives each
    node's packed ops at each epoch barrier; the buffer is reused — consume
    before returning.  Single-shot: a [t] runs once. *)

val flat : t -> Dsm_protocol.Flat.t
(** The simulated memory (for digests and post-run inspection). *)

val params : t -> params
