type t = {
  queue : (float, unit -> unit) Dsm_util.Heap.t;
  mutable clock : float;
  mutable dispatched : int;
  mutable stopping : bool;
  step_limit : int;
}

let create ?(step_limit = 10_000_000) () =
  {
    queue = Dsm_util.Heap.create ~cmp:Float.compare ();
    clock = 0.0;
    dispatched = 0;
    stopping = false;
    step_limit;
  }

let now t = t.clock

let schedule_at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.clock);
  Dsm_util.Heap.push t.queue time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) f

let dispatch t time f =
  t.clock <- time;
  t.dispatched <- t.dispatched + 1;
  if t.dispatched > t.step_limit then
    failwith "Engine: step limit exceeded (livelock or runaway simulation?)";
  f ()

let step t =
  match Dsm_util.Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      dispatch t time f;
      true

let run t =
  t.stopping <- false;
  let rec loop () =
    if t.stopping then ()
    else if step t then loop ()
  in
  loop ()

let run_until t deadline =
  t.stopping <- false;
  let rec loop () =
    if t.stopping then ()
    else begin
      match Dsm_util.Heap.peek t.queue with
      | Some (time, _) when time <= deadline ->
          ignore (step t);
          loop ()
      | Some _ | None -> ()
    end
  in
  loop ();
  (* The full window elapsed whether or not events filled it: a caller that
     schedules ~delay after we return measures from the deadline, never from
     whenever the queue happened to drain.  (The old [Heap.length > 0] guard
     left the clock behind the deadline exactly when the queue drained early,
     silently compressing every timer armed afterwards.) *)
  if t.clock < deadline then t.clock <- deadline

let stop t = t.stopping <- true

let pending t = Dsm_util.Heap.length t.queue

let events_processed t = t.dispatched
