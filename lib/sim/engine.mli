(** Deterministic discrete-event simulation engine.

    Events are closures scheduled at absolute simulated times.  Events at the
    same timestamp fire in scheduling order (the queue breaks ties by
    insertion sequence), so a run is a pure function of the scheduled
    closures — no wall-clock or OS nondeterminism leaks in.

    The engine underlies the simulated network and the cooperative process
    runtime; the rest of the system never touches the queue directly. *)

type t

val create : ?step_limit:int -> unit -> t
(** [step_limit] (default [10_000_000]) bounds the number of events a single
    [run] may dispatch; exceeding it raises [Failure], catching runaway
    livelocks in tests. *)

val now : t -> float
(** Current simulated time; starts at [0.]. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] enqueues [f] at absolute [time].  Scheduling in
    the past raises [Invalid_argument]. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Relative scheduling; [delay >= 0.]. *)

val run : t -> unit
(** Dispatch events until the queue is empty (quiescence) or [stop]. *)

val run_until : t -> float -> unit
(** Dispatch events with time [<= deadline]; afterwards [now t] is exactly
    the deadline — even when the queue drained early — so relative
    scheduling after a bounded run always measures from the deadline. *)

val step : t -> bool
(** Dispatch a single event; [false] if the queue was empty. *)

val stop : t -> unit
(** Make the innermost [run]/[run_until] return after the current event. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events dispatched over the engine's lifetime. *)
