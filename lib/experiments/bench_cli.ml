type outcome =
  | Help
  | Run of { csv_dir : string option; sections : string list }
  | Unknown_flag of string
  | Missing_value of string

let is_help = function "--help" | "-h" -> true | _ -> false

let parse args =
  if List.exists is_help args then Help
  else begin
    let rec go csv_dir rev_sections = function
      | [] -> Run { csv_dir; sections = List.rev rev_sections }
      | "--csv" :: dir :: rest when not (String.length dir > 0 && dir.[0] = '-') ->
          go (Some dir) rev_sections rest
      | "--csv" :: _ -> Missing_value "--csv"
      | arg :: rest ->
          if String.length arg > 0 && arg.[0] = '-' then Unknown_flag arg
          else go csv_dir (arg :: rev_sections) rest
    in
    go None [] args
  end
