(** Argument parsing for the bench/experiment harness ([bench/main.exe]).

    Pure and order-insensitive so it can be unit-tested without spawning
    the executable: flags are recognised {e anywhere} on the command line
    (historically [--csv] was only honoured before the first section name,
    so [main.exe fig1 --csv out] died with [unknown section "--csv"]).

    Section names are {e not} validated here — the harness owns the
    section registry and reports unknown sections itself, with a message
    (and exit code) distinct from the flag errors below. *)

type outcome =
  | Help  (** [--help] or [-h] appeared anywhere; print usage, exit 0 *)
  | Run of { csv_dir : string option; sections : string list }
      (** [csv_dir]: last [--csv DIR] wins; [sections] in argument order,
          [[]] = run everything *)
  | Unknown_flag of string
      (** a token starting with [-] that is not a recognised flag — a
          usage error, not an unknown section *)
  | Missing_value of string
      (** a flag needing a value ended the line or was followed by another
          flag (use [./-dir] for a directory genuinely starting with [-]) *)

val parse : string list -> outcome
(** Parse [Sys.argv] minus the program name.  [Help] takes precedence over
    everything else; otherwise the first flag error wins, left to right. *)
