(* The per-figure / per-claim experiment harness (see DESIGN.md section 4).

   Every experiment prints a table comparing what the paper states with what
   this implementation measures; EXPERIMENTS.md records the outcomes. *)

module Table = Dsm_util.Table
module History = Dsm_memory.History
module Value = Dsm_memory.Value
module Loc = Dsm_memory.Loc
module Op = Dsm_memory.Op
module Causality = Dsm_checker.Causality
module Check = Dsm_checker.Causal_check
module Consistency = Dsm_checker.Consistency
module Histories = Dsm_checker.Histories
module Harness = Dsm_apps.Harness
module Workload = Dsm_apps.Workload
module Scenarios = Dsm_apps.Scenarios
module Node_stats = Dsm_causal.Node_stats

(* Optional CSV sink: when set (bench/main.exe --csv DIR) every printed
   table is also written as <dir>/<section>-<k>.csv. *)
let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let current_section = ref "misc"

let table_counter = ref 0

let header title =
  (match String.split_on_char ' ' title with
  | section :: _ -> current_section := String.lowercase_ascii section
  | [] -> current_section := "misc");
  table_counter := 0;
  print_endline (String.make 72 '=');
  print_endline title;
  print_endline (String.make 72 '=');
  print_newline ()

let print_table ?title t =
  Table.print ?title t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr table_counter;
      let file = Printf.sprintf "%s/%s-%d.csv" dir !current_section !table_counter in
      Dsm_util.Csv.write_file file (Table.headers t :: Table.rows t)

let yes_no b = if b then "yes" else "no"

let pass b = if b then "PASS" else "FAIL"

(* ------------------------------------------------------------------ *)
(* E-FIG1: the causal-relations example                                 *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "E-FIG1  Figure 1: example of causal relations";
  print_endline "History:";
  print_endline (History.to_string Histories.fig1);
  print_newline ();
  let g = Causality.build_exn Histories.fig1 in
  (* Global indices: P1 ops at 0..3, P2 ops at 4..6. *)
  let t = Table.create ~headers:[ "claim (paper, Section 2)"; "holds" ] in
  Table.add_row t
    [ "writes of x and z are concurrent"; pass (Causality.concurrent g 0 4) ];
  Table.add_row t [ "w(x)1 ->* r1(y)2"; pass (Causality.precedes g 0 2) ];
  Table.add_row t
    [ "r2(y)2 establishes causality (w(y)2 ->* r2(y)2)"; pass (Causality.precedes g 1 5) ];
  Table.add_row t
    [ "r1(x)1 confirms program order (w(x)1 ->* r1(x)1)"; pass (Causality.precedes g 0 3) ];
  Table.add_row t
    [ "execution is correct on causal memory"; pass (Check.is_correct Histories.fig1) ];
  print_table t

(* ------------------------------------------------------------------ *)
(* E-FIG2: the live sets of the worked example                          *)
(* ------------------------------------------------------------------ *)

let alpha_string g ~pid ~index =
  let found = ref None in
  for io = 0 to Causality.op_count g - 1 do
    let op = Causality.op g io in
    if op.Op.pid = pid && op.Op.index = index then found := Some io
  done;
  Check.alpha g (Option.get !found)
  |> List.map (fun (l : Check.live) -> Value.to_string l.Check.value)
  |> List.sort compare |> String.concat ","

let fig2 () =
  header "E-FIG2  Figure 2: a correct execution, with its live sets";
  print_endline "History:";
  print_endline (History.to_string Histories.fig2);
  print_newline ();
  let g = Causality.build_exn Histories.fig2 in
  let t = Table.create ~headers:[ "read"; "computed alpha"; "paper alpha"; "match" ] in
  let row name ~pid ~index paper =
    let computed = alpha_string g ~pid ~index in
    Table.add_row t [ name; "{" ^ computed ^ "}"; "{" ^ paper ^ "}"; pass (computed = paper) ]
  in
  row "r1(z)5" ~pid:1 ~index:3 "0,5";
  row "r2(y)3" ~pid:2 ~index:1 "0,2,3";
  row "r2(x)4" ~pid:2 ~index:4 "4,7,9";
  row "r2(x)9" ~pid:2 ~index:5 "4,9";
  row "r3(z)5" ~pid:3 ~index:0 "0,5";
  print_table t;
  Printf.printf "Whole execution correct on causal memory: %s\n\n"
    (pass (Check.is_correct Histories.fig2))

(* ------------------------------------------------------------------ *)
(* E-FIG3: causal broadcasting is not causal memory                     *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "E-FIG3  Figure 3: causal broadcast memory violates causal memory";
  let t =
    Table.create
      ~headers:[ "delivery"; "causal memory"; "PRAM"; "x at P1/P2/P3"; "paper prediction" ]
  in
  List.iter
    (fun (label, mode, prediction) ->
      let r = Scenarios.fig3_broadcast ~mode () in
      let xs =
        String.concat "/"
          (Array.to_list (Array.map Value.to_string r.Scenarios.f3_final_x))
      in
      Table.add_row t
        [
          label;
          (if r.Scenarios.f3_causal_ok then "satisfied" else "VIOLATED");
          (if r.Scenarios.f3_pram_ok then "satisfied" else "VIOLATED");
          xs;
          prediction;
        ])
    [
      ("causal (ISIS cbcast)", `Causal, "violated (Section 2)");
      ("fifo only", `Fifo, "weaker still");
    ];
  print_table t;
  let r = Scenarios.fig3_broadcast () in
  (match Check.check r.Scenarios.f3_history with
  | Ok (Check.Violations (v :: _)) -> Printf.printf "violating read: %s\n\n" v.Check.reason
  | Ok _ | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* E-FIG4: protocol conformance (the owner protocol is causal memory)   *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "E-FIG4  Figure 4: the owner protocol always yields causal executions";
  let t =
    Table.create
      ~headers:
        [ "workload"; "runs"; "causally correct"; "ops/run"; "invalidations"; "msgs/run" ]
  in
  let specs =
    [
      ("default (3p x 12 ops, 50% writes)", Workload.default_spec);
      ( "write-heavy (4p, 80% writes)",
        { Workload.default_spec with Workload.processes = 4; write_ratio = 0.8 } );
      ( "read-heavy + refresh (4p, 20% writes)",
        {
          Workload.default_spec with
          Workload.processes = 4;
          write_ratio = 0.2;
          refresh_ratio = 0.5;
        } );
      ( "contended (2 locations)",
        { Workload.default_spec with Workload.locations = 2; ops_per_process = 16 } );
    ]
  in
  List.iter
    (fun (name, spec) ->
      let runs = 40 in
      let correct = ref 0 and ops = ref 0 and inval = ref 0 and msgs = ref 0 in
      for seed = 1 to runs do
        let outcome, cluster = Workload.run_causal ~seed:(Int64.of_int seed) spec in
        if Check.is_correct outcome.Workload.history then incr correct;
        ops := !ops + History.op_count outcome.Workload.history;
        msgs := !msgs + outcome.Workload.messages;
        let stats = Dsm_causal.Cluster.total_stats cluster in
        inval := !inval + stats.Node_stats.invalidations
      done;
      Table.add_row t
        [
          name;
          string_of_int runs;
          Printf.sprintf "%d/%d %s" !correct runs (pass (!correct = runs));
          string_of_int (!ops / runs);
          string_of_int !inval;
          string_of_int (!msgs / runs);
        ])
    specs;
  print_table t

(* ------------------------------------------------------------------ *)
(* E-FIG5: the protocol admits weakly consistent executions             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "E-FIG5  Figure 5: a weakly consistent execution the protocol admits";
  let r = Scenarios.fig5_owner_protocol () in
  print_endline "Execution produced by the owner protocol (P1 owns x, P2 owns y):";
  print_endline (History.to_string r.Scenarios.f5_history);
  print_newline ();
  let c = Consistency.classify r.Scenarios.f5_history in
  let t = Table.create ~headers:[ "property"; "measured"; "paper claim" ] in
  Table.add_row t [ "causal memory"; yes_no c.Consistency.causal; "yes (allowed)" ];
  Table.add_row t [ "sequentially consistent"; yes_no c.Consistency.sc; "no (weak)" ];
  Table.add_row t [ "PRAM"; yes_no c.Consistency.pram; "yes" ];
  Table.add_row t [ "coherent"; yes_no c.Consistency.coherent; "yes" ];
  print_table t

(* ------------------------------------------------------------------ *)
(* E-FIG6: the synchronous solver                                       *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "E-FIG6  Figure 6: synchronous iterative linear solver";
  let t =
    Table.create
      ~headers:
        [ "n"; "memory"; "max|x - jacobi|"; "residual"; "messages"; "history causal" ]
  in
  List.iter
    (fun n ->
      let causal = Harness.solver_causal ~n ~iters:10 () in
      let atomic = Harness.solver_atomic ~n ~iters:10 () in
      let row name (r : Harness.solver_result) =
        Table.add_row t
          [
            string_of_int n;
            name;
            Printf.sprintf "%.1e" r.Harness.max_diff;
            Printf.sprintf "%.2e" r.Harness.residual;
            string_of_int r.Harness.messages_total;
            yes_no r.Harness.history_correct;
          ]
      in
      row "causal" causal;
      row "atomic" atomic)
    [ 4; 8; 16 ];
  print_table t;
  print_endline "(max|x - jacobi| = 0 means the distributed iterates are bit-identical";
  print_endline " to sequential Jacobi, the paper's Section 4.1 correctness claim.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-MSG: the headline message-count comparison                         *)
(* ------------------------------------------------------------------ *)

let msg () =
  header "E-MSG  Section 4.1: messages per processor per solver iteration";
  let t =
    Table.create
      ~headers:
        [ "n"; "causal (measured)"; "2n+6 (paper)"; "atomic (measured)"; "3n+5 (paper, lower bound)"; "savings" ]
  in
  List.iter
    (fun n ->
      let causal =
        Harness.steady_rate
          ~run:(fun ~iters -> Harness.solver_causal ~n ~iters ())
          ~iters_lo:5 ~iters_hi:12
      in
      let atomic =
        Harness.steady_rate
          ~run:(fun ~iters -> Harness.solver_atomic ~n ~iters ())
          ~iters_lo:5 ~iters_hi:12
      in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.2f" causal;
          string_of_int ((2 * n) + 6);
          Printf.sprintf "%.2f" atomic;
          string_of_int ((3 * n) + 5);
          Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (causal /. atomic)));
        ])
    [ 2; 4; 8; 16; 32 ];
  print_table t;
  print_endline "(The atomic baseline measures slightly above 3n+5 because the paper's";
  print_endline " count omits the invalidations triggered by handshake-flag writes.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-DICT: the distributed dictionary                                   *)
(* ------------------------------------------------------------------ *)

let dict () =
  header "E-DICT  Section 4.2: distributed dictionary";
  (* Convergence under a random R1/R2-respecting workload. *)
  let t =
    Table.create
      ~headers:[ "processes"; "inserted"; "deleted"; "views converge"; "messages"; "causal" ]
  in
  List.iter
    (fun processes ->
      let module Engine = Dsm_sim.Engine in
      let module Proc = Dsm_runtime.Proc in
      let module Cluster = Dsm_causal.Cluster in
      let module Dictionary = Dsm_apps.Dictionary in
      let engine = Engine.create () in
      let sched = Proc.scheduler engine in
      let cluster =
        Cluster.create ~sched ~owner:(Dictionary.owner_map ~processes)
          ~config:Dictionary.config ~latency:(Dsm_net.Latency.Constant 1.0) ()
      in
      let d = Array.init processes (fun i -> Dictionary.attach (Cluster.handle cluster i) ~cols:16) in
      let prng = Dsm_util.Prng.create 2024L in
      let per_process = 8 in
      let items =
        List.concat_map
          (fun p -> List.init per_process (fun k -> (p, Printf.sprintf "p%d-%d" p k)))
          (List.init processes Fun.id)
      in
      List.iter
        (fun (p, item) ->
          ignore
            (Proc.spawn sched ~delay:(Dsm_util.Prng.float prng 4.0) (fun () ->
                 ignore (Dictionary.insert d.(p) item))))
        items;
      Engine.run engine;
      Proc.check sched;
      let deleted = ref 0 in
      List.iteri
        (fun i (_, item) ->
          if i mod 3 = 0 then begin
            incr deleted;
            let deleter = Dsm_util.Prng.int prng processes in
            ignore
              (Proc.spawn sched ~delay:(Dsm_util.Prng.float prng 4.0) (fun () ->
                   Dictionary.refresh d.(deleter);
                   ignore (Dictionary.delete d.(deleter) item)))
          end)
        items;
      Engine.run engine;
      Proc.check sched;
      let views =
        Array.map
          (fun di ->
            let out = ref [] in
            ignore
              (Proc.spawn sched (fun () ->
                   Dictionary.refresh di;
                   out := List.sort compare (Dictionary.items di)));
            Engine.run engine;
            Proc.check sched;
            !out)
          d
      in
      let converged = Array.for_all (fun v -> v = views.(0)) views in
      Table.add_row t
        [
          string_of_int processes;
          string_of_int (List.length items);
          string_of_int !deleted;
          pass converged;
          string_of_int (Dsm_net.Network.lifetime_total (Cluster.net cluster));
          yes_no
            (History.op_count (Cluster.history cluster) > 6000
            || Check.is_correct (Cluster.history cluster));
        ])
    [ 2; 4; 8 ];
  print_table t;
  (* The race the paper's correctness argument hinges on. *)
  let t2 =
    Table.create ~headers:[ "resolution policy"; "stale delete"; "owner's view after"; "verdict" ]
  in
  let row name policy want_reject =
    let r = Scenarios.dictionary_race ~policy in
    let rejected = r.Scenarios.dr_delete_outcome = `Rejected in
    Table.add_row t2
      [
        name;
        (match r.Scenarios.dr_delete_outcome with
        | `Rejected -> "rejected"
        | `Deleted -> "applied"
        | `Not_found -> "not-found");
        "[" ^ String.concat "; " r.Scenarios.dr_items_at_owner ^ "]";
        (if rejected = want_reject then "as the paper argues" else "UNEXPECTED");
      ]
  in
  row "owner-favored (paper)" Dsm_causal.Policy.Owner_favored true;
  row "last-writer-wins (ablation)" Dsm_causal.Policy.Last_writer_wins false;
  print_table ~title:"Concurrent delete vs owner re-insert (Section 4.2 race)" t2

(* ------------------------------------------------------------------ *)
(* E-WEAK: how often do causal executions fall outside SC?              *)
(* ------------------------------------------------------------------ *)

let weak () =
  header "E-WEAK  Section 3.1: the protocol admits weakly consistent executions";
  let t =
    Table.create ~headers:[ "workload"; "runs"; "causal"; "sequentially consistent"; "weak (causal, not SC)" ]
  in
  List.iter
    (fun (name, spec) ->
      let runs = 30 in
      let causal = ref 0 and sc = ref 0 in
      for seed = 1 to runs do
        let outcome, _ = Workload.run_causal ~seed:(Int64.of_int (seed * 7)) spec in
        if Check.is_correct outcome.Workload.history then incr causal;
        if Consistency.is_sc outcome.Workload.history then incr sc
      done;
      Table.add_row t
        [
          name;
          string_of_int runs;
          Printf.sprintf "%d/%d" !causal runs;
          Printf.sprintf "%d/%d" !sc runs;
          Printf.sprintf "%d/%d" (!causal - !sc) runs;
        ])
    [
      ( "contended small (3p, 2 locs, 8 ops)",
        {
          Workload.default_spec with
          Workload.locations = 2;
          ops_per_process = 8;
          think_time = 0.5;
        } );
      ( "default (3p, 4 locs, 12 ops)",
        { Workload.default_spec with Workload.ops_per_process = 10 } );
    ];
  print_table t;
  print_endline "(Figure 5's execution is deterministic evidence: see E-FIG5.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ABL-INV: how coarse is the Figure 4 invalidation rule?             *)
(* ------------------------------------------------------------------ *)

let abl_inv () =
  header "E-ABL-INV  Over-invalidation of the coarse rule (Section 3.2)";
  let t =
    Table.create
      ~headers:
        [ "workload"; "invalidations"; "redundant refetches"; "redundancy"; "messages" ]
  in
  List.iter
    (fun (name, spec) ->
      let runs = 20 in
      let inval = ref 0 and redundant = ref 0 and msgs = ref 0 in
      for seed = 1 to runs do
        let outcome, cluster = Workload.run_causal ~seed:(Int64.of_int (seed * 13)) spec in
        let stats = Dsm_causal.Cluster.total_stats cluster in
        inval := !inval + stats.Node_stats.invalidations;
        redundant := !redundant + stats.Node_stats.redundant_fetches;
        msgs := !msgs + outcome.Workload.messages
      done;
      Table.add_row t
        [
          name;
          string_of_int !inval;
          string_of_int !redundant;
          (if !inval = 0 then "-"
           else Printf.sprintf "%.0f%%" (100.0 *. float_of_int !redundant /. float_of_int !inval));
          string_of_int !msgs;
        ])
    [
      ( "read-mostly (10% writes)",
        { Workload.default_spec with Workload.write_ratio = 0.1; locations = 6; ops_per_process = 20 } );
      ("balanced (50% writes)", { Workload.default_spec with Workload.ops_per_process = 20 });
      ( "write-heavy (80% writes)",
        { Workload.default_spec with Workload.write_ratio = 0.8; ops_per_process = 20 } );
      ( "many locations (16)",
        { Workload.default_spec with Workload.locations = 16; ops_per_process = 20 } );
    ];
  print_table t;
  print_endline "(A redundant refetch re-reads the very write the rule invalidated:";
  print_endline " pure overhead the precise-bookkeeping variant of [3] would avoid.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ABL-PRECISE: coarse rule vs [3]-style precise bookkeeping          *)
(* ------------------------------------------------------------------ *)

let abl_precise () =
  header "E-ABL-PRECISE  Coarse (Figure 4) vs precise ([3]) invalidation";
  let t =
    Table.create
      ~headers:
        [ "variant"; "invalidations"; "redundant refetches"; "messages"; "bytes on wire" ]
  in
  let totals config =
    let inval = ref 0 and redundant = ref 0 and msgs = ref 0 and bytes = ref 0 in
    for seed = 1 to 25 do
      let outcome, cluster =
        Workload.run_causal ~seed:(Int64.of_int (seed * 11)) ~config
          { Workload.default_spec with Workload.ops_per_process = 18; write_ratio = 0.3 }
      in
      let stats = Dsm_causal.Cluster.total_stats cluster in
      inval := !inval + stats.Node_stats.invalidations;
      redundant := !redundant + stats.Node_stats.redundant_fetches;
      msgs := !msgs + outcome.Workload.messages;
      let counters = Dsm_net.Network.counters (Dsm_causal.Cluster.net cluster) in
      bytes := !bytes + counters.Dsm_net.Network.bytes
    done;
    (!inval, !redundant, !msgs, !bytes)
  in
  let row name config =
    let inval, redundant, msgs, bytes = totals config in
    Table.add_row t
      [
        name;
        string_of_int inval;
        string_of_int redundant;
        string_of_int msgs;
        string_of_int bytes;
      ]
  in
  row "coarse (Figure 4)" Dsm_causal.Config.default;
  row "precise (digest piggyback)"
    (Dsm_causal.Config.with_invalidation Dsm_causal.Config.Precise Dsm_causal.Config.default);
  print_table t;
  print_endline "(Precise bookkeeping removes nearly all spurious invalidations and";
  print_endline " their refetch messages, at the price of shipping newest-write digests";
  print_endline " on every reply — the exact overhead Section 3.1 declines to pay.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ABL-PAGE: page granularity                                         *)
(* ------------------------------------------------------------------ *)

let abl_page () =
  header "E-ABL-PAGE  Section 3.2: scaling the unit of sharing to a page";
  let module Engine = Dsm_sim.Engine in
  let module Proc = Dsm_runtime.Proc in
  let module Cluster = Dsm_causal.Cluster in
  let module Config = Dsm_causal.Config in
  let array_len = 64 in
  let t =
    Table.create ~headers:[ "granularity"; "messages"; "read misses"; "invalidations" ]
  in
  let scan_run granularity =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let config = Config.with_granularity granularity Config.default in
    let cluster =
      Cluster.create ~sched ~owner:(Dsm_memory.Owner.all_to ~nodes:2 1) ~config
        ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    (* The owner populates the array, then the reader streams through it
       twice (the second pass hits the cache). *)
    ignore
      (Proc.spawn sched ~name:"writer" (fun () ->
           for i = 0 to array_len - 1 do
             Cluster.write (Cluster.handle cluster 1) (Loc.indexed "a" i) (Value.Int i)
           done));
    Engine.run engine;
    Proc.check sched;
    ignore
      (Proc.spawn sched ~name:"reader" (fun () ->
           for _pass = 1 to 2 do
             for i = 0 to array_len - 1 do
               ignore (Cluster.read (Cluster.handle cluster 0) (Loc.indexed "a" i))
             done
           done));
    Engine.run engine;
    Proc.check sched;
    let stats = Dsm_causal.Cluster.total_stats cluster in
    ( Dsm_net.Network.lifetime_total (Cluster.net cluster),
      stats.Node_stats.read_misses,
      stats.Node_stats.invalidations )
  in
  List.iter
    (fun (name, granularity) ->
      let msgs, misses, inval = scan_run granularity in
      Table.add_row t
        [ name; string_of_int msgs; string_of_int misses; string_of_int inval ])
    [
      ("word (basic algorithm)", Config.Word);
      ("page of 2", Config.Page 2);
      ("page of 4", Config.Page 4);
      ("page of 8", Config.Page 8);
      ("page of 16", Config.Page 16);
    ];
  print_table t;
  print_endline "(Streaming read of a 64-element remote array, two passes: pages cut";
  print_endline " the miss round-trips by the page size, as Section 3.2 anticipates.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ABL-DISCARD: discard period vs staleness and traffic               *)
(* ------------------------------------------------------------------ *)

let abl_discard () =
  header "E-ABL-DISCARD  Section 3.1: discard policy (liveness vs traffic)";
  let t =
    Table.create
      ~headers:[ "refresh every k sweeps"; "final error"; "messages"; "history causal" ]
  in
  List.iter
    (fun refresh_every ->
      let r = Harness.solver_async ~n:6 ~sweeps:96 ~refresh_every () in
      Table.add_row t
        [
          string_of_int refresh_every;
          Printf.sprintf "%.1e" r.Harness.a_error;
          string_of_int r.Harness.a_messages_total;
          yes_no r.Harness.a_history_correct;
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  print_table t;
  print_endline "(Rarer discards mean fewer refetches but staler inputs: the async";
  print_endline " solver needs more sweeps' worth of freshness to converge. Without";
  print_endline " discard at all it would never converge — Section 3.1's liveness note.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-BLOCK: blocks of elements per worker, and who caches well          *)
(* ------------------------------------------------------------------ *)

(* §4.1: "The code is easily modified so that each process computes a set
   of elements."  With blocks, a worker re-reads each foreign element once
   per owned element — IF the cache holds.  Under the coarse rule it does
   not: consecutive fetches of one writer's elements carry strictly ordered
   stamps, so each install evicts the previous element of that writer
   (thrashing).  Precise invalidation restores true caching; block-sized
   pages fetch the whole block in one round trip and beat the per-element
   analysis outright. *)
let block () =
  header "E-BLOCK  Block-distributed solver: coarse vs precise vs pages";
  let n = 16 in
  let rate ?config ~workers () =
    let hi = Harness.solver_causal_blocks ?config ~n ~workers ~iters:10 () in
    let lo = Harness.solver_causal_blocks ?config ~n ~workers ~iters:5 () in
    float_of_int (hi.Harness.messages_total - lo.Harness.messages_total)
    /. 5.0 /. float_of_int workers
  in
  let precise = Dsm_causal.Config.(with_invalidation Precise default) in
  let t =
    Table.create
      ~headers:
        [ "workers"; "coarse (Figure 4)"; "precise"; "page = block"; "analytic 2(n-n/w)+8" ]
  in
  List.iter
    (fun workers ->
      let page =
        Dsm_causal.Config.(with_granularity (Page (n / workers)) default)
      in
      Table.add_row t
        [
          string_of_int workers;
          Printf.sprintf "%.1f" (rate ~workers ());
          Printf.sprintf "%.1f" (rate ~config:precise ~workers ());
          Printf.sprintf "%.1f" (rate ~config:page ~workers ());
          string_of_int ((2 * (n - (n / workers))) + 8);
        ])
    [ 2; 4; 8 ];
  print_table t;
  print_endline "(n = 16 unknowns; messages per worker per iteration, steady state.";
  print_endline " All three variants compute bit-identical Jacobi iterates.  The coarse";
  print_endline " rule thrashes on same-writer blocks — the sharpest quantitative case";
  print_endline " for the paper's own deferred enhancements: precise invalidation";
  print_endline " recovers the per-element analysis, block-sized pages halve it again.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-BARRIER: coordinator handshake vs event-count barrier              *)
(* ------------------------------------------------------------------ *)

let barrier () =
  header "E-BARRIER  Synchronisation style: coordinator handshake vs event counts";
  let t =
    Table.create
      ~headers:
        [ "n"; "coordinator msgs"; "barrier msgs"; "coordinator time"; "barrier time"; "identical iterates" ]
  in
  List.iter
    (fun n ->
      let coord = Harness.solver_causal ~n ~iters:10 () in
      let bar = Harness.solver_causal_barrier ~n ~iters:10 () in
      Table.add_row t
        [
          string_of_int n;
          string_of_int coord.Harness.messages_total;
          string_of_int bar.Harness.messages_total;
          Printf.sprintf "%.0f" coord.Harness.sim_time;
          Printf.sprintf "%.0f" bar.Harness.sim_time;
          pass (Dsm_apps.Linalg.max_diff coord.Harness.solution bar.Harness.solution = 0.0);
        ])
    [ 2; 4; 8; 16 ];
  print_table t;
  print_endline "(The paper prefers the coordinator for its message count — event-count";
  print_endline " barriers poll n-1 peers per phase — but the barrier variant removes";
  print_endline " the central process and finishes phases in fewer simulated time units";
  print_endline " at scale because polls overlap instead of serialising at one node.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ASYNC: the asynchronous solver                                     *)
(* ------------------------------------------------------------------ *)

let async () =
  header "E-ASYNC  Section 4.1: eliminating the synchronization entirely";
  let sync = Harness.solver_causal ~n:6 ~iters:40 () in
  let async2 = Harness.solver_async ~n:6 ~sweeps:80 ~refresh_every:2 () in
  let async8 = Harness.solver_async ~n:6 ~sweeps:120 ~refresh_every:8 () in
  let exact_err (r : Harness.solver_result) =
    (* distance of the sync solution to the true solution *)
    r.Harness.residual
  in
  let t = Table.create ~headers:[ "solver"; "accuracy"; "messages"; "notes" ] in
  Table.add_row t
    [
      "synchronous (40 phases)";
      Printf.sprintf "residual %.1e" (exact_err sync);
      string_of_int sync.Harness.messages_total;
      "two barriers per phase";
    ];
  Table.add_row t
    [
      "asynchronous (80 sweeps, refresh 2)";
      Printf.sprintf "error %.1e" async2.Harness.a_error;
      string_of_int async2.Harness.a_messages_total;
      "no barriers";
    ];
  Table.add_row t
    [
      "asynchronous (120 sweeps, refresh 8)";
      Printf.sprintf "error %.1e" async8.Harness.a_error;
      string_of_int async8.Harness.a_messages_total;
      "sparse refresh";
    ];
  print_table t

(* ------------------------------------------------------------------ *)
(* E-LAT: operation latency — one owner round trip, ever                *)
(* ------------------------------------------------------------------ *)

(* The introduction's argument: strongly consistent DSM "performs poorly in
   high latency distributed systems" because writes synchronise globally,
   while on causal memory "read and write operations never require
   communication with more than a single processor (the owner)".  Measure
   per-operation latency in simulated time on a contended location. *)
let lat () =
  header "E-LAT  Per-operation latency on a contended location";
  let module Engine = Dsm_sim.Engine in
  let module Proc = Dsm_runtime.Proc in
  let processes = 6 in
  let hot = Loc.indexed "hot" 0 in
  let rounds = 30 in
  let run_clients ~spawn_ops =
    (* Each client alternates: write the hot location (owned by node 0),
       then read it; latencies collected per op kind. *)
    let reads = Dsm_util.Stats.create () and writes = Dsm_util.Stats.create () in
    spawn_ops ~reads ~writes;
    (reads, writes)
  in
  let client engine prng ~read ~write ~reads ~writes () =
    for k = 1 to rounds do
      Proc.sleep (Dsm_util.Prng.exponential prng ~mean:3.0);
      let t0 = Engine.now engine in
      write hot (Value.Int ((k * 100) + 1));
      Dsm_util.Stats.add writes (Engine.now engine -. t0);
      let t1 = Engine.now engine in
      ignore (read hot);
      Dsm_util.Stats.add reads (Engine.now engine -. t1)
    done
  in
  let causal_case () =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let cluster =
      Dsm_causal.Cluster.create ~sched ~owner:(Dsm_memory.Owner.by_index ~nodes:processes)
        ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    run_clients ~spawn_ops:(fun ~reads ~writes ->
        let master = Dsm_util.Prng.create 7L in
        for pid = 1 to processes - 1 do
          let prng = Dsm_util.Prng.split master in
          let h = Dsm_causal.Cluster.handle cluster pid in
          ignore
            (Proc.spawn sched
               (client engine prng
                  ~read:(Dsm_causal.Cluster.read h)
                  ~write:(Dsm_causal.Cluster.write h)
                  ~reads ~writes))
        done;
        Engine.run engine;
        Proc.check sched)
  in
  let atomic_case mode =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let cluster =
      Dsm_atomic.Cluster.create ~sched ~owner:(Dsm_memory.Owner.by_index ~nodes:processes)
        ~mode ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    run_clients ~spawn_ops:(fun ~reads ~writes ->
        let master = Dsm_util.Prng.create 7L in
        for pid = 1 to processes - 1 do
          let prng = Dsm_util.Prng.split master in
          let h = Dsm_atomic.Cluster.handle cluster pid in
          ignore
            (Proc.spawn sched
               (client engine prng
                  ~read:(Dsm_atomic.Cluster.read h)
                  ~write:(Dsm_atomic.Cluster.write h)
                  ~reads ~writes))
        done;
        Engine.run engine;
        Proc.check sched)
  in
  let t =
    Table.create
      ~headers:
        [ "memory"; "write mean"; "write max"; "read mean"; "read max"; "unit" ]
  in
  let row name (reads, writes) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.2f" (Dsm_util.Stats.mean writes);
        Printf.sprintf "%.2f" (Dsm_util.Stats.max writes);
        Printf.sprintf "%.2f" (Dsm_util.Stats.mean reads);
        Printf.sprintf "%.2f" (Dsm_util.Stats.max reads);
        "link delays (1.0 each way)";
      ]
  in
  row "causal" (causal_case ());
  row "atomic (acknowledged)" (atomic_case `Acknowledged);
  row "atomic (counted)" (atomic_case `Counted);
  print_table t;
  print_endline "(A causal write is one owner round trip (~2.0) regardless of how many";
  print_endline " nodes cache the location; an acknowledged atomic write also waits for";
  print_endline " the owner's invalidation round to every cacher, so contention stretches";
  print_endline " its tail — the introduction's scaling argument.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-LITMUS: causal memory located in the hierarchy                     *)
(* ------------------------------------------------------------------ *)

let litmus () =
  header "E-LITMUS  Locating causal memory among its neighbours";
  let t =
    Table.create
      ~headers:[ "litmus"; "causal"; "SC"; "PRAM"; "slow"; "coherent"; "as expected" ]
  in
  List.iter
    (fun (c : Dsm_checker.Litmus.case) ->
      let results = Dsm_checker.Litmus.check c in
      let cell name =
        let _, _, m = List.find (fun (n, _, _) -> n = name) results in
        if m then "ok" else "VIOL"
      in
      Table.add_row t
        [
          c.Dsm_checker.Litmus.name;
          cell "causal";
          cell "sc";
          cell "pram";
          cell "slow";
          cell "coherent";
          pass (Dsm_checker.Litmus.passes c);
        ])
    Dsm_checker.Litmus.all;
  print_table t;
  print_endline "(SB separates SC from causal; WRC separates causal from PRAM;";
  print_endline " MP shows causal memory still protects flag-then-data publication.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-ATOMIC: who is actually atomic?                                    *)
(* ------------------------------------------------------------------ *)

(* Linearizability with real-time intervals (the register property of
   [17]) checked on timed executions of each protocol. *)
let atomicity () =
  header "E-ATOMIC  Real-time atomicity (linearizability) across protocols";
  let module Engine = Dsm_sim.Engine in
  let module Proc = Dsm_runtime.Proc in
  let module Lin = Dsm_checker.Linearizability in
  let to_lin timed = List.map (fun (op, s, e) -> Lin.make op ~start_time:s ~end_time:e) timed in
  let t = Table.create ~headers:[ "protocol / scenario"; "causal"; "linearizable"; "note" ] in
  (* 1. Acknowledged atomic, random workloads. *)
  let acked_ok = ref true in
  for seed = 1 to 5 do
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let c =
      Dsm_atomic.Cluster.create ~sched ~owner:(Dsm_memory.Owner.by_index ~nodes:3)
        ~mode:`Acknowledged
        ~latency:(Dsm_net.Latency.Uniform (0.3, 3.0))
        ~seed:(Int64.of_int seed) ()
    in
    let prng = Dsm_util.Prng.create (Int64.of_int (seed * 31)) in
    for pid = 0 to 2 do
      let prng = Dsm_util.Prng.split prng in
      ignore
        (Proc.spawn sched (fun () ->
             for k = 1 to 6 do
               Proc.sleep (Dsm_util.Prng.float prng 4.0);
               let loc = Workload.loc (Dsm_util.Prng.int prng 2) in
               if Dsm_util.Prng.bool prng then
                 Dsm_atomic.Cluster.write (Dsm_atomic.Cluster.handle c pid) loc
                   (Value.Int ((pid * 100) + k))
               else ignore (Dsm_atomic.Cluster.read (Dsm_atomic.Cluster.handle c pid) loc)
             done))
    done;
    Engine.run engine;
    Proc.check sched;
    if not (Lin.is_linearizable (to_lin (Dsm_atomic.Cluster.timed_history c))) then
      acked_ok := false
  done;
  Table.add_row t
    [ "atomic, acknowledged (5 random runs)"; "yes"; (if !acked_ok then "yes" else "NO");
      "invalidation acks make writes atomic" ];
  (* 2. Counted atomic: the stale window after a fire-and-forget write. *)
  let counted_lin =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let c =
      Dsm_atomic.Cluster.create ~sched ~owner:(Dsm_memory.Owner.by_index ~nodes:2)
        ~mode:`Counted ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    let hot = Loc.indexed "v" 0 in
    ignore
      (Proc.spawn sched (fun () ->
           ignore (Dsm_atomic.Cluster.read (Dsm_atomic.Cluster.handle c 1) hot);
           (* First read completes at ~t=2; wake at ~t=10.5, after the
              owner's write (t=10) but before its INVAL lands (t=11). *)
           Proc.sleep 8.5;
           ignore (Dsm_atomic.Cluster.read (Dsm_atomic.Cluster.handle c 1) hot)));
    ignore
      (Proc.spawn sched ~delay:10.0 (fun () ->
           Dsm_atomic.Cluster.write (Dsm_atomic.Cluster.handle c 0) hot (Value.Int 1)));
    Engine.run engine;
    Proc.check sched;
    Lin.is_linearizable (to_lin (Dsm_atomic.Cluster.timed_history c))
  in
  Table.add_row t
    [ "atomic, counted (stale-window race)"; "yes"; (if counted_lin then "yes" else "NO");
      "fire-and-forget invalidation leaks a stale read" ];
  (* 3. Causal protocol, Figure 5. *)
  let f5 =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let x = Loc.named "x" and y = Loc.named "y" in
    let owner = Dsm_memory.Owner.make ~nodes:2 (fun l -> if Loc.equal l x then 0 else 1) in
    let c = Dsm_causal.Cluster.create ~sched ~owner ~latency:(Dsm_net.Latency.Constant 1.0) () in
    ignore
      (Proc.spawn sched (fun () ->
           ignore (Dsm_causal.Cluster.read (Dsm_causal.Cluster.handle c 0) y);
           Dsm_causal.Cluster.write (Dsm_causal.Cluster.handle c 0) x (Value.Int 1);
           ignore (Dsm_causal.Cluster.read (Dsm_causal.Cluster.handle c 0) y)));
    ignore
      (Proc.spawn sched (fun () ->
           ignore (Dsm_causal.Cluster.read (Dsm_causal.Cluster.handle c 1) x);
           Dsm_causal.Cluster.write (Dsm_causal.Cluster.handle c 1) y (Value.Int 1);
           ignore (Dsm_causal.Cluster.read (Dsm_causal.Cluster.handle c 1) x)));
    Engine.run engine;
    Proc.check sched;
    Lin.is_linearizable (to_lin (Dsm_causal.Cluster.timed_history c))
  in
  Table.add_row t
    [ "causal protocol (Figure 5 schedule)"; "yes"; (if f5 then "yes" else "NO");
      "weakly consistent by design" ];
  print_table t;
  print_endline "(The acknowledged baseline really is atomic; the counted variant the";
  print_endline " paper's message counting assumes is not (its stale window is the two";
  print_endline " messages the paper saves); causal memory gives atomicity up on purpose.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-SCALE: the causal advantage grows with link latency                *)
(* ------------------------------------------------------------------ *)

(* The introduction's motivation: strong-consistency DSM "performs poorly
   in high latency distributed systems".  Sweep the link latency and watch
   solver completion time — the result is more nuanced than the slogan, and
   worth reporting as measured. *)
let scale () =
  header "E-SCALE  Solver completion time vs link latency";
  let t =
    Table.create
      ~headers:
        [ "link latency"; "causal time"; "atomic (acked) time"; "atomic/causal" ]
  in
  List.iter
    (fun latency ->
      let lat = Dsm_net.Latency.Constant latency in
      (* Scale the poll interval with the latency so polling noise stays
         proportionate. *)
      let poll_interval = Float.max 0.5 (2.0 *. latency) in
      let causal = Harness.solver_causal ~latency:lat ~poll_interval ~n:6 ~iters:8 () in
      let atomic =
        Harness.solver_atomic ~latency:lat ~poll_interval ~mode:`Acknowledged ~n:6 ~iters:8 ()
      in
      Table.add_row t
        [
          Printf.sprintf "%.1f" latency;
          Printf.sprintf "%.0f" causal.Harness.sim_time;
          Printf.sprintf "%.0f" atomic.Harness.sim_time;
          Printf.sprintf "%.2fx" (atomic.Harness.sim_time /. causal.Harness.sim_time);
        ])
    [ 0.5; 1.0; 2.0; 5.0; 10.0 ];
  print_table t;
  print_endline "(Honest result: completion time scales linearly with latency in BOTH";
  print_endline " systems, atomic paying a constant ~3% more — the solver's barriers";
  print_endline " dominate the critical path and invalidation rounds overlap with other";
  print_endline " workers' phases.  For THIS workload the cost of strong consistency is";
  print_endline " bandwidth (E-MSG: ~40% more messages), while the latency argument of";
  print_endline " the introduction shows up in per-operation latency on contended data";
  print_endline " (E-LAT: acknowledged atomic writes are 3.3x slower) rather than in";
  print_endline " end-to-end time of a barrier-structured program.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-BYTES: the cost the paper does not count                           *)
(* ------------------------------------------------------------------ *)

(* The paper counts MESSAGES; causal memory's messages carry O(n) vector
   clocks, so the byte picture is different — fewer, fatter messages vs
   more, thinner ones.  Entry wire size is modelled as (dim + 2) units. *)
let bytes_exp () =
  header "E-BYTES  Bytes per processor per iteration (the cost the paper omits)";
  let t =
    Table.create
      ~headers:
        [ "n"; "causal msgs"; "atomic msgs"; "causal bytes"; "atomic bytes"; "causal/atomic bytes" ]
  in
  List.iter
    (fun n ->
      let causal = Harness.solver_causal ~n ~iters:10 () in
      let atomic = Harness.solver_atomic ~n ~iters:10 () in
      Table.add_row t
        [
          string_of_int n;
          string_of_int causal.Harness.messages_total;
          string_of_int atomic.Harness.messages_total;
          string_of_int causal.Harness.bytes_total;
          string_of_int atomic.Harness.bytes_total;
          Printf.sprintf "%.2fx"
            (float_of_int causal.Harness.bytes_total /. float_of_int atomic.Harness.bytes_total);
        ])
    [ 2; 4; 8; 16; 32 ];
  print_table t;
  print_endline "(Causal memory wins the message count (Section 4.1) but every reply";
  print_endline " and certification carries an n-entry writestamp, so its byte volume";
  print_endline " grows O(n) per message.  At larger n the byte ratio climbs — the";
  print_endline " modern critique that motivated later bounded-metadata causal stores.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-SESSION: session guarantees vs strict causal memory                *)
(* ------------------------------------------------------------------ *)

let session () =
  header "E-SESSION  Session guarantees vs the paper's strict causal memory";
  let t =
    Table.create
      ~headers:[ "execution"; "RYW"; "MR"; "MW"; "WFR"; "causal (strict)" ]
  in
  let mark b = if b then "ok" else "VIOL" in
  let row name history =
    let r = Dsm_checker.Session.check_exn history in
    Table.add_row t
      [
        name;
        mark r.Dsm_checker.Session.ryw;
        mark r.Dsm_checker.Session.mr;
        mark r.Dsm_checker.Session.mw;
        mark r.Dsm_checker.Session.wfr;
        mark (Check.is_correct history);
      ]
  in
  List.iter (fun (name, h, _) -> row name h) Histories.all;
  List.iter
    (fun (c : Dsm_checker.Litmus.case) -> row c.Dsm_checker.Litmus.name c.Dsm_checker.Litmus.history)
    Dsm_checker.Litmus.all;
  print_table t;
  print_endline "(Figure 3 is the separation witness: it satisfies every classic";
  print_endline " session guarantee yet violates the paper's causal memory — the";
  print_endline " strict live-set definition is genuinely stronger than";
  print_endline " PRAM + sessions, which is why the paper needs Definition 1.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-DYN: static vs dynamic (Li-Hudak) ownership                        *)
(* ------------------------------------------------------------------ *)

let dyn () =
  header "E-DYN  Atomic DSM: static owner vs Li-Hudak dynamic ownership";
  let module Engine = Dsm_sim.Engine in
  let module Proc = Dsm_runtime.Proc in
  let hot = Loc.indexed "hot" 0 in
  (* Writer-migration workload: nodes take turns writing a burst to one hot
     location, with a few remote readers in between. *)
  let run_workload ~write ~read ~spawn ~finish ~nodes ~burst =
    for turn = 0 to (nodes * 2) - 1 do
      let writer = turn mod nodes in
      spawn (fun () ->
          Proc.sleep (float_of_int (turn * 20));
          for k = 1 to burst do
            write writer hot (Value.Int ((turn * 100) + k))
          done;
          ignore (read ((writer + 1) mod nodes) hot))
    done;
    finish ()
  in
  let nodes = 4 and burst = 8 in
  let static_msgs =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let c =
      Dsm_atomic.Cluster.create ~sched ~owner:(Dsm_memory.Owner.all_to ~nodes 0)
        ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    run_workload ~nodes ~burst
      ~write:(fun pid loc v -> Dsm_atomic.Cluster.write (Dsm_atomic.Cluster.handle c pid) loc v)
      ~read:(fun pid loc -> Dsm_atomic.Cluster.read (Dsm_atomic.Cluster.handle c pid) loc)
      ~spawn:(fun body -> ignore (Proc.spawn sched body))
      ~finish:(fun () ->
        Engine.run engine;
        Proc.check sched);
    Dsm_net.Network.lifetime_total (Dsm_atomic.Cluster.net c)
  in
  let dynamic_msgs, forwards =
    let engine = Engine.create () in
    let sched = Proc.scheduler engine in
    let c =
      Dsm_atomic.Dynamic.create ~sched ~initial_owner:(Dsm_memory.Owner.all_to ~nodes 0)
        ~latency:(Dsm_net.Latency.Constant 1.0) ()
    in
    run_workload ~nodes ~burst
      ~write:(fun pid loc v -> Dsm_atomic.Dynamic.write (Dsm_atomic.Dynamic.handle c pid) loc v)
      ~read:(fun pid loc -> Dsm_atomic.Dynamic.read (Dsm_atomic.Dynamic.handle c pid) loc)
      ~spawn:(fun body -> ignore (Proc.spawn sched body))
      ~finish:(fun () ->
        Engine.run engine;
        Proc.check sched);
    (Dsm_net.Network.lifetime_total (Dsm_atomic.Dynamic.net c), Dsm_atomic.Dynamic.forwards c)
  in
  let t = Table.create ~headers:[ "protocol"; "messages"; "chain forwards" ] in
  Table.add_row t [ "static owner (paper's comparator)"; string_of_int static_msgs; "-" ];
  Table.add_row t
    [ "dynamic ownership (Li-Hudak)"; string_of_int dynamic_msgs; string_of_int forwards ];
  print_table t;
  Printf.printf
    "Writer-migration workload (%d nodes x %d-write bursts): dynamic ownership\n\
     saves %.0f%% of the messages — after the first write of a burst the\n\
     writer owns the location and the rest are free.  The paper's Section 4.1\n\
     count assumes the static comparator, which matches its solver workload\n\
     (each x_i has a single writer), so the comparison there is fair.\n\n"
    nodes burst
    (100.0 *. (1.0 -. (float_of_int dynamic_msgs /. float_of_int static_msgs)))

(* ------------------------------------------------------------------ *)
(* E-BOARD: orphan replies across the memory models                     *)
(* ------------------------------------------------------------------ *)

let board () =
  header "E-BOARD  Message board: no orphan replies on causal memory";
  let t =
    Table.create
      ~headers:
        [ "memory"; "early posts"; "early orphans"; "final posts"; "final orphans" ]
  in
  let row name (r : Scenarios.board_result) =
    Table.add_row t
      [
        name;
        string_of_int r.Scenarios.br_early_posts;
        string_of_int r.Scenarios.br_early_orphans;
        string_of_int r.Scenarios.br_final_posts;
        string_of_int r.Scenarios.br_final_orphans;
      ]
  in
  row "causal DSM (owner protocol)" (Scenarios.board_on_causal_dsm ());
  row "broadcast replicas, causal delivery" (Scenarios.board_on_broadcast ~mode:`Causal);
  row "broadcast replicas, FIFO delivery" (Scenarios.board_on_broadcast ~mode:`Fifo);
  print_table t;
  print_endline "(A reply races ahead of its parent toward a third reader.  Causal";
  print_endline " memory never shows the orphan: the owner protocol resolves the parent";
  print_endline " by pulling from its owner, causal delivery holds the reply back.";
  print_endline " FIFO-only replication exposes it — the application-level face of the";
  print_endline " paper's Figure 3 argument.)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-MODEL: exhaustive small-scope verification + the finding           *)
(* ------------------------------------------------------------------ *)

let model () =
  header "E-MODEL  Exhaustive model checking of the owner protocol";
  let module Model = Dsm_model.Model in
  let x = Loc.named "x" and y = Loc.named "y" in
  let v i = Loc.indexed "v" i in
  let fig5_cfg =
    {
      Model.owner_of = (fun loc -> if Loc.equal loc x then 0 else 1);
      policy = Model.Lww;
      programs =
        [
          [ Model.Read y; Model.Write (x, Value.Int 1); Model.Read y ];
          [ Model.Read x; Model.Write (y, Value.Int 1); Model.Read x ];
        ];
    }
  in
  let three_cfg =
    {
      Model.owner_of = (fun loc -> match loc with Loc.Indexed (_, i) -> i mod 3 | _ -> 0);
      policy = Model.Lww;
      programs =
        [
          [ Model.Write (v 1, Value.Int 10); Model.Read (v 2) ];
          [ Model.Write (v 2, Value.Int 20); Model.Read (v 1) ];
          [ Model.Read (v 1); Model.Read (v 2) ];
        ];
    }
  in
  let race_cfg =
    {
      Model.owner_of =
        (fun loc -> if Loc.equal loc x then 1 else if Loc.equal loc y then 2 else 0);
      policy = Model.Lww;
      programs =
        [
          [ Model.Read y; Model.Write (x, Value.Int 5) ];
          [ Model.Read y; Model.Read x; Model.Read y ];
          [ Model.Write (y, Value.Int 1); Model.Write (y, Value.Int 3) ];
        ];
    }
  in
  let t =
    Table.create
      ~headers:[ "configuration"; "variant"; "states"; "distinct executions"; "violations" ]
  in
  let row name cfg variant vname =
    let s = Model.explore ~variant cfg in
    Table.add_row t
      [
        name;
        vname;
        string_of_int s.Model.states_explored;
        string_of_int s.Model.terminal_histories;
        string_of_int (List.length s.Model.violations);
      ]
  in
  row "fig5 layout (2 nodes)" fig5_cfg Model.Faithful "patched (library)";
  row "3-node exchange" three_cfg Model.Faithful "patched (library)";
  row "race probe" race_cfg Model.Faithful "patched (library)";
  row "race probe" race_cfg Model.Figure4_literal "Figure 4 literal";
  row "race probe" race_cfg Model.Skip_invalidation "mutant: no invalidation";
  row "race probe" race_cfg Model.Skip_certify_merge "mutant: no certify merge";
  print_table t;
  print_endline "FINDING: the literal Figure 4 pseudocode admits causal violations when";
  print_endline "an owner certifies a write while its own read request is in flight (the";
  print_endline "reply caches a value older than knowledge gained from the certification).";
  print_endline "The library adds a stale-install guard: a fetched entry is not retained";
  print_endline "when the reader's clock grew mid-flight.  Exhaustive exploration of the";
  print_endline "patched transition system finds zero violations; the same race driven";
  print_endline "through the simulator protocol is exercised in the test suite.";
  print_newline ();
  let r = Scenarios.stale_install_race () in
  Printf.printf "Simulator replay of the race: guard fired %d time(s); history %s.\n\n"
    r.Scenarios.si_stale_drops
    (if r.Scenarios.si_causal_ok then "causally CORRECT" else "VIOLATING")

let all : (string * (unit -> unit)) list =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("msg", msg);
    ("dict", dict);
    ("weak", weak);
    ("lat", lat);
    ("model", model);
    ("litmus", litmus);
    ("session", session);
    ("bytes", bytes_exp);
    ("scale", scale);
    ("atomicity", atomicity);
    ("abl-inv", abl_inv);
    ("abl-precise", abl_precise);
    ("abl-page", abl_page);
    ("abl-discard", abl_discard);
    ("block", block);
    ("barrier", barrier);
    ("board", board);
    ("dyn", dyn);
    ("async", async);
  ]
