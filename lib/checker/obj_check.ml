(* Generalized causal checking for objects defined by a sequential
   specification (Mostéfaoui-Perrin-Raynal, PAPERS.md).

   An object lives in the memory as a family of per-writer, append-only
   op-log cells [Loc.Cell (obj, writer, k)]; each cell holds one encoded
   update, written once.  A {e query} is a client-side fold: the process
   probes the cells with ordinary register reads and folds the payloads it
   observed through the spec.  The registers never learn the semantics —
   this module does.

   The legality rule (the linearization-of-causal-past rule, see
   docs/CHECKERS.md): a query with observation set [obs] (the updates its
   latest probe reads returned) and return value [ret] is legal iff there
   is a set [S] of updates with

     closure(obs) ⊆ S ⊆ may,

   where [closure(obs)] adds every update causally preceding an observed
   one, [may] excludes updates causally following the query's anchor (the
   querying process's last operation), [S] is downward-closed under the
   causal order, and some linearization of [S] consistent with the causal
   order folds to [ret].  Stale probes are the register checker's
   department (Definition 1 already covers each read); what the object
   layer adds is {e cross-cell closure} — a fold must not use an update
   while dropping one of its causal prerequisites — and {e merge
   correctness} — it must not drop an update it demonstrably observed.

   Cost bounds: with [e = |may \ closure(obs)|] candidate extras the
   subset search is [O(2^e)]; order-sensitive folds additionally try
   causal-order linearizations of each subset under a global budget.
   Beyond [max_extras] extras or an exhausted linearization budget the
   checker answers {e legal} — conservative: it never flags a query it
   could not afford to refute. *)

module Op = Dsm_memory.Op
module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid
module Value = Dsm_memory.Value
module History = Dsm_memory.History

type sem = {
  obj : string;
  fold : string list -> string;
  order_sensitive : bool;
}

type update = { u_key : int; u_cell : int * int; u_payload : string }

type query = {
  q_pid : int;
  q_obj : string;
  q_ret : string;
  q_anchor : int;
  q_observed : (Loc.t * Wid.t) list option;
}

type violation = { v_query : query; v_reason : string }

let max_extras = 12

let max_linearizations = 5_000

(* The payload a stored value carries: object updates are [Str] payloads;
   anything else renders through [Value.to_string] so a malformed history
   still folds deterministically. *)
let payload = function Value.Str s -> s | v -> Value.to_string v

let canonical = List.sort (fun a b -> compare (a.u_cell, a.u_key) (b.u_cell, b.u_key))

exception Found

exception Budget

(* Enumerate every linearization of [pool] consistent with [precedes],
   calling [check] on each; raises [Found] on a match, [Budget] when the
   global attempt budget is exhausted. *)
let rec topo_search ~precedes ~budget ~check acc pool =
  match pool with
  | [] -> if check (List.rev_map (fun u -> u.u_payload) acc) then raise Found
  | _ ->
      List.iter
        (fun u ->
          let minimal =
            not (List.exists (fun v -> v.u_key <> u.u_key && precedes v.u_key u.u_key) pool)
          in
          if minimal then begin
            decr budget;
            if !budget <= 0 then raise Budget;
            topo_search ~precedes ~budget ~check (u :: acc)
              (List.filter (fun v -> v.u_key <> u.u_key) pool)
          end)
        pool

(* Can the subset [s] (canonically ordered) fold to [ret] under some
   causal-order-consistent linearization? *)
let subset_matches ~sem ~precedes ~budget s ret =
  if not sem.order_sensitive then String.equal (sem.fold (List.map (fun u -> u.u_payload) s)) ret
  else
    match topo_search ~precedes ~budget ~check:(fun ps -> String.equal (sem.fold ps) ret) [] s with
    | () -> false
    | exception Found -> true
    | exception Budget -> true (* over budget: conservative *)

let legal ~sem ~precedes ~updates ~observed ~anchor ~ret =
  let updates = canonical updates in
  let observed = List.sort_uniq compare observed in
  let in_observed k = List.mem k observed in
  (* [closure(obs)]: observed updates plus their causal prerequisites.
     Downward-closed by transitivity of [precedes]. *)
  let must, rest =
    List.partition
      (fun u -> in_observed u.u_key || List.exists (fun o -> precedes u.u_key o) observed)
      updates
  in
  let extras =
    Array.of_list
      (List.filter
         (fun u -> match anchor with Some a -> not (precedes a u.u_key) | None -> true)
         rest)
  in
  let k = Array.length extras in
  if k > max_extras then true
  else begin
    let budget = ref max_linearizations in
    let matches subset = subset_matches ~sem ~precedes ~budget (canonical subset) ret in
    let rec try_mask m =
      if m >= 1 lsl k then false
      else begin
        let chosen = List.filter (fun i -> m land (1 lsl i) <> 0) (List.init k Fun.id) in
        let dropped = List.filter (fun i -> m land (1 lsl i) = 0) (List.init k Fun.id) in
        (* Downward-closure among the extras: a chosen extra must not have a
           dropped causal prerequisite.  ([must] already contains every
           prerequisite of an observed update.) *)
        let closed =
          List.for_all
            (fun i ->
              not (List.exists (fun j -> precedes extras.(j).u_key extras.(i).u_key) dropped))
            chosen
        in
        if closed && matches (must @ List.map (fun i -> extras.(i)) chosen) then true
        else try_mask (m + 1)
      end
    in
    match try_mask 0 with
    | r -> r
    | exception Budget -> true
  end

(* ------------------------------------------------------------------ *)
(* Post-hoc checking over a recorded history                           *)
(* ------------------------------------------------------------------ *)

let cell_of ~obj loc =
  match (loc : Loc.t) with
  | Loc.Cell (name, i, j) when String.equal name obj -> Some (i, j)
  | _ -> None

let check_query ~lookup g q =
  let bad reason = Some { v_query = q; v_reason = reason } in
  match lookup q.q_obj with
  | None -> bad (Printf.sprintf "unknown object family %S" q.q_obj)
  | Some sem ->
      let n = Causality.op_count g in
      let updates = ref [] in
      let anchor = ref None in
      for idx = 0 to n - 1 do
        let o = Causality.op g idx in
        (if Op.is_write o then
           match cell_of ~obj:q.q_obj o.Op.loc with
           | Some cell ->
               updates := { u_key = idx; u_cell = cell; u_payload = payload o.Op.value } :: !updates
           | None -> ());
        if o.Op.pid = q.q_pid && o.Op.index = q.q_anchor then anchor := Some idx
      done;
      let observed =
        match q.q_observed with
        | Some pairs ->
            List.filter_map
              (fun (_, wid) -> if Wid.is_initial wid then None else Causality.writer_of g wid)
              pairs
        | None ->
            (* Reconstruct the probes from the history: the latest read per
               cell of the family by the querying process, at or before the
               anchor. *)
            let best = Hashtbl.create 8 in
            for idx = 0 to n - 1 do
              let o = Causality.op g idx in
              if o.Op.pid = q.q_pid && Op.is_read o && o.Op.index <= q.q_anchor then
                match cell_of ~obj:q.q_obj o.Op.loc with
                | Some cell -> (
                    match Hashtbl.find_opt best cell with
                    | Some (i0, _) when i0 > o.Op.index -> ()
                    | _ -> Hashtbl.replace best cell (o.Op.index, o.Op.wid))
                | None -> ()
            done;
            Hashtbl.fold
              (fun _ (_, wid) acc ->
                if Wid.is_initial wid then acc
                else match Causality.writer_of g wid with Some i -> i :: acc | None -> acc)
              best []
      in
      if
        legal ~sem
          ~precedes:(Causality.precedes g)
          ~updates:!updates ~observed ~anchor:!anchor ~ret:q.q_ret
      then None
      else
        bad
          (Printf.sprintf
             "%s query by process %d returned %S, which no causal-past linearization of its \
              observed context produces"
             q.q_obj q.q_pid q.q_ret)

let check ~lookup history queries =
  match Causality.build history with
  | Error e ->
      List.map (fun q -> { v_query = q; v_reason = "malformed history: " ^ e }) queries
  | Ok g -> List.filter_map (check_query ~lookup g) queries

let is_correct ~lookup history queries = check ~lookup history queries = []
