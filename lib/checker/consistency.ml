module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module History = Dsm_memory.History

(* ------------------------------------------------------------------ *)
(* Core: is there a legal interleaving of the given rows?              *)
(* ------------------------------------------------------------------ *)

(* A state is the per-row position vector plus the store (last write per
   location).  A read is enabled when the store holds exactly the write it
   read from (the virtual initial write when the location is untouched).
   Memoising expanded states keeps the search tractable on the history
   sizes the experiments classify. *)

let store_key store =
  Loc.Map.fold (fun loc wid acc -> (Loc.to_string loc ^ "=" ^ Wid.to_string wid) :: acc) store []
  |> String.concat ";"

let state_key positions store =
  String.concat "," (Array.to_list (Array.map string_of_int positions)) ^ "|" ^ store_key store

let sc_of_rows (rows : Op.t array array) : Op.t list option =
  let n = Array.length rows in
  let total = Array.fold_left (fun acc r -> acc + Array.length r) 0 rows in
  let visited = Hashtbl.create 1024 in
  let rec go positions store acc =
    if List.length acc = total then Some (List.rev acc)
    else begin
      let key = state_key positions store in
      if Hashtbl.mem visited key then None
      else begin
        Hashtbl.replace visited key ();
        let rec try_row p =
          if p = n then None
          else begin
            let pos = positions.(p) in
            if pos >= Array.length rows.(p) then try_row (p + 1)
            else begin
              let op = rows.(p).(pos) in
              let attempt =
                match op.Op.kind with
                | Op.Write ->
                    let store' = Loc.Map.add op.Op.loc op.Op.wid store in
                    Some store'
                | Op.Read ->
                    let current =
                      match Loc.Map.find_opt op.Op.loc store with
                      | Some wid -> wid
                      | None -> Wid.initial
                    in
                    if Wid.equal current op.Op.wid then Some store else None
              in
              match attempt with
              | None -> try_row (p + 1)
              | Some store' ->
                  positions.(p) <- pos + 1;
                  let result = go positions store' (op :: acc) in
                  positions.(p) <- pos;
                  (match result with Some _ -> result | None -> try_row (p + 1))
            end
          end
        in
        try_row 0
      end
    end
  in
  go (Array.make n 0) Loc.Map.empty []

let rows_of history = (history : History.t :> Op.t array array)

let sc_witness history = sc_of_rows (rows_of history)

let is_sc history = Option.is_some (sc_witness history)

(* PRAM: per reader, all its ops + everyone else's writes. *)
let pram_rows rows reader =
  Array.mapi
    (fun pid row -> if pid = reader then row else Array.of_seq (Seq.filter Op.is_write (Array.to_seq row)))
    rows

let is_pram history =
  let rows = rows_of history in
  let ok = ref true in
  Array.iteri (fun reader _ -> if Option.is_none (sc_of_rows (pram_rows rows reader)) then ok := false) rows;
  !ok

let locations rows =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc (op : Op.t) -> Loc.Set.add op.Op.loc acc) acc row)
    Loc.Set.empty rows

let restrict_loc rows loc =
  Array.map
    (fun row -> Array.of_seq (Seq.filter (fun (o : Op.t) -> Loc.equal o.Op.loc loc) (Array.to_seq row)))
    rows

let is_slow history =
  let rows = rows_of history in
  let locs = locations rows in
  Loc.Set.for_all
    (fun loc ->
      let per_loc = restrict_loc rows loc in
      Array.to_list per_loc
      |> List.mapi (fun reader _ -> reader)
      |> List.for_all (fun reader -> Option.is_some (sc_of_rows (pram_rows per_loc reader))))
    locs

let is_coherent history =
  let rows = rows_of history in
  let locs = locations rows in
  Loc.Set.for_all (fun loc -> Option.is_some (sc_of_rows (restrict_loc rows loc))) locs

type classification = {
  causal : bool;
  sc : bool;
  pram : bool;
  slow : bool;
  coherent : bool;
}

let classify history =
  {
    causal = Causal_check.is_correct history;
    sc = is_sc history;
    pram = is_pram history;
    slow = is_slow history;
    coherent = is_coherent history;
  }

let pp_classification ppf c =
  let mark b = if b then "yes" else "no" in
  Format.fprintf ppf "causal=%s sc=%s pram=%s slow=%s coherent=%s" (mark c.causal) (mark c.sc)
    (mark c.pram) (mark c.slow) (mark c.coherent)
