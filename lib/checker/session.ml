module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module History = Dsm_memory.History

type report = { ryw : bool; mr : bool; mw : bool; wfr : bool }

let all_hold r = r.ryw && r.mr && r.mw && r.wfr

(* "Source a strictly causally precedes source b" where either source may be
   the virtual initial write (which precedes every real write and equals
   itself). *)
let source_precedes g a b =
  match (Causality.writer_of g a, Causality.writer_of g b) with
  | None, None -> false (* initial = initial *)
  | None, Some _ -> true (* initial precedes every real write *)
  | Some _, None -> false
  | Some ia, Some ib -> Causality.precedes g ia ib

let rows_of history = (history : History.t :> Op.t array array)

(* RYW: a read must not return a source strictly older than one of the
   reader's own earlier writes to the same location. *)
let check_ryw g rows =
  let ok = ref true in
  Array.iter
    (fun row ->
      Array.iteri
        (fun k (r : Op.t) ->
          if Op.is_read r then
            for j = 0 to k - 1 do
              let w = row.(j) in
              if Op.is_write w && Loc.equal w.Op.loc r.Op.loc then
                if (not (Wid.equal r.Op.wid w.Op.wid)) && source_precedes g r.Op.wid w.Op.wid
                then ok := false
            done)
        row)
    rows;
  !ok

(* MR: successive reads of a location by one process never regress. *)
let check_mr g rows =
  let ok = ref true in
  Array.iter
    (fun row ->
      Array.iteri
        (fun k (r2 : Op.t) ->
          if Op.is_read r2 then
            for j = 0 to k - 1 do
              let r1 = row.(j) in
              if Op.is_read r1 && Loc.equal r1.Op.loc r2.Op.loc then
                if source_precedes g r2.Op.wid r1.Op.wid then ok := false
            done)
        row)
    rows;
  !ok

(* MW: one process's two ordered writes to a location may never be observed
   in reverse by any single process. *)
let check_mw rows =
  let ok = ref true in
  (* Ordered same-process same-location write pairs. *)
  let write_pairs =
    Array.to_list rows
    |> List.concat_map (fun row ->
           let writes = Array.to_list row |> List.filter Op.is_write in
           List.concat_map
             (fun (w1 : Op.t) ->
               List.filter_map
                 (fun (w2 : Op.t) ->
                   if w1.Op.index < w2.Op.index && Loc.equal w1.Op.loc w2.Op.loc then
                     Some (w1, w2)
                   else None)
                 writes)
             writes)
  in
  Array.iter
    (fun row ->
      List.iter
        (fun ((w1 : Op.t), (w2 : Op.t)) ->
          Array.iteri
            (fun k (r2 : Op.t) ->
              if Op.is_read r2 && Wid.equal r2.Op.wid w1.Op.wid then
                (* Saw the older write... after having seen the newer one? *)
                for j = 0 to k - 1 do
                  let r1 = row.(j) in
                  if Op.is_read r1 && Wid.equal r1.Op.wid w2.Op.wid then ok := false
                done)
            row)
        write_pairs)
    rows;
  !ok

(* WFR: if the author of w2 had read source w1 at location x before writing
   w2, then any process that observes w2 must not subsequently read, at x, a
   source strictly older than w1. *)
let check_wfr g rows =
  let ok = ref true in
  (* (x, w1, w2) dependencies: author read (x, w1) and later wrote w2. *)
  let dependencies =
    Array.to_list rows
    |> List.concat_map (fun row ->
           Array.to_list row
           |> List.concat_map (fun (r : Op.t) ->
                  if not (Op.is_read r) then []
                  else
                    Array.to_list row
                    |> List.filter_map (fun (w2 : Op.t) ->
                           if Op.is_write w2 && r.Op.index < w2.Op.index then
                             Some (r.Op.loc, r.Op.wid, w2.Op.wid)
                           else None)))
  in
  Array.iter
    (fun row ->
      List.iter
        (fun (x, w1, w2) ->
          Array.iteri
            (fun k (later : Op.t) ->
              if Op.is_read later && Loc.equal later.Op.loc x then
                (* Did this process observe w2 earlier? *)
                for j = 0 to k - 1 do
                  let earlier = row.(j) in
                  if Op.is_read earlier && Wid.equal earlier.Op.wid w2 then
                    if source_precedes g later.Op.wid w1 then ok := false
                done)
            row)
        dependencies)
    rows;
  !ok

let check history =
  match Causality.build history with
  | Error e -> Error e
  | Ok g ->
      let rows = rows_of history in
      Ok { ryw = check_ryw g rows; mr = check_mr g rows; mw = check_mw rows; wfr = check_wfr g rows }

let check_exn history =
  match check history with Ok r -> r | Error e -> failwith ("Session.check: " ^ e)

let pp ppf r =
  let mark b = if b then "ok" else "VIOLATED" in
  Format.fprintf ppf "ryw=%s mr=%s mw=%s wfr=%s" (mark r.ryw) (mark r.mr) (mark r.mw)
    (mark r.wfr)
