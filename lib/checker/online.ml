module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Bitrel = Dsm_util.Bitrel

type violation = { v_op : Op.t; v_reason : string }

(* Where a read's value came from, as far as the checker knows.  A read
   whose source write has not arrived is [S_pending]: its reads-from edge
   is deferred, and crucially its causal association is unvalidated — it
   must not serve as intervening evidence against other reads until the
   write shows up (the write might even close a cycle, making the pending
   read the culprit rather than the evidence). *)
type src = S_write | S_initial | S_resolved of int | S_pending of Wid.t

type t = {
  mutable ops : Op.t array; (* capacity-managed; first [n] slots valid *)
  mutable pred : int array; (* program predecessor's global index, -1 if first *)
  mutable source : src array; (* parallel to [ops] *)
  mutable n : int;
  mutable closed : Bitrel.t; (* transitively closed over inserted edges *)
  last_of_pid : (int, int) Hashtbl.t; (* pid -> global index of its latest op *)
  writers : (Wid.t, int) Hashtbl.t;
  pending_rf : (Wid.t, int list) Hashtbl.t; (* wid -> readers awaiting it *)
  pending_recheck : (Wid.t, int list) Hashtbl.t;
      (* wid -> reads checked clean while a read from wid was excluded as
         evidence; re-checked when the write arrives *)
  by_loc : (Loc.t, int list) Hashtbl.t; (* ops on a location, newest first *)
  flagged : (int, unit) Hashtbl.t; (* reads already reported, by index *)
  mutable violation_log : violation list; (* newest first *)
  mutable checks : int;
  mutable edges : int;
}

let dummy =
  Op.write ~pid:0 ~index:0 ~loc:(Loc.named "_") ~value:Value.initial
    ~wid:Wid.initial

let create () =
  {
    ops = Array.make 64 dummy;
    pred = Array.make 64 (-1);
    source = Array.make 64 S_write;
    n = 0;
    closed = Bitrel.create 64;
    last_of_pid = Hashtbl.create 16;
    writers = Hashtbl.create 64;
    pending_rf = Hashtbl.create 16;
    pending_recheck = Hashtbl.create 16;
    by_loc = Hashtbl.create 16;
    flagged = Hashtbl.create 16;
    violation_log = [];
    checks = 0;
    edges = 0;
  }

let ops_seen t = t.n

let pending_reads t = Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.pending_rf 0

let violations t = List.rev t.violation_log

let first_violation t =
  match List.rev t.violation_log with [] -> None | v :: _ -> Some v

let checks t = t.checks

let edges t = t.edges

(* Double capacity: the relation is rebuilt by re-adding every closed pair,
   so no re-closure is needed.  Amortised O(n^2) bits over a run — the same
   order as the final relation itself. *)
let grow t =
  let cap = 2 * Array.length t.ops in
  let ops = Array.make cap dummy in
  Array.blit t.ops 0 ops 0 t.n;
  let pred = Array.make cap (-1) in
  Array.blit t.pred 0 pred 0 t.n;
  let source = Array.make cap S_write in
  Array.blit t.source 0 source 0 t.n;
  let closed = Bitrel.create cap in
  for i = 0 to t.n - 1 do
    List.iter (fun j -> Bitrel.add closed i j) (Bitrel.successors t.closed i)
  done;
  t.ops <- ops;
  t.pred <- pred;
  t.source <- source;
  t.closed <- closed

(* Insert u -> v and restore closure: row u absorbs {v} + row v, then every
   predecessor of u absorbs the updated row u.  One O(n) scan of mem bits
   plus word-wise row ORs — no global re-closure. *)
let add_edge t u v =
  if not (Bitrel.mem t.closed u v) then begin
    t.edges <- t.edges + 1;
    Bitrel.add t.closed u v;
    Bitrel.union_row_into t.closed ~src:v ~dst:u;
    for a = 0 to t.n - 1 do
      if a <> u && Bitrel.mem t.closed a u then
        Bitrel.union_row_into t.closed ~src:u ~dst:a
    done
  end

let precedes t a b = Bitrel.mem t.closed a b

(* a ->* io without io's own reads-from edge: go through the program
   predecessor, exactly as Causality.precedes_excl_rf. *)
let precedes_excl_rf t a ~reader =
  match t.pred.(reader) with
  | -1 -> false
  | p -> a = p || precedes t a p

let ops_on t loc = match Hashtbl.find_opt t.by_loc loc with Some l -> l | None -> []

let is_pending t i = match t.source.(i) with S_pending _ -> true | _ -> false

(* Mirrors Causal_check.intervenes over the online state, except that reads
   whose reads-from edge is still deferred are not admitted as evidence:
   their association is unvalidated until their write arrives (it could
   even turn out to close a causality cycle). *)
let intervenes t ~ops_x ~io ~cand_wid ~cand_idx =
  List.exists
    (fun i'' ->
      i'' <> io
      && (not (is_pending t i''))
      && (match cand_idx with Some iw -> i'' <> iw | None -> true)
      && (not (Wid.equal t.ops.(i'').Op.wid cand_wid))
      && (match cand_idx with
         | Some iw -> precedes t iw i''
         | None -> true)
      && precedes_excl_rf t i'' ~reader:io)
    ops_x

(* A clean verdict reached while pending reads on the same location were
   excluded as evidence is provisional: re-check [io] when those writes
   arrive.  (A violation verdict never needs a re-check — resolving a
   pending read can only add evidence, never remove any.) *)
let register_rechecks t ~ops_x ~io =
  List.iter
    (fun i'' ->
      if i'' <> io then
        match t.source.(i'') with
        | S_pending w ->
            let waiting =
              match Hashtbl.find_opt t.pending_recheck w with Some l -> l | None -> []
            in
            Hashtbl.replace t.pending_recheck w (io :: waiting)
        | S_write | S_initial | S_resolved _ -> ())
    ops_x

(* Is the value the read at [io] returned live for it (Definition 1),
   given the prefix seen so far?  The read's source must be resolved
   ([S_initial] or [S_resolved]) before it can be checked. *)
let check_read t io =
  t.checks <- t.checks + 1;
  let o = t.ops.(io) in
  let ops_x = ops_on t o.Op.loc in
  let bad reason = Some { v_op = o; v_reason = reason } in
  let verdict =
    match t.source.(io) with
    | S_initial ->
        if intervenes t ~ops_x ~io ~cand_wid:Wid.initial ~cand_idx:None then
          bad
            (Printf.sprintf "%s returned the initial value, but a later write to %s already precedes it"
               (Op.to_string o) (Loc.to_string o.Op.loc))
        else None
    | S_resolved iw ->
        if precedes_excl_rf t iw ~reader:io then
          if intervenes t ~ops_x ~io ~cand_wid:o.Op.wid ~cand_idx:(Some iw) then
            bad
              (Printf.sprintf "%s returned %s (from %s), already overwritten for this read"
                 (Op.to_string o)
                 (Value.to_string o.Op.value)
                 (Wid.to_string o.Op.wid))
          else None
        else if precedes t io iw then
          bad
            (Printf.sprintf "%s reads from its own causal future (%s)"
               (Op.to_string o) (Wid.to_string o.Op.wid))
        else (* concurrent with its source: always live *) None
    | S_write | S_pending _ -> assert false
  in
  if verdict = None then register_rechecks t ~ops_x ~io;
  verdict

let record_violation t idx = function
  | None -> []
  | Some v ->
      if Hashtbl.mem t.flagged idx then []
      else begin
        Hashtbl.replace t.flagged idx ();
        t.violation_log <- v :: t.violation_log;
        [ v ]
      end

let add_op t (op : Op.t) =
  if t.n >= Array.length t.ops then grow t;
  let idx = t.n in
  t.ops.(idx) <- op;
  t.n <- t.n + 1;
  let p =
    if op.Op.index = 0 then -1
    else match Hashtbl.find_opt t.last_of_pid op.Op.pid with Some p -> p | None -> -1
  in
  t.pred.(idx) <- p;
  Hashtbl.replace t.last_of_pid op.Op.pid idx;
  Hashtbl.replace t.by_loc op.Op.loc (idx :: ops_on t op.Op.loc);
  if p >= 0 then add_edge t p idx;
  let found = ref [] in
  if Op.is_write op then begin
    t.source.(idx) <- S_write;
    Hashtbl.replace t.writers op.Op.wid idx;
    (* Resolve readers that arrived before this write: wire their deferred
       reads-from edges, then give each its first real check.  A reader
       that causally precedes its own source is flagged without inserting
       the edge (it would close a cycle) and stays [S_pending] forever —
       its association is part of the cycle, never valid evidence. *)
    (match Hashtbl.find_opt t.pending_rf op.Op.wid with
    | None -> ()
    | Some readers ->
        Hashtbl.remove t.pending_rf op.Op.wid;
        List.iter
          (fun r ->
            if precedes t r idx then begin
              t.checks <- t.checks + 1;
              found :=
                record_violation t r
                  (Some
                     {
                       v_op = t.ops.(r);
                       v_reason =
                         Printf.sprintf "%s reads from its own causal future (%s)"
                           (Op.to_string t.ops.(r))
                           (Wid.to_string op.Op.wid);
                     })
                @ !found
            end
            else begin
              t.source.(r) <- S_resolved idx;
              add_edge t idx r;
              found := record_violation t r (check_read t r) @ !found
            end)
          (List.rev readers));
    (* Then re-check the reads whose earlier clean verdict had to exclude a
       read-from-this-write as evidence: with the write (and any resolved
       edges) in place, the evidence may now be admissible. *)
    match Hashtbl.find_opt t.pending_recheck op.Op.wid with
    | None -> ()
    | Some reads ->
        Hashtbl.remove t.pending_recheck op.Op.wid;
        List.iter
          (fun r ->
            if (not (Hashtbl.mem t.flagged r)) && not (is_pending t r) then
              found := record_violation t r (check_read t r) @ !found)
          (List.sort_uniq compare (List.rev reads))
  end
  else begin
    let wid = op.Op.wid in
    if Wid.is_initial wid then begin
      t.source.(idx) <- S_initial;
      found := record_violation t idx (check_read t idx)
    end
    else
      match Hashtbl.find_opt t.writers wid with
      | Some iw ->
          t.source.(idx) <- S_resolved iw;
          add_edge t iw idx;
          found := record_violation t idx (check_read t idx)
      | None ->
          (* Source not seen yet: defer both the edge and the verdict. *)
          t.source.(idx) <- S_pending wid;
          let waiting =
            match Hashtbl.find_opt t.pending_rf wid with Some l -> l | None -> []
          in
          Hashtbl.replace t.pending_rf wid (idx :: waiting)
  end;
  List.rev !found

(* ------------------------------------------------------------------ *)
(* Object queries (the generalized, spec-legal-return check)           *)
(* ------------------------------------------------------------------ *)

(* Check one object query against the prefix seen so far, sharing
   {!Obj_check.legal} with the post-hoc checker.  The prefix closure is a
   subset of the final one, so [closure(obs)] here under-approximates and
   [may] over-approximates their post-hoc values — every verdict this
   reaches is therefore also a post-hoc violation (same soundness contract
   as [add_op]).  A query whose observed source writes have not all
   arrived is deferred wholesale to the post-hoc check: an unvalidated
   association must not anchor evidence, exactly as for pending reads. *)
let add_query t ~sem ~pid ~observed ~ret =
  t.checks <- t.checks + 1;
  let obj = sem.Obj_check.obj in
  let updates = ref [] in
  for i = 0 to t.n - 1 do
    let o = t.ops.(i) in
    if Op.is_write o then
      match o.Op.loc with
      | Loc.Cell (name, ci, cj) when String.equal name obj ->
          updates :=
            { Obj_check.u_key = i; u_cell = (ci, cj); u_payload = Obj_check.payload o.Op.value }
            :: !updates
      | _ -> ()
  done;
  let anchor = Hashtbl.find_opt t.last_of_pid pid in
  let resolved =
    List.fold_left
      (fun acc (_, wid) ->
        match acc with
        | None -> None
        | Some keys ->
            if Wid.is_initial wid then Some keys
            else (
              match Hashtbl.find_opt t.writers wid with
              | Some iw -> Some (iw :: keys)
              | None -> None))
      (Some []) observed
  in
  match resolved with
  | None -> None (* an observed source is still pending: post-hoc will rule *)
  | Some keys ->
      if Obj_check.legal ~sem ~precedes:(precedes t) ~updates:!updates ~observed:keys ~anchor ~ret
      then None
      else
        Some
          (Printf.sprintf
             "%s query by process %d returned %S, which no causal-past linearization of its \
              observed context produces"
             obj pid ret)
