module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Bitrel = Dsm_util.Bitrel

type violation = { v_op : Op.t; v_reason : string }

(* Where a read's value came from, as far as the checker knows.  A read
   whose source write has not arrived is [S_pending]: its reads-from edge
   is deferred, and crucially its causal association is unvalidated — it
   must not serve as intervening evidence against other reads until the
   write shows up (the write might even close a cycle, making the pending
   read the culprit rather than the evidence).

   Two terminal states exist only under windowing / crash accounting:
   [S_severed] is a read whose association {e was} validated but whose
   source write has since been retired from the window — its verdict
   stands and it remains admissible evidence; [S_dropped] is a pending
   read whose write will never arrive (crashed writer, or the wid sank
   below the stable frontier) — never validated, never evidence, its
   provisional verdict becomes final.  Both are counted in
   {!dropped_reads} when they result from giving a pending read up. *)
type src =
  | S_write
  | S_initial
  | S_resolved of int
  | S_pending of Wid.t
  | S_severed
  | S_dropped

type t = {
  mutable ops : Op.t array; (* capacity-managed; first [n] slots valid *)
  mutable pred : int array; (* program predecessor's global index, -1 if first *)
  mutable source : src array; (* parallel to [ops] *)
  mutable n : int; (* live ops *)
  mutable total : int; (* ops ever added, live + retired *)
  mutable retired : int;
  mutable dropped : int; (* pending reads given up on *)
  window : int option;
  mutable next_compact : int; (* live count that next triggers compaction *)
  mutable closed : Bitrel.t; (* transitively closed over inserted edges *)
  mutable rev : Bitrel.t; (* transpose of [closed]: predecessor rows *)
  (* Compaction scratch (windowed instances only): the arenas rebuilt into
     at each compaction, swapped with the live ones afterwards so steady-
     state compaction allocates nothing. *)
  mutable s_ops : Op.t array;
  mutable s_pred : int array;
  mutable s_source : src array;
  mutable s_closed : Bitrel.t;
  mutable s_rev : Bitrel.t;
  mutable s_keep : bool array;
  mutable s_map : int array;
  mutable s_lid : int array;
  (* The per-op bookkeeping the hot path touches on every single add is
     array-indexed, not hashed: locations are interned to dense ints once
     (the interner is the only hash lookup left per op) and pids index a
     growable array directly.  This also makes compaction's index remap a
     couple of array sweeps instead of five hashtable rebuilds. *)
  mutable lid : int array; (* interned location of each live op, parallel to [ops] *)
  loc_ids : (Loc.t, int) Hashtbl.t; (* location -> dense id; never retired *)
  mutable n_locs : int;
  mutable by_loc : int list array; (* loc id -> live ops on it, newest first *)
  mutable last_of_pid : int array; (* pid -> global index of its latest op, -1 if none *)
  mutable retired_wseq : int array;
      (* node -> highest [Wid.seq] among that node's retired writes, -1 if
         none.  A node's writes carry increasing seqs and arrive in that
         order (program order), so a read naming a seq at or below this
         watermark whose write is not live arrived after its source was
         retired: it is given up on the spot instead of waiting forever in
         [pending_rf] for a write that already came and went. *)
  writers : (Wid.t, int) Hashtbl.t;
  pending_rf : (Wid.t, int list) Hashtbl.t; (* wid -> readers awaiting it *)
  pending_recheck : (Wid.t, int list) Hashtbl.t;
      (* wid -> reads checked clean while a read from wid was excluded as
         evidence; re-checked when the write arrives *)
  flagged : (int, unit) Hashtbl.t; (* reads already reported, by index *)
  mutable violation_log : violation list; (* newest first *)
  mutable first_v : violation option; (* oldest, O(1) *)
  mutable checks : int;
  mutable edges : int;
}

let dummy =
  Op.write ~pid:0 ~index:0 ~loc:(Loc.named "_") ~value:Value.initial
    ~wid:Wid.initial

let create ?window () =
  (match window with
  | Some w when w < 2 -> invalid_arg "Online.create: window must be >= 2"
  | _ -> ());
  {
    ops = Array.make 64 dummy;
    pred = Array.make 64 (-1);
    source = Array.make 64 S_write;
    n = 0;
    total = 0;
    retired = 0;
    dropped = 0;
    window;
    next_compact = (match window with Some w -> 2 * w | None -> max_int);
    closed = Bitrel.create 64;
    rev = Bitrel.create 64;
    s_ops = (if window = None then [||] else Array.make 64 dummy);
    s_pred = (if window = None then [||] else Array.make 64 (-1));
    s_source = (if window = None then [||] else Array.make 64 S_write);
    s_closed = Bitrel.create (if window = None then 0 else 64);
    s_rev = Bitrel.create (if window = None then 0 else 64);
    s_keep = (if window = None then [||] else Array.make 64 false);
    s_map = (if window = None then [||] else Array.make 64 (-1));
    s_lid = (if window = None then [||] else Array.make 64 (-1));
    lid = Array.make 64 (-1);
    loc_ids = Hashtbl.create 16;
    n_locs = 0;
    by_loc = Array.make 16 [];
    last_of_pid = Array.make 16 (-1);
    retired_wseq = Array.make 16 (-1);
    writers = Hashtbl.create 64;
    pending_rf = Hashtbl.create 16;
    pending_recheck = Hashtbl.create 16;
    flagged = Hashtbl.create 16;
    violation_log = [];
    first_v = None;
    checks = 0;
    edges = 0;
  }

let ops_seen t = t.total

let live_ops t = t.n

let retired_ops t = t.retired

let dropped_reads t = t.dropped

let window t = t.window

let pending_reads t = Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.pending_rf 0

let pending_rechecks t =
  Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.pending_recheck 0

let violations t = List.rev t.violation_log

let first_violation t = t.first_v

let checks t = t.checks

let edges t = t.edges

(* Double capacity: the relation is rebuilt by re-adding every closed pair,
   so no re-closure is needed.  Amortised O(n^2) bits over a run — the same
   order as the final relation itself.  (Windowed instances compact before
   they would grow, so their capacity — and closure memory — stays
   O(window^2).) *)
let intern_loc t loc =
  match Hashtbl.find_opt t.loc_ids loc with
  | Some l -> l
  | None ->
      let l = t.n_locs in
      Hashtbl.add t.loc_ids loc l;
      t.n_locs <- l + 1;
      let len = Array.length t.by_loc in
      if l >= len then begin
        let a = Array.make (2 * len) [] in
        Array.blit t.by_loc 0 a 0 len;
        t.by_loc <- a
      end;
      l

let ensure_pid t pid =
  let len = Array.length t.last_of_pid in
  if pid >= len then begin
    let a = Array.make (max (pid + 1) (2 * len)) (-1) in
    Array.blit t.last_of_pid 0 a 0 len;
    t.last_of_pid <- a
  end

let grow t =
  let cap = 2 * Array.length t.ops in
  let ops = Array.make cap dummy in
  Array.blit t.ops 0 ops 0 t.n;
  let pred = Array.make cap (-1) in
  Array.blit t.pred 0 pred 0 t.n;
  let source = Array.make cap S_write in
  Array.blit t.source 0 source 0 t.n;
  let lid = Array.make cap (-1) in
  Array.blit t.lid 0 lid 0 t.n;
  let closed = Bitrel.create cap in
  let rev = Bitrel.create cap in
  for i = 0 to t.n - 1 do
    Bitrel.iter_row t.closed i (fun j ->
        Bitrel.add closed i j;
        Bitrel.add rev j i)
  done;
  t.ops <- ops;
  t.pred <- pred;
  t.source <- source;
  t.lid <- lid;
  t.closed <- closed;
  t.rev <- rev;
  if t.window <> None then begin
    t.s_ops <- Array.make cap dummy;
    t.s_pred <- Array.make cap (-1);
    t.s_source <- Array.make cap S_write;
    t.s_closed <- Bitrel.create cap;
    t.s_rev <- Bitrel.create cap;
    t.s_keep <- Array.make cap false;
    t.s_map <- Array.make cap (-1);
    t.s_lid <- Array.make cap (-1)
  end

(* {2 Window compaction}

   Retire everything below the stable frontier, i.e. all but the newest
   [window] ops — except anchors that later arrivals may still name: each
   pid's latest op (the program-order predecessor of its next op), the
   newest write per location (the likely reads-from target of a late
   read), and still-pending reads.  Anchors are only honoured within two
   further windows below the frontier — an idle pid's last op or a
   location's long-stale newest write eventually retires like anything
   else, which keeps the live set O(window) regardless of how many
   processes or locations the run touches.  Pending reads that {e would}
   retire are given up instead: their write sank below the frontier
   without arriving, so it is treated as never coming ([S_dropped],
   counted).

   Retirement only removes {e evidence} (ops and closure pairs); it can
   suppress a future detection, never manufacture one — the windowed
   checker stays sound, trading completeness for O(window^2) closure
   memory.  Live indices are remapped densely and the closure restricted
   to the survivors, so [add_edge]'s predecessor scan is bounded by the
   live count from here on. *)
(* Record a retired write in the per-node seq watermark (see [retired_wseq]). *)
let note_retired_write t (wid : Wid.t) =
  if (not (Wid.is_initial wid)) && wid.Wid.node >= 0 then begin
    let node = wid.Wid.node in
    let len = Array.length t.retired_wseq in
    if node >= len then begin
      let a = Array.make (max (node + 1) (2 * len)) (-1) in
      Array.blit t.retired_wseq 0 a 0 len;
      t.retired_wseq <- a
    end;
    if wid.Wid.seq > t.retired_wseq.(node) then t.retired_wseq.(node) <- wid.Wid.seq
  end

let compact t w =
  let frontier = t.n - w in
  if frontier > 0 then begin
    let keep = t.s_keep in
    Array.fill keep 0 t.n false;
    for i = frontier to t.n - 1 do
      keep.(i) <- true
    done;
    let cutoff = max 0 (frontier - (2 * w)) in
    Array.iter (fun i -> if i >= cutoff then keep.(i) <- true) t.last_of_pid;
    for l = 0 to t.n_locs - 1 do
      match List.find_opt (fun i -> i >= cutoff && Op.is_write t.ops.(i)) t.by_loc.(l) with
      | Some i -> keep.(i) <- true
      | None -> ()
    done;
    (* Give up retiring pending reads; forget wids with no waiting reader
       left (their deferred rechecks can never gain evidence either). *)
    let rf = Hashtbl.fold (fun wid rs acc -> (wid, rs) :: acc) t.pending_rf [] in
    List.iter
      (fun (wid, readers) ->
        let kept = List.filter (fun r -> keep.(r)) readers in
        t.dropped <- t.dropped + (List.length readers - List.length kept);
        if kept = [] then begin
          Hashtbl.remove t.pending_rf wid;
          Hashtbl.remove t.pending_recheck wid
        end
        else Hashtbl.replace t.pending_rf wid kept)
      rf;
    let map = t.s_map in
    let m = ref 0 in
    for i = 0 to t.n - 1 do
      if keep.(i) then begin
        map.(i) <- !m;
        incr m
      end
      else map.(i) <- -1
    done;
    let n' = !m in
    if n' < t.n then begin
      let ops = t.s_ops in
      let pred = t.s_pred in
      let source = t.s_source in
      let lid = t.s_lid in
      let closed = t.s_closed in
      let rev = t.s_rev in
      for i = 0 to t.n - 1 do
        if keep.(i) then begin
          let j = map.(i) in
          ops.(j) <- t.ops.(i);
          pred.(j) <- (let p = t.pred.(i) in if p >= 0 && keep.(p) then map.(p) else -1);
          source.(j) <-
            (match t.source.(i) with
            | S_resolved iw -> if keep.(iw) then S_resolved map.(iw) else S_severed
            | s -> s);
          lid.(j) <- t.lid.(i);
          Bitrel.remap_row_into t.closed ~src_row:i ~map ~dst:closed ~dst_rev:rev
            ~dst_row:j
        end
        else if Op.is_write t.ops.(i) then note_retired_write t t.ops.(i).Op.wid
      done;
      for p = 0 to Array.length t.last_of_pid - 1 do
        let v = t.last_of_pid.(p) in
        if v >= 0 then t.last_of_pid.(p) <- (if keep.(v) then map.(v) else -1)
      done;
      for l = 0 to t.n_locs - 1 do
        match t.by_loc.(l) with
        | [] -> ()
        | idxs ->
            t.by_loc.(l) <-
              List.filter_map (fun i -> if keep.(i) then Some map.(i) else None) idxs
      done;
      let remap_values tbl =
        let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        Hashtbl.reset tbl;
        List.iter (fun (k, v) -> if keep.(v) then Hashtbl.replace tbl k map.(v)) entries
      in
      remap_values t.writers;
      let flagged = Hashtbl.fold (fun i () acc -> i :: acc) t.flagged [] in
      Hashtbl.reset t.flagged;
      List.iter (fun i -> if keep.(i) then Hashtbl.replace t.flagged map.(i) ()) flagged;
      let remap_lists tbl =
        let entries = Hashtbl.fold (fun k rs acc -> (k, rs) :: acc) tbl [] in
        Hashtbl.reset tbl;
        List.iter
          (fun (k, rs) ->
            match List.filter_map (fun r -> if keep.(r) then Some map.(r) else None) rs with
            | [] -> ()
            | kept -> Hashtbl.replace tbl k kept)
          entries
      in
      remap_lists t.pending_rf;
      remap_lists t.pending_recheck;
      t.retired <- t.retired + (t.n - n');
      t.n <- n';
      (* Swap the rebuilt arenas in; the old ones, cleared, become the next
         compaction's scratch.  (The old op array keeps its stale tail of
         retired Op records until overwritten — bounded by the capacity.) *)
      t.s_ops <- t.ops;
      t.ops <- ops;
      t.s_pred <- t.pred;
      t.pred <- pred;
      t.s_source <- t.source;
      t.source <- source;
      t.s_lid <- t.lid;
      t.lid <- lid;
      Bitrel.clear t.closed;
      Bitrel.clear t.rev;
      t.s_closed <- t.closed;
      t.closed <- closed;
      t.s_rev <- t.rev;
      t.rev <- rev
    end
  end

(* A crashed node's uncertified writes will never arrive: give up the
   reads waiting on them (they stay unvalidated — never evidence, never
   re-checked) and forget the rechecks deferred on those wids.  Keeps
   [pending_rf]/[pending_recheck] bounded across crash faults; if a
   write-ahead-log replay does resurface such a write later, it is simply
   a fresh write — the given-up readers stay given up (a missed detection,
   never a false one). *)
let note_crashed t ~node =
  let doomed =
    Hashtbl.fold
      (fun (w : Wid.t) rs acc -> if w.Wid.node = node then (w, rs) :: acc else acc)
      t.pending_rf []
  in
  List.iter
    (fun (w, rs) ->
      Hashtbl.remove t.pending_rf w;
      Hashtbl.remove t.pending_recheck w;
      List.iter
        (fun r ->
          t.source.(r) <- S_dropped;
          t.dropped <- t.dropped + 1)
        rs)
    doomed

(* Insert u -> v and restore closure.  [closed] stays transitively closed
   and [rev] its transpose, which buys two things: predecessors of [u] are
   enumerated from one transpose row instead of an O(n) column scan, and —
   because closure means every predecessor row already contains row [u] —
   when [v] has no successors of its own (the overwhelmingly common case:
   [v] is the op being appended) each predecessor needs exactly the single
   new bit [v], not a row union.  Full row pushes remain only for the rare
   resolution edge whose target already has successors. *)
let add_edge t u v =
  if not (Bitrel.mem t.closed u v) then begin
    t.edges <- t.edges + 1;
    let v_fresh = Bitrel.row_is_empty t.closed v in
    Bitrel.add t.closed u v;
    Bitrel.union_row_into t.closed ~src:v ~dst:u;
    Bitrel.add t.rev v u;
    Bitrel.union_row_into t.rev ~src:u ~dst:v;
    if v_fresh then
      (* [rev v] already absorbed [rev u] through the union above, and a
         fresh [v] cannot sit in [rev u] (that would make row [v]
         non-empty), so the predecessors need exactly the one new bit. *)
      Bitrel.add_col t.closed ~sel:t.rev ~sel_row:u v
    else begin
      Bitrel.iter_row t.rev u (fun a ->
          if a <> v then Bitrel.union_row_into t.closed ~src:u ~dst:a);
      Bitrel.iter_row t.closed v (fun x ->
          if x <> u then Bitrel.union_row_into t.rev ~src:v ~dst:x)
    end
  end

let precedes t a b = Bitrel.mem t.closed a b

(* a ->* io without io's own reads-from edge: go through the program
   predecessor, exactly as Causality.precedes_excl_rf. *)
let precedes_excl_rf t a ~reader =
  match t.pred.(reader) with
  | -1 -> false
  | p -> a = p || precedes t a p

(* Live ops on the same location as op [i], newest first. *)
let ops_on t i = t.by_loc.(t.lid.(i))

(* Reads whose causal association was never validated: not evidence. *)
let unvalidated t i =
  match t.source.(i) with S_pending _ | S_dropped -> true | _ -> false

(* Mirrors Causal_check.intervenes over the online state, except that reads
   whose reads-from edge is still deferred (or given up) are not admitted
   as evidence: their association is unvalidated until their write arrives
   (it could even turn out to close a causality cycle). *)
let intervenes t ~ops_x ~io ~cand_wid ~cand_idx =
  List.exists
    (fun i'' ->
      i'' <> io
      && (not (unvalidated t i''))
      && (match cand_idx with Some iw -> i'' <> iw | None -> true)
      && (not (Wid.equal t.ops.(i'').Op.wid cand_wid))
      && (match cand_idx with
         | Some iw -> precedes t iw i''
         | None -> true)
      && precedes_excl_rf t i'' ~reader:io)
    ops_x

(* A clean verdict reached while pending reads on the same location were
   excluded as evidence is provisional: re-check [io] when those writes
   arrive.  (A violation verdict never needs a re-check — resolving a
   pending read can only add evidence, never remove any.) *)
let register_rechecks t ~ops_x ~io =
  List.iter
    (fun i'' ->
      if i'' <> io then
        match t.source.(i'') with
        | S_pending w ->
            let waiting =
              match Hashtbl.find_opt t.pending_recheck w with Some l -> l | None -> []
            in
            Hashtbl.replace t.pending_recheck w (io :: waiting)
        | S_write | S_initial | S_resolved _ | S_severed | S_dropped -> ())
    ops_x

(* Is the value the read at [io] returned live for it (Definition 1),
   given the prefix seen so far?  The read's source must be resolved
   ([S_initial] or [S_resolved]) before it can be checked; severed or
   given-up reads keep their existing verdict. *)
let check_read t io =
  t.checks <- t.checks + 1;
  let o = t.ops.(io) in
  let ops_x = ops_on t io in
  let bad reason = Some { v_op = o; v_reason = reason } in
  let verdict =
    match t.source.(io) with
    | S_initial ->
        if intervenes t ~ops_x ~io ~cand_wid:Wid.initial ~cand_idx:None then
          bad
            (Printf.sprintf "%s returned the initial value, but a later write to %s already precedes it"
               (Op.to_string o) (Loc.to_string o.Op.loc))
        else None
    | S_resolved iw ->
        if precedes_excl_rf t iw ~reader:io then
          if intervenes t ~ops_x ~io ~cand_wid:o.Op.wid ~cand_idx:(Some iw) then
            bad
              (Printf.sprintf "%s returned %s (from %s), already overwritten for this read"
                 (Op.to_string o)
                 (Value.to_string o.Op.value)
                 (Wid.to_string o.Op.wid))
          else None
        else if precedes t io iw then
          bad
            (Printf.sprintf "%s reads from its own causal future (%s)"
               (Op.to_string o) (Wid.to_string o.Op.wid))
        else (* concurrent with its source: always live *) None
    | S_severed | S_dropped -> None
    | S_write | S_pending _ -> assert false
  in
  if verdict = None then register_rechecks t ~ops_x ~io;
  verdict

let record_violation t idx = function
  | None -> []
  | Some v ->
      if Hashtbl.mem t.flagged idx then []
      else begin
        Hashtbl.replace t.flagged idx ();
        t.violation_log <- v :: t.violation_log;
        if t.first_v = None then t.first_v <- Some v;
        [ v ]
      end

let add_op t (op : Op.t) =
  (match t.window with
  | Some w when t.n >= t.next_compact ->
      compact t w;
      (* The keep-set's anchors (pid-latest, newest write per location,
         pending reads) can hold the live count above [2w]; re-arm a full
         window out from wherever compaction landed so a saturated keep-set
         cannot re-trigger the O(live^2) rebuild on every append. *)
      t.next_compact <- max (2 * w) (t.n + w)
  | _ -> ());
  if t.n >= Array.length t.ops then grow t;
  let idx = t.n in
  t.ops.(idx) <- op;
  t.n <- t.n + 1;
  t.total <- t.total + 1;
  let l = intern_loc t op.Op.loc in
  t.lid.(idx) <- l;
  let pid = op.Op.pid in
  ensure_pid t pid;
  let p = if op.Op.index = 0 then -1 else t.last_of_pid.(pid) in
  t.pred.(idx) <- p;
  t.last_of_pid.(pid) <- idx;
  t.by_loc.(l) <- idx :: t.by_loc.(l);
  if p >= 0 then add_edge t p idx;
  let found = ref [] in
  if Op.is_write op then begin
    t.source.(idx) <- S_write;
    Hashtbl.replace t.writers op.Op.wid idx;
    (* Resolve readers that arrived before this write: wire their deferred
       reads-from edges, then give each its first real check.  A reader
       that causally precedes its own source is flagged without inserting
       the edge (it would close a cycle) and stays [S_pending] forever —
       its association is part of the cycle, never valid evidence.

       The no-cycle check is only {e conclusive} while nothing has ever
       been retired or dropped: the closure is then complete, so a clean
       answer really means no cycle.  Once evidence has been severed the
       path from the reader to this write may simply have been forgotten —
       inserting the edge on a stale answer would assert causality that
       runs backward through a real cycle, and every pair derived from it
       would be an invented fact (the one way a windowed checker could
       manufacture a violation on its own).  So past that point waiting
       readers are given up instead, exactly like readers whose write sank
       below the frontier. *)
    (match Hashtbl.find_opt t.pending_rf op.Op.wid with
    | None -> ()
    | Some readers ->
        Hashtbl.remove t.pending_rf op.Op.wid;
        let conclusive = t.retired = 0 && t.dropped = 0 in
        List.iter
          (fun r ->
            if precedes t r idx then begin
              t.checks <- t.checks + 1;
              found :=
                record_violation t r
                  (Some
                     {
                       v_op = t.ops.(r);
                       v_reason =
                         Printf.sprintf "%s reads from its own causal future (%s)"
                           (Op.to_string t.ops.(r))
                           (Wid.to_string op.Op.wid);
                     })
                @ !found
            end
            else if not conclusive then begin
              t.source.(r) <- S_dropped;
              t.dropped <- t.dropped + 1
            end
            else begin
              t.source.(r) <- S_resolved idx;
              add_edge t idx r;
              found := record_violation t r (check_read t r) @ !found
            end)
          (List.rev readers));
    (* Then re-check the reads whose earlier clean verdict had to exclude a
       read-from-this-write as evidence: with the write (and any resolved
       edges) in place, the evidence may now be admissible. *)
    match Hashtbl.find_opt t.pending_recheck op.Op.wid with
    | None -> ()
    | Some reads ->
        Hashtbl.remove t.pending_recheck op.Op.wid;
        List.iter
          (fun r ->
            if (not (Hashtbl.mem t.flagged r)) && not (unvalidated t r) then
              found := record_violation t r (check_read t r) @ !found)
          (List.sort_uniq compare (List.rev reads))
  end
  else begin (* read *)
    let wid = op.Op.wid in
    if Wid.is_initial wid then begin
      t.source.(idx) <- S_initial;
      found := record_violation t idx (check_read t idx)
    end
    else
      match Hashtbl.find_opt t.writers wid with
      | Some iw ->
          t.source.(idx) <- S_resolved iw;
          add_edge t iw idx;
          found := record_violation t idx (check_read t idx)
      | None ->
          let already_retired =
            wid.Wid.node >= 0
            && wid.Wid.node < Array.length t.retired_wseq
            && wid.Wid.seq <= t.retired_wseq.(wid.Wid.node)
          in
          if already_retired then begin
            (* The source write arrived long ago and has been retired below
               the window frontier — the read showed up too late to ever be
               validated.  Give it up now rather than leaving it in
               [pending_rf] waiting for a write that already came and went.
               (Even if the watermark were wrong this is safe: a dropped
               read is never evidence and its provisional verdict stands —
               a possible missed detection, never a false one.) *)
            t.source.(idx) <- S_dropped;
            t.dropped <- t.dropped + 1
          end
          else begin
            (* Source not seen yet: defer both the edge and the verdict. *)
            t.source.(idx) <- S_pending wid;
            let waiting =
              match Hashtbl.find_opt t.pending_rf wid with Some l -> l | None -> []
            in
            Hashtbl.replace t.pending_rf wid (idx :: waiting)
          end
  end;
  List.rev !found

(* ------------------------------------------------------------------ *)
(* Object queries (the generalized, spec-legal-return check)           *)
(* ------------------------------------------------------------------ *)

(* Check one object query against the prefix seen so far, sharing
   {!Obj_check.legal} with the post-hoc checker.  The prefix closure is a
   subset of the final one, so [closure(obs)] here under-approximates and
   [may] over-approximates their post-hoc values — every verdict this
   reaches is therefore also a post-hoc violation (same soundness contract
   as [add_op]).  A query whose observed source writes have not all
   arrived is deferred wholesale to the post-hoc check: an unvalidated
   association must not anchor evidence, exactly as for pending reads.
   Once windowing has retired anything, queries defer entirely — a missing
   update could otherwise make a legal return look impossible (the one
   place where losing evidence would flip a verdict the wrong way). *)
let add_query t ~sem ~pid ~observed ~ret =
  if t.retired > 0 then None
  else begin
    t.checks <- t.checks + 1;
    let obj = sem.Obj_check.obj in
    let updates = ref [] in
    for i = 0 to t.n - 1 do
      let o = t.ops.(i) in
      if Op.is_write o then
        match o.Op.loc with
        | Loc.Cell (name, ci, cj) when String.equal name obj ->
            updates :=
              { Obj_check.u_key = i; u_cell = (ci, cj); u_payload = Obj_check.payload o.Op.value }
              :: !updates
        | _ -> ()
    done;
    let anchor =
      if pid >= 0 && pid < Array.length t.last_of_pid && t.last_of_pid.(pid) >= 0 then
        Some t.last_of_pid.(pid)
      else None
    in
    let resolved =
      List.fold_left
        (fun acc (_, wid) ->
          match acc with
          | None -> None
          | Some keys ->
              if Wid.is_initial wid then Some keys
              else (
                match Hashtbl.find_opt t.writers wid with
                | Some iw -> Some (iw :: keys)
                | None -> None))
        (Some []) observed
    in
    match resolved with
    | None -> None (* an observed source is still pending: post-hoc will rule *)
    | Some keys ->
        if
          Obj_check.legal ~sem ~precedes:(precedes t) ~updates:!updates ~observed:keys ~anchor
            ~ret
        then None
        else
          Some
            (Printf.sprintf
               "%s query by process %d returned %S, which no causal-past linearization of its \
                observed context produces"
               obj pid ret)
  end
