module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Bitrel = Dsm_util.Bitrel

type violation = { v_op : Op.t; v_reason : string }

type t = {
  mutable ops : Op.t array; (* capacity-managed; first [n] slots valid *)
  mutable pred : int array; (* program predecessor's global index, -1 if first *)
  mutable n : int;
  mutable closed : Bitrel.t; (* transitively closed over inserted edges *)
  last_of_pid : (int, int) Hashtbl.t; (* pid -> global index of its latest op *)
  writers : (Wid.t, int) Hashtbl.t;
  pending_rf : (Wid.t, int list) Hashtbl.t; (* wid -> readers awaiting it *)
  by_loc : (Loc.t, int list) Hashtbl.t; (* ops on a location, newest first *)
  mutable violation_log : violation list; (* newest first *)
  mutable checks : int;
  mutable edges : int;
}

let dummy =
  Op.write ~pid:0 ~index:0 ~loc:(Loc.named "_") ~value:Value.initial
    ~wid:Wid.initial

let create () =
  {
    ops = Array.make 64 dummy;
    pred = Array.make 64 (-1);
    n = 0;
    closed = Bitrel.create 64;
    last_of_pid = Hashtbl.create 16;
    writers = Hashtbl.create 64;
    pending_rf = Hashtbl.create 16;
    by_loc = Hashtbl.create 16;
    violation_log = [];
    checks = 0;
    edges = 0;
  }

let ops_seen t = t.n

let pending_reads t = Hashtbl.fold (fun _ rs acc -> acc + List.length rs) t.pending_rf 0

let violations t = List.rev t.violation_log

let first_violation t =
  match List.rev t.violation_log with [] -> None | v :: _ -> Some v

let checks t = t.checks

let edges t = t.edges

(* Double capacity: the relation is rebuilt by re-adding every closed pair,
   so no re-closure is needed.  Amortised O(n^2) bits over a run — the same
   order as the final relation itself. *)
let grow t =
  let cap = 2 * Array.length t.ops in
  let ops = Array.make cap dummy in
  Array.blit t.ops 0 ops 0 t.n;
  let pred = Array.make cap (-1) in
  Array.blit t.pred 0 pred 0 t.n;
  let closed = Bitrel.create cap in
  for i = 0 to t.n - 1 do
    List.iter (fun j -> Bitrel.add closed i j) (Bitrel.successors t.closed i)
  done;
  t.ops <- ops;
  t.pred <- pred;
  t.closed <- closed

(* Insert u -> v and restore closure: row u absorbs {v} + row v, then every
   predecessor of u absorbs the updated row u.  One O(n) scan of mem bits
   plus word-wise row ORs — no global re-closure. *)
let add_edge t u v =
  if not (Bitrel.mem t.closed u v) then begin
    t.edges <- t.edges + 1;
    Bitrel.add t.closed u v;
    Bitrel.union_row_into t.closed ~src:v ~dst:u;
    for a = 0 to t.n - 1 do
      if a <> u && Bitrel.mem t.closed a u then
        Bitrel.union_row_into t.closed ~src:u ~dst:a
    done
  end

let precedes t a b = Bitrel.mem t.closed a b

(* a ->* io without io's own reads-from edge: go through the program
   predecessor, exactly as Causality.precedes_excl_rf. *)
let precedes_excl_rf t a ~reader =
  match t.pred.(reader) with
  | -1 -> false
  | p -> a = p || precedes t a p

let ops_on t loc = match Hashtbl.find_opt t.by_loc loc with Some l -> l | None -> []

(* Mirrors Causal_check.intervenes over the online state. *)
let intervenes t ~ops_x ~io ~cand_wid ~cand_idx =
  List.exists
    (fun i'' ->
      i'' <> io
      && (match cand_idx with Some iw -> i'' <> iw | None -> true)
      && (not (Wid.equal t.ops.(i'').Op.wid cand_wid))
      && (match cand_idx with
         | Some iw -> precedes t iw i''
         | None -> true)
      && precedes_excl_rf t i'' ~reader:io)
    ops_x

(* Is the value the read at [io] returned live for it (Definition 1),
   given the prefix seen so far?  [source] is the global index of the
   read's source write ([None] for the initial value). *)
let check_read t io ~source =
  t.checks <- t.checks + 1;
  let o = t.ops.(io) in
  let ops_x = ops_on t o.Op.loc in
  let bad reason = Some { v_op = o; v_reason = reason } in
  match source with
  | None ->
      if intervenes t ~ops_x ~io ~cand_wid:Wid.initial ~cand_idx:None then
        bad
          (Printf.sprintf "%s returned the initial value, but a later write to %s already precedes it"
             (Op.to_string o) (Loc.to_string o.Op.loc))
      else None
  | Some iw ->
      if precedes_excl_rf t iw ~reader:io then
        if intervenes t ~ops_x ~io ~cand_wid:o.Op.wid ~cand_idx:(Some iw) then
          bad
            (Printf.sprintf "%s returned %s (from %s), already overwritten for this read"
               (Op.to_string o)
               (Value.to_string o.Op.value)
               (Wid.to_string o.Op.wid))
        else None
      else if precedes t io iw then
        bad
          (Printf.sprintf "%s reads from its own causal future (%s)"
             (Op.to_string o) (Wid.to_string o.Op.wid))
      else (* concurrent with its source: always live *) None

let record_violation t = function
  | None -> []
  | Some v ->
      t.violation_log <- v :: t.violation_log;
      [ v ]

let add_op t (op : Op.t) =
  if t.n >= Array.length t.ops then grow t;
  let idx = t.n in
  t.ops.(idx) <- op;
  t.n <- t.n + 1;
  let p =
    if op.Op.index = 0 then -1
    else match Hashtbl.find_opt t.last_of_pid op.Op.pid with Some p -> p | None -> -1
  in
  t.pred.(idx) <- p;
  Hashtbl.replace t.last_of_pid op.Op.pid idx;
  Hashtbl.replace t.by_loc op.Op.loc (idx :: ops_on t op.Op.loc);
  if p >= 0 then add_edge t p idx;
  let found = ref [] in
  if Op.is_write op then begin
    Hashtbl.replace t.writers op.Op.wid idx;
    (* Resolve readers that arrived before this write: wire their deferred
       reads-from edges, then give each its first real check.  A reader
       that causally precedes its own source is flagged without inserting
       the edge (it would close a cycle). *)
    match Hashtbl.find_opt t.pending_rf op.Op.wid with
    | None -> ()
    | Some readers ->
        Hashtbl.remove t.pending_rf op.Op.wid;
        List.iter
          (fun r ->
            if precedes t r idx then begin
              t.checks <- t.checks + 1;
              found :=
                record_violation t
                  (Some
                     {
                       v_op = t.ops.(r);
                       v_reason =
                         Printf.sprintf "%s reads from its own causal future (%s)"
                           (Op.to_string t.ops.(r))
                           (Wid.to_string op.Op.wid);
                     })
                @ !found
            end
            else begin
              add_edge t idx r;
              found := record_violation t (check_read t r ~source:(Some idx)) @ !found
            end)
          (List.rev readers)
  end
  else begin
    let wid = op.Op.wid in
    if Wid.is_initial wid then
      found := record_violation t (check_read t idx ~source:None)
    else
      match Hashtbl.find_opt t.writers wid with
      | Some iw ->
          add_edge t iw idx;
          found := record_violation t (check_read t idx ~source:(Some iw))
      | None ->
          (* Source not seen yet: defer both the edge and the verdict. *)
          let waiting =
            match Hashtbl.find_opt t.pending_rf wid with Some l -> l | None -> []
          in
          Hashtbl.replace t.pending_rf wid (idx :: waiting)
  end;
  List.rev !found
