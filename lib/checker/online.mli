(** Online causal checking: feed operations to the checker as they complete.

    {!Causal_check} is post-hoc — it needs the whole execution before it can
    say anything, so a chaos run only learns it violated causality after the
    workload finishes.  This module maintains the causality graph
    {e incrementally}: each completed operation is appended with
    {!add_op}, its program-order and reads-from edges are inserted into an
    incrementally-closed reachability relation, and reads are checked
    against Definition 1's live set the moment their source write is known.
    A violating run is flagged at the first bad read instead of at the end.

    {b Arrival order.}  Operations must arrive in per-process program order
    (each pid's [index] increasing by one), which is what a sequential
    process naturally produces; across processes any interleaving is fine.
    A read may arrive before the write it read from — its reads-from edge
    is deferred, and the read is checked as soon as the write shows up.

    {b Guarantees.}  Every violation this checker reports is a real
    violation of the prefix seen so far (same [alpha]/liveness logic as
    {!Causal_check}).  The converse is weaker: an edge that arrives later
    can retroactively kill a candidate that looked live when a read was
    checked, so a clean online run is necessary but not sufficient — the
    post-hoc {!Causal_check.check} over the full history remains the
    authoritative verdict and chaos still runs it at the end.

    {b Cost.}  [add_op] is [O(n)] bitset-row unions per inserted edge (the
    predecessor scan of the incremental closure) plus one live-set check
    per read, against [O(n^2)] to rebuild and re-close the whole relation;
    {!checks} and {!edges} expose the work done for the cost accounting in
    docs/CHECKERS.md. *)

type violation = {
  v_op : Dsm_memory.Op.t;  (** the read that returned a non-live value *)
  v_reason : string;
}

type t

val create : unit -> t

val add_op : t -> Dsm_memory.Op.t -> violation list
(** Append one completed operation.  Returns the violations {e newly}
    discovered — the op itself if it is an illegal read, plus any deferred
    reads this write resolved to an illegal verdict.  An empty list means
    nothing new is known to be wrong. *)

val ops_seen : t -> int

val pending_reads : t -> int
(** Reads still waiting for their source write to arrive.  Nonzero at the
    end of a run means a dangling reads-from — the post-hoc checker will
    reject the history outright. *)

val violations : t -> violation list
(** All violations found so far, oldest first. *)

val first_violation : t -> violation option

val checks : t -> int
(** Read live-set checks performed (including deferred re-checks). *)

val edges : t -> int
(** Causality edges inserted into the incremental closure. *)

val add_query :
  t ->
  sem:Obj_check.sem ->
  pid:int ->
  observed:(Dsm_memory.Loc.t * Dsm_memory.Wid.t) list ->
  ret:string ->
  string option
(** Check one object query against the prefix seen so far: the
    generalization of this checker from reads-from over registers to
    spec-legal return values.  [observed] is the query's latest probe
    source per cell, [ret] the folded return the client produced; legality
    is {!Obj_check.legal} over the incremental closure, anchored at the
    querying process's latest operation.  Returns the violation reason, or
    [None] when the return is legal on this prefix (or when an observed
    source write has not arrived yet — such a query defers wholesale to
    the post-hoc {!Obj_check.check}, which remains authoritative).
    Queries are checked statelessly: they insert no operation and no
    edges. *)
