(** Online causal checking: feed operations to the checker as they complete.

    {!Causal_check} is post-hoc — it needs the whole execution before it can
    say anything, so a chaos run only learns it violated causality after the
    workload finishes.  This module maintains the causality graph
    {e incrementally}: each completed operation is appended with
    {!add_op}, its program-order and reads-from edges are inserted into an
    incrementally-closed reachability relation, and reads are checked
    against Definition 1's live set the moment their source write is known.
    A violating run is flagged at the first bad read instead of at the end.

    {b Arrival order.}  Operations must arrive in per-process program order
    (each pid's [index] increasing by one), which is what a sequential
    process naturally produces; across processes any interleaving is fine.
    A read may arrive before the write it read from — its reads-from edge
    is deferred, and the read is checked as soon as the write shows up.

    {b Guarantees.}  Every violation this checker reports is a real
    violation of the prefix seen so far (same [alpha]/liveness logic as
    {!Causal_check}).  The converse is weaker: an edge that arrives later
    can retroactively kill a candidate that looked live when a read was
    checked, so a clean online run is necessary but not sufficient — the
    post-hoc {!Causal_check.check} over the full history remains the
    authoritative verdict and chaos still runs it at the end.

    {b Windowing.}  By default the checker keeps every operation forever:
    the closure is O(n^2) bits and an unbounded run leaks without bound.
    [create ~window:w] bounds it: once the live set reaches [2w], every op
    below the stable frontier (all but the newest [w]) is retired, except
    anchors later arrivals may still name — each pid's latest op, the
    newest write per location, and still-pending reads.  A pending read
    whose source sank below the frontier is {e given up}: its write is
    treated as never coming, the read stays unvalidated (never evidence),
    and {!dropped_reads} counts it.

    Soundness needs one further rule: a late write's waiting readers are
    resolved — reads-from edge wired, verdict issued — only while nothing
    has ever been retired or dropped.  Past that point the no-cycle check
    behind the edge insertion is inconclusive (the path from reader to
    write may have been forgotten), and inserting on a stale answer would
    manufacture causality, the one way retirement could {e invent} a
    violation rather than merely miss one.  Such readers are given up like
    any other dropped read.  With that rule the closure is always a subset
    of true causality, so every reported violation is real — the checker
    trades completeness (violations whose evidence spans more than the
    window can be missed) for O(window^2) closure memory regardless of run
    length.

    {b Cost.}  [add_op] is [O(live)] bitset-row unions per inserted edge
    (the predecessor scan of the incremental closure) plus one live-set
    check per read, against [O(n^2)] to rebuild and re-close the whole
    relation; {!checks} and {!edges} expose the work done for the cost
    accounting in docs/CHECKERS.md.  Compaction is O(window^2) and
    amortises to O(window) per op. *)

type violation = {
  v_op : Dsm_memory.Op.t;  (** the read that returned a non-live value *)
  v_reason : string;
}

type t

val create : ?window:int -> unit -> t
(** [window], when given, must be at least 2; omitted means unbounded. *)

val add_op : t -> Dsm_memory.Op.t -> violation list
(** Append one completed operation.  Returns the violations {e newly}
    discovered — the op itself if it is an illegal read, plus any deferred
    reads this write resolved to an illegal verdict.  An empty list means
    nothing new is known to be wrong. *)

val ops_seen : t -> int
(** Total operations ever added, including retired ones. *)

val live_ops : t -> int
(** Operations currently held ([ops_seen] minus retired); bounded by
    roughly [2 * window] plus the anchor set when windowed. *)

val retired_ops : t -> int
(** Operations compacted away by windowing. *)

val pending_reads : t -> int
(** Reads still waiting for their source write to arrive.  Nonzero at the
    end of a run means a dangling reads-from — the post-hoc checker will
    reject the history outright. *)

val dropped_reads : t -> int
(** Pending reads given up on — source write retired below the window
    frontier, declared dead by {!note_crashed}, arrived too late for a
    conclusive cycle check (see the windowing notes above), or the read
    itself arrived after its source write had already been retired (a
    per-node seq watermark over retired writes detects this, so a late
    read is dropped on arrival instead of pending forever).  Each is a
    reads-from edge the checker could not validate: its provisional
    verdict stands (a possible missed detection, never a false one). *)

val pending_rechecks : t -> int
(** Provisional clean verdicts registered for re-checking when a pending
    source write arrives.  Bounded alongside {!pending_reads}: giving up a
    wid forgets its rechecks too. *)

val window : t -> int option

val note_crashed : t -> node:int -> unit
(** Declare that [node] crashed: writes it issued but never certified will
    never arrive.  Every read pending on a wid of that node is given up
    (counted in {!dropped_reads}) and its deferred rechecks are forgotten,
    so a crash-heavy run cannot leak pending state.  If a recovered node
    later re-announces such a write (write-ahead-log replay), it is simply
    treated as a fresh write — given-up readers stay given up. *)

val violations : t -> violation list
(** All violations found so far, oldest first. *)

val first_violation : t -> violation option
(** The oldest violation, O(1). *)

val checks : t -> int
(** Read live-set checks performed (including deferred re-checks). *)

val edges : t -> int
(** Causality edges inserted into the incremental closure. *)

val add_query :
  t ->
  sem:Obj_check.sem ->
  pid:int ->
  observed:(Dsm_memory.Loc.t * Dsm_memory.Wid.t) list ->
  ret:string ->
  string option
(** Check one object query against the prefix seen so far: the
    generalization of this checker from reads-from over registers to
    spec-legal return values.  [observed] is the query's latest probe
    source per cell, [ret] the folded return the client produced; legality
    is {!Obj_check.legal} over the incremental closure, anchored at the
    querying process's latest operation.  Returns the violation reason, or
    [None] when the return is legal on this prefix (or when an observed
    source write has not arrived yet — such a query defers wholesale to
    the post-hoc {!Obj_check.check}, which remains authoritative).
    Queries are checked statelessly: they insert no operation and no
    edges.  Once windowing has retired any operation, queries always defer
    to the post-hoc check — a retired update could otherwise make a legal
    return look impossible. *)
