(** Checkers for the stronger and weaker consistency conditions around
    causal memory, used to place executions in the consistency hierarchy
    (atomic/SC ⊂ causal ⊂ PRAM ⊂ slow).

    Sequential consistency is decided by an explicit-state search over
    interleavings (memoised on (positions, store) states) — exponential in
    the worst case, so intended for the small histories the experiments
    classify.  PRAM and slow memory are decided by the classic reductions:

    - PRAM: for each process [i], the sub-history containing {e all} of
      [i]'s operations but only the {e writes} of everyone else must be
      sequentially consistent (every process sees all writes in an order
      consistent with program order).
    - Slow memory: the same, but additionally restricted to one location at
      a time.
    - Coherence (per-location SC): all operations, restricted to one
      location at a time. *)

val is_sc : Dsm_memory.History.t -> bool

val sc_witness : Dsm_memory.History.t -> Dsm_memory.Op.t list option
(** A legal total order (interleaving) when one exists. *)

val is_pram : Dsm_memory.History.t -> bool

val is_slow : Dsm_memory.History.t -> bool

val is_coherent : Dsm_memory.History.t -> bool

type classification = {
  causal : bool;
  sc : bool;
  pram : bool;
  slow : bool;
  coherent : bool;
}

val classify : Dsm_memory.History.t -> classification

val pp_classification : Format.formatter -> classification -> unit
