(** ASCII space-time diagrams of execution histories.

    One column per process, one row per operation, rows in a causal
    (topological) order so an operation never appears above something in its
    causal past.  Writes are tagged [\[a\]], [\[b\]], ...; each read shows
    the tag of the write it reads from ([<-\[a\]], or [<-init] for the
    virtual initial write), making the reads-from relation visible at a
    glance:

    {v
        P1               P2
    1   w(x)1 [a]
    2                    r(x)1 <-[a]
    3                    w(y)2 [b]
    v} *)

val render : Dsm_memory.History.t -> string
(** Cyclic (malformed) histories fall back to program-order rows with a
    warning line. *)

val print : Dsm_memory.History.t -> unit
