(** The four session guarantees (Terry et al.) as definitional checkers.

    Follow-on work on causal stores decomposes causal consistency into
    PRAM plus these per-session guarantees; checking them separately shows
    {e which} promise an execution breaks.  All four are implied by the
    paper's (strict) causal memory — the property tests confirm every
    protocol history satisfies them — while the converse fails: Figure 3's
    broadcast anomaly satisfies all four and still violates causal memory,
    which is precisely why the paper needs its stronger live-set definition.

    Writes are unique and the reads-from relation explicit, so each
    guarantee is a direct graph query over {!Causality}; ≺ below is the
    causal order, and the virtual initial write precedes every real one. *)

type report = {
  ryw : bool;  (** read-your-writes: a process never reads a value causally
                   older than its own earlier write to that location *)
  mr : bool;  (** monotonic reads: successive reads of a location never go
                  causally backwards *)
  mw : bool;  (** monotonic writes: two same-process writes to a location
                  are never observed in reverse order by any one process *)
  wfr : bool;  (** writes-follow-reads: observing a write implies never
                   subsequently reading, at the location that write's author
                   had read, a value causally older than what the author saw *)
}

val all_hold : report -> bool

val check : Dsm_memory.History.t -> (report, string) result
(** [Error] on malformed histories (dangling reads-from). *)

val check_exn : Dsm_memory.History.t -> report

val pp : Format.formatter -> report -> unit
