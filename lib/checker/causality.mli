(** The potential-causality relation of an execution history (Section 2).

    Operations are numbered globally; the relation [->] is the union of
    program order (consecutive operations of one process) and reads-from
    (a read is causally after the write it reads from); [->*] is its
    transitive closure, computed once over the whole history.

    The paper's α(o) definition excludes "the reads-from ordering established
    by o itself".  Because a read's only incoming edges are its program
    predecessor and its reads-from edge, reachability-minus-that-edge reduces
    to reachability to the program predecessor, which {!precedes_excl_rf}
    exploits; the naive checker re-closes the graph per read to validate this
    reduction. *)

type t

val build : Dsm_memory.History.t -> (t, string) result
(** Fails when a read's reads-from identity matches no write in the
    history. *)

val build_exn : Dsm_memory.History.t -> t

val op_count : t -> int

val op : t -> int -> Dsm_memory.Op.t
(** Global index to operation. *)

val index_of : t -> Dsm_memory.Op.t -> int
(** Inverse of [op] (by pid/index position). *)

val writer_of : t -> Dsm_memory.Wid.t -> int option
(** Global index of the write with this identity; [None] for the virtual
    initial write. *)

val precedes : t -> int -> int -> bool
(** [precedes t a b] iff [a ->* b] (strict: [precedes t a a = false] unless
    the history is cyclic). *)

val concurrent : t -> int -> int -> bool
(** Neither precedes the other (and [a <> b]). *)

val program_pred : t -> int -> int option
(** The immediately preceding operation of the same process. *)

val precedes_excl_rf : t -> int -> reader:int -> bool
(** [precedes_excl_rf t a ~reader] iff [a ->* reader] in the relation with
    [reader]'s own reads-from edge removed. *)

val writes_to : t -> Dsm_memory.Loc.t -> int list
(** Global indices of all (real) writes to the location, ascending. *)

val ops_on : t -> Dsm_memory.Loc.t -> int list
(** Global indices of all operations on the location, ascending. *)

val acyclic : t -> bool
(** True when no operation causally precedes itself (protocol histories
    always are; adversarial parsed histories may not be). *)

val relation : t -> Dsm_util.Bitrel.t
(** The closed relation itself (read-only use; for tests and the naive
    checker). *)

val shortest_path : t -> int -> int -> int list option
(** [shortest_path t a b] is a minimal-length chain
    [a = o_1 -> o_2 -> ... -> o_k = b] of direct program-order/reads-from
    edges witnessing [a ->* b]; [None] when [b] is unreachable.  Used to
    explain checker verdicts with concrete causal chains. *)

val edge_kind : t -> int -> int -> [ `Program_order | `Reads_from | `None ]
(** How two operations are {e directly} related (for rendering chains). *)
