(** Causal checking for arbitrary objects over sequential specifications.

    The registers of {!Causal_check} carry no semantics: a read is checked
    against the identity of the write it returned.  Objects built on top of
    the memory (counters, sets, queues — see [lib/objects]) store their
    updates as opaque payloads in per-writer op-log cells
    [Loc.Cell (obj, writer, k)] and answer {e queries} by folding the
    payloads a client observed.  This module checks those folds: a query
    return is legal iff {e some causal-past linearization of the query's
    observed context produces it} (Mostéfaoui-Perrin-Raynal's causal
    consistency for objects, bounded following Bouajjani et al.).

    Concretely, a query with observation set [obs] and return [ret] is
    legal iff there is an update set [S] with [closure(obs) ⊆ S ⊆ may] —
    [closure] adding every causal prerequisite of an observed update, [may]
    excluding updates causally after the query's anchor — such that [S] is
    downward-closed and a causal-order-consistent linearization of [S]
    folds to [ret].  Register-level staleness stays {!Causal_check}'s
    department; the object layer adds cross-cell closure and merge
    correctness (a fold must not drop an update it observed).

    Verdicts are conservative: past {!max_extras} candidate concurrent
    updates, or when an order-sensitive fold exhausts its linearization
    budget, the query is declared legal rather than mis-flagged.  Both
    {!Online.add_query} (incremental, prefix-closed) and the post-hoc
    {!check} here share {!legal}, so the two layers cannot disagree on the
    rule itself. *)

type sem = {
  obj : string;  (** the object family: the [Loc.Cell] name its cells use *)
  fold : string list -> string;
      (** apply encoded updates, in linearization order, to the spec's
          initial state and render the query return *)
  order_sensitive : bool;
      (** [false] when every linearization of a set folds equally
          (commutative specs): the checker then tries each candidate set
          once, in canonical cell order *)
}

type update = {
  u_key : int;  (** caller's graph index (online index or causality index) *)
  u_cell : int * int;  (** [(writer, k)] — the canonical fold tie-break *)
  u_payload : string;
}

type query = {
  q_pid : int;
  q_obj : string;
  q_ret : string;
  q_anchor : int;
      (** program index of the querying process's last operation at query
          time ([-1] when the query ran before any operation) *)
  q_observed : (Dsm_memory.Loc.t * Dsm_memory.Wid.t) list option;
      (** the latest probe's source per cell, when the client recorded
          them; [None] reconstructs the probes from the history *)
}

type violation = { v_query : query; v_reason : string }

val max_extras : int

val max_linearizations : int

val payload : Dsm_memory.Value.t -> string
(** The encoded update a stored value carries ([Str] payloads verbatim). *)

val legal :
  sem:sem ->
  precedes:(int -> int -> bool) ->
  updates:update list ->
  observed:int list ->
  anchor:int option ->
  ret:string ->
  bool
(** The shared legality core, generic over the caller's causal order:
    [updates] are every update of the family, [observed] the keys of the
    updates the query's probes returned, [anchor] the key of the querying
    process's last operation.  Conservative [true] beyond the search
    bounds. *)

val check :
  lookup:(string -> sem option) ->
  Dsm_memory.History.t ->
  query list ->
  violation list
(** Post-hoc verdicts over a complete history (the object-level
    counterpart of {!Causal_check.check}); a malformed history flags every
    query.  [lookup] resolves a family name to its semantics — pass the
    object registry's finder. *)

val is_correct :
  lookup:(string -> sem option) -> Dsm_memory.History.t -> query list -> bool
