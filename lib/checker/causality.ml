module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module History = Dsm_memory.History
module Bitrel = Dsm_util.Bitrel

type t = {
  ops : Op.t array; (* global index -> op *)
  first_of_pid : int array; (* global index of each process's first op *)
  writers : (Wid.t, int) Hashtbl.t; (* write identity -> global index *)
  closed : Bitrel.t; (* ->* over all edges *)
  adjacency : int list array; (* direct successors (program order + reads-from) *)
}

let flatten history =
  let rows = (history : History.t :> Op.t array array) in
  let total = Array.fold_left (fun acc row -> acc + Array.length row) 0 rows in
  let ops = Array.make total (Op.write ~pid:0 ~index:0 ~loc:(Loc.named "_") ~value:Dsm_memory.Value.initial ~wid:Wid.initial) in
  let first_of_pid = Array.make (Array.length rows) 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun pid row ->
      first_of_pid.(pid) <- !cursor;
      Array.iter
        (fun op ->
          ops.(!cursor) <- op;
          incr cursor)
        row)
    rows;
  (ops, first_of_pid)

(* Close the edge list into a reachability relation.  Acyclic graphs (every
   protocol history) get a single pass in reverse topological order:
   reach(u) = U over edges u->v of ({v} + reach(v)).  Cyclic (adversarial)
   graphs fall back to the generic fixpoint. *)
let close_edges n edges =
  let rel = Bitrel.create n in
  let adj = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      indeg.(v) <- indeg.(v) + 1)
    edges;
  (* Kahn's algorithm. *)
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let topo = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    topo.(!filled) <- u;
    incr filled;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      adj.(u)
  done;
  if !filled = n then
    for k = n - 1 downto 0 do
      let u = topo.(k) in
      List.iter
        (fun v ->
          Bitrel.add rel u v;
          Bitrel.union_row_into rel ~src:v ~dst:u)
        adj.(u)
    done
  else begin
    List.iter (fun (u, v) -> Bitrel.add rel u v) edges;
    Bitrel.transitive_closure rel
  end;
  rel

let build history =
  let ops, first_of_pid = flatten history in
  let n = Array.length ops in
  let writers = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun idx (op : Op.t) -> if Op.is_write op then Hashtbl.replace writers op.Op.wid idx)
    ops;
  let edges = ref [] in
  (* Program order: consecutive operations of the same process. *)
  Array.iteri
    (fun idx (op : Op.t) ->
      if idx + 1 < n && ops.(idx + 1).Op.pid = op.Op.pid then edges := (idx, idx + 1) :: !edges)
    ops;
  (* Reads-from: the write an operation reads from precedes it. *)
  let missing = ref None in
  Array.iteri
    (fun idx (op : Op.t) ->
      if Op.is_read op && not (Wid.is_initial op.Op.wid) then begin
        match Hashtbl.find_opt writers op.Op.wid with
        | Some widx -> edges := (widx, idx) :: !edges
        | None ->
            missing :=
              Some
                (Printf.sprintf "read %s reads from %s which is not in the history"
                   (Op.to_string op) (Wid.to_string op.Op.wid))
      end)
    ops;
  match !missing with
  | Some msg -> Error msg
  | None ->
      let adjacency = Array.make n [] in
      List.iter (fun (u, v) -> adjacency.(u) <- v :: adjacency.(u)) !edges;
      Ok { ops; first_of_pid; writers; closed = close_edges n !edges; adjacency }

let build_exn history =
  match build history with Ok t -> t | Error e -> failwith ("Causality.build: " ^ e)

let op_count t = Array.length t.ops

let op t idx = t.ops.(idx)

let index_of t (target : Op.t) = t.first_of_pid.(target.Op.pid) + target.Op.index

let writer_of t wid = if Wid.is_initial wid then None else Hashtbl.find_opt t.writers wid

let precedes t a b = Bitrel.mem t.closed a b

let concurrent t a b = a <> b && (not (precedes t a b)) && not (precedes t b a)

let program_pred t idx =
  let op = t.ops.(idx) in
  if op.Op.index = 0 then None else Some (idx - 1)

let precedes_excl_rf t a ~reader =
  match program_pred t reader with
  | None -> false
  | Some pred -> a = pred || precedes t a pred

let writes_to t loc =
  let acc = ref [] in
  for idx = Array.length t.ops - 1 downto 0 do
    let op = t.ops.(idx) in
    if Op.is_write op && Loc.equal op.Op.loc loc then acc := idx :: !acc
  done;
  !acc

let ops_on t loc =
  let acc = ref [] in
  for idx = Array.length t.ops - 1 downto 0 do
    if Loc.equal t.ops.(idx).Op.loc loc then acc := idx :: !acc
  done;
  !acc

let acyclic t =
  let n = Array.length t.ops in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Bitrel.mem t.closed i i then ok := false
  done;
  !ok

let relation t = t.closed

let shortest_path t a b =
  let n = Array.length t.ops in
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Causality.shortest_path";
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(a) <- true;
  Queue.add a queue;
  let found = ref (a = b) in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          if v = b then found := true else Queue.add v queue
        end)
      t.adjacency.(u)
  done;
  if not !found then None
  else begin
    let rec walk v acc = if v = a then a :: acc else walk parent.(v) (v :: acc) in
    Some (walk b [])
  end

let edge_kind t a b =
  let oa = t.ops.(a) and ob = t.ops.(b) in
  if oa.Op.pid = ob.Op.pid && ob.Op.index = oa.Op.index + 1 then `Program_order
  else if Op.is_write oa && Op.is_read ob && Wid.equal oa.Op.wid ob.Op.wid then `Reads_from
  else `None
