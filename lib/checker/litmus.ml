module History = Dsm_memory.History

type expectation = {
  causal : bool;
  sc : bool;
  pram : bool;
  slow : bool;
  coherent : bool;
}

type case = {
  name : string;
  description : string;
  history : History.t;
  expected : expectation;
}

let store_buffering =
  {
    name = "SB (store buffering)";
    description =
      "Both processes write their own location then miss the other's write: \
       the paper's Figure 5.  Causal memory allows it (the writes are \
       concurrent); sequential consistency forbids it.";
    history = History.parse_exn {|
      P0: w(x)1 r(y)0
      P1: w(y)1 r(x)0
    |};
    expected = { causal = true; sc = false; pram = true; slow = true; coherent = true };
  }

let message_passing =
  {
    name = "MP (message passing, stale data)";
    description =
      "Reader sees the flag but stale data.  Forbidden by causal memory: \
       reading the flag pulls the data write into the causal past, so the \
       initial value is overwritten.  PRAM also forbids it (writer order); \
       slow memory, which is per-location, does not.";
    history = History.parse_exn {|
      P0: w(d)1 w(f)1
      P1: r(f)1 r(d)0
    |};
    expected = { causal = false; sc = false; pram = false; slow = true; coherent = true };
  }

let message_passing_ok =
  {
    name = "MP (message passing, fresh data)";
    description = "The same shape with fresh data: legal everywhere.";
    history = History.parse_exn {|
      P0: w(d)1 w(f)1
      P1: r(f)1 r(d)1
    |};
    expected = { causal = true; sc = true; pram = true; slow = true; coherent = true };
  }

let write_read_causality =
  {
    name = "WRC (write-read causality)";
    description =
      "Causality flows through a middleman: P1 reads x then writes y; P2 \
       reads y then stale x.  This is THE shape separating causal memory \
       from PRAM: PRAM allows it (no inter-writer order), causal forbids it.";
    history = History.parse_exn {|
      P0: w(x)1
      P1: r(x)1 w(y)1
      P2: r(y)1 r(x)0
    |};
    expected = { causal = false; sc = false; pram = true; slow = true; coherent = true };
  }

let iriw =
  {
    name = "IRIW (independent reads of independent writes)";
    description =
      "Two readers observe two concurrent writes in opposite orders.  \
       Causal memory allows the disagreement; SC forbids it.";
    history = History.parse_exn {|
      P0: w(x)1
      P1: w(y)1
      P2: r(x)1 r(y)0
      P3: r(y)1 r(x)0
    |};
    expected = { causal = true; sc = false; pram = true; slow = true; coherent = true };
  }

let load_buffering =
  {
    name = "LB (load buffering)";
    description =
      "Each process reads the value the OTHER is about to write: the \
       reads-from relation is cyclic, which no memory whose reads return \
       already-written values allows.  Causal memory rejects it (a read's \
       source may not causally follow the read); PRAM's per-reader view \
       can still order each write before the read that uses it, so the \
       per-reader conditions are blind to the cycle.";
    history = History.parse_exn {|
      P0: r(x)1 w(y)1
      P1: r(y)1 w(x)1
    |};
    expected = { causal = false; sc = false; pram = true; slow = true; coherent = true };
  }

let coherence_violation =
  {
    name = "same-writer reorder";
    description =
      "Two readers see one writer's two writes to one location in opposite \
       orders: violates everything down to slow memory.";
    history = History.parse_exn {|
      P0: w(x)1 w(x)2
      P1: r(x)1 r(x)2
      P2: r(x)2 r(x)1
    |};
    expected = { causal = false; sc = false; pram = false; slow = false; coherent = false };
  }

let read_own_writes =
  {
    name = "read own writes";
    description = "A process reading its own overwritten value: nothing allows it.";
    history = History.parse_exn {|
      P0: w(x)1 w(x)2 r(x)1
    |};
    expected = { causal = false; sc = false; pram = false; slow = false; coherent = false };
  }

let fresh_never_stale =
  {
    name = "fresh-then-stale (strict rule)";
    description =
      "After reading the concurrent 2, returning to one's own 1 is a \
       violation of this paper's STRICT causal memory (the intervening read \
       'serves notice'); it also fails the per-location conditions.";
    history = History.parse_exn {|
      P0: w(x)1 r(x)2 r(x)1
      P1: w(x)2
    |};
    expected = { causal = false; sc = false; pram = false; slow = false; coherent = false };
  }

let all =
  [
    store_buffering;
    message_passing;
    message_passing_ok;
    write_read_causality;
    iriw;
    load_buffering;
    coherence_violation;
    read_own_writes;
    fresh_never_stale;
  ]

let check case =
  let c = Consistency.classify case.history in
  [
    ("causal", case.expected.causal, c.Consistency.causal);
    ("sc", case.expected.sc, c.Consistency.sc);
    ("pram", case.expected.pram, c.Consistency.pram);
    ("slow", case.expected.slow, c.Consistency.slow);
    ("coherent", case.expected.coherent, c.Consistency.coherent);
  ]

let passes case = List.for_all (fun (_, expected, measured) -> expected = measured) (check case)
