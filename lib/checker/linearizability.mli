(** Linearizability (atomicity) checking with real-time operation intervals.

    The paper's strong baseline is {e atomic} memory in the register sense
    of [17]: operations are intervals on a global time line and must appear
    to take effect at a single point within their interval.  Unlike the
    order-theoretic checkers ({!Consistency}), this one needs each
    operation's start and end times, which the simulator provides.

    The checker searches for a linearisation: a total order of operations
    that (a) respects real time (if a ends before b starts, a comes first),
    (b) respects each process's program order, and (c) satisfies register
    semantics (every read returns the latest preceding write, with unique
    writes identified by {!Dsm_memory.Wid}).  Worst case exponential;
    memoised on (completed-set, store) states, fine for the histories the
    tests and experiments classify. *)

type timed_op = {
  op : Dsm_memory.Op.t;
  start_time : float;  (** when the operation was invoked *)
  end_time : float;  (** when it returned *)
}

val make : Dsm_memory.Op.t -> start_time:float -> end_time:float -> timed_op
(** Validates [start_time <= end_time]. *)

val is_linearizable : timed_op list -> bool

val witness : timed_op list -> Dsm_memory.Op.t list option
(** A legal linearisation if one exists. *)

val ignore_time : timed_op list -> bool
(** The same search with the real-time constraint dropped — this is
    sequential consistency; exposed so tests can confirm an execution that
    is SC but not linearizable (order matters, time does not). *)
