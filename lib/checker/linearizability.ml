module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc

type timed_op = { op : Op.t; start_time : float; end_time : float }

let make op ~start_time ~end_time =
  if start_time > end_time then invalid_arg "Linearizability.make: interval ends before it starts";
  { op; start_time; end_time }

(* Canonical state key: which ops are done plus the store contents the
   prefix produced. *)
let state_key done_mask store =
  let buf = Buffer.create 64 in
  Array.iter (fun d -> Buffer.add_char buf (if d then '1' else '0')) done_mask;
  Buffer.add_char buf '|';
  Loc.Map.iter
    (fun loc wid ->
      Buffer.add_string buf (Loc.to_string loc);
      Buffer.add_char buf '=';
      Buffer.add_string buf (Wid.to_string wid);
      Buffer.add_char buf ';')
    store;
  Buffer.contents buf

let search ~respect_time ops =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let done_mask = Array.make n false in
  let visited = Hashtbl.create 1024 in
  (* [o] may linearise now iff every operation forced before it is done:
     real-time predecessors (ended strictly before [o] started) and
     program-order predecessors. *)
  let enabled i =
    (not done_mask.(i))
    && begin
         let o = ops.(i) in
         let ok = ref true in
         for j = 0 to n - 1 do
           if j <> i && not done_mask.(j) then begin
             let q = ops.(j) in
             if respect_time && q.end_time < o.start_time then ok := false;
             if
               q.op.Op.pid = o.op.Op.pid
               && q.op.Op.index < o.op.Op.index
             then ok := false
           end
         done;
         !ok
       end
  in
  let rec go remaining store acc =
    if remaining = 0 then Some (List.rev acc)
    else begin
      let key = state_key done_mask store in
      if Hashtbl.mem visited key then None
      else begin
        Hashtbl.replace visited key ();
        let rec try_op i =
          if i = n then None
          else if not (enabled i) then try_op (i + 1)
          else begin
            let o = ops.(i) in
            let attempt =
              match o.op.Op.kind with
              | Op.Write -> Some (Loc.Map.add o.op.Op.loc o.op.Op.wid store)
              | Op.Read ->
                  let current =
                    match Loc.Map.find_opt o.op.Op.loc store with
                    | Some wid -> wid
                    | None -> Wid.initial
                  in
                  if Wid.equal current o.op.Op.wid then Some store else None
            in
            match attempt with
            | None -> try_op (i + 1)
            | Some store' ->
                done_mask.(i) <- true;
                let result = go (remaining - 1) store' (o.op :: acc) in
                done_mask.(i) <- false;
                (match result with Some _ -> result | None -> try_op (i + 1))
          end
        in
        try_op 0
      end
    end
  in
  go n Loc.Map.empty []

let witness ops = search ~respect_time:true ops

let is_linearizable ops = Option.is_some (witness ops)

let ignore_time ops = Option.is_some (search ~respect_time:false ops)
