(** The paper's worked example executions (Figures 1, 2, 3 and 5), parsed
    from the paper's own notation, with the verdicts the paper assigns.

    These anchor the test suite and the E-FIG* experiments: the checker must
    accept Figures 1, 2 and 5 and reject Figure 3, must compute exactly the
    α sets Section 2 derives for Figure 2, and must find Figure 5 causally
    correct but not sequentially consistent. *)

val fig1 : Dsm_memory.History.t
(** "Example of Causal Relations" — correct on causal memory. *)

val fig2 : Dsm_memory.History.t
(** "A Correct Execution on Causal Memory". *)

val fig3 : Dsm_memory.History.t
(** "Causal Broadcasting is Not Causal Memory" — {e not} correct on causal
    memory (the read [r3(x)2] returns an overwritten value). *)

val fig5 : Dsm_memory.History.t
(** "A Weakly Consistent Execution" — correct on causal memory, not
    sequentially consistent. *)

val all : (string * Dsm_memory.History.t * [ `Causal_ok | `Causal_violation ]) list
