(** The causal-memory correctness checker (Definitions 1 and 2).

    For every read [o = r(x)v] in a history, computes the live set α(o) —
    the identities of writes whose value the read may legally return — and
    verifies the write [o] reads from is in it.

    Definition 1 (live values), for [o' = w(x)v]:
    - [o'] concurrent with [o] (excluding [o]'s own reads-from edge): live;
    - [o' ->* o] with no intervening access of [x] associated with a
      different write: live;
    - otherwise ([o] causally precedes [o'], or [o'] was overwritten):
      not live.

    The implementation uses one global transitive closure plus the
    program-predecessor reduction for the excluded edge (see
    {!Causality.precedes_excl_rf}); {!Naive} re-closes the graph per read,
    following the definition literally, and exists to cross-validate the
    fast checker in tests. *)

type live = { wid : Dsm_memory.Wid.t; value : Dsm_memory.Value.t }

type violation = {
  read : Dsm_memory.Op.t;
  live : live list;  (** what the read could legally have returned *)
  reason : string;
}

type verdict = Correct | Violations of violation list

val alpha : Causality.t -> int -> live list
(** Live set of the read at a global index; raises [Invalid_argument] if the
    index is not a read.  The virtual initial write appears with the read's
    location's recorded initial value. *)

val check_graph : Causality.t -> verdict

val check : Dsm_memory.History.t -> (verdict, string) result
(** [Error] when the history is malformed (dangling reads-from). *)

val is_correct : Dsm_memory.History.t -> bool
(** [true] iff [check] says [Correct]; malformed histories are [false]. *)

val violations : Dsm_memory.History.t -> violation list
(** Empty iff correct; malformed histories raise [Failure]. *)

(** {1 Objects over sequential specs}

    The same causality graph, generalized from reads-from over registers
    to spec-legal return values: a query's folded return is checked
    against every causal-past linearization of its observed context (see
    {!Obj_check} for the rule and its bounds).  Register verdicts are
    unaffected. *)

val check_objects :
  lookup:(string -> Obj_check.sem option) ->
  Dsm_memory.History.t ->
  Obj_check.query list ->
  Obj_check.violation list

val objects_correct :
  lookup:(string -> Obj_check.sem option) ->
  Dsm_memory.History.t ->
  Obj_check.query list ->
  bool

(** {1 Violation explanations} *)

type explanation = {
  x_read : Dsm_memory.Op.t;  (** the illegal read *)
  x_reason :
    [ `Overwritten of Dsm_memory.Op.t
      (** the intervening access that proves the read's source dead *)
    | `Future_write  (** the read's source causally follows the read *) ];
  x_chain : Dsm_memory.Op.t list;
      (** a concrete witness chain of program-order / reads-from edges
          ending at (or starting from, for [`Future_write]) the read *)
  x_rendered : string;  (** human-readable one-liner, e.g.
          [w2(x)2 -po-> r2(y)3 -po-> w2(z)4 -rf-> r3(z)4 -po-> r3(x)2] *)
}

val explain : Causality.t -> int -> explanation option
(** Why the read at this global index is illegal; [None] when it is
    correct.  Raises [Invalid_argument] if the index is not a read. *)

val explain_all : Dsm_memory.History.t -> explanation list
(** Explanations for every violating read; empty iff the history is
    causally correct (or malformed). *)

(** Reference implementation: per-read graph reconstruction. *)
module Naive : sig
  val alpha : Dsm_memory.History.t -> pid:int -> index:int -> live list
  (** Live set of one read, recomputing the closure without that read's
      reads-from edge. *)

  val is_correct : Dsm_memory.History.t -> bool
end
