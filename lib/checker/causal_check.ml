module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module History = Dsm_memory.History
module Bitrel = Dsm_util.Bitrel

type live = { wid : Wid.t; value : Value.t }

type violation = { read : Op.t; live : live list; reason : string }

type verdict = Correct | Violations of violation list

(* Does some access of [x] associated with a write other than [cand_wid]
   sit causally strictly between the candidate write and the read [io]?
   [cand_idx = None] stands for the virtual initial write, which precedes
   every operation. *)
let intervenes g ~ops_x ~io ~cand_wid ~cand_idx =
  List.exists
    (fun i'' ->
      i'' <> io
      && (match cand_idx with Some iw -> i'' <> iw | None -> true)
      && (not (Wid.equal (Causality.op g i'').Op.wid cand_wid))
      && (match cand_idx with
         | Some iw -> Causality.precedes g iw i''
         | None -> true)
      && Causality.precedes_excl_rf g i'' ~reader:io)
    ops_x

let live_of g idx =
  let op = Causality.op g idx in
  { wid = op.Op.wid; value = op.Op.value }

let alpha g io =
  let o = Causality.op g io in
  if not (Op.is_read o) then invalid_arg "Causal_check.alpha: not a read";
  let x = o.Op.loc in
  let ops_x = Causality.ops_on g x in
  let writes_x = Causality.writes_to g x in
  let initial_live =
    if intervenes g ~ops_x ~io ~cand_wid:Wid.initial ~cand_idx:None then []
    else [ { wid = Wid.initial; value = Value.initial } ]
  in
  let write_live iw =
    let w = Causality.op g iw in
    if Causality.precedes_excl_rf g iw ~reader:io then
      (* Candidate causally precedes the read: live unless overwritten. *)
      if intervenes g ~ops_x ~io ~cand_wid:w.Op.wid ~cand_idx:(Some iw) then None
      else Some (live_of g iw)
    else if Causality.precedes g io iw then
      (* Writes that causally follow the read are never live for it. *)
      None
    else
      (* Concurrent writes are always live. *)
      Some (live_of g iw)
  in
  initial_live @ List.filter_map write_live writes_x

let check_read g io =
  let o = Causality.op g io in
  let live = alpha g io in
  if List.exists (fun l -> Wid.equal l.wid o.Op.wid) live then None
  else
    Some
      {
        read = o;
        live;
        reason =
          Printf.sprintf "%s returned %s (from %s), not live for this read"
            (Op.to_string o)
            (Value.to_string o.Op.value)
            (Wid.to_string o.Op.wid);
      }

let check_graph g =
  let violations = ref [] in
  for io = Causality.op_count g - 1 downto 0 do
    if Op.is_read (Causality.op g io) then
      match check_read g io with Some v -> violations := v :: !violations | None -> ()
  done;
  match !violations with [] -> Correct | vs -> Violations vs

let check history =
  match Causality.build history with
  | Error e -> Error e
  | Ok g -> Ok (check_graph g)

let is_correct history = match check history with Ok Correct -> true | Ok (Violations _) | Error _ -> false

let violations history =
  match check history with
  | Ok Correct -> []
  | Ok (Violations vs) -> vs
  | Error e -> failwith ("Causal_check.violations: malformed history: " ^ e)

(* ------------------------------------------------------------------ *)
(* Objects over sequential specs                                       *)
(* ------------------------------------------------------------------ *)

(* The generalization from reads-from over registers to spec-legal return
   values lives in [Obj_check]; these entry points keep the register
   verdicts above byte-identical (nothing on the register path changes)
   while making the object layer reachable from the same module the apps
   and the model checker already call. *)

let check_objects ~lookup history queries = Obj_check.check ~lookup history queries

let objects_correct ~lookup history queries = Obj_check.is_correct ~lookup history queries

(* ------------------------------------------------------------------ *)
(* Violation explanations                                              *)
(* ------------------------------------------------------------------ *)

type explanation = {
  x_read : Op.t;
  x_reason : [ `Overwritten of Op.t | `Future_write ];
  x_chain : Op.t list;
  x_rendered : string;
}

(* Stitch BFS paths into one chain of global indices (segments share their
   junction op). *)
let stitch segments =
  List.fold_left
    (fun acc seg ->
      match (acc, seg) with
      | [], s -> s
      | acc, x :: rest when List.nth acc (List.length acc - 1) = x -> acc @ rest
      | acc, s -> acc @ s)
    [] segments

let render g chain =
  let rec go = function
    | [] -> []
    | [ last ] -> [ Op.to_string (Causality.op g last) ]
    | a :: (b :: _ as rest) ->
        let arrow =
          match Causality.edge_kind g a b with
          | `Program_order -> " -po-> "
          | `Reads_from -> " -rf-> "
          | `None -> " ->* "
        in
        (Op.to_string (Causality.op g a) ^ arrow) :: go rest
  in
  String.concat "" (go chain)

(* The intervening access (if any) that kills candidate [cand_wid] for the
   read at [io]: same location, different associated write, causally after
   the candidate and before the read (excluding the read's own rf edge). *)
let find_intervening g ~io ~cand_wid ~cand_idx =
  let x = (Causality.op g io).Op.loc in
  List.find_opt
    (fun i'' ->
      i'' <> io
      && (match cand_idx with Some iw -> i'' <> iw | None -> true)
      && (not (Wid.equal (Causality.op g i'').Op.wid cand_wid))
      && (match cand_idx with Some iw -> Causality.precedes g iw i'' | None -> true)
      && Causality.precedes_excl_rf g i'' ~reader:io)
    (Causality.ops_on g x)

let path_exn g a b =
  match Causality.shortest_path g a b with
  | Some p -> p
  | None -> [ a; b ] (* closure says reachable; direct edges must witness it *)

let explain g io =
  let o = Causality.op g io in
  if not (Op.is_read o) then invalid_arg "Causal_check.explain: not a read";
  if check_read g io = None then None
  else begin
    let source = Causality.writer_of g o.Op.wid in
    match source with
    | Some iw when Causality.precedes g io iw ->
        (* The read's source causally follows the read itself. *)
        let chain_idx = path_exn g io iw in
        Some
          {
            x_read = o;
            x_reason = `Future_write;
            x_chain = List.map (Causality.op g) chain_idx;
            x_rendered =
              Printf.sprintf "%s reads from its own causal future: %s" (Op.to_string o)
                (render g chain_idx);
          }
    | _ -> (
        (* Overwritten: find the intervening access and build
           source ->* intervening ->* predecessor(read) -> read. *)
        let cand_idx = source in
        match find_intervening g ~io ~cand_wid:o.Op.wid ~cand_idx with
        | None -> None (* violation without witness should not happen *)
        | Some i'' ->
            let tail =
              match Causality.program_pred g io with
              | Some pred when pred <> i'' -> path_exn g i'' pred @ [ io ]
              | Some _ | None -> [ i''; io ]
            in
            let chain_idx =
              match cand_idx with
              | Some iw -> stitch [ path_exn g iw i''; tail ]
              | None -> stitch [ [ i'' ]; tail ]
            in
            Some
              {
                x_read = o;
                x_reason = `Overwritten (Causality.op g i'');
                x_chain = List.map (Causality.op g) chain_idx;
                x_rendered =
                  Printf.sprintf "%s returned an overwritten value; witness: %s"
                    (Op.to_string o) (render g chain_idx);
              })
  end

let explain_all history =
  match Causality.build history with
  | Error _ -> []
  | Ok g ->
      let acc = ref [] in
      for io = Causality.op_count g - 1 downto 0 do
        if Op.is_read (Causality.op g io) then
          match explain g io with Some e -> acc := e :: !acc | None -> ()
      done;
      !acc

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)
(* ------------------------------------------------------------------ *)

module Naive = struct
  (* Rebuild the relation from scratch with one read's reads-from edge
     removed, exactly as Definition 1 prescribes, and close it.  Quadratic in
     history size per read; for validation only. *)

  let flatten history =
    let rows = (history : History.t :> Op.t array array) in
    Array.to_list rows |> List.concat_map Array.to_list |> Array.of_list

  let minus_closure ops ~skip =
    let n = Array.length ops in
    let rel = Bitrel.create n in
    let writers = Hashtbl.create 32 in
    Array.iteri (fun i (o : Op.t) -> if Op.is_write o then Hashtbl.replace writers o.Op.wid i) ops;
    Array.iteri
      (fun i (o : Op.t) ->
        if i + 1 < n && ops.(i + 1).Op.pid = o.Op.pid then Bitrel.add rel i (i + 1);
        if Op.is_read o && i <> skip && not (Wid.is_initial o.Op.wid) then
          match Hashtbl.find_opt writers o.Op.wid with
          | Some w -> Bitrel.add rel w i
          | None -> failwith "Naive: dangling reads-from")
      ops;
    Bitrel.transitive_closure rel;
    rel

  let alpha_at ops io =
    let o = ops.(io) in
    if not (Op.is_read o) then invalid_arg "Naive.alpha: not a read";
    let rel = minus_closure ops ~skip:io in
    let reach a b = Bitrel.mem rel a b in
    let x = o.Op.loc in
    let on_x i = Loc.equal ops.(i).Op.loc x in
    let indices = List.init (Array.length ops) Fun.id in
    let ops_x = List.filter on_x indices in
    let intervening ~cand_wid ~cand_idx =
      List.exists
        (fun i'' ->
          i'' <> io
          && (match cand_idx with Some iw -> i'' <> iw | None -> true)
          && (not (Wid.equal ops.(i'').Op.wid cand_wid))
          && (match cand_idx with Some iw -> reach iw i'' | None -> true)
          && reach i'' io)
        ops_x
    in
    let initial_live =
      if intervening ~cand_wid:Wid.initial ~cand_idx:None then []
      else [ { wid = Wid.initial; value = Value.initial } ]
    in
    let write_live iw =
      if not (Op.is_write ops.(iw) && on_x iw) then None
      else begin
        let w = ops.(iw) in
        if reach iw io then
          if intervening ~cand_wid:w.Op.wid ~cand_idx:(Some iw) then None
          else Some { wid = w.Op.wid; value = w.Op.value }
        else if reach io iw then None
        else Some { wid = w.Op.wid; value = w.Op.value }
      end
    in
    initial_live @ List.filter_map write_live indices

  let alpha history ~pid ~index =
    let ops = flatten history in
    let io = ref (-1) in
    Array.iteri
      (fun i (o : Op.t) -> if o.Op.pid = pid && o.Op.index = index then io := i)
      ops;
    if !io < 0 then invalid_arg "Naive.alpha: no such operation";
    alpha_at ops !io

  let is_correct history =
    let ops = flatten history in
    let ok = ref true in
    Array.iteri
      (fun io (o : Op.t) ->
        if Op.is_read o then begin
          let live = alpha_at ops io in
          if not (List.exists (fun l -> Wid.equal l.wid o.Op.wid) live) then ok := false
        end)
      ops;
    !ok
end
