let fig1 =
  Dsm_memory.History.parse_exn
    {|
      # Figure 1: Example of Causal Relations
      P1: w(x)1 w(y)2 r(y)2 r(x)1
      P2: w(z)1 r(y)2 r(x)1
    |}

let fig2 =
  Dsm_memory.History.parse_exn
    {|
      # Figure 2: A Correct Execution on Causal Memory
      P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
      P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
      P3: r(z)5 w(x)9
    |}

let fig3 =
  Dsm_memory.History.parse_exn
    {|
      # Figure 3: Causal Broadcasting is Not Causal Memory
      P1: w(x)5 w(y)3
      P2: w(x)2 r(y)3 r(x)5 w(z)4
      P3: r(z)4 r(x)2
    |}

let fig5 =
  Dsm_memory.History.parse_exn
    {|
      # Figure 5: A Weakly Consistent Execution
      P1: r(y)0 w(x)1 r(y)0
      P2: r(x)0 w(y)1 r(x)0
    |}

let all =
  [
    ("fig1", fig1, `Causal_ok);
    ("fig2", fig2, `Causal_ok);
    ("fig3", fig3, `Causal_violation);
    ("fig5", fig5, `Causal_ok);
  ]
