(** Classic consistency litmus tests, expressed as histories in the paper's
    notation and classified against the checker hierarchy.

    These place causal memory among its neighbours on standard shapes from
    the memory-model literature: store buffering (the paper's own Figure 5),
    message passing, write-read causality, independent reads of independent
    writes, and coherence shapes.  Each case records the expected verdict of
    every checker, so the suite doubles as a regression oracle for all five
    checkers at once. *)

type expectation = {
  causal : bool;
  sc : bool;
  pram : bool;
  slow : bool;
  coherent : bool;
}

type case = {
  name : string;
  description : string;  (** what the shape probes *)
  history : Dsm_memory.History.t;
  expected : expectation;
}

val store_buffering : case
(** SB / Dekker: both processes miss the other's write.  Allowed by causal
    memory (= the paper's Figure 5), forbidden by SC. *)

val message_passing : case
(** MP: see the flag, must see the data.  Forbidden even by causal memory —
    reading the flag pulls the data write into the causal past. *)

val message_passing_ok : case
(** MP with the data read returning the new value: fine everywhere. *)

val write_read_causality : case
(** WRC: transitive visibility through a third process.  Forbidden by causal
    memory, the defining shape that separates it from PRAM. *)

val iriw : case
(** IRIW: two readers disagree on the order of two independent writes.
    Allowed by causal memory (writes are concurrent), forbidden by SC. *)

val load_buffering : case
(** LB: cyclic reads-from ("reading the future").  Rejected by causal
    memory and SC; invisible to the per-reader PRAM/slow conditions. *)

val coherence_violation : case
(** Same-location reordering: one process sees w1 then w2, another w2 then
    w1, with both writes by one writer: violates everything down to slow
    memory. *)

val read_own_writes : case
(** A process must see its own writes in order: violated history. *)

val fresh_never_stale : case
(** After reading a newer value a process may not fall back to an older one
    of the same location (the paper's "serves notice" rule). *)

val all : case list

val check : case -> (string * bool * bool) list
(** [(checker-name, expected, measured)] triples for one case. *)

val passes : case -> bool
(** All five checkers agree with the expectation. *)
