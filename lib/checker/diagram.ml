module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid
module History = Dsm_memory.History

(* Short alphabetic tags: a..z, aa, ab, ... *)
let tag_of_int i =
  let rec go i acc =
    let letter = Char.chr (Char.code 'a' + (i mod 26)) in
    let acc = String.make 1 letter ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

(* Topological order over program-order + reads-from edges; None if cyclic. *)
let topo_order (ops : Op.t array) =
  let n = Array.length ops in
  let writers = Hashtbl.create 16 in
  Array.iteri (fun i (o : Op.t) -> if Op.is_write o then Hashtbl.replace writers o.Op.wid i) ops;
  let adj = Array.make n [] in
  let indeg = Array.make n 0 in
  let add u v =
    adj.(u) <- v :: adj.(u);
    indeg.(v) <- indeg.(v) + 1
  in
  Array.iteri
    (fun i (o : Op.t) ->
      if i + 1 < n && ops.(i + 1).Op.pid = o.Op.pid then add i (i + 1);
      if Op.is_read o && not (Wid.is_initial o.Op.wid) then
        match Hashtbl.find_opt writers o.Op.wid with
        | Some w when w <> i -> add w i
        | Some _ | None -> ())
    ops;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr count;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      adj.(u)
  done;
  if !count = n then Some (List.rev !order) else None

let cell_text tags (o : Op.t) =
  let body =
    Printf.sprintf "%s(%s)%s"
      (if Op.is_write o then "w" else "r")
      (Dsm_memory.Loc.to_string o.Op.loc)
      (Dsm_memory.Value.to_string o.Op.value)
  in
  if Op.is_write o then
    match Hashtbl.find_opt tags o.Op.wid with
    | Some tag -> Printf.sprintf "%s [%s]" body tag
    | None -> body
  else if Wid.is_initial o.Op.wid then body ^ " <-init"
  else
    match Hashtbl.find_opt tags o.Op.wid with
    | Some tag -> Printf.sprintf "%s <-[%s]" body tag
    | None -> body ^ " <-?"

let render history =
  let rows = (history : History.t :> Op.t array array) in
  let processes = Array.length rows in
  let ops = Array.concat (Array.to_list rows) in
  let order, warning =
    match topo_order ops with
    | Some order -> (order, None)
    | None ->
        (List.init (Array.length ops) Fun.id, Some "(cyclic reads-from: program-order rows)")
  in
  (* Tag writes in display order so tags read top-to-bottom. *)
  let tags = Hashtbl.create 16 in
  let next_tag = ref 0 in
  List.iter
    (fun i ->
      let o = ops.(i) in
      if Op.is_write o then begin
        Hashtbl.replace tags o.Op.wid (tag_of_int !next_tag);
        incr next_tag
      end)
    order;
  let cells = List.map (fun i -> (ops.(i).Op.pid, cell_text tags ops.(i))) order in
  let width = Array.make processes 4 in
  Array.iteri (fun p _ -> width.(p) <- max width.(p) (String.length (Printf.sprintf "P%d" p))) rows;
  List.iter
    (fun (p, text) -> if String.length text > width.(p) then width.(p) <- String.length text)
    cells;
  let line_number_width = max 2 (String.length (string_of_int (List.length cells))) in
  let buf = Buffer.create 1024 in
  (match warning with
  | Some w ->
      Buffer.add_string buf w;
      Buffer.add_char buf '\n'
  | None -> ());
  (* Header. *)
  Buffer.add_string buf (String.make line_number_width ' ');
  Array.iteri
    (fun p _ ->
      Buffer.add_string buf "  ";
      let label = Printf.sprintf "P%d" p in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (width.(p) - String.length label) ' '))
    rows;
  while Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = ' ' do
    Buffer.truncate buf (Buffer.length buf - 1)
  done;
  Buffer.add_char buf '\n';
  List.iteri
    (fun row (p, text) ->
      Buffer.add_string buf (Printf.sprintf "%*d" line_number_width (row + 1));
      for col = 0 to processes - 1 do
        Buffer.add_string buf "  ";
        if col = p then begin
          Buffer.add_string buf text;
          Buffer.add_string buf (String.make (width.(col) - String.length text) ' ')
        end
        else Buffer.add_string buf (String.make width.(col) ' ')
      done;
      (* Trim trailing spaces for clean output. *)
      while Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = ' ' do
        Buffer.truncate buf (Buffer.length buf - 1)
      done;
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf

let print history = print_string (render history)
