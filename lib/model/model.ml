module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Wid = Dsm_memory.Wid
module Op = Dsm_memory.Op
module History = Dsm_memory.History

type op = Read of Loc.t | Write of Loc.t * Value.t

type program = op list

type policy = Lww | Owner_favored

type config = { owner_of : Loc.t -> int; programs : program list; policy : policy }

let config ?(policy = Lww) ~owner_of programs = { owner_of; programs; policy }

type variant =
  | Faithful
  | Figure4_literal
  | Skip_invalidation
  | Skip_certify_merge
  | Skip_install_merge

(* ------------------------------------------------------------------ *)
(* Pure protocol state (structural equality is state identity)         *)
(* ------------------------------------------------------------------ *)

(* Writestamps as int lists, write ids as (node, seq): plain data so the
   whole state hashes and compares structurally. *)
type entry = { e_value : Value.t; e_stamp : int list; e_wid : int * int }

type logged =
  | Lread of Loc.t * Value.t * (int * int)
  | Lwrite of Loc.t * Value.t * (int * int)

type blocked = Bread of Loc.t * int list (* clock at request time *) | Bwrite of Loc.t

type node = {
  mem : (Loc.t * entry) list; (* sorted by Loc.compare *)
  clock : int list;
  prog : op list;
  blocked : blocked option;
  log : logged list; (* newest first *)
  wseq : int;
}

type msg =
  | Mread of Loc.t
  | Mread_reply of Loc.t * entry
  | Mwrite of Loc.t * entry
  | Mwrite_reply of Loc.t * entry

type state = {
  nodes : node list;
  links : ((int * int) * msg list) list; (* sorted keys; queues oldest-first; no empties *)
}

let initial_wid = (-1, 0)

(* --- small pure helpers ------------------------------------------- *)

let rec mem_find mem loc =
  match mem with
  | [] -> None
  | (l, e) :: rest ->
      let c = Loc.compare l loc in
      if c = 0 then Some e else if c > 0 then None else mem_find rest loc

let rec mem_set mem loc entry =
  match mem with
  | [] -> [ (loc, entry) ]
  | ((l, _) as hd) :: rest ->
      let c = Loc.compare l loc in
      if c = 0 then (loc, entry) :: rest
      else if c > 0 then (loc, entry) :: mem
      else hd :: mem_set rest loc entry

let clock_merge a b = List.map2 max a b

let clock_bump clock i = List.mapi (fun k c -> if k = i then c + 1 else c) clock

(* strict vector-clock less-than on int lists *)
let stamp_lt a b =
  List.for_all2 ( <= ) a b && List.exists2 ( < ) a b

(* Drop cached (non-owned) entries strictly older than [threshold]. *)
let invalidate variant owner_of me mem threshold =
  if variant = Skip_invalidation then mem
  else
    List.filter
      (fun (loc, e) -> owner_of loc = me || not (stamp_lt e.e_stamp threshold))
      mem

let rec link_get links key =
  match links with
  | [] -> []
  | (k, q) :: rest -> if k = key then q else link_get rest key

let rec link_set links key queue =
  match links with
  | [] -> if queue = [] then [] else [ (key, queue) ]
  | ((k, _) as hd) :: rest ->
      if k = key then if queue = [] then rest else (key, queue) :: rest
      else if k > key then if queue = [] then links else (key, queue) :: links
      else hd :: link_set rest key queue

let link_push links key m = link_set links key (link_get links key @ [ m ])

let nth_node state i = List.nth state.nodes i

let set_node state i node =
  { state with nodes = List.mapi (fun k n -> if k = i then node else n) state.nodes }

(* ------------------------------------------------------------------ *)
(* Transitions (Figure 4 as pure functions)                            *)
(* ------------------------------------------------------------------ *)

(* One node issues its next program operation.  Returns None if the node is
   blocked or done. *)
let issue cfg state i =
  let n = nth_node state i in
  match (n.blocked, n.prog) with
  | Some _, _ | None, [] -> None
  | None, op :: rest -> (
      match op with
      | Read loc -> (
          match mem_find n.mem loc with
          | Some e ->
              (* Local read (owned or cached). *)
              let n' =
                { n with prog = rest; log = Lread (loc, e.e_value, e.e_wid) :: n.log }
              in
              Some (set_node state i n')
          | None ->
              (* Read miss: request a copy from the owner and block. *)
              let owner = cfg.owner_of loc in
              let state =
                set_node state i { n with prog = rest; blocked = Some (Bread (loc, n.clock)) }
              in
              Some { state with links = link_push state.links (i, owner) (Mread loc) })
      | Write (loc, value) ->
          let clock = clock_bump n.clock i in
          let wid = (i, n.wseq) in
          if cfg.owner_of loc = i then begin
            (* Owner write: store locally, no invalidations (Figure 4). *)
            let entry = { e_value = value; e_stamp = clock; e_wid = wid } in
            let n' =
              {
                n with
                clock;
                wseq = n.wseq + 1;
                prog = rest;
                mem = mem_set n.mem loc entry;
                log = Lwrite (loc, value, wid) :: n.log;
              }
            in
            Some (set_node state i n')
          end
          else begin
            (* Remote write: ship to the owner for certification and block. *)
            let entry = { e_value = value; e_stamp = clock; e_wid = wid } in
            let owner = cfg.owner_of loc in
            let state =
              set_node state i
                { n with clock; wseq = n.wseq + 1; prog = rest; blocked = Some (Bwrite loc) }
            in
            Some { state with links = link_push state.links (i, owner) (Mwrite (loc, entry)) }
          end)

(* Deliver the head message of link (src, dst). *)
let deliver variant cfg state (src, dst) =
  match link_get state.links (src, dst) with
  | [] -> None
  | m :: queue -> (
      let state = { state with links = link_set state.links (src, dst) queue } in
      let n = nth_node state dst in
      match m with
      | Mread loc ->
          (* Owner service: reply with the current entry. *)
          let entry =
            match mem_find n.mem loc with
            | Some e -> e
            | None -> failwith "model: owner lost an owned location"
          in
          Some { state with links = link_push state.links (dst, src) (Mread_reply (loc, entry)) }
      | Mwrite (loc, incoming) ->
          (* Owner certification: merge clocks, resolve against the current
             entry per the configured policy, store with the merged clock as
             writestamp, invalidate older cache. *)
          let clock =
            if variant = Skip_certify_merge then n.clock
            else clock_merge n.clock incoming.e_stamp
          in
          let current =
            match mem_find n.mem loc with
            | Some e -> e
            | None -> failwith "model: owner lost an owned location"
          in
          let concurrent =
            (not (stamp_lt current.e_stamp incoming.e_stamp))
            && not (stamp_lt incoming.e_stamp current.e_stamp)
            && current.e_stamp <> incoming.e_stamp
          in
          let accept =
            match cfg.policy with
            | Lww -> true
            | Owner_favored -> not (concurrent && fst current.e_wid = dst)
          in
          let stored =
            if accept then { incoming with e_stamp = clock_merge clock incoming.e_stamp }
            else current
          in
          let mem = mem_set n.mem loc stored in
          let mem = invalidate variant cfg.owner_of dst mem clock in
          let state = set_node state dst { n with clock; mem } in
          Some
            { state with links = link_push state.links (dst, src) (Mwrite_reply (loc, stored)) }
      | Mread_reply (loc, entry) -> (
          match n.blocked with
          | Some (Bread (l, clock_at_request)) when Loc.equal l loc ->
              (* Complete the read: merge, install, invalidate older.  The
                 stale-install guard: if our clock grew while the request
                 was in flight (we certified writes meanwhile), the fetched
                 entry may predate what we now know — use it for this read
                 but do not retain it.  Figure4_literal skips the guard,
                 exhibiting the violation in the published pseudocode. *)
              let clock =
                if variant = Skip_install_merge then n.clock
                else clock_merge n.clock entry.e_stamp
              in
              let retain = variant <> Faithful || n.clock = clock_at_request in
              let mem = if retain then mem_set n.mem loc entry else n.mem in
              let mem = invalidate variant cfg.owner_of dst mem entry.e_stamp in
              let n' =
                {
                  n with
                  clock;
                  mem;
                  blocked = None;
                  log = Lread (loc, entry.e_value, entry.e_wid) :: n.log;
                }
              in
              Some (set_node state dst n')
          | _ -> failwith "model: R_REPLY for a node not blocked on that read")
      | Mwrite_reply (loc, stored) -> (
          match n.blocked with
          | Some (Bwrite l) when Loc.equal l loc ->
              (* Complete the write: adopt the certified entry, no
                 invalidation on this path (Figure 4). *)
              let clock = clock_merge n.clock stored.e_stamp in
              let mem = mem_set n.mem loc stored in
              let n' =
                {
                  n with
                  clock;
                  mem;
                  blocked = None;
                  log = Lwrite (loc, stored.e_value, stored.e_wid) :: n.log;
                }
              in
              Some (set_node state dst n')
          | _ -> failwith "model: W_REPLY for a node not blocked on that write"))

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let locations_of cfg =
  List.concat_map
    (List.map (function Read l -> l | Write (l, _) -> l))
    cfg.programs
  |> List.sort_uniq Loc.compare

let initial_state cfg =
  let n = List.length cfg.programs in
  let locs = locations_of cfg in
  let zero = List.init n (fun _ -> 0) in
  let nodes =
    List.mapi
      (fun i prog ->
        (* Pre-materialise owned locations so lazy initialisation cannot
           make equal states look different. *)
        let mem =
          List.filter_map
            (fun loc ->
              if cfg.owner_of loc = i then
                Some (loc, { e_value = Value.initial; e_stamp = zero; e_wid = initial_wid })
              else None)
            locs
        in
        { mem; clock = zero; prog; blocked = None; log = []; wseq = 0 })
      cfg.programs
  in
  { nodes; links = [] }

let successors variant cfg state =
  let n = List.length state.nodes in
  let issues = List.filter_map (fun i -> issue cfg state i) (List.init n Fun.id) in
  let deliveries =
    List.filter_map (fun (key, _) -> deliver variant cfg state key) state.links
  in
  issues @ deliveries

let is_terminal state =
  state.links = []
  && List.for_all (fun n -> n.prog = [] && n.blocked = None) state.nodes

let check_invariants cfg state =
  List.iteri
    (fun i n ->
      List.iter
        (fun loc ->
          if cfg.owner_of loc = i && mem_find n.mem loc = None then
            failwith "model invariant: owned location invalidated")
        (locations_of cfg))
    state.nodes

let history_of_state state =
  let rows =
    List.mapi
      (fun pid n ->
        let ops = List.rev n.log in
        Array.of_list
          (List.mapi
             (fun index logged ->
               match logged with
               | Lread (loc, value, (wn, ws)) ->
                   let from =
                     if (wn, ws) = initial_wid then Wid.initial else Wid.make ~node:wn ~seq:ws
                   in
                   Op.read ~pid ~index ~loc ~value ~from
               | Lwrite (loc, value, (wn, ws)) ->
                   Op.write ~pid ~index ~loc ~value ~wid:(Wid.make ~node:wn ~seq:ws))
             ops))
      state.nodes
  in
  History.of_ops (Array.of_list rows)

type stats = {
  states_explored : int;
  terminal_histories : int;
  violations : (History.t * string) list;
  max_frontier : int;
}

let explore ?(state_limit = 2_000_000) ?(variant = Faithful) cfg =
  (match cfg.programs with [] -> invalid_arg "Model.explore: no programs" | _ -> ());
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 65_536 in
  let terminals : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let explored = ref 0 in
  let max_frontier = ref 0 in
  let stack = ref [ initial_state cfg ] in
  let frontier_size = ref 1 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | state :: rest ->
        stack := rest;
        decr frontier_size;
        if not (Hashtbl.mem visited state) then begin
          Hashtbl.replace visited state ();
          incr explored;
          if !explored > state_limit then failwith "Model.explore: state limit exceeded";
          check_invariants cfg state;
          if is_terminal state then begin
            let history = history_of_state state in
            let key = History.to_string history in
            if not (Hashtbl.mem terminals key) then begin
              Hashtbl.replace terminals key ();
              match Dsm_checker.Causal_check.check history with
              | Ok Dsm_checker.Causal_check.Correct -> ()
              | Ok (Dsm_checker.Causal_check.Violations (v :: _)) ->
                  violations := (history, v.Dsm_checker.Causal_check.reason) :: !violations
              | Ok (Dsm_checker.Causal_check.Violations []) -> ()
              | Error e -> violations := (history, "malformed: " ^ e) :: !violations
            end
          end
          else begin
            let succs = successors variant cfg state in
            List.iter
              (fun s ->
                stack := s :: !stack;
                incr frontier_size)
              succs;
            if !frontier_size > !max_frontier then max_frontier := !frontier_size
          end
        end
  done;
  {
    states_explored = !explored;
    terminal_histories = Hashtbl.length terminals;
    violations = !violations;
    max_frontier = !max_frontier;
  }

let final_values cfg state =
  let locs = locations_of cfg in
  List.map
    (fun loc ->
      let owner = cfg.owner_of loc in
      let n = List.nth state.nodes owner in
      match mem_find n.mem loc with
      | Some e -> (loc, e.e_value)
      | None -> failwith "model: owned location missing at terminal state")
    locs

let distinct_terminals ?(state_limit = 2_000_000) cfg =
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 65_536 in
  let terminals : (string, History.t * (Loc.t * Value.t) list) Hashtbl.t = Hashtbl.create 256 in
  let explored = ref 0 in
  let stack = ref [ initial_state cfg ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | state :: rest ->
        stack := rest;
        if not (Hashtbl.mem visited state) then begin
          Hashtbl.replace visited state ();
          incr explored;
          if !explored > state_limit then failwith "Model: state limit exceeded";
          if is_terminal state then begin
            let history = history_of_state state in
            let key =
              History.to_string history ^ "//"
              ^ String.concat ";"
                  (List.map
                     (fun (l, v) -> Loc.to_string l ^ "=" ^ Value.to_string v)
                     (final_values cfg state))
            in
            Hashtbl.replace terminals key (history, final_values cfg state)
          end
          else List.iter (fun s -> stack := s :: !stack) (successors Faithful cfg state)
        end
  done;
  Hashtbl.fold (fun _ entry acc -> entry :: acc) terminals []

let distinct_terminal_histories ?(state_limit = 2_000_000) cfg =
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 65_536 in
  let terminals : (string, History.t) Hashtbl.t = Hashtbl.create 1024 in
  let explored = ref 0 in
  let stack = ref [ initial_state cfg ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | state :: rest ->
        stack := rest;
        if not (Hashtbl.mem visited state) then begin
          Hashtbl.replace visited state ();
          incr explored;
          if !explored > state_limit then failwith "Model: state limit exceeded";
          if is_terminal state then begin
            let history = history_of_state state in
            Hashtbl.replace terminals (History.to_string history) history
          end
          else List.iter (fun s -> stack := s :: !stack) (successors Faithful cfg state)
        end
  done;
  Hashtbl.fold (fun _ h acc -> h :: acc) terminals []
