(** Exhaustive small-scope model checking of the Figure 4 owner protocol.

    The simulator executes one schedule per seed; this module executes
    {e all} of them.  The protocol is re-expressed as a pure transition
    system — node states are immutable values, the nondeterministic choices
    are "some non-blocked node issues its next operation" and "the head
    message of some FIFO link is delivered" — and the state space is
    explored exhaustively with memoisation.  Every terminal state's recorded
    history is checked against the causal-memory definition, and structural
    invariants (owners never invalidated, clocks monotone, blocked nodes
    have exactly one pending request) are asserted at every state.

    This is deliberately an independent re-implementation of the algorithm:
    agreement between the model, the simulator protocol and the paper's
    pseudocode is checked by the test suite. *)

type op =
  | Read of Dsm_memory.Loc.t
  | Write of Dsm_memory.Loc.t * Dsm_memory.Value.t

type program = op list
(** One process's straight-line program. *)

type policy = Lww | Owner_favored
(** Concurrent-write resolution at the owner (see {!Dsm_causal.Policy}). *)

type config = {
  owner_of : Dsm_memory.Loc.t -> int;  (** static ownership map *)
  programs : program list;  (** one per node; node count = length *)
  policy : policy;  (** how the owner resolves concurrent writes *)
}

val config : ?policy:policy -> owner_of:(Dsm_memory.Loc.t -> int) -> program list -> config
(** Convenience constructor; [policy] defaults to [Lww]. *)

type variant =
  | Faithful
      (** Figure 4 plus the stale-install guard: a fetched entry is not
          retained in the cache when the reader's clock grew while the
          request was in flight.  This is what the library implements. *)
  | Figure4_literal
      (** the published pseudocode verbatim: always cache the fetched
          entry.  Exploration finds causal violations — the owner can
          certify a write (merging causal knowledge) while its own read
          request is in flight, then cache the stale reply and later read
          an overwritten value.  See DESIGN.md, "Findings". *)
  | Skip_invalidation
      (** mutation: install fetched values without invalidating older cached
          copies — the explorer must find causal violations, demonstrating
          the invalidation rule is load-bearing *)
  | Skip_certify_merge
      (** mutation: the owner certifies writes without merging the writer's
          clock into its own *)
  | Skip_install_merge
      (** mutation: a reader installs a fetched value without merging its
          writestamp into the local clock *)

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminal_histories : int;  (** complete executions reached *)
  violations : (Dsm_memory.History.t * string) list;
      (** terminal histories rejected by the causal checker (empty iff the
          protocol is correct on this configuration) *)
  max_frontier : int;  (** peak depth of the DFS stack *)
}

val explore : ?state_limit:int -> ?variant:variant -> config -> stats
(** Exhaustively explore the configuration (default variant [Faithful]).
    [state_limit] (default [2_000_000]) aborts with [Failure] if the space
    is unexpectedly large.  Raises [Failure] on any internal invariant
    violation. *)

val distinct_terminal_histories : ?state_limit:int -> config -> Dsm_memory.History.t list
(** The set of distinct complete executions the protocol can produce on
    this configuration (deduplicated); useful to confirm a particular
    execution — e.g. the paper's Figure 5 — is reachable. *)

val distinct_terminals :
  ?state_limit:int ->
  config ->
  (Dsm_memory.History.t * (Dsm_memory.Loc.t * Dsm_memory.Value.t) list) list
(** Like {!distinct_terminal_histories} but each execution is paired with
    the final value of every location at its owner — the state the history
    alone cannot show (rejected writes leave no trace in it).  Used to
    verify the Section 4.2 dictionary-race argument exhaustively: under
    [Owner_favored], in every schedule where the deleter's read saw the old
    value, the re-inserted value survives. *)
