(** Schedule and program generators shared by the property tests and the
    model checker.

    Two families live here: the seeded {e random} closed-loop event
    generator the pure-core property tests replay ({!random_run}), and the
    {e small-scope} litmus programs the bounded model checker enumerates
    exhaustively ({!presets}, {!generic}). *)

type op =
  | Read of Dsm_memory.Loc.t
  | Write of Dsm_memory.Loc.t * Dsm_memory.Value.t
  | Query of string
      (** object query: synchronously fold the payloads this process has
          probed on the named family's op-log cells (latest probe per
          cell) through the family's sequential spec, mirroring the
          client-side merge of [Causal_object]; the return is certified by
          the generalized checker (spec-legal under some causal-past
          linearization), online and post-hoc *)

type fault =
  | No_faults
  | Crash of { victim : int; restart : bool }
      (** one crash of [victim]; takeover by its ring successor; optional
          restart (with write-ahead-log replay and view resynchronisation)
          once the takeover happened *)
  | Drop of { drops : int; dups : int }
      (** the adversary may drop and duplicate in-flight messages, up to
          the given budgets *)
  | Power
      (** whole-cluster power failure: one coordinated checkpoint round
          may be initiated, then one outage crashes every node at once,
          then one repowering restarts all of them from their logs *)
  | Partition of { minority : int list; majority : int list }
      (** one symmetric network partition between the two groups may be
          installed (cross-side messages freeze in their queues), each
          side's detector may then fire once — the minority owner's
          degrade tick, then the majority backup's takeover tick — and
          the partition may heal, releasing the frozen traffic *)

type scope = {
  sname : string;
  nodes : int;
  owner : Dsm_memory.Owner.t;  (** static base assignment *)
  programs : op list array;  (** one client program per node *)
  fault : fault;
  failover : bool;  (** heartbeats + shadow replication enabled *)
  mutation : Dsm_protocol.Config.mutation;
  shards : int;
      (** [> 1]: run under partial replication with this many shard rings
          ([Dsm_memory.Shard.make]); [<= 1]: unsharded full replication *)
  precise : bool;  (** run under [Config.Precise] digest-driven invalidation *)
}

val default_detector : Dsm_protocol.Detector.config
(** Period 5.0, suspect after 3 — the failover scenarios' detector. *)

val fresh_state : ?nodes:int -> unit -> Dsm_protocol.Protocol.state
(** A fresh core state with {!default_detector} failover (default 4
    nodes), as the property tests build. *)

val random_run :
  ?nodes:int ->
  seed:int64 ->
  steps:int ->
  unit ->
  Dsm_protocol.Protocol.event list * Dsm_protocol.Protocol.action list list
(** One seeded closed-loop run against {!fresh_state}: random deliveries
    of in-flight sends, owner writes, grace expiries, crashes, restarts
    and heartbeat ticks.  Returns the events (oldest first) and the action
    list each produced; bit-identical for equal [(nodes, seed, steps)]. *)

val x : Dsm_memory.Loc.t
val y : Dsm_memory.Loc.t
val z : Dsm_memory.Loc.t

val mp : scope
val publication : scope
val race : scope
val failover : scope
val fence : scope
val lossy : scope
val power : scope
val partition : scope
val shard_scope : scope
val objects_scope : scope

val presets : scope list
(** All of the above, each small enough for exhaustive exploration. *)

val preset : string -> scope option

val matrix : (Dsm_protocol.Config.mutation * string) list
(** Which preset exhibits each protocol mutation: the model checker must
    find a counterexample for every pair, and none unmutated. *)

val generic : nodes:int -> ops:int -> fault:fault -> scope
(** A message-passing-flavoured scope of the given size: node 0 alternates
    writes over x and y, everyone else reads them in anti-phase. *)
