module P = Dsm_protocol.Protocol
module Config = Dsm_protocol.Config
module Detector = Dsm_protocol.Detector
module Owner = Dsm_memory.Owner
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Prng = Dsm_util.Prng

type op = Read of Loc.t | Write of Loc.t * Value.t | Query of string

type fault =
  | No_faults
  | Crash of { victim : int; restart : bool }
  | Drop of { drops : int; dups : int }
  | Power
  | Partition of { minority : int list; majority : int list }

type scope = {
  sname : string;
  nodes : int;
  owner : Owner.t;
  programs : op list array;
  fault : fault;
  failover : bool;
  mutation : Config.mutation;
  shards : int;  (* <= 1: unsharded (full replication) *)
  precise : bool;  (* run under [Config.Precise] invalidation *)
}

let default_detector = { Detector.period = 5.0; suspect_after = 3 }

(* ------------------------------------------------------------------ *)
(* Random closed-loop event schedules (shared with test_protocol)      *)
(* ------------------------------------------------------------------ *)

let fresh_state ?(nodes = 4) () =
  P.create ~owner:(Owner.by_index ~nodes) ~config:Config.default ~detector:default_detector
    ~now:0.0 ()

(* Drive one random run against a fresh state, returning the event
   sequence (oldest first) and the action list each event produced.
   [Send] actions feed back as future [Deliver]s, [Arm_grace] as
   [Grace_expired]; everything is drawn from the seeded PRNG, so a given
   (nodes, seed, steps) triple regenerates bit-identically. *)
let random_run ?(nodes = 4) ~seed ~steps () =
  let prng = Prng.create seed in
  let st = fresh_state ~nodes () in
  let loc i = Loc.indexed "v" i in
  let pending = ref [] (* in-flight (dst, src, msg) *) in
  let graces = ref [] (* armed (node, seq) *) in
  let events = ref [] in
  let actions = ref [] in
  let now = ref 0.0 in
  let writers = ref 0 in
  let apply ev =
    events := ev :: !events;
    let _, acts = P.step st ev in
    actions := acts :: !actions;
    List.iter
      (function
        | P.Send { src; dst; msg; _ } -> pending := (dst, src, msg) :: !pending
        | P.Arm_grace { node; seq } -> graces := (node, seq) :: !graces
        | _ -> ())
      acts
  in
  let take_nth r i =
    let x = List.nth !r i in
    r := List.filteri (fun j _ -> j <> i) !r;
    x
  in
  (* A base still under its static owner, not crashed, if any. *)
  let writable_node () =
    let taken_over = List.map (fun (b, _, _) -> b) (P.view st) in
    let candidates =
      List.init nodes Fun.id
      |> List.filter (fun n -> (not (P.is_crashed st n)) && not (List.mem n taken_over))
    in
    match candidates with
    | [] -> None
    | cs -> Some (List.nth cs (Prng.int prng (List.length cs)))
  in
  for _ = 1 to steps do
    now := !now +. Prng.float prng 2.0;
    let choice = Prng.int prng 100 in
    if choice < 40 && !pending <> [] then begin
      let dst, src, msg = take_nth pending (Prng.int prng (List.length !pending)) in
      apply (P.Deliver { dst; src; now = !now; msg })
    end
    else if choice < 60 then begin
      match writable_node () with
      | Some n ->
          incr writers;
          apply
            (P.Owner_write
               {
                 node = n;
                 loc = loc ((Prng.int prng 2 * nodes) + n);
                 value = Value.Int !writers;
                 writer = !writers;
               })
      | None -> ()
    end
    else if choice < 70 && !graces <> [] then begin
      let node, seq = take_nth graces (Prng.int prng (List.length !graces)) in
      apply (P.Grace_expired { node; seq })
    end
    else if choice < 76 then begin
      (* Crash someone who is up (but never everyone at once). *)
      let up = List.init nodes Fun.id |> List.filter (fun n -> not (P.is_crashed st n)) in
      if List.length up > 1 then
        apply (P.Crash { node = List.nth up (Prng.int prng (List.length up)) })
    end
    else if choice < 82 then begin
      let down = List.init nodes Fun.id |> List.filter (P.is_crashed st) in
      if down <> [] then
        apply
          (P.Restart
             {
               node = List.nth down (Prng.int prng (List.length down));
               now = !now;
               records = [];
             })
    end
    else apply (P.Hb_tick { node = Prng.int prng nodes; now = !now })
  done;
  (List.rev !events, List.rev !actions)

(* ------------------------------------------------------------------ *)
(* Small-scope programs                                                *)
(* ------------------------------------------------------------------ *)

let x = Loc.named "x"
let y = Loc.named "y"
let z = Loc.named "z"

let owner_fn ~nodes assign = Owner.make ~nodes (fun loc -> assign loc)

(* Message passing: one writer publishes x then y, one reader consumes in
   the opposite order.  Both locations live at the writer. *)
let mp =
  {
    sname = "mp";
    nodes = 2;
    owner = owner_fn ~nodes:2 (fun _ -> 0);
    programs =
      [|
        [ Write (x, Value.Int 1); Write (y, Value.Int 2) ]; [ Read y; Read x ];
      |];
    fault = No_faults;
    failover = false;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Publication with a re-read: the reader caches the old y, sees the new x,
   then reads y again — the cached copy must have been invalidated.
   Catches [Skip_invalidation]. *)
let publication =
  {
    sname = "publication";
    nodes = 2;
    owner = owner_fn ~nodes:2 (fun _ -> 0);
    programs =
      [|
        [ Write (y, Value.Int 1); Write (x, Value.Int 2) ];
        [ Read y; Read x; Read y ];
      |];
    fault = No_faults;
    failover = false;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Three-party race: the x-writer's causal history (it read y=3) must ride
   on its writestamp so the owner's certified entry invalidates the
   reader's stale cached y.  Catches [Skip_writestamp_merge]. *)
let race =
  {
    sname = "race";
    nodes = 3;
    owner =
      owner_fn ~nodes:3 (fun loc ->
          if Loc.equal loc x then 1 else if Loc.equal loc y then 2 else 0);
    programs =
      [|
        [ Read y; Write (x, Value.Int 5) ];
        [ Read y; Read x; Read y ];
        [ Write (y, Value.Int 1); Write (y, Value.Int 3) ];
      |];
    fault = No_faults;
    failover = false;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Owner crash with takeover: node 2 writes x (served by the victim) then y
   (served by the backup); the backup reads y then x after promoting.  The
   acknowledged w(x)1 must survive the takeover — catches
   [Reorder_apply_ack] and [Skip_shadow_replication]. *)
let failover =
  {
    sname = "failover";
    nodes = 3;
    owner =
      owner_fn ~nodes:3 (fun loc ->
          if Loc.equal loc x then 0 else if Loc.equal loc y then 1 else 0);
    programs =
      [| []; [ Read y; Read x ]; [ Write (x, Value.Int 1); Write (y, Value.Int 2) ] |];
    fault = Crash { victim = 0; restart = false };
    failover = true;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Crash, takeover, restart: the restarted (deposed) node 0 must fence
   reads arriving under its old epoch instead of fabricating answers for
   locations it no longer serves.  Catches [Ignore_epoch_fence]. *)
let fence =
  {
    sname = "fence";
    nodes = 4;
    owner =
      owner_fn ~nodes:4 (fun loc ->
          if Loc.equal loc x then 0 else if Loc.equal loc y then 1 else 0);
    programs =
      [|
        [];
        [];
        [ Write (x, Value.Int 1); Write (y, Value.Int 2) ];
        [ Read y; Read x ];
      |];
    fault = Crash { victim = 0; restart = true };
    failover = true;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Message passing under a lossy, duplicating link with small budgets. *)
let lossy =
  {
    mp with
    sname = "lossy";
    fault = Drop { drops = 1; dups = 1 };
  }

(* Checkpoint, then crash everywhere: the writer's w(x)1 is certified and
   logged at node 0; a coordinated checkpoint folds it into a snapshot and
   compaction truncates the log behind it; the outage wipes every volatile
   state at once.  After repowering, the reader's second r(x) must still
   see a value at least as new as its first — replay from the snapshot
   guarantees it.  Catches [Truncate_wal_early], whose compaction cut
   drops the anchor checkpoint itself and loses the snapshotted write. *)
let power =
  {
    sname = "power";
    nodes = 2;
    owner = owner_fn ~nodes:2 (fun _ -> 0);
    programs = [| [ Write (x, Value.Int 1) ]; [ Read x; Read x ] |];
    fault = Power;
    failover = false;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Network partition with quorum-gated takeover: every location served by
   node 0, which the cut isolates from the majority {1, 2} (node 1 is its
   designated backup).  During the partition the isolated owner tries to
   write x, while the majority elects node 1 over base 0 with ⌊3/2⌋+1 = 2
   OWNER_VOTE grants; node 0's own counter-canvass (over base 2, whose
   backup it is) can never exceed its lone self-vote, so the minority side
   stays read-only.  Safety hinges on node 0 observing quorum loss and
   degrading before the majority-side promotion completes (the
   lease-timing assumption the explorer's Degrade-before-Takeover gate
   encodes): a degraded node 0 refuses its own write, so the base never
   has two write-accepting servers.  Node 2 reads x to exercise the
   post-heal fencing and frontier-reconciliation paths.  Catches
   [Takeover_without_quorum], which promotes on suspicion alone — the
   promotion then races ahead of the minority owner's degrade and both
   sides accept writes, the split-brain the dual-certification invariant
   flags. *)
let partition =
  {
    sname = "partition";
    nodes = 3;
    owner = owner_fn ~nodes:3 (fun _ -> 0);
    programs = [| [ Write (x, Value.Int 1) ]; []; [ Read x ] |];
    fault = Partition { minority = [ 0 ]; majority = [ 1; 2 ] };
    failover = true;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

(* Partial replication: 4 nodes in 2 shards (rings {0,1} and {2,3}); the
   indexed family "s" stripes by index mod 2, so s[0] and s[4] both live in
   shard 0 with base owner 0 under the induced map.  Node 1 (a ring member
   of shard 0) publishes y=s[0] then x=s[4]; node 3 (ring of shard 1, {e
   not} born into shard 0's share-set) reads y, x, y — its first read
   subscribes it on access, so shard 0's precise-invalidation digests must
   keep flowing to it.  Runs under [Config.Precise], where invalidation of
   cached copies is digest-driven: [Prune_share_set_wrongly] filters reply
   digests as if runtime subscribers were not in the share-set, node 3's
   cached stale y survives the x read that causally follows the newer
   write, and the third read violates causality. *)
let shard_scope =
  let sy = Loc.indexed "s" 0 in
  let sx = Loc.indexed "s" 4 in
  let layout = Dsm_memory.Shard.make ~nodes:4 ~shards:2 in
  {
    sname = "shard";
    nodes = 4;
    owner = Dsm_memory.Shard.owner layout;
    programs =
      [|
        [];
        [ Write (sy, Value.Int 1); Write (sx, Value.Int 2) ];
        [];
        [ Read sy; Read sx; Read sy ];
      |];
    fault = No_faults;
    failover = false;
    mutation = Config.No_mutation;
    shards = 2;
    precise = true;
  }

(* Causal objects: both nodes append an increment to their own op-log cell
   of the counter family ("ctr", see lib/objects), probe the other's cell
   and query.  The query folds the probed payloads through the counter
   spec; the generalized checker certifies every interleaving's return
   against the causal-past-linearization rule.  Catches [Merge_drops_op],
   the client-side merge bug that folds one observed update short — each
   probe read stays register-legal, so only the object layer sees it. *)
let objects_scope =
  let c0 = Loc.cell "ctr" 0 0 in
  let c1 = Loc.cell "ctr" 1 0 in
  {
    sname = "objects";
    nodes = 2;
    owner = owner_fn ~nodes:2 (fun _ -> 0);
    programs =
      [|
        [ Write (c0, Value.Str "inc"); Read c1; Query "ctr" ];
        [ Write (c1, Value.Str "inc"); Read c0; Query "ctr" ];
      |];
    fault = No_faults;
    failover = false;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }

let presets =
  [ mp; publication; race; failover; fence; lossy; power; partition; shard_scope; objects_scope ]

let preset name = List.find_opt (fun s -> s.sname = name) presets

(* Which preset exhibits each mutation: the matrix the checker must ace. *)
let matrix =
  [
    (Config.Skip_invalidation, "publication");
    (Config.Skip_writestamp_merge, "race");
    (Config.Reorder_apply_ack, "failover");
    (Config.Skip_shadow_replication, "failover");
    (Config.Ignore_epoch_fence, "fence");
    (Config.Truncate_wal_early, "power");
    (Config.Takeover_without_quorum, "partition");
    (Config.Prune_share_set_wrongly, "shard");
    (Config.Merge_drops_op, "objects");
  ]

(* A generic message-passing-flavoured scope: node 0 alternates writes over
   x and y, everyone else reads them in anti-phase. *)
let generic ~nodes ~ops ~fault =
  if nodes < 2 then invalid_arg "Gen.generic: need at least 2 nodes";
  let owner = owner_fn ~nodes (fun loc -> if Loc.equal loc y then 1 mod nodes else 0) in
  let program i =
    List.init ops (fun j ->
        if i = 0 then Write ((if j mod 2 = 0 then x else y), Value.Int (j + 1))
        else if i = 1 then Read (if j mod 2 = 0 then y else x)
        else Read (if j mod 2 = 0 then x else y))
  in
  let failover = match fault with Crash _ -> true | _ -> false in
  {
    sname = Printf.sprintf "generic-%dx%d" nodes ops;
    nodes;
    owner;
    programs = Array.init nodes program;
    fault;
    failover;
    mutation = Config.No_mutation;
    shards = 0;
    precise = false;
  }
