module P = Dsm_protocol.Protocol
module Message = Dsm_protocol.Message
module Log_record = Dsm_protocol.Log_record
module Node = Dsm_protocol.Node
module Config = Dsm_protocol.Config
module Stamped = Dsm_protocol.Stamped
module Trace = Dsm_protocol.Trace
module Loc = Dsm_memory.Loc
module Op = Dsm_memory.Op
module History = Dsm_memory.History
module Online = Dsm_checker.Online
module Check = Dsm_checker.Causal_check
module Obj_check = Dsm_checker.Obj_check
module Registry = Dsm_objects.Registry
module Wid = Dsm_memory.Wid

type choice =
  | Issue of int
  | Deliver of { src : int; dst : int }
  | Drop_msg of { src : int; dst : int }
  | Dup_msg of { src : int; dst : int }
  | Crash_victim
  | Takeover_tick
  | Restart_victim
  | Begin_cp
  | Power_failure
  | Recover_all
  | Install_partition
  | Degrade_tick
  | Heal_partition

let pp_choice ppf = function
  | Issue pid -> Format.fprintf ppf "issue@%d" pid
  | Deliver { src; dst } -> Format.fprintf ppf "deliver %d->%d" src dst
  | Drop_msg { src; dst } -> Format.fprintf ppf "drop %d->%d" src dst
  | Dup_msg { src; dst } -> Format.fprintf ppf "dup %d->%d" src dst
  | Crash_victim -> Format.fprintf ppf "crash"
  | Takeover_tick -> Format.fprintf ppf "takeover-tick"
  | Restart_victim -> Format.fprintf ppf "restart"
  | Begin_cp -> Format.fprintf ppf "begin-cp"
  | Power_failure -> Format.fprintf ppf "power-failure"
  | Recover_all -> Format.fprintf ppf "recover-all"
  | Install_partition -> Format.fprintf ppf "install-partition"
  | Degrade_tick -> Format.fprintf ppf "degrade-tick"
  | Heal_partition -> Format.fprintf ppf "heal-partition"

(* What a process is blocked on, mirroring the rendezvous of the cluster
   shell: a read or write request in flight (with the redirect budget the
   shell keeps), or a local owner write awaiting its shadow
   acknowledgement. *)
type status =
  | Idle
  | Waiting_read of {
      req : int;
      loc : Loc.t;
      vt_at_request : Vclock.t;  (** stale-install guard snapshot *)
      redirects : int;
    }
  | Waiting_write of { req : int; loc : Loc.t; entry : Stamped.t; redirects : int }
  | Waiting_writer of { token : int }

type t = {
  scope : Gen.scope;
  config : Config.t;
  core : P.state;
  queues : (string * int * Message.t) Queue.t array array;  (** [queues.(src).(dst)] *)
  progs : Gen.op list array;  (** remaining program, next op first *)
  status : status array;
  ops : Op.t list array;  (** recorded history per pid, newest first *)
  op_index : int array;
  wal : Dsm_protocol.Log_record.t list array;  (** newest first *)
  online : Online.t;
  owner_stamp : (int * string, Vclock.t) Hashtbl.t;
  read_stamp : (int * string, Vclock.t) Hashtbl.t;
  mutable violation : (int * string) option;
  mutable queries : Obj_check.query list;  (** recorded object queries, newest first *)
  mutable crashed_done : bool;
  mutable takeover_done : bool;
  mutable restarted : bool;
  mutable cp_done : bool;
  mutable outage_done : bool;
  mutable recovered_done : bool;
  mutable partition_installed : bool;
  mutable degrade_done : bool;
  mutable partition_healed : bool;
  mutable mc_now : float;
      (** The model's coarse clock: 0.0 until the first detector tick,
          1e9 after — deliveries carry it so voters' check-quorum test
          (has the incumbent been silent beyond the window?) sees the
          same silence the ticking detector did.  Always derivable from
          [takeover_done]/[degrade_done], so it needs no fingerprint. *)
  mutable drops_left : int;
  mutable dups_left : int;
  mutable next_writer : int;
  mutable last_local : Stamped.t option;
  mutable stale_replies : int;
  tracing : bool;
  mutable trace : Trace.event list;  (** newest first *)
  mutable trace_seq : int;
}

let init ?(tracing = false) (scope : Gen.scope) =
  let config = Config.with_mutation scope.mutation Config.default in
  let config =
    if scope.precise then Config.with_invalidation Config.Precise config else config
  in
  let detector = if scope.failover then Some Gen.default_detector else None in
  (* Sharded scopes build a fresh layout per replay: subscriber sets are
     mutable protocol state, so sharing one across DFS branches would leak
     subscriptions between interleavings. *)
  let sharding =
    if scope.shards > 1 then Some (Dsm_memory.Shard.make ~nodes:scope.nodes ~shards:scope.shards)
    else None
  in
  let core = P.create ~owner:scope.owner ~config ?detector ?sharding ~now:0.0 () in
  if tracing then P.set_tracing core true;
  let n = scope.nodes in
  let drops, dups =
    match scope.fault with Gen.Drop { drops; dups } -> (drops, dups) | _ -> (0, 0)
  in
  {
    scope;
    config;
    core;
    queues = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
    progs = Array.copy scope.programs;
    status = Array.make n Idle;
    ops = Array.make n [];
    op_index = Array.make n 0;
    wal = Array.make n [];
    (* Windowed: model-checked scopes are far smaller than the window, so
       compaction never fires and verdicts match the unbounded checker —
       this exercises the windowed configuration on every explored
       interleaving without weakening the check. *)
    online = Online.create ~window:64 ();
    owner_stamp = Hashtbl.create 16;
    read_stamp = Hashtbl.create 16;
    violation = None;
    queries = [];
    crashed_done = false;
    takeover_done = false;
    restarted = false;
    cp_done = false;
    outage_done = false;
    recovered_done = false;
    partition_installed = false;
    degrade_done = false;
    partition_healed = false;
    mc_now = 0.0;
    drops_left = drops;
    dups_left = dups;
    next_writer = 0;
    last_local = None;
    stale_replies = 0;
    tracing;
    trace = [];
    trace_seq = 0;
  }

let victim t = match t.scope.fault with Gen.Crash { victim; _ } -> victim | _ -> -1

(* Partition-scope geometry.  The isolated owner is the minority's head;
   the takeover candidate is its designated ring-successor backup. *)
let partition_groups t =
  match t.scope.fault with
  | Gen.Partition { minority; majority } -> Some (minority, majority)
  | _ -> None

let partition_owner t =
  match partition_groups t with Some (minority, _) -> List.hd minority | None -> -1

let partition_backup t =
  match P.backup_of t.core ~serving:(partition_owner t) with Some b -> b | None -> -1

(* A directed link is frozen while the partition is installed: messages
   sent across the cut stay queued (neither deliverable nor droppable) and
   are released intact by the heal — the model of a cable cut, where
   in-flight traffic is the retransmission backlog the reliable layer
   replays once the link returns. *)
let frozen t src dst =
  t.partition_installed
  && (not t.partition_healed)
  &&
  match partition_groups t with
  | Some (minority, majority) ->
      (List.mem src minority && List.mem dst majority)
      || (List.mem src majority && List.mem dst minority)
  | None -> false

let emit_trace t body =
  if t.tracing then begin
    let clock =
      match Trace.actor body with
      | Some a when a >= 0 && a < t.scope.nodes -> Some (Node.vt (P.node t.core a))
      | _ -> None
    in
    let seq = t.trace_seq in
    t.trace_seq <- seq + 1;
    t.trace <- { Trace.seq; time = float_of_int seq; clock; body } :: t.trace
  end

let set_violation t node reason =
  if t.violation = None then begin
    t.violation <- Some (node, reason);
    emit_trace t (Trace.Violation { node; reason })
  end

(* ------------------------------------------------------------------ *)
(* Inline invariants                                                   *)
(* ------------------------------------------------------------------ *)

(* A stored served entry must never be replaced by a strictly older one:
   the resolution policy rejects dominated writes, so a regression means a
   certification rule was broken.  (A concurrent replacement is legal under
   last-writer-wins, so only [lt] is flagged.) *)
let check_owner_monotone t =
  for i = 0 to t.scope.nodes - 1 do
    if not (P.is_crashed t.core i) then begin
      let nd = P.node t.core i in
      List.iter
        (fun (loc, (entry : Stamped.t)) ->
          if Node.owns nd loc then begin
            let key = (i, Loc.to_string loc) in
            (match Hashtbl.find_opt t.owner_stamp key with
            | Some prev when Vclock.lt entry.stamp prev ->
                set_violation t i
                  (Printf.sprintf "served entry for %s regressed at node %d" (Loc.to_string loc) i)
            | _ -> ());
            Hashtbl.replace t.owner_stamp key entry.stamp
          end)
        (Node.entries nd)
    end
  done

(* A node must only answer READ/WRITE requests for locations it currently
   serves — the epoch fence enforces exactly this across takeovers. *)
let check_reply_fence t ~src msg =
  let flag loc =
    if not (Node.owns (P.node t.core src) loc) then
      set_violation t src
        (Printf.sprintf "node %d replied for %s without serving it" src (Loc.to_string loc))
  in
  match msg with
  | Message.Read_reply { loc; _ } | Message.Write_reply { loc; _ } -> flag loc
  | _ -> ()

(* Split-brain oracle, checked while the partition is open: the moment a
   node accepts a write for some base (an accepted [W_REPLY] send, or a
   local owner certification), no other live, non-degraded node may
   simultaneously believe it serves that base under a different epoch —
   two write-accepting servers is the dual mastership quorum fencing
   exists to prevent.  A partition-degraded owner is exempt: it refuses
   writes, so it is not a second master.  The check is scoped to the
   partition window because after the heal a deposed owner may briefly
   accept writes before the takeover broadcast reaches it; the epoch fence
   plus frontier reconciliation resolve that convergence window, and the
   post-hoc causal check covers it. *)
let check_dual_certification t ~node:src ~base =
  if t.partition_installed && not t.partition_healed then begin
    let my_epoch = Node.epoch_of (P.node t.core src) ~base in
    for j = 0 to t.scope.nodes - 1 do
      if
        j <> src
        && (not (P.is_crashed t.core j))
        && not (P.partition_degraded t.core j)
      then begin
        let nj = P.node t.core j in
        if Node.serving_of nj ~base = j && Node.epoch_of nj ~base <> my_epoch then
          set_violation t src
            (Printf.sprintf
               "split-brain: nodes %d (epoch %d) and %d (epoch %d) both accept writes for base %d"
               src my_epoch j (Node.epoch_of nj ~base) base)
      end
    done
  end

(* Successive reads of one location by one process must never regress
   causally: a strictly older writestamp means the process re-read a value
   its own history had already overwritten (a Definition-1 violation). *)
let check_read_stamp t pid loc (entry : Stamped.t) =
  let key = (pid, Loc.to_string loc) in
  (match Hashtbl.find_opt t.read_stamp key with
  | Some prev when Vclock.lt entry.stamp prev ->
      set_violation t pid
        (Printf.sprintf "process %d re-read an older %s" pid (Loc.to_string loc))
  | _ -> ());
  Hashtbl.replace t.read_stamp key entry.stamp

(* ------------------------------------------------------------------ *)
(* Recording and the client paths (mirroring Cluster)                  *)
(* ------------------------------------------------------------------ *)

let feed_online t op =
  match Online.add_op t.online op with
  | [] -> ()
  | v :: _ -> set_violation t v.Online.v_op.Op.pid ("online: " ^ v.Online.v_reason)

let record_read t pid loc (entry : Stamped.t) =
  check_read_stamp t pid loc entry;
  let index = t.op_index.(pid) in
  t.op_index.(pid) <- index + 1;
  let op = Op.read ~pid ~index ~loc ~value:entry.value ~from:entry.wid in
  t.ops.(pid) <- op :: t.ops.(pid);
  emit_trace t (Trace.Op_read { node = pid; loc; value = entry.value; from = entry.wid });
  feed_online t op

let record_write t pid loc value wid =
  let index = t.op_index.(pid) in
  t.op_index.(pid) <- index + 1;
  let op = Op.write ~pid ~index ~loc ~value ~wid in
  t.ops.(pid) <- op :: t.ops.(pid);
  emit_trace t (Trace.Op_write { node = pid; loc; value; wid });
  feed_online t op

let post t ~src ~dst ~kind ~size msg =
  Queue.add (kind, size, msg) t.queues.(src).(dst);
  emit_trace t (Trace.Send { src; dst; kind; size })

let send_read t pid loc ~vt_at_request ~redirects =
  let nd = P.node t.core pid in
  let req = Node.next_req nd in
  let dst = Node.owner_of nd loc in
  let epoch = Node.epoch_of nd ~base:(Node.base_owner_of nd loc) in
  t.status.(pid) <- Waiting_read { req; loc; vt_at_request; redirects };
  post t ~src:pid ~dst ~kind:"READ" ~size:t.config.Config.read_request_size
    (Message.Read_req { req; loc; epoch })

let send_write t pid loc entry ~redirects =
  let nd = P.node t.core pid in
  let req = Node.next_req nd in
  let dst = Node.owner_of nd loc in
  let epoch = Node.epoch_of nd ~base:(Node.base_owner_of nd loc) in
  let digest = Node.digest_export nd in
  t.status.(pid) <- Waiting_write { req; loc; entry; redirects };
  post t ~src:pid ~dst ~kind:"WRITE" ~size:(t.config.Config.entry_size t.scope.nodes)
    (Message.Write_req { req; loc; entry; digest; epoch })

(* Too many fencing redirects: the shell would surface [Timed_out]; here the
   process just abandons the rest of its program (still a valid prefix). *)
let give_up t pid =
  t.status.(pid) <- Idle;
  t.progs.(pid) <- []

let rec apply_event t ev =
  let _, acts = P.step t.core ev in
  List.iter (perform t) acts;
  check_owner_monotone t

and perform t = function
  | P.Send { src; dst; kind; size; msg } ->
      check_reply_fence t ~src msg;
      (match msg with
      | Message.Write_reply { accepted = true; loc; _ } ->
          check_dual_certification t ~node:src
            ~base:(Node.base_owner_of (P.node t.core src) loc)
      | _ -> ());
      post t ~src ~dst ~kind ~size msg
  | P.Client_reply { node; req; msg } -> client_reply t node req msg
  | P.Wake_writer { node; writer } -> (
      match t.status.(node) with
      | Waiting_writer { token } when token = writer -> t.status.(node) <- Idle
      | _ -> t.stale_replies <- t.stale_replies + 1)
  | P.Append { node; record } -> t.wal.(node) <- record :: t.wal.(node)
  | P.Take_checkpoint { node; round = _ } ->
      (* The modeled durable path of [Cluster.checkpoint_now]: snapshot the
         node into its log, then compact behind the newest checkpoint.  The
         [Truncate_wal_early] mutation cuts one entry past the safe
         boundary — the anchor checkpoint itself — so replay loses the
         snapshotted state (the off-by-one the matrix must catch). *)
      t.wal.(node) <- Log_record.Checkpoint (Node.snapshot (P.node t.core node)) :: t.wal.(node);
      let extra =
        match t.config.Config.mutation with Config.Truncate_wal_early -> 1 | _ -> 0
      in
      let rec anchor i = function
        | [] -> None
        | Log_record.Checkpoint _ :: _ -> Some i
        | _ :: rest -> anchor (i + 1) rest
      in
      (match anchor 0 t.wal.(node) with
      | None -> ()
      | Some i ->
          let keep = max 0 (i + 1 - extra) in
          t.wal.(node) <- List.filteri (fun j _ -> j < keep) t.wal.(node))
  | P.Arm_grace _ -> ()  (* grace expiry is outside the explored scope *)
  | P.Local_write_done { entry; _ } -> t.last_local <- Some entry
  | P.Emit body -> emit_trace t body

and client_reply t node req msg =
  match t.status.(node) with
  | Waiting_read r when r.req = req -> (
      match msg with
      | Message.Read_reply { entry; page; digest; _ } ->
          let nd = P.node t.core node in
          Node.digest_merge nd digest;
          (* Stale-install guard: retain the reply only if this node's clock
             did not grow while the request was in flight. *)
          if Vclock.equal r.vt_at_request (Node.vt nd) then
            Node.install_batch nd ((r.loc, entry) :: page)
          else Node.install_transient nd ((r.loc, entry) :: page);
          Node.enforce_capacity nd;
          t.status.(node) <- Idle;
          record_read t node r.loc entry
      | Message.Stale_epoch { base; epoch; serving; _ } ->
          t.status.(node) <- Idle;
          apply_event t (P.Learn_view { node; base; epoch; serving });
          if r.redirects >= 2 * t.scope.nodes then give_up t node
          else
            send_read t node r.loc ~vt_at_request:r.vt_at_request
              ~redirects:(r.redirects + 1)
      | _ -> t.stale_replies <- t.stale_replies + 1)
  | Waiting_write w when w.req = req -> (
      match msg with
      | Message.Write_reply { entry = stored; digest; _ } ->
          let nd = P.node t.core node in
          Node.digest_merge nd digest;
          Node.adopt_write_reply nd w.loc stored;
          Node.enforce_capacity nd;
          t.status.(node) <- Idle
      | Message.Stale_epoch { base; epoch; serving; _ } ->
          t.status.(node) <- Idle;
          apply_event t (P.Learn_view { node; base; epoch; serving });
          if w.redirects >= 2 * t.scope.nodes then give_up t node
          else send_write t node w.loc w.entry ~redirects:(w.redirects + 1)
      | _ -> t.stale_replies <- t.stale_replies + 1)
  | Idle | Waiting_read _ | Waiting_write _ | Waiting_writer _ ->
      t.stale_replies <- t.stale_replies + 1

let do_read t pid loc =
  let nd = P.node t.core pid in
  match Node.lookup nd loc with
  | Some entry -> record_read t pid loc entry
  | None -> send_read t pid loc ~vt_at_request:(Node.vt nd) ~redirects:0

let do_write t pid loc value =
  let nd = P.node t.core pid in
  if Node.owns nd loc then begin
    if P.partition_degraded t.core pid then
      (* The shell refuses local writes on a partition-degraded owner
         before dispatching (it raises [Timed_out]); here the refused op
         is simply dropped — the recorded prefix stays a legal history. *)
      ()
    else begin
      (* Owner write: runs through the core, which certifies, logs and
         shadows; the process stays blocked until [Wake_writer].  The write
         is recorded at issue — it is certified before anything else runs. *)
      let token = t.next_writer in
      t.next_writer <- token + 1;
      t.status.(pid) <- Waiting_writer { token };
      t.last_local <- None;
      apply_event t (P.Owner_write { node = pid; loc; value; writer = token });
      check_dual_certification t ~node:pid ~base:(Node.base_owner_of nd loc);
      match t.last_local with
      | Some entry -> record_write t pid loc value entry.Stamped.wid
      | None -> assert false
    end
  end
  else begin
    (* Remote write: increment, ship for certification, adopt on reply.
       Recording at issue keeps the reads-from source available to the
       checkers even if the acknowledgement never arrives; an unacked write
       is causally maximal, so the recorded prefix stays a legal history. *)
    Node.set_vt nd (Vclock.increment (Node.vt nd) pid);
    let wid = Node.fresh_wid nd in
    let entry = Stamped.make ~value ~stamp:(Node.vt nd) ~wid in
    record_write t pid loc value wid;
    send_write t pid loc entry ~redirects:0
  end

(* An object query: synchronously fold the payloads this process has
   probed on [obj]'s op-log cells (its latest read per cell, skipping
   cells still at their initial value) through the family's spec — the
   model of [Causal_object.Client]'s merge, whose probe reads the litmus
   program issues explicitly.  The query is recorded with its observation
   set for post-hoc certification and fed to the online checker at once.
   Under [Merge_drops_op] the fold silently skips the last observed update
   (the client-side lost-op bug) while the {e recorded} observation set
   stays truthful — every probe read is register-legal, so only the
   object-level certification can flag the spec-illegal return. *)
let do_query t pid obj =
  let sem = Registry.find obj in
  let best : (int * int, Op.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (o : Op.t) ->
      if Op.is_read o then
        match o.Op.loc with
        | Loc.Cell (name, ci, cj) when String.equal name obj ->
            let key = (ci, cj) in
            (match Hashtbl.find_opt best key with
            | Some (prev : Op.t) when prev.Op.index >= o.Op.index -> ()
            | _ -> Hashtbl.replace best key o)
        | _ -> ())
    t.ops.(pid);
  let observed =
    Hashtbl.fold (fun cell (o : Op.t) acc -> (cell, o) :: acc) best []
    |> List.filter (fun (_, (o : Op.t)) -> not (Wid.is_initial o.Op.wid))
    |> List.sort (fun (c1, _) (c2, _) -> compare c1 c2)
  in
  let folded =
    if t.config.Config.mutation = Config.Merge_drops_op then
      match List.rev observed with _ :: rest -> List.rev rest | [] -> []
    else observed
  in
  let ret =
    match sem with
    | Some s -> s.Obj_check.fold (List.map (fun (_, (o : Op.t)) -> Obj_check.payload o.Op.value) folded)
    | None -> "?"
  in
  let pairs = List.map (fun (_, (o : Op.t)) -> (o.Op.loc, o.Op.wid)) observed in
  t.queries <-
    {
      Obj_check.q_pid = pid;
      q_obj = obj;
      q_ret = ret;
      q_anchor = t.op_index.(pid) - 1;
      q_observed = Some pairs;
    }
    :: t.queries;
  emit_trace t (Trace.Op_query { node = pid; obj; ret });
  match sem with
  | None -> ()
  | Some s -> (
      match Online.add_query t.online ~sem:s ~pid ~observed:pairs ~ret with
      | None -> ()
      | Some reason -> set_violation t pid ("online: " ^ reason))

(* One detector evaluation at [node] during the partition, modeled
   side-aware: heartbeats from the node's own side keep arriving (a
   synthetic [HB] delivery refreshes its detector entry) while cross-side
   silence has long exceeded the suspicion threshold, so the tick suspects
   exactly the far side — a backup with its majority intact does not
   spuriously degrade itself. *)
let side_tick t node =
  t.mc_now <- 1e9;
  let same_side =
    match partition_groups t with
    | Some (minority, majority) -> if List.mem node minority then minority else majority
    | None -> []
  in
  List.iter
    (fun p ->
      if p <> node then begin
        emit_trace t (Trace.Deliver { src = p; dst = node; kind = "HB" });
        apply_event t
          (P.Deliver { dst = node; src = p; now = 1e9; msg = Message.Heartbeat { view = [] } })
      end)
    same_side;
  apply_event t (P.Hb_tick { node; now = 1e9 })

(* ------------------------------------------------------------------ *)
(* The transition relation                                             *)
(* ------------------------------------------------------------------ *)

let enabled t =
  if t.violation <> None then []
  else begin
    let n = t.scope.nodes in
    let issues =
      List.init n Fun.id
      |> List.filter (fun pid ->
             t.status.(pid) = Idle && t.progs.(pid) <> [] && not (P.is_crashed t.core pid))
      |> List.map (fun pid -> Issue pid)
    in
    let busy =
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              if Queue.is_empty t.queues.(src).(dst) || frozen t src dst then None
              else Some (src, dst))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    let delivers = List.map (fun (src, dst) -> Deliver { src; dst }) busy in
    let drops =
      if t.drops_left > 0 then List.map (fun (src, dst) -> Drop_msg { src; dst }) busy
      else []
    in
    let dups =
      if t.dups_left > 0 then List.map (fun (src, dst) -> Dup_msg { src; dst }) busy
      else []
    in
    let crash =
      match t.scope.fault with
      | Gen.Crash _ when not t.crashed_done -> [ Crash_victim ]
      | _ -> []
    in
    let tick =
      if t.crashed_done && (not t.takeover_done) && t.scope.failover then [ Takeover_tick ]
      else []
    in
    let restart =
      (* "Restart once the takeover happened" means once the backup has
         actually promoted — the tick only opens its quorum canvass, and a
         victim restarted mid-canvass would sync a still-unchanged view,
         re-serve its base and answer requests the eventual promotion
         retroactively fences. *)
      match t.scope.fault with
      | Gen.Crash { restart = true; _ }
        when t.takeover_done && P.takeovers t.core > 0 && not t.restarted ->
          [ Restart_victim ]
      | _ -> []
    in
    (* The power-failure scope: one coordinated checkpoint round may begin
       at any point, the whole-cluster outage only after it (the preset is
       "checkpoint, then crash everywhere"), and one repowering. *)
    let cp =
      match t.scope.fault with
      | Gen.Power when (not t.cp_done) && not t.outage_done -> [ Begin_cp ]
      | _ -> []
    in
    let outage =
      match t.scope.fault with
      | Gen.Power when t.cp_done && not t.outage_done -> [ Power_failure ]
      | _ -> []
    in
    let repower = if t.outage_done && not t.recovered_done then [ Recover_all ] else [] in
    (* The partition scope: one symmetric partition may be installed, each
       side's detector may fire once while it is open, and it may heal.
       The takeover tick is gated behind the degrade tick — the
       lease-timing assumption: the vote round trip a quorum-gated
       promotion needs gives the cut-off owner at least one detector
       period to observe quorum loss and fence itself first.  The
       [Takeover_without_quorum] mutation promotes instantly on suspicion,
       so that ordering guarantee evaporates with the votes — the gate
       lifts, and the split-brain interleaving becomes reachable. *)
    let partition_choices =
      match t.scope.fault with
      | Gen.Partition _ ->
          let window = t.partition_installed && not t.partition_healed in
          let install = if not t.partition_installed then [ Install_partition ] else [] in
          let degrade = if window && not t.degrade_done then [ Degrade_tick ] else [] in
          let take =
            if
              window
              && (not t.takeover_done)
              && (t.degrade_done
                 || t.config.Config.mutation = Config.Takeover_without_quorum)
            then [ Takeover_tick ]
            else []
          in
          let heal = if window then [ Heal_partition ] else [] in
          install @ degrade @ take @ heal
      | _ -> []
    in
    issues @ delivers @ drops @ dups @ crash @ tick @ restart @ cp @ outage @ repower
    @ partition_choices
  end

let choice_enabled t c = List.mem c (enabled t)

let apply t c =
  match c with
  | Issue pid -> (
      match t.progs.(pid) with
      | [] -> invalid_arg "System.apply: Issue on an empty program"
      | op :: rest -> (
          t.progs.(pid) <- rest;
          match op with
          | Gen.Read loc -> do_read t pid loc
          | Gen.Write (loc, value) -> do_write t pid loc value
          | Gen.Query obj -> do_query t pid obj))
  | Deliver { src; dst } ->
      let kind, _, msg = Queue.pop t.queues.(src).(dst) in
      emit_trace t (Trace.Deliver { src; dst; kind });
      apply_event t (P.Deliver { dst; src; now = t.mc_now; msg })
  | Drop_msg { src; dst } ->
      let kind, _, _ = Queue.pop t.queues.(src).(dst) in
      t.drops_left <- t.drops_left - 1;
      emit_trace t (Trace.Drop { src; dst; kind })
  | Dup_msg { src; dst } ->
      let ((kind, _, _) as m) = Queue.peek t.queues.(src).(dst) in
      Queue.add m t.queues.(src).(dst);
      t.dups_left <- t.dups_left - 1;
      emit_trace t (Trace.Duplicate { src; dst; kind })
  | Crash_victim ->
      let v = victim t in
      t.crashed_done <- true;
      (* The victim's program dies with it: the explored scope restarts the
         node but not its client process. *)
      t.progs.(v) <- [];
      t.status.(v) <- Idle;
      apply_event t (P.Crash { node = v })
  | Takeover_tick -> (
      t.takeover_done <- true;
      match t.scope.fault with
      | Gen.Partition _ ->
          (* The majority-side detector fires at the cut-off owner's
             designated backup: it suspects the far side, canvasses for
             OWNER_VOTEs over the owner's base, and promotes only at
             quorum (instantly under [Takeover_without_quorum]). *)
          side_tick t (partition_backup t)
      | _ ->
          (* One heartbeat tick at the victim's designated backup, late
             enough that the detector's silence threshold has long passed:
             the backup suspects the victim and canvasses for its base. *)
          t.mc_now <- 1e9;
          apply_event t (P.Hb_tick { node = (victim t + 1) mod t.scope.nodes; now = 1e9 }))
  | Restart_victim ->
      let v = victim t in
      t.restarted <- true;
      apply_event t (P.Restart { node = v; now = 1e9; records = List.rev t.wal.(v) });
      (* View synchronisation on rejoin: the restarted node learns the
         cluster's current epochs (the shell gets this from gossip; making
         it atomic here keeps the state space small and the deposed node
         honest about what it no longer serves). *)
      List.iter
        (fun (base, epoch, serving) -> apply_event t (P.Learn_view { node = v; base; epoch; serving }))
        (P.view t.core)
  | Begin_cp ->
      t.cp_done <- true;
      apply_event t (P.Begin_checkpoint { node = 0 })
  | Power_failure ->
      (* Every node loses volatile state at once and all in-flight traffic
         dies with the power.  Client processes are external to the outage:
         a parked read is retried once power returns (its request frame was
         lost), while a parked remote write is conservatively abandoned —
         its certification fate is unknowable, so re-issuing could record a
         duplicate.  An owner write is already logged and recorded, so that
         process simply resumes. *)
      t.outage_done <- true;
      for i = 0 to t.scope.nodes - 1 do
        Array.iter Queue.clear t.queues.(i);
        (match t.status.(i) with
        | Waiting_read r -> t.progs.(i) <- Gen.Read r.loc :: t.progs.(i)
        | Waiting_write _ -> t.progs.(i) <- []
        | Idle | Waiting_writer _ -> ());
        t.status.(i) <- Idle;
        apply_event t (P.Crash { node = i })
      done
  | Recover_all ->
      (* Power returns: every node restarts from whatever its log retained
         (latest complete checkpoint plus suffix), then synchronises the
         cluster view as in [Restart_victim]. *)
      t.recovered_done <- true;
      for v = 0 to t.scope.nodes - 1 do
        apply_event t (P.Restart { node = v; now = 1e9; records = List.rev t.wal.(v) })
      done;
      for v = 0 to t.scope.nodes - 1 do
        List.iter
          (fun (base, epoch, serving) -> apply_event t (P.Learn_view { node = v; base; epoch; serving }))
          (P.view t.core)
      done
  | Install_partition ->
      (* Cross-side messages already in flight stay queued — frozen, not
         dropped — and the heal releases them in order, modeling the
         reliable layer's retransmission backlog surviving a cable cut. *)
      t.partition_installed <- true
  | Degrade_tick ->
      (* The cut-off owner's detector fires: it suspects the far side,
         finds fewer than ⌊n/2⌋+1 reachable nodes and drops to read-only
         degraded mode (its own counter-canvass over the base it backs up
         can never pass its lone self-vote). *)
      t.degrade_done <- true;
      side_tick t (partition_owner t)
  | Heal_partition -> t.partition_healed <- true

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

let violation t = t.violation

let history t = Array.map (fun l -> Array.of_list (List.rev l)) t.ops

let op_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.ops

let completed t =
  Array.for_all (fun p -> p = []) t.progs && Array.for_all (fun s -> s = Idle) t.status

let posthoc_violation t =
  match Check.check (History.of_ops (history t)) with
  | Ok Check.Correct | Ok (Check.Violations []) -> (
      (* Registers are clean: certify every recorded object query against
         the causal-past-linearization rule (the generalized object
         check).  Register-only scopes record no queries, so their
         verdicts are untouched. *)
      match t.queries with
      | [] -> None
      | qs -> (
          match
            Check.check_objects ~lookup:Registry.find (History.of_ops (history t))
              (List.rev qs)
          with
          | [] -> None
          | v :: _ ->
              Some
                ( v.Obj_check.v_query.Obj_check.q_pid,
                  "object: " ^ v.Obj_check.v_reason )))
  | Ok (Check.Violations (v :: _)) -> Some (v.Check.read.Op.pid, v.Check.reason)
  | Error msg -> Some (-1, "malformed history: " ^ msg)

let read_values t pid =
  List.rev t.ops.(pid)
  |> List.filter_map (fun (op : Op.t) -> if Op.is_read op then Some op.value else None)

let trace_events t = List.rev t.trace

let queries t = List.rev t.queries

(* ------------------------------------------------------------------ *)
(* Fingerprinting and independence                                     *)
(* ------------------------------------------------------------------ *)

(* Everything behaviorally relevant, canonically ordered.  Histories are
   fingerprinted per process (not as a global order) so two interleavings
   that produced the same per-process state converge.  Deliberately
   excluded: statistics counters, the online checker's internals (a
   function of the per-process histories), and the invariant tables (the
   terminal post-hoc check is the authoritative oracle either way). *)
let fingerprint t =
  let n = t.scope.nodes in
  let queue_list q = List.rev (Queue.fold (fun acc m -> m :: acc) [] q) in
  let per_node i =
    let nd = P.node t.core i in
    ( P.is_crashed t.core i,
      Vclock.to_array (Node.vt nd),
      Node.entries nd,
      Node.view nd,
      List.init n (fun base -> Node.shadow_entries nd ~base),
      P.suspected_by t.core i,
      P.shadow_pending_list t.core i,
      (P.checkpoint_round t.core i, P.checkpoint_acks_pending t.core i),
      (P.candidacies t.core i, P.vote_promises t.core i, P.partition_degraded t.core i),
      t.wal.(i),
      t.ops.(i),
      t.progs.(i),
      t.status.(i) )
  in
  let data =
    ( Array.init n per_node,
      Array.init n (fun s -> Array.init n (fun d -> queue_list t.queues.(s).(d))),
      ( t.crashed_done,
        t.takeover_done,
        t.restarted,
        t.cp_done,
        t.outage_done,
        t.recovered_done,
        t.partition_installed,
        t.degrade_done,
        t.partition_healed,
        t.drops_left,
        t.dups_left ),
      P.shadow_seqno t.core,
      (* Share-sets are protocol state under sharding: two interleavings
         differing only in who has subscribed must not converge. *)
      P.subscriptions t.core,
      t.queries,
      t.violation )
  in
  Digest.string (Marshal.to_string data [ Marshal.No_sharing ])

(* Delivering a WRITE at a certifying owner allocates a cluster-global
   shadow sequence number when failover is on, so two such deliveries do
   not commute even on disjoint endpoints. *)
let allocating t (src, dst) =
  P.failover_on t.core
  &&
  match Queue.peek_opt t.queues.(src).(dst) with
  | Some (kind, _, _) -> kind = "WRITE"
  | None -> false

(* Only message deliveries with disjoint endpoints commute; everything else
   is conservatively dependent.  Note the state-space caveat: the moment an
   online violation is flagged can differ between two commuting orders, but
   the terminal post-hoc check is order-insensitive, so reduction never
   hides a violating execution (asserted by the reduction-agreement test). *)
let independent t a b =
  match (a, b) with
  | Deliver { src = s1; dst = d1 }, Deliver { src = s2; dst = d2 } ->
      s1 <> s2 && s1 <> d2 && d1 <> s2 && d1 <> d2
      && not (allocating t (s1, d1) && allocating t (s2, d2))
  | _ -> false
