(** The bounded exhaustive search over a {!System}.

    A stateless depth-first enumeration of every schedule the scope's
    {!System.enabled} relation admits: the core state is replayed from the
    initial state for each prefix (it mutates in place, so nothing is
    snapshotted), de-duplicated by {!System.fingerprint}, and pruned with
    sleep sets over {!System.independent} deliveries.  The first violating
    execution — flagged online or by the terminal post-hoc check — is
    returned as a schedule and greedily shrunk to a 1-minimal
    counterexample. *)

type stats = {
  mutable states : int;  (** distinct fingerprints visited *)
  mutable revisits : int;  (** visits that hit a known fingerprint *)
  mutable pruned : int;  (** transitions skipped by sleep sets *)
  mutable executions : int;  (** maximal (terminal or violating) runs *)
  mutable transitions : int;  (** choices explored *)
  mutable max_depth : int;
  mutable truncated : bool;  (** hit [max_states] before exhausting *)
}

type cex = {
  schedule : System.choice list;
  cex_violation : int * string;
  online : bool;  (** flagged mid-run; [false] = only the post-hoc check *)
}

type report = { scope : Gen.scope; stats : stats; cex : cex option }

val pp_schedule : Format.formatter -> System.choice list -> unit

val pp_stats : Format.formatter -> stats -> unit

val explore :
  ?reduction:bool ->
  ?max_states:int ->
  ?on_terminal:(System.t -> unit) ->
  Gen.scope ->
  report
(** Enumerate the scope.  [reduction] (default true) toggles the sleep-set
    pruning; [max_states] (default 200_000) bounds distinct states before
    truncating; [on_terminal] observes every violation-free maximal state
    (the litmus tests assert reachability with it).  Stops at the first
    violating execution. *)

val run :
  ?reduction:bool ->
  ?max_states:int ->
  ?on_terminal:(System.t -> unit) ->
  Gen.scope ->
  report
(** {!explore}, with the counterexample (if any) shrunk. *)

val replay : Gen.scope -> System.choice list -> System.t
(** Strict replay: every choice must be enabled in turn. *)

val violates : Gen.scope -> System.choice list -> bool
(** Lenient replay (disabled choices skipped), then: did anything violate,
    online or post-hoc?  The shrinking criterion. *)

val shrink : Gen.scope -> System.choice list -> System.choice list
(** Greedy drop-one-step delta debugging to a fixpoint under {!violates};
    returns the input unchanged if it does not violate. *)

val write_counterexample : Gen.scope -> System.choice list -> string -> int
(** Replay the schedule with tracing and write the event stream as Trace
    JSONL (one event per line, [dsm trace]-compatible) to the given path;
    returns the number of events written.  A violation only visible
    post-hoc is appended as a final [violation] event. *)

type matrix_entry = {
  mutation : Dsm_protocol.Config.mutation;
  scope_name : string;
  report : report;
  ok : bool;  (** mutants must violate, [No_mutation] must not *)
}

val run_matrix : ?max_states:int -> unit -> matrix_entry list
(** The full oracle-validation matrix: every preset explored unmutated
    (expecting no violation, no truncation), then every
    [Gen.matrix] pairing explored with its mutation enabled (expecting a
    counterexample). *)
