(** One small-scope system under model checking: the pure protocol core
    plus just enough shell to drive client programs through it.

    A {!t} bundles a {!Dsm_protocol.Protocol.state} with explicit message
    queues (one FIFO per directed node pair), the per-process client
    programs of a {!Gen.scope}, and the bookkeeping the cluster shell
    would keep (blocked requests, redirect budgets, write-ahead logs).
    Everything nondeterministic is reified as a {!choice}; {!apply} makes
    exactly one choice happen, deterministically.  The explorer owns the
    search; this module owns the semantics.

    Scope bounds (deliberate, documented in docs/CHECKERS.md): per-pair
    FIFO links (the reliable transport's guarantee); at most one crash,
    whose takeover is a single late heartbeat tick at the designated
    backup and whose restart synchronises the cluster view atomically; no
    grace-timer expiry; a crashed node's remaining client program is
    abandoned; no RPC retries (a dropped request parks its issuer, which
    is still a valid terminal prefix).

    The {!Gen.Power} fault swaps the single-victim schedule for a
    whole-cluster one: one coordinated checkpoint round may begin at any
    point, one power failure crashes every node at once after it (clearing
    all links), and one repowering restarts everyone from whatever each
    retained log replays.  Client processes survive the outage — a parked
    read is retried, a parked remote write abandons its program (its
    certification fate is unknowable).

    The {!Gen.Partition} fault models one symmetric network partition:
    cross-side messages freeze in their queues while it is open (released
    intact by the heal — the reliable layer's retransmission backlog
    surviving a cable cut), each side's detector may fire once
    (side-aware: synthetic same-side heartbeats keep a node from
    suspecting its own partition), and an extra inline invariant — the
    {e dual-certification} split-brain oracle — flags any state where two
    live, non-degraded nodes both accept writes for one base under
    different epochs during the partition window.  The takeover tick is
    gated behind the degrade tick, encoding the lease-timing assumption
    that a quorum canvass's round trip gives the cut-off owner time to
    fence itself; the [Takeover_without_quorum] mutation lifts the gate
    along with the votes, making the split-brain interleaving reachable
    (and caught).

    Verdicts come from three layers: inline invariants checked during
    {!apply} (served-entry monotonicity, reply fencing, per-process read
    causality), the incremental {!Dsm_checker.Online} checker fed as
    operations complete, and the authoritative post-hoc
    {!Dsm_checker.Causal_check} over the recorded history at terminal
    states ({!posthoc_violation}). *)

type choice =
  | Issue of int  (** process [pid] issues its next program operation *)
  | Deliver of { src : int; dst : int }  (** deliver the head of one link *)
  | Drop_msg of { src : int; dst : int }  (** adversary drops the head *)
  | Dup_msg of { src : int; dst : int }  (** adversary duplicates the head *)
  | Crash_victim  (** crash the scope's designated victim *)
  | Takeover_tick  (** late heartbeat tick at the victim's backup *)
  | Restart_victim  (** restart the victim from its write-ahead log *)
  | Begin_cp  (** node 0 initiates one coordinated checkpoint round *)
  | Power_failure  (** crash every node at once, losing in-flight traffic *)
  | Recover_all  (** repower: restart every node from its retained log *)
  | Install_partition  (** open the scope's partition: cross-side traffic freezes *)
  | Degrade_tick  (** detector tick at the cut-off owner: it observes quorum loss *)
  | Heal_partition  (** close the partition, releasing the frozen traffic *)

val pp_choice : Format.formatter -> choice -> unit

type t

val init : ?tracing:bool -> Gen.scope -> t
(** A fresh system at the scope's initial state.  With [~tracing:true]
    every wire, protocol and application event is recorded for
    {!trace_events} (used when rendering counterexamples; exploration
    runs untraced). *)

val enabled : t -> choice list
(** The choices schedulable now, in a fixed deterministic order.  Empty
    once a violation is flagged (the execution is the counterexample) or
    the system is quiescent with nothing left to run. *)

val choice_enabled : t -> choice -> bool

val apply : t -> choice -> unit
(** Perform one enabled choice, mutating the system in place.  The caller
    must only pass members of {!enabled} (the shrinker uses
    {!choice_enabled} to replay leniently). *)

val violation : t -> (int * string) option
(** First violation flagged online (inline invariant or incremental
    checker), as [(node, reason)]. *)

val posthoc_violation : t -> (int * string) option
(** The authoritative Definition-1 verdict over the history recorded so
    far ({!Dsm_checker.Causal_check.check}). *)

val history : t -> Dsm_memory.Op.t array array
(** Per-process recorded operations in program order, suitable for
    {!Dsm_memory.History.of_ops}. *)

val op_count : t -> int

val completed : t -> bool
(** Every program ran to completion and nobody is blocked. *)

val read_values : t -> int -> Dsm_memory.Value.t list
(** The values process [pid]'s reads returned, in program order. *)

val queries : t -> Dsm_checker.Obj_check.query list
(** The object queries issued so far, oldest first — [q_pid] and [q_ret]
    let a litmus test assert which spec-level returns an interleaving
    produced. *)

val trace_events : t -> Dsm_protocol.Trace.event list
(** The recorded event stream (empty unless [init ~tracing:true]);
    [seq] doubles as the logical time stamp. *)

val fingerprint : t -> string
(** Canonical digest of the behaviorally relevant state, for stateful
    de-duplication.  Two systems with equal fingerprints have identical
    future behavior (histories are fingerprinted per process, so
    commuting interleavings converge). *)

val independent : t -> choice -> choice -> bool
(** Conservative independence for sleep-set pruning: only two message
    deliveries with disjoint endpoint sets commute (and not even those
    when both would allocate a cluster-global shadow sequence number). *)
