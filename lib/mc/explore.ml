module Config = Dsm_protocol.Config
module Trace = Dsm_protocol.Trace

type stats = {
  mutable states : int;
  mutable revisits : int;
  mutable pruned : int;
  mutable executions : int;
  mutable transitions : int;
  mutable max_depth : int;
  mutable truncated : bool;
}

type cex = {
  schedule : System.choice list;
  cex_violation : int * string;
  online : bool;  (** flagged mid-run; [false] = only the post-hoc check *)
}

type report = { scope : Gen.scope; stats : stats; cex : cex option }

let pp_schedule ppf sched =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    System.pp_choice ppf sched

let pp_stats ppf s =
  Format.fprintf ppf
    "%d states visited (%d deduped, %d pruned), %d executions, %d transitions, depth <= %d%s"
    s.states s.revisits s.pruned s.executions s.transitions s.max_depth
    (if s.truncated then " [truncated]" else "")

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay scope sched =
  let sys = System.init scope in
  List.iter (System.apply sys) sched;
  sys

(* Lenient replay for the shrinker: skip choices the truncated schedule no
   longer enables, stop once a violation is flagged. *)
let lenient_replay ?tracing scope sched =
  let sys = System.init ?tracing scope in
  List.iter
    (fun c ->
      if System.violation sys = None && System.choice_enabled sys c then System.apply sys c)
    sched;
  sys

let violates scope sched =
  let sys = lenient_replay scope sched in
  System.violation sys <> None || System.posthoc_violation sys <> None

(* ------------------------------------------------------------------ *)
(* The search: stateless DFS + fingerprint dedup + sleep sets          *)
(* ------------------------------------------------------------------ *)

(* Each [dfs] call replays its schedule prefix from the initial state (the
   core mutates in place, so there is nothing to snapshot); the state is
   then fingerprinted for de-duplication.  Sleep sets carry the choices a
   sibling already explored that commute with everything taken since, in
   the classic way; because a revisited fingerprint may have been reached
   with a different sleep set, a visit is only skipped when some earlier
   visit's sleep set was a subset of the current one (otherwise the current
   visit can reach executions the earlier one pruned). *)
let explore ?(reduction = true) ?(max_states = 200_000) ?on_terminal (scope : Gen.scope) =
  let stats =
    {
      states = 0;
      revisits = 0;
      pruned = 0;
      executions = 0;
      transitions = 0;
      max_depth = 0;
      truncated = false;
    }
  in
  let seen : (string, System.choice list list) Hashtbl.t = Hashtbl.create 4096 in
  let first_cex = ref None in
  let found_cex sched violation online =
    if !first_cex = None then
      first_cex := Some { schedule = List.rev sched; cex_violation = violation; online }
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  (* [sched] is the path in reverse (newest first). *)
  let rec dfs sched depth sleep =
    if stats.states >= max_states then stats.truncated <- true
    else begin
      let sys = replay scope (List.rev sched) in
      let fp = System.fingerprint sys in
      let prior = Option.value ~default:[] (Hashtbl.find_opt seen fp) in
      if List.exists (fun s -> subset s sleep) prior then stats.revisits <- stats.revisits + 1
      else begin
        if prior <> [] then stats.revisits <- stats.revisits + 1 else stats.states <- stats.states + 1;
        Hashtbl.replace seen fp (sleep :: prior);
        if depth > stats.max_depth then stats.max_depth <- depth;
        match System.violation sys with
        | Some v ->
            stats.executions <- stats.executions + 1;
            found_cex sched v true
        | None -> (
            match System.enabled sys with
            | [] ->
                stats.executions <- stats.executions + 1;
                (match System.posthoc_violation sys with
                | Some v -> found_cex sched v false
                | None -> ());
                Option.iter (fun f -> f sys) on_terminal
            | en ->
                let explored = ref [] in
                List.iter
                  (fun c ->
                    if !first_cex = None && not stats.truncated then begin
                      if reduction && List.mem c sleep then stats.pruned <- stats.pruned + 1
                      else begin
                        stats.transitions <- stats.transitions + 1;
                        let child_sleep =
                          if reduction then
                            List.filter
                              (fun d -> System.independent sys d c)
                              (sleep @ !explored)
                          else []
                        in
                        dfs (c :: sched) (depth + 1) child_sleep;
                        explored := c :: !explored
                      end
                    end)
                  en)
      end
    end
  in
  dfs [] 0 [];
  { scope; stats; cex = !first_cex }

(* ------------------------------------------------------------------ *)
(* Counterexample shrinking and rendering                              *)
(* ------------------------------------------------------------------ *)

(* Greedy delta-debugging to a fixpoint: drop one schedule step at a time,
   keeping the drop whenever the (leniently replayed) remainder still
   violates.  The result is 1-minimal: no single step can be removed. *)
let shrink scope sched =
  if not (violates scope sched) then sched
  else begin
    let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
    let rec pass s n changed =
      if n >= List.length s then (s, changed)
      else
        let s' = drop_nth s n in
        if violates scope s' then pass s' n true else pass s (n + 1) changed
    in
    let rec fix s =
      match pass s 0 false with s', true -> fix s' | s', false -> s'
    in
    fix sched
  end

let counterexample_events scope sched =
  let sys = lenient_replay ~tracing:true scope sched in
  let events = System.trace_events sys in
  match (System.violation sys, System.posthoc_violation sys) with
  | None, Some (node, reason) ->
      (* The violation only shows post-hoc: append it so the trace file
         still names the verdict. *)
      let seq = List.length events in
      events
      @ [ { Trace.seq; time = float_of_int seq; clock = None; body = Trace.Violation { node; reason } } ]
  | _ -> events

let write_counterexample scope sched path =
  let events = counterexample_events scope sched in
  let oc = open_out path in
  List.iter
    (fun ev ->
      output_string oc (Trace.to_json ev);
      output_char oc '\n')
    events;
  close_out oc;
  List.length events

(* ------------------------------------------------------------------ *)
(* Checking runs: one scope, and the full mutation matrix              *)
(* ------------------------------------------------------------------ *)

let run ?reduction ?max_states ?on_terminal scope =
  let report = explore ?reduction ?max_states ?on_terminal scope in
  match report.cex with
  | None -> report
  | Some cex ->
      let schedule = shrink scope cex.schedule in
      { report with cex = Some { cex with schedule } }

type matrix_entry = {
  mutation : Config.mutation;
  scope_name : string;
  report : report;
  ok : bool;  (** mutants must violate, [No_mutation] must not *)
}

(* Every preset must be clean unmutated, and every mutation must be caught
   in its designated scope. *)
let run_matrix ?max_states () =
  let clean =
    List.map
      (fun (scope : Gen.scope) ->
        let report = run ?max_states scope in
        {
          mutation = Config.No_mutation;
          scope_name = scope.sname;
          report;
          ok = report.cex = None && not report.stats.truncated;
        })
      Gen.presets
  in
  let mutants =
    List.map
      (fun (mutation, name) ->
        let scope = Option.get (Gen.preset name) in
        let scope = { scope with Gen.mutation; sname = name ^ "+" ^ Config.mutation_name mutation } in
        let report = run ?max_states scope in
        { mutation; scope_name = name; report; ok = report.cex <> None })
      Gen.matrix
  in
  clean @ mutants
