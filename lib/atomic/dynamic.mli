(** Dynamic distributed ownership: Li & Hudak's "dynamic distributed
    manager" algorithm, the real protocol behind the paper's atomic-DSM
    comparator [15].

    The static baseline ({!Cluster}) fixes each location's owner forever;
    here ownership {e migrates to writers}.  Every node keeps a
    probable-owner hint per location; requests are forwarded along the hint
    chain until they reach the true owner (each hop updates its hint to the
    requester, compressing future chains).  A write request transfers
    ownership: the old owner hands over the current value and copyset, the
    new owner invalidates the copies and writes locally — so a node that
    writes a location repeatedly pays for the first write only.

    Invalidations are fire-and-forget (the paper's `Counted` accounting);
    the consistency level matches the static baseline's counted mode.
    Compared in experiment E-DYN on a writer-migration workload. *)

type t

type handle

val create :
  sched:Dsm_runtime.Proc.sched ->
  initial_owner:Dsm_memory.Owner.t ->
  ?init:(Dsm_memory.Loc.t -> Dsm_memory.Value.t) ->
  ?latency:Dsm_net.Latency.t ->
  ?seed:int64 ->
  unit ->
  t
(** [initial_owner] seeds every node's probable-owner hints (and decides who
    actually owns each location at the start). *)

val handle : t -> int -> handle

val handles : t -> handle array

val processes : t -> int

val net : t -> Message.t Dsm_net.Network.t

val history : t -> Dsm_memory.History.t

val owner_now : t -> Dsm_memory.Loc.t -> int
(** The node that currently owns the location (for tests). *)

val forwards : t -> int
(** Requests forwarded along probable-owner chains so far. *)

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit

module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
