(** Wire messages of the atomic DSM baselines.

    The static protocol ({!Cluster}) uses the request/reply/invalidation
    kinds; the dynamic-ownership protocol ({!Dynamic}) uses the [Dyn_*]
    kinds, forwarded along probable-owner chains.  One shared message type
    keeps both baselines on one transport; each cluster rejects the other
    family at delivery time. *)

type entry = { value : Dsm_memory.Value.t; wid : Dsm_memory.Wid.t }
(** A value with its unique write identity (no vector clocks: the strong
    baselines order writes at owners, not with stamps). *)

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t }
  | Read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Write_req of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Write_reply of { req : int; loc : Dsm_memory.Loc.t }
  | Invalidate of { loc : Dsm_memory.Loc.t; token : int }
      (** [token >= 0] requests an acknowledgement (acknowledged mode);
          [-1] is fire-and-forget (counted mode) *)
  | Inv_ack of { loc : Dsm_memory.Loc.t; token : int }
  | Dyn_read of { req : int; requester : int; loc : Dsm_memory.Loc.t }
      (** forwarded until it reaches the true owner *)
  | Dyn_read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Dyn_write of { req : int; requester : int; loc : Dsm_memory.Loc.t }
      (** ownership request; the requester becomes owner on grant *)
  | Dyn_grant of { req : int; loc : Dsm_memory.Loc.t }
      (** the old owner has invalidated every cached copy and relinquished *)

val kind : t -> string
(** Counter bucket, e.g. ["READ"], ["INVAL"], ["DGRANT"]. *)
