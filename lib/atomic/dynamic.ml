module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network

module Int_set = Set.Make (Int)

type node = {
  id : int;
  store : Message.entry Loc.Table.t;
  owned : unit Loc.Table.t;
  prob_owner : int Loc.Table.t; (* hints; fall back to the initial map *)
  copysets : Int_set.t ref Loc.Table.t;
  pending : (int, Message.t Proc.ivar) Hashtbl.t;
  mutable wseq : int;
  mutable reqseq : int;
}

type t = {
  sched : Proc.sched;
  net : Message.t Network.t;
  initial_owner : Owner.t;
  init : Loc.t -> Dsm_memory.Value.t;
  nodes : node array;
  recorder : History.Recorder.t;
  mutable forwards : int;
}

type handle = { cluster : t; node : node }

let owns node loc = Loc.Table.mem node.owned loc

let hint t node loc =
  match Loc.Table.find_opt node.prob_owner loc with
  | Some n -> n
  | None -> Owner.owner t.initial_owner loc

let set_hint node loc target = Loc.Table.replace node.prob_owner loc target

let current_entry t node loc =
  match Loc.Table.find_opt node.store loc with
  | Some entry -> entry
  | None ->
      let entry = { Message.value = t.init loc; wid = Wid.initial } in
      Loc.Table.replace node.store loc entry;
      entry

let copyset node loc =
  match Loc.Table.find_opt node.copysets loc with
  | Some set -> set
  | None ->
      let set = ref Int_set.empty in
      Loc.Table.replace node.copysets loc set;
      set

let send t ~src ~dst ?(size = 2) msg =
  Network.send t.net ~src ~dst ~kind:(Message.kind msg) ~size msg

(* Invalidate every cached copy (fire-and-forget), sparing [keep]. *)
let invalidate_copies t node loc ~keep =
  let set = copyset node loc in
  Int_set.iter
    (fun holder ->
      if holder <> keep && holder <> node.id then
        send t ~src:node.id ~dst:holder ~size:1 (Message.Invalidate { loc; token = -1 }))
    !set;
  set := Int_set.empty

(* Initial ownership is lazy: the first touch of a location at its initial
   owner materialises it, unless ownership already migrated away (the hint
   table records that). *)
let ensure_initial_ownership t node loc =
  if
    (not (owns node loc))
    && Owner.owner t.initial_owner loc = node.id
    && not (Loc.Table.mem node.prob_owner loc)
  then begin
    Loc.Table.replace node.owned loc ();
    ignore (current_entry t node loc)
  end

let handle_message t ~me ~src msg =
  let node = t.nodes.(me) in
  (match (msg : Message.t) with
  | Message.Dyn_read { loc; _ } | Message.Dyn_write { loc; _ } ->
      ensure_initial_ownership t node loc
  | _ -> ());
  match (msg : Message.t) with
  | Message.Dyn_read { req; requester; loc } ->
      if owns node loc then begin
        let entry = current_entry t node loc in
        let set = copyset node loc in
        set := Int_set.add requester !set;
        send t ~src:me ~dst:requester (Message.Dyn_read_reply { req; loc; entry })
      end
      else begin
        (* Forward along the chain.  Read forwards must NOT repoint the hint
           at the requester (a reader never becomes owner); the requester
           learns the true owner from the reply instead. *)
        let next = hint t node loc in
        if next = me then failwith "Dynamic: probable-owner chain is broken";
        t.forwards <- t.forwards + 1;
        send t ~src:me ~dst:next ~size:1 (Message.Dyn_read { req; requester; loc })
      end
  | Message.Dyn_write { req; requester; loc } ->
      if owns node loc then begin
        (* Relinquish ownership: kill every cached copy (including our own
           storage), hand the location to the requester. *)
        invalidate_copies t node loc ~keep:requester;
        Loc.Table.remove node.store loc;
        Loc.Table.remove node.owned loc;
        set_hint node loc requester;
        send t ~src:me ~dst:requester ~size:1 (Message.Dyn_grant { req; loc })
      end
      else begin
        (* Write forwards repoint the hint at the requester: it is about to
           become the owner (Li-Hudak path compression). *)
        let next = hint t node loc in
        if next = me then failwith "Dynamic: probable-owner chain is broken";
        t.forwards <- t.forwards + 1;
        set_hint node loc requester;
        send t ~src:me ~dst:next ~size:1 (Message.Dyn_write { req; requester; loc })
      end
  | Message.Dyn_read_reply { req; loc; _ } -> (
      (* The reply comes from the true owner: remember it. *)
      set_hint node loc src;
      match Hashtbl.find_opt node.pending req with
      | Some ivar ->
          Hashtbl.remove node.pending req;
          Proc.fill ivar msg
      | None -> failwith (Printf.sprintf "dynamic node %d: stray reply %d" me req))
  | Message.Dyn_grant { req; _ } -> (
      match Hashtbl.find_opt node.pending req with
      | Some ivar ->
          Hashtbl.remove node.pending req;
          Proc.fill ivar msg
      | None -> failwith (Printf.sprintf "dynamic node %d: stray grant %d" me req))
  | Message.Invalidate { loc; _ } -> Loc.Table.remove node.store loc
  | Message.Read_req _ | Message.Read_reply _ | Message.Write_req _ | Message.Write_reply _
  | Message.Inv_ack _ ->
      failwith "Dynamic: static-protocol message on a dynamic cluster"

let create ~sched ~initial_owner ?(init = fun _ -> Dsm_memory.Value.initial) ?latency
    ?(seed = 47L) () =
  let processes = Owner.nodes initial_owner in
  let engine = Proc.engine sched in
  let net = Network.create engine ~nodes:processes ?latency ~seed () in
  let nodes =
    Array.init processes (fun id ->
        {
          id;
          store = Loc.Table.create 64;
          owned = Loc.Table.create 32;
          prob_owner = Loc.Table.create 32;
          copysets = Loc.Table.create 32;
          pending = Hashtbl.create 8;
          wseq = 0;
          reqseq = 0;
        })
  in
  let t =
    {
      sched;
      net;
      initial_owner;
      init;
      nodes;
      recorder = History.Recorder.create ~processes;
      forwards = 0;
    }
  in
  for me = 0 to processes - 1 do
    Network.set_handler net ~node:me (fun ~src msg -> handle_message t ~me ~src msg)
  done;
  t

let handle t pid = { cluster = t; node = t.nodes.(pid) }

let handles t = Array.init (Array.length t.nodes) (handle t)

let processes t = Array.length t.nodes

let net t = t.net

let history t = History.Recorder.history t.recorder

let owner_now t loc =
  let found = ref (-1) in
  Array.iter
    (fun node ->
      ensure_initial_ownership t node loc;
      if owns node loc then found := node.id)
    t.nodes;
  !found

let forwards t = t.forwards

let pid h = h.node.id

let fresh_wid node =
  let seq = node.wseq in
  node.wseq <- seq + 1;
  Wid.make ~node:node.id ~seq

let rendezvous h make_msg ~dst =
  let t = h.cluster in
  let node = h.node in
  let req = node.reqseq in
  node.reqseq <- req + 1;
  let ivar = Proc.ivar t.sched in
  Hashtbl.replace node.pending req ivar;
  let msg = make_msg req in
  Network.send t.net ~src:node.id ~dst ~kind:(Message.kind msg) ~size:1 msg;
  Proc.await ivar

let record_read t node loc (entry : Message.entry) =
  ignore
    (History.Recorder.record_read t.recorder ~pid:node.id ~loc ~value:entry.Message.value
       ~from:entry.Message.wid)

let read h loc =
  let t = h.cluster in
  let node = h.node in
  ensure_initial_ownership t node loc;
  match Loc.Table.find_opt node.store loc with
  | Some entry ->
      record_read t node loc entry;
      entry.Message.value
  | None ->
      if owns node loc then begin
        let entry = current_entry t node loc in
        record_read t node loc entry;
        entry.Message.value
      end
      else begin
        match
          rendezvous h ~dst:(hint t node loc) (fun req ->
              Message.Dyn_read { req; requester = node.id; loc })
        with
        | Message.Dyn_read_reply { entry; _ } ->
            Loc.Table.replace node.store loc entry;
            record_read t node loc entry;
            entry.Message.value
        | _ -> assert false
      end

let apply_own_write t node loc value =
  let entry = { Message.value; wid = fresh_wid node } in
  invalidate_copies t node loc ~keep:node.id;
  Loc.Table.replace node.store loc entry;
  ignore
    (History.Recorder.record_write t.recorder ~pid:node.id ~loc ~value ~wid:entry.Message.wid)

let write h loc value =
  let t = h.cluster in
  let node = h.node in
  ensure_initial_ownership t node loc;
  if owns node loc then apply_own_write t node loc value
  else begin
    match
      rendezvous h ~dst:(hint t node loc) (fun req ->
          Message.Dyn_write { req; requester = node.id; loc })
    with
    | Message.Dyn_grant _ ->
        (* We are the owner now; the old owner already cleared the copies. *)
        Loc.Table.replace node.owned loc ();
        Loc.Table.remove node.copysets loc;
        apply_own_write t node loc value
    | _ -> assert false
  end

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Array.length h.cluster.nodes

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  let refresh (_ : handle) (_ : Loc.t) = ()
end
