(** The atomic (strongly consistent) DSM baseline.

    A static-owner write-invalidate protocol in the style of Li & Hudak's
    shared virtual memory, as assumed by the paper's message-count
    comparison: the owner of a location keeps its current value and the
    {e copyset} of nodes caching it; a read miss fetches from the owner and
    joins the copyset; every write is applied at the owner and invalidates
    all cached copies.

    Two invalidation modes:
    - [`Counted] (default): invalidations are fire-and-forget, matching the
      paper's accounting ("this results in n-1 messages per processor" —
      no acknowledgements counted).
    - [`Acknowledged]: the write blocks until every copy holder
      acknowledges, the textbook strongly consistent discipline; costs
      [2(n-1)] messages per fully shared write.

    Exposes the same {!Dsm_memory.Memory_intf.MEMORY} interface as the
    causal DSM so applications run unchanged on either. *)

type t

type handle

type invalidation_mode = [ `Counted | `Acknowledged ]

val create :
  sched:Dsm_runtime.Proc.sched ->
  owner:Dsm_memory.Owner.t ->
  ?mode:invalidation_mode ->
  ?init:(Dsm_memory.Loc.t -> Dsm_memory.Value.t) ->
  ?latency:Dsm_net.Latency.t ->
  ?seed:int64 ->
  unit ->
  t

val handle : t -> int -> handle

val handles : t -> handle array

val processes : t -> int

val net : t -> Message.t Dsm_net.Network.t

val history : t -> Dsm_memory.History.t

val timed_history : t -> (Dsm_memory.Op.t * float * float) list
(** Every application operation with its (start, end) simulated times, in
    completion order — input to the linearizability checker. *)

val copyset_size : t -> Dsm_memory.Loc.t -> int
(** Size of the owner-side copyset (tests and ablations). *)

val invalidations_sent : t -> int

val pid : handle -> int

val read : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t

val write : handle -> Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit

module Mem : Dsm_memory.Memory_intf.MEMORY with type handle = handle
