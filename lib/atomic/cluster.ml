module Loc = Dsm_memory.Loc
module Wid = Dsm_memory.Wid
module History = Dsm_memory.History
module Owner = Dsm_memory.Owner
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network

type invalidation_mode = [ `Counted | `Acknowledged ]

module Int_set = Set.Make (Int)

(* An owner-side write whose invalidation acknowledgements are still
   outstanding.  Requests for the same location arriving meanwhile are
   queued and replayed in arrival order once the write commits. *)
type inflight = {
  mutable remaining : int;
  mutable commit : unit -> unit;
  mutable queued : (int * Message.t) list; (* newest first *)
}

type node = {
  id : int;
  store : Message.entry Loc.Table.t; (* owned locations (current) + cache *)
  copysets : Int_set.t ref Loc.Table.t; (* owner side *)
  inflights : inflight Loc.Table.t; (* owner side, keyed by location *)
  tokens : (int, inflight) Hashtbl.t; (* ack routing *)
  pending : (int, Message.t Proc.ivar) Hashtbl.t;
  mutable wseq : int;
  mutable reqseq : int;
  mutable token_seq : int;
}

type t = {
  sched : Proc.sched;
  net : Message.t Network.t;
  owner : Owner.t;
  mode : invalidation_mode;
  init : Loc.t -> Dsm_memory.Value.t;
  nodes : node array;
  recorder : History.Recorder.t;
  mutable invalidations_sent : int;
  mutable timed : (Dsm_memory.Op.t * float * float) list; (* newest first *)
}

type handle = { cluster : t; node : node }

let owner_of t loc = Owner.owner t.owner loc

let owns t node loc = owner_of t loc = node.id

let current_entry t node loc =
  match Loc.Table.find_opt node.store loc with
  | Some entry -> entry
  | None ->
      let entry = { Message.value = t.init loc; wid = Wid.initial } in
      Loc.Table.replace node.store loc entry;
      entry

let copyset node loc =
  match Loc.Table.find_opt node.copysets loc with
  | Some set -> set
  | None ->
      let set = ref Int_set.empty in
      Loc.Table.replace node.copysets loc set;
      set

(* ------------------------------------------------------------------ *)
(* Owner-side write machinery                                          *)
(* ------------------------------------------------------------------ *)

let send t ~src ~dst ?(size = 2) msg =
  Network.send t.net ~src ~dst ~kind:(Message.kind msg) ~size msg

let apply_write node loc (entry : Message.entry) ~writer =
  Loc.Table.replace node.store loc entry;
  let set = copyset node loc in
  (* After the write the only cached copy is the writer's (if remote). *)
  set := if writer = node.id then Int_set.empty else Int_set.singleton writer

(* Begin servicing a write at the owner: invalidate every cached copy except
   the writer's, then commit (store + notify).  In [`Counted] mode the
   invalidations are fire-and-forget and the commit is immediate; in
   [`Acknowledged] mode the commit waits for every acknowledgement and
   meanwhile other requests for the location queue up. *)
let rec start_write t node loc (entry : Message.entry) ~writer ~notify =
  let set = copyset node loc in
  let targets = Int_set.elements (Int_set.remove writer (Int_set.remove node.id !set)) in
  let commit () =
    apply_write node loc entry ~writer;
    notify ();
    match Loc.Table.find_opt node.inflights loc with
    | None -> ()
    | Some inflight ->
        Loc.Table.remove node.inflights loc;
        List.iter (fun (src, msg) -> owner_service t node ~src msg) (List.rev inflight.queued)
  in
  match (t.mode, targets) with
  | `Counted, _ ->
      List.iter
        (fun dst ->
          t.invalidations_sent <- t.invalidations_sent + 1;
          send t ~src:node.id ~dst ~size:1 (Message.Invalidate { loc; token = -1 }))
        targets;
      let set = copyset node loc in
      set := Int_set.empty;
      commit ()
  | `Acknowledged, [] -> commit ()
  | `Acknowledged, _ :: _ ->
      let token = node.token_seq in
      node.token_seq <- node.token_seq + 1;
      let inflight = { remaining = List.length targets; commit; queued = [] } in
      Loc.Table.replace node.inflights loc inflight;
      Hashtbl.replace node.tokens token inflight;
      List.iter
        (fun dst ->
          t.invalidations_sent <- t.invalidations_sent + 1;
          send t ~src:node.id ~dst ~size:1 (Message.Invalidate { loc; token }))
        targets

(* Serve a READ or WRITE request at the owner, or queue it behind an
   in-flight write to the same location. *)
and owner_service t node ~src msg =
  let loc =
    match (msg : Message.t) with
    | Message.Read_req { loc; _ } | Message.Write_req { loc; _ } -> loc
    | _ -> invalid_arg "owner_service: not a request"
  in
  match Loc.Table.find_opt node.inflights loc with
  | Some inflight -> inflight.queued <- (src, msg) :: inflight.queued
  | None -> (
      match msg with
      | Message.Read_req { req; loc } ->
          let entry = current_entry t node loc in
          let set = copyset node loc in
          set := Int_set.add src !set;
          send t ~src:node.id ~dst:src ~size:2 (Message.Read_reply { req; loc; entry })
      | Message.Write_req { req; loc; entry } ->
          start_write t node loc entry ~writer:src ~notify:(fun () ->
              send t ~src:node.id ~dst:src ~size:1 (Message.Write_reply { req; loc }))
      | Message.Read_reply _ | Message.Write_reply _ | Message.Invalidate _
      | Message.Inv_ack _ | Message.Dyn_read _ | Message.Dyn_read_reply _
      | Message.Dyn_write _ | Message.Dyn_grant _ ->
          assert false)

let handle_message t ~me ~src msg =
  let node = t.nodes.(me) in
  match (msg : Message.t) with
  | Message.Read_req _ | Message.Write_req _ -> owner_service t node ~src msg
  | Message.Read_reply { req; _ } | Message.Write_reply { req; _ } -> (
      match Hashtbl.find_opt node.pending req with
      | Some ivar ->
          Hashtbl.remove node.pending req;
          Proc.fill ivar msg
      | None -> failwith (Printf.sprintf "atomic node %d: reply for unknown request %d" me req))
  | Message.Invalidate { loc; token } ->
      Loc.Table.remove node.store loc;
      if t.mode = `Acknowledged && token >= 0 then
        send t ~src:me ~dst:src ~size:1 (Message.Inv_ack { loc; token })
  | Message.Inv_ack { token; _ } -> (
      match Hashtbl.find_opt node.tokens token with
      | Some inflight ->
          inflight.remaining <- inflight.remaining - 1;
          if inflight.remaining = 0 then begin
            Hashtbl.remove node.tokens token;
            inflight.commit ()
          end
      | None -> failwith (Printf.sprintf "atomic node %d: stray INV_ACK" me))
  | Message.Dyn_read _ | Message.Dyn_read_reply _ | Message.Dyn_write _ | Message.Dyn_grant _
    ->
      failwith "Atomic: dynamic-protocol message on a static cluster" 

let create ~sched ~owner ?(mode = `Counted)
    ?(init = fun _ -> Dsm_memory.Value.initial) ?latency ?(seed = 43L) () =
  let processes = Owner.nodes owner in
  let engine = Proc.engine sched in
  let net = Network.create engine ~nodes:processes ?latency ~seed () in
  let nodes =
    Array.init processes (fun id ->
        {
          id;
          store = Loc.Table.create 64;
          copysets = Loc.Table.create 64;
          inflights = Loc.Table.create 8;
          tokens = Hashtbl.create 8;
          pending = Hashtbl.create 8;
          wseq = 0;
          reqseq = 0;
          token_seq = 0;
        })
  in
  let t =
    {
      sched;
      net;
      owner;
      mode;
      init;
      nodes;
      recorder = History.Recorder.create ~processes;
      invalidations_sent = 0;
      timed = [];
    }
  in
  for me = 0 to processes - 1 do
    Network.set_handler net ~node:me (fun ~src msg -> handle_message t ~me ~src msg)
  done;
  t

let handle t pid = { cluster = t; node = t.nodes.(pid) }

let handles t = Array.init (Array.length t.nodes) (handle t)

let processes t = Array.length t.nodes

let net t = t.net

let history t = History.Recorder.history t.recorder

let timed_history t = List.rev t.timed

let now t = Dsm_sim.Engine.now (Proc.engine t.sched)

let log_timed t op start_time = t.timed <- (op, start_time, now t) :: t.timed

let copyset_size t loc =
  let owner_node = t.nodes.(owner_of t loc) in
  Int_set.cardinal !(copyset owner_node loc)

let invalidations_sent t = t.invalidations_sent

let pid h = h.node.id

let fresh_wid node =
  let seq = node.wseq in
  node.wseq <- seq + 1;
  Wid.make ~node:node.id ~seq

let rendezvous h ~dst ~size make_msg =
  let t = h.cluster in
  let node = h.node in
  let req = node.reqseq in
  node.reqseq <- req + 1;
  let ivar = Proc.ivar t.sched in
  Hashtbl.replace node.pending req ivar;
  let msg = make_msg req in
  Network.send t.net ~src:node.id ~dst ~kind:(Message.kind msg) ~size msg;
  Proc.await ivar

let read h loc =
  let t = h.cluster in
  let node = h.node in
  let start_time = now t in
  let record (entry : Message.entry) =
    let op =
      History.Recorder.record_read t.recorder ~pid:node.id ~loc ~value:entry.Message.value
        ~from:entry.Message.wid
    in
    log_timed t op start_time;
    entry.Message.value
  in
  match Loc.Table.find_opt node.store loc with
  | Some entry -> record entry
  | None ->
      if owns t node loc then record (current_entry t node loc)
      else begin
        match
          rendezvous h ~dst:(owner_of t loc) ~size:1 (fun req -> Message.Read_req { req; loc })
        with
        | Message.Read_reply { entry; _ } ->
            Loc.Table.replace node.store loc entry;
            record entry
        | _ -> assert false
      end

let write h loc value =
  let t = h.cluster in
  let node = h.node in
  let start_time = now t in
  let entry = { Message.value; wid = fresh_wid node } in
  if owns t node loc then begin
    (* Owner write: invalidate all cached copies; in acknowledged mode block
       until every holder confirms. *)
    let ivar = Proc.ivar t.sched in
    let notified = ref false in
    start_write t node loc entry ~writer:node.id ~notify:(fun () ->
        notified := true;
        if not (Proc.is_filled ivar) then Proc.fill ivar ());
    if not !notified then Proc.await ivar;
    let op =
      History.Recorder.record_write t.recorder ~pid:node.id ~loc ~value ~wid:entry.Message.wid
    in
    log_timed t op start_time
  end
  else begin
    match
      rendezvous h ~dst:(owner_of t loc) ~size:2 (fun req -> Message.Write_req { req; loc; entry })
    with
    | Message.Write_reply _ ->
        (* The writer keeps a copy; the owner has already put it in the
           copyset. *)
        Loc.Table.replace node.store loc entry;
        let op =
          History.Recorder.record_write t.recorder ~pid:node.id ~loc ~value
            ~wid:entry.Message.wid
        in
        log_timed t op start_time
    | _ -> assert false
  end

module Mem = struct
  type nonrec handle = handle

  let pid = pid

  let processes h = Array.length h.cluster.nodes

  let read = read

  let write = write

  let yield (_ : handle) = Proc.yield ()

  (* Staleness is pushed by invalidations; nothing to do. *)
  let refresh (_ : handle) (_ : Loc.t) = ()
end
