(** Wire messages of the write-invalidate atomic DSM baseline.

    This is the comparator the paper's Section 4.1 assumes: "a comparable
    owner protocol for atomic memory where locations are stored at the owner
    and cached at other nodes.  An atomic write requires that all cached
    copies in the system be invalidated", with the owner maintaining the
    read set (copyset), as in Li & Hudak's shared virtual memory. *)

type entry = { value : Dsm_memory.Value.t; wid : Dsm_memory.Wid.t }

type t =
  | Read_req of { req : int; loc : Dsm_memory.Loc.t }
  | Read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Write_req of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Write_reply of { req : int; loc : Dsm_memory.Loc.t }
  | Invalidate of { loc : Dsm_memory.Loc.t; token : int }
      (** [token] identifies the owner-side write waiting for this round of
          acknowledgements (meaningful only in acknowledged mode) *)
  | Inv_ack of { loc : Dsm_memory.Loc.t; token : int }
  (* Dynamic-ownership (Li-Hudak distributed manager) messages; forwarded
     along probable-owner chains until they reach the true owner. *)
  | Dyn_read of { req : int; requester : int; loc : Dsm_memory.Loc.t }
  | Dyn_read_reply of { req : int; loc : Dsm_memory.Loc.t; entry : entry }
  | Dyn_write of { req : int; requester : int; loc : Dsm_memory.Loc.t }
  | Dyn_grant of { req : int; loc : Dsm_memory.Loc.t }
      (** ownership transfer: the old owner has already invalidated every
          cached copy; the requester becomes owner and applies its write *)

let kind = function
  | Read_req _ -> "READ"
  | Read_reply _ -> "R_REPLY"
  | Write_req _ -> "WRITE"
  | Write_reply _ -> "W_REPLY"
  | Invalidate _ -> "INVAL"
  | Inv_ack _ -> "INV_ACK"
  | Dyn_read _ -> "DREAD"
  | Dyn_read_reply _ -> "DR_REPLY"
  | Dyn_write _ -> "DWRITE"
  | Dyn_grant _ -> "DGRANT"
