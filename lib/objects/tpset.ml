(** A two-phase set under remove-wins resolution: adds and removes
    accumulate in separate grow-only phases and membership is
    [added \ removed], so a removed element never returns and concurrent
    add/remove of one element resolves for the remove under {e every}
    linearization — the policy is folded into the state, keeping the spec
    commutative. *)

module S = struct
  type state = { added : string list; removed : string list } (* both sorted, unique *)

  type op = Add of string | Remove of string

  type ret = unit

  let name = "tpset"

  let policy = Spec.Remove_wins

  let initial = { added = []; removed = [] }

  let insert e l = if List.mem e l then l else List.sort compare (e :: l)

  let apply st = function
    | Add e -> ({ st with added = insert e st.added }, ())
    | Remove e -> ({ st with removed = insert e st.removed }, ())

  let render st =
    String.concat "," (List.filter (fun e -> not (List.mem e st.removed)) st.added)

  let encode = function Add e -> "add:" ^ e | Remove e -> "rem:" ^ e

  let decode s =
    match String.split_on_char ':' s with
    | [ "add"; e ] -> Some (Add e)
    | [ "rem"; e ] -> Some (Remove e)
    | _ -> None
end

include Causal_object.Make (S)

let add e = S.Add e

let remove e = S.Remove e
