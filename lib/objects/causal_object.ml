(** The [Causal_object] functor: one sequential spec in, a causally
    consistent replicated object out — plus, mechanically, its checker
    semantics ({!Make.sem}), which is what turns every instance into a
    litmus family, a property suite, an MC scope member and a chaos
    workload (ROADMAP item 3).

    {b Embedding.}  An instance named [obj] stores its updates in
    per-writer, append-only {e op-log cells} [Loc.Cell (obj, writer, k)]:
    writer [w]'s [k]-th update is one register write of cell [(w, k)],
    payload the encoded op.  The sequence is gap-free per writer, so a
    reader can discover all updates by probing cells [(w, 0), (w, 1), ...]
    with ordinary register reads until one returns [Free] — object traffic
    rides the paper's WRITE/invalidation path unchanged, as opaque
    payloads.  Cluster configs must initialize the family's cells to
    [Value.Free] (see {!Registry.init}).

    {b Merge and queries.}  A client folds every update it has fetched
    through the spec, ordering by the update's {e frontier} — the
    per-writer counts the updating client had fetched when it appended,
    carried as a payload prefix [f=c0.c1...;<op>].  If update [a] is in the
    causal past of update [b] then [b]'s frontier strictly dominates [a]'s
    at [a]'s writer, so sorting by frontier weight (sum, tie-broken by
    [(writer, k)]) linearizes consistently with the object-level causal
    order.  A query re-probes until its observation set is
    {e frontier-closed} (every fetched update's prerequisites are fetched),
    then folds; each query is also recorded for certification by
    {!Dsm_checker.Obj_check} against the register history. *)

module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Obj_check = Dsm_checker.Obj_check

(* Payload framing: ["f=3.0.1;inc"] is an op with frontier [|3;0;1|];
   a bare payload (no ["f="] prefix, as MC litmus programs write) has no
   frontier and sorts by its own cell index. *)
let encode_frontier frontier bare =
  let b = Buffer.create (16 + String.length bare) in
  Buffer.add_string b "f=";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b '.';
      Buffer.add_string b (string_of_int c))
    frontier;
  Buffer.add_char b ';';
  Buffer.add_string b bare;
  Buffer.contents b

let split_payload s =
  if String.length s >= 2 && s.[0] = 'f' && s.[1] = '=' then
    match String.index_opt s ';' with
    | Some i ->
        let fs = String.sub s 2 (i - 2) in
        let bare = String.sub s (i + 1) (String.length s - i - 1) in
        let parts = if fs = "" then [] else String.split_on_char '.' fs in
        let counts = List.map (fun p -> match int_of_string_opt p with Some n -> n | None -> 0) parts in
        (Some (Array.of_list counts), bare)
    | None -> (None, s)
  else (None, s)

let strip_frontier s = snd (split_payload s)

module Make (S : Spec.SPEC) = struct
  let name = S.name

  let policy = S.policy

  let order_sensitive = Spec.order_sensitive S.policy

  (* Fold encoded payloads (frontier prefixes tolerated) through the spec
     in the order given; undecodable payloads are skipped, keeping the
     checker total on adversarial histories. *)
  let eval payloads =
    let st =
      List.fold_left
        (fun st p ->
          match S.decode (strip_frontier p) with Some op -> fst (S.apply st op) | None -> st)
        S.initial payloads
    in
    S.render st

  let sem = { Obj_check.obj = S.name; fold = eval; order_sensitive }

  module Client (M : Dsm_memory.Memory_intf.MEMORY) = struct
    type fetched = { weight : int; frontier : int array option; bare : string }

    type t = {
      h : M.handle;
      pid : int;
      procs : int;
      frontier : int array;  (** per-writer count of updates fetched *)
      fetched : (int * int, fetched) Hashtbl.t;  (** (writer, k) -> update *)
      buggy_merge : bool;
      mutable issued : int;  (** reads/writes this client performed: the query anchor *)
      mutable queries : Obj_check.query list;  (** newest first *)
    }

    let attach ?(buggy_merge = false) h =
      let procs = M.processes h in
      {
        h;
        pid = M.pid h;
        procs;
        frontier = Array.make procs 0;
        fetched = Hashtbl.create 32;
        buggy_merge;
        issued = 0;
        queries = [];
      }

    let pid t = t.pid

    (* One probe sweep: walk every writer's op log upward from the current
       frontier until a cell reads [Free].  Cells of other writers are
       refreshed first — the paper's occasional-discard liveness device —
       so a poll can observe remote progress; own cells always hit the
       local cache.  Returns whether anything new was fetched. *)
    let probe_pass t =
      let found = ref false in
      for q = 0 to t.procs - 1 do
        let continue = ref true in
        while !continue do
          let k = t.frontier.(q) in
          let loc = Loc.cell S.name q k in
          if q <> t.pid then M.refresh t.h loc;
          let v = M.read t.h loc in
          t.issued <- t.issued + 1;
          if Value.is_free v then continue := false
          else begin
            let frontier, bare = split_payload (Obj_check.payload v) in
            let weight =
              match frontier with Some f -> Array.fold_left ( + ) 0 f | None -> k
            in
            Hashtbl.replace t.fetched (q, k) { weight; frontier; bare };
            t.frontier.(q) <- k + 1;
            found := true
          end
        done
      done;
      !found

    (* Is the fetch set frontier-closed?  Every fetched update's embedded
       frontier must be componentwise covered by what we fetched. *)
    let closed t =
      Hashtbl.fold
        (fun _ (u : fetched) acc ->
          acc
          &&
          match u.frontier with
          | None -> true
          | Some f ->
              let ok = ref true in
              Array.iteri (fun i c -> if i < t.procs && t.frontier.(i) < c then ok := false) f;
              !ok)
        t.fetched true

    (* Re-probe until closed (bounded: each pass either fetches something
       new or proves closure; the op logs are finite). *)
    let sync t =
      let passes = ref 0 in
      let continue = ref true in
      while !continue && !passes < t.procs + 3 do
        incr passes;
        let found = probe_pass t in
        continue := found || not (closed t)
      done

    (* The client-side merge: order by frontier weight (causal-order
       consistent, see the module comment) and fold.  [buggy_merge] is the
       [Merge_drops_op] bug: the causally greatest observed update silently
       falls out of the fold — every probe read stays register-legal, so
       only the object checker can see it. *)
    let current t =
      let items =
        Hashtbl.fold (fun (w, k) u acc -> ((u.weight, w, k), u.bare) :: acc) t.fetched []
        |> List.sort compare
      in
      let items =
        if t.buggy_merge then match List.rev items with _ :: rest -> List.rev rest | [] -> []
        else items
      in
      let st =
        List.fold_left
          (fun st (_, bare) ->
            match S.decode bare with Some op -> fst (S.apply st op) | None -> st)
          S.initial items
      in
      st

    let update t op =
      sync t;
      let k = t.frontier.(t.pid) in
      let bare = S.encode op in
      let payload = encode_frontier t.frontier bare in
      M.write t.h (Loc.cell S.name t.pid k) (Value.Str payload);
      t.issued <- t.issued + 1;
      Hashtbl.replace t.fetched (t.pid, k)
        { weight = Array.fold_left ( + ) 0 t.frontier; frontier = Some (Array.copy t.frontier); bare };
      t.frontier.(t.pid) <- k + 1

    let query t =
      sync t;
      let ret = S.render (current t) in
      t.queries <-
        {
          Obj_check.q_pid = t.pid;
          q_obj = S.name;
          q_ret = ret;
          q_anchor = t.issued - 1;
          q_observed = None;
        }
        :: t.queries;
      ret

    let state t = current t

    let queries t = List.rev t.queries
  end
end
