(** The paper's Section-4 dictionary re-expressed as a [Causal_object]
    instance: insert/delete per key, concurrent writers of one key
    resolving by linearization order — the object-level analog of the
    register dictionary's owner-favoring policy (which picked the owner's
    linearization; here any causal-past linearization is spec-legal, and
    the checker accepts whichever the merge produced). *)

module S = struct
  type state = (string * string) list (* unordered assoc, one entry per key *)

  type op = Insert of string * string | Delete of string

  type ret = unit

  let name = "odict"

  let policy = Spec.Last_writer_wins

  let initial = []

  let drop k st = List.filter (fun (k', _) -> not (String.equal k k')) st

  let apply st = function
    | Insert (k, v) -> ((k, v) :: drop k st, ())
    | Delete k -> (drop k st, ())

  let render st =
    st
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> List.sort compare
    |> String.concat ","

  let encode = function
    | Insert (k, v) -> Printf.sprintf "ins:%s:%s" k v
    | Delete k -> "del:" ^ k

  let decode s =
    match String.split_on_char ':' s with
    | [ "ins"; k; v ] -> Some (Insert (k, v))
    | [ "del"; k ] -> Some (Delete k)
    | _ -> None
end

include Causal_object.Make (S)

let insert k v = S.Insert (k, v)

let delete k = S.Delete k
