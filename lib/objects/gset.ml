(** A grow-only set: membership only ever grows, adds commute (add-wins is
    trivial — there is nothing to lose against), renders as the sorted
    element list. *)

module S = struct
  type state = string list (* sorted, unique *)

  type op = Add of string

  type ret = unit

  let name = "gset"

  let policy = Spec.Add_wins

  let initial = []

  let apply st (Add e) = ((if List.mem e st then st else List.sort compare (e :: st)), ())

  let render st = String.concat "," st

  let encode (Add e) = "add:" ^ e

  let decode s =
    match String.split_on_char ':' s with [ "add"; e ] -> Some (Add e) | _ -> None
end

include Causal_object.Make (S)

let of_elt e = S.Add e
