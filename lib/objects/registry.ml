(** Every shipped instance's checker semantics, keyed by family name —
    the [lookup] the model checker, the chaos harness and the CLI pass to
    {!Dsm_checker.Obj_check.check} / {!Dsm_checker.Online.add_query}. *)

module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Obj_check = Dsm_checker.Obj_check

let all : Obj_check.sem list =
  [ Counter.sem; Gset.sem; Tpset.sem; Oqueue.sem; Odict.sem; Oboard.sem ]

let names = List.map (fun s -> s.Obj_check.obj) all

let find name = List.find_opt (fun s -> String.equal s.Obj_check.obj name) all

(* Cluster init for object workloads: op-log cells are born [Free] (the
   probe's end-of-log marker), everything else keeps the register default.
   Pass as [Config.with_init]. *)
let init loc =
  match (loc : Loc.t) with
  | Loc.Cell (name, _, _) when List.mem name names -> Value.Free
  | _ -> Value.initial
