(** The message board re-expressed as a [Causal_object] instance: posts
    accumulate, the query renders the sorted post set.  The causal-memory
    guarantee the original app demonstrated — a reply is never visible
    before the post it answers — reappears here as fold closure: a query's
    fold may not include a post while dropping one of its causal
    prerequisites, which is exactly what {!Dsm_checker.Obj_check}'s
    [closure(obs) ⊆ S] bound certifies. *)

module S = struct
  type state = string list (* sorted "author:text" entries *)

  type op = Post of { author : string; text : string }

  type ret = unit

  let name = "oboard"

  let policy = Spec.Commutes

  let initial = []

  let entry (Post { author; text }) = author ^ ":" ^ text

  let apply st op =
    let e = entry op in
    ((if List.mem e st then st else List.sort compare (e :: st)), ())

  let render st = String.concat ";" st

  let encode (Post { author; text }) = Printf.sprintf "post:%s:%s" author text

  let decode s =
    match String.split_on_char ':' s with
    | "post" :: author :: rest when rest <> [] ->
        Some (Post { author; text = String.concat ":" rest })
    | _ -> None
end

include Causal_object.Make (S)

let post ~author ~text = S.Post { author; text }
