(** An append-only queue: pushes append in linearization order, so the
    rendered order must respect the causal order of the pushes — the
    order-sensitive instance that forces the checker to actually search
    causal-past linearizations (concurrent pushes may appear in either
    order; causally ordered ones must not invert). *)

module S = struct
  type state = string list (* newest first *)

  type op = Push of string

  type ret = unit

  let name = "oque"

  let policy = Spec.Causal_append

  let initial = []

  let apply st (Push e) = (e :: st, ())

  let render st = String.concat "|" (List.rev st)

  let encode (Push e) = "push:" ^ e

  let decode s =
    match String.split_on_char ':' s with [ "push"; e ] -> Some (Push e) | _ -> None
end

include Causal_object.Make (S)

let push e = S.Push e
