(** A replicated counter: increments (optionally weighted) commute, so
    every causal-past linearization agrees and the checker never searches
    orders — the cheapest instance, and the litmus/mutation workhorse. *)

module S = struct
  type state = int

  type op = Incr | Add of int

  type ret = unit

  let name = "ctr"

  let policy = Spec.Commutes

  let initial = 0

  let apply st = function Incr -> (st + 1, ()) | Add n -> (st + n, ())

  let render = string_of_int

  let encode = function Incr -> "inc" | Add n -> Printf.sprintf "add:%d" n

  let decode s =
    if String.equal s "inc" then Some Incr
    else
      match String.split_on_char ':' s with
      | [ "add"; n ] -> Option.map (fun n -> Add n) (int_of_string_opt n)
      | _ -> None
end

include Causal_object.Make (S)

let incr = S.Incr

let add n = S.Add n
