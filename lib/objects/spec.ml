(** Sequential specifications of causal objects.

    The paper's memory is read/write registers, but its causal machinery
    never inspects values — Mostéfaoui, Perrin & Raynal (PAPERS.md) exploit
    exactly that: {e any} object with a sequential specification can be made
    causally consistent over such a memory.  A [SPEC] is that sequential
    object: a state, an update operation, a deterministic transition
    function, and a rendering of the state a query returns.  The conflict
    resolution an instance wants for concurrent updates is a {!policy} —
    it decides whether the checker must search linearizations (see
    {!Causal_object} and {!Dsm_checker.Obj_check}). *)

(** How concurrent updates resolve.  [Commutes], [Add_wins] and
    [Remove_wins] specs reach the same state under every linearization of a
    set (the policy is folded into [apply]/[render] — e.g. a removed
    element never returns); [Last_writer_wins] and [Causal_append] are
    order-sensitive, concurrent updates resolving by linearization order
    (the object-level analog of the register layer's owner-favoring
    resolution). *)
type policy = Commutes | Add_wins | Remove_wins | Last_writer_wins | Causal_append

let order_sensitive = function
  | Commutes | Add_wins | Remove_wins -> false
  | Last_writer_wins | Causal_append -> true

let policy_name = function
  | Commutes -> "commutes"
  | Add_wins -> "add-wins"
  | Remove_wins -> "remove-wins"
  | Last_writer_wins -> "last-writer-wins"
  | Causal_append -> "causal-append"

module type SPEC = sig
  type state

  type op

  type ret

  val name : string
  (** The object family: names this object's [Loc.Cell] op-log cells, the
      checker registry entry, the chaos scenario and the MC scope member.
      Must be unique across instances (and distinct from the register
      families existing apps use). *)

  val policy : policy

  val initial : state

  val apply : state -> op -> state * ret

  val render : state -> string
  (** The query return: a canonical, total rendering of the state ([=] on
      renderings must coincide with the spec's state equality). *)

  val encode : op -> string
  (** Serialize an update into an op-log cell payload.  Must not contain
      [';'] (reserved by the frontier prefix, {!Causal_object}). *)

  val decode : string -> op option
end
