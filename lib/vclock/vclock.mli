(** Vector clocks: the writestamps of the owner protocol.

    Section 3.1 of the paper: "A simple vector timestamp protocol may be used
    to capture precisely the evolving partial ordering of events in a
    distributed system".  A clock over [n] processes is a vector of [n]
    non-negative counters.  Process [i] increments component [i] on every
    write attempt; merging ([update]) takes the component-wise maximum; the
    comparison is the usual product partial order.

    Values are immutable; all operations return fresh clocks.  Clocks of
    different dimensions never compare and may not be merged. *)

type t

val zero : int -> t
(** [zero n] is the all-zero clock over [n] processes.  [n >= 1]. *)

val dim : t -> int

val get : t -> int -> int
(** Component accessor; raises [Invalid_argument] out of range. *)

val increment : t -> int -> t
(** [increment vt i] bumps component [i]: the paper's
    [VT_i := increment(VT_i)]. *)

val update : t -> t -> t
(** Component-wise maximum: the paper's [update(VT, VT')].  Raises
    [Invalid_argument] on dimension mismatch. *)

val of_array : int array -> t
(** Copies its argument. *)

val to_array : t -> int array
(** Fresh array. *)

type order = Before | After | Equal | Concurrent

val compare_vt : t -> t -> order
(** Partial-order comparison.  [Before] means strictly less on the product
    order ([VT < VT'] in the paper: less-or-equal everywhere and strictly less
    somewhere). *)

val lt : t -> t -> bool
(** [lt a b] iff [compare_vt a b = Before]. *)

val leq : t -> t -> bool
(** [lt a b || equal a b]. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool

val sum : t -> int
(** Total of all components: a cheap measure of "how much history" a stamp
    carries; used by statistics and tests. *)

val pp : Format.formatter -> t -> unit
(** Renders as [\[a;b;c\]]. *)

val to_string : t -> string

val total_compare : t -> t -> int
(** An arbitrary total order extending the partial order (lexicographic);
    usable as a [Map]/[Set] comparator and for deterministic tie-breaking
    between concurrent stamps. *)

(** Allocation-free operations over clocks stored as [dim]-wide windows of
    a caller-owned flat [int array] (an arena of many clocks side by side).
    The hot path ({!Dsm_protocol.Flat}) preallocates its arenas once per
    run and reuses them across steps; nothing here allocates — the property
    tests pin each operation to its copying counterpart above, and the
    microbench ALLOC=0 gate pins the no-allocation claim. *)
module Flat : sig
  val merge_into : dst:int array -> dst_off:int -> src:int array -> src_off:int -> dim:int -> unit
  (** In-place component-wise maximum: [dst := update(dst, src)]. *)

  val blit : src:int array -> src_off:int -> dst:int array -> dst_off:int -> dim:int -> unit

  val bump : int array -> off:int -> int -> unit
  (** [bump a ~off i] increments component [i] of the window at [off]. *)

  val fill_zero : int array -> off:int -> dim:int -> unit

  val compare_vt : int array -> a_off:int -> int array -> b_off:int -> dim:int -> order

  val lt : int array -> a_off:int -> int array -> b_off:int -> dim:int -> bool
  (** Strictly before on the product order — agrees with {!Vclock.lt}. *)

  val leq : int array -> a_off:int -> int array -> b_off:int -> dim:int -> bool
end
