type t = int array
(* Invariant: never mutated after construction; every constructor copies. *)

let zero n =
  if n < 1 then invalid_arg "Vclock.zero: dimension must be >= 1";
  Array.make n 0

let dim = Array.length

let get vt i =
  if i < 0 || i >= Array.length vt then invalid_arg "Vclock.get: index out of range";
  vt.(i)

let increment vt i =
  if i < 0 || i >= Array.length vt then invalid_arg "Vclock.increment: index out of range";
  let vt' = Array.copy vt in
  vt'.(i) <- vt'.(i) + 1;
  vt'

let check_dim a b name =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": dimension mismatch")

let update a b =
  check_dim a b "Vclock.update";
  Array.init (Array.length a) (fun i -> if a.(i) >= b.(i) then a.(i) else b.(i))

let of_array a =
  if Array.length a = 0 then invalid_arg "Vclock.of_array: empty";
  Array.copy a

let to_array = Array.copy

type order = Before | After | Equal | Concurrent

let compare_vt a b =
  check_dim a b "Vclock.compare_vt";
  let a_le = ref true and b_le = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then a_le := false;
    if b.(i) > a.(i) then b_le := false
  done;
  match (!a_le, !b_le) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let lt a b = compare_vt a b = Before

let equal a b = compare_vt a b = Equal

let leq a b = match compare_vt a b with Before | Equal -> true | After | Concurrent -> false

let concurrent a b = compare_vt a b = Concurrent

let sum vt = Array.fold_left ( + ) 0 vt

let pp ppf vt =
  Format.fprintf ppf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int vt)))

let to_string vt = Format.asprintf "%a" pp vt

(* {1 Flat windows}

   The hot path (Dsm_protocol.Flat) stores many clocks side by side in one
   preallocated [int array] and works on [dim]-wide windows starting at a
   word offset.  Every operation here is in-place or a pure fold: none
   allocates, which is what the microbench ALLOC=0 gate measures.  Bounds
   are the caller's contract — these run inside loops already bounded by the
   arena layout, and [Array.get]/[set] still check each access. *)

module Flat = struct
  let merge_into ~dst ~dst_off ~src ~src_off ~dim =
    for i = 0 to dim - 1 do
      let s : int = src.(src_off + i) in
      if s > dst.(dst_off + i) then dst.(dst_off + i) <- s
    done

  let blit ~src ~src_off ~dst ~dst_off ~dim = Array.blit src src_off dst dst_off dim

  let bump a ~off i = a.(off + i) <- a.(off + i) + 1

  let fill_zero a ~off ~dim = Array.fill a off dim 0

  (* [Before]/[After]/[Equal]/[Concurrent] over two windows, returned as the
     copying API's [order] so agreement tests are direct. *)
  let compare_vt a ~a_off b ~b_off ~dim =
    let a_le = ref true and b_le = ref true in
    for i = 0 to dim - 1 do
      if a.(a_off + i) > b.(b_off + i) then a_le := false;
      if b.(b_off + i) > a.(a_off + i) then b_le := false
    done;
    match (!a_le, !b_le) with
    | true, true -> Equal
    | true, false -> Before
    | false, true -> After
    | false, false -> Concurrent

  let lt a ~a_off b ~b_off ~dim =
    let a_le = ref true and b_gt = ref false in
    let i = ref 0 in
    while !a_le && !i < dim do
      let x = a.(a_off + !i) and y = b.(b_off + !i) in
      if x > y then a_le := false else if y > x then b_gt := true;
      i := !i + 1
    done;
    !a_le && !b_gt

  let leq a ~a_off b ~b_off ~dim =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < dim do
      if a.(a_off + !i) > b.(b_off + !i) then ok := false;
      i := !i + 1
    done;
    !ok
end

let total_compare a b =
  check_dim a b "Vclock.total_compare";
  let rec go i =
    if i = Array.length a then 0
    else begin
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0
