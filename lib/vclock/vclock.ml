type t = int array
(* Invariant: never mutated after construction; every constructor copies. *)

let zero n =
  if n < 1 then invalid_arg "Vclock.zero: dimension must be >= 1";
  Array.make n 0

let dim = Array.length

let get vt i =
  if i < 0 || i >= Array.length vt then invalid_arg "Vclock.get: index out of range";
  vt.(i)

let increment vt i =
  if i < 0 || i >= Array.length vt then invalid_arg "Vclock.increment: index out of range";
  let vt' = Array.copy vt in
  vt'.(i) <- vt'.(i) + 1;
  vt'

let check_dim a b name =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": dimension mismatch")

let update a b =
  check_dim a b "Vclock.update";
  Array.init (Array.length a) (fun i -> if a.(i) >= b.(i) then a.(i) else b.(i))

let of_array a =
  if Array.length a = 0 then invalid_arg "Vclock.of_array: empty";
  Array.copy a

let to_array = Array.copy

type order = Before | After | Equal | Concurrent

let compare_vt a b =
  check_dim a b "Vclock.compare_vt";
  let a_le = ref true and b_le = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then a_le := false;
    if b.(i) > a.(i) then b_le := false
  done;
  match (!a_le, !b_le) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let lt a b = compare_vt a b = Before

let equal a b = compare_vt a b = Equal

let leq a b = match compare_vt a b with Before | Equal -> true | After | Concurrent -> false

let concurrent a b = compare_vt a b = Concurrent

let sum vt = Array.fold_left ( + ) 0 vt

let pp ppf vt =
  Format.fprintf ppf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int vt)))

let to_string vt = Format.asprintf "%a" pp vt

let total_compare a b =
  check_dim a b "Vclock.total_compare";
  let rec go i =
    if i = Array.length a then 0
    else begin
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0
