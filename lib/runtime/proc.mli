(** Cooperative simulated processes over OCaml 5 effect handlers.

    The paper's model is one application process per node that may {e block}
    on memory operations (remote reads and writes wait for the owner's
    reply) while the node's protocol engine keeps servicing incoming
    messages.  We get exactly that by running each application process as an
    effect-handled coroutine over the discrete-event engine: performing
    [await]/[sleep]/[yield] suspends only the issuing process; message
    handlers are plain engine events and run atomically at delivery time.

    Processes must only perform these operations from within a function
    passed to [spawn]; calling them elsewhere raises
    [Effect.Unhandled]. *)

type sched
(** A scheduler bound to an engine. *)

type handle
(** A spawned process. *)

type 'a ivar
(** Write-once synchronisation cell. *)

val scheduler : ?poll_interval:float -> Dsm_sim.Engine.t -> sched
(** [poll_interval] (default [0.5] simulated time units) is the delay a
    [yield] costs; busy-wait loops ("while not flag do skip") must yield so
    simulated time advances between polls. *)

val engine : sched -> Dsm_sim.Engine.t

val spawn : sched -> ?name:string -> ?delay:float -> (unit -> unit) -> handle
(** Schedule a new process to start after [delay] (default [0.]).  Exceptions
    escaping the process body are recorded on the scheduler and re-raised by
    [check]. *)

val finished : handle -> bool

val name : handle -> string

val check : sched -> unit
(** Re-raise the first exception recorded from any spawned process;
    call after the engine quiesces. *)

val failures : sched -> (string * exn) list
(** All recorded process failures, oldest first. *)

val unfinished : sched -> string list
(** Names of spawned processes that have not finished, spawn order.  If the
    engine has quiesced and this is non-empty, those processes are stuck
    forever (e.g. blocked on a reply that a failed link dropped) — the
    deadlock-detection hook for failure-injection tests. *)

val active : sched -> bool
(** Whether any spawned process has not yet finished.  Periodic cluster
    timers (heartbeats, checkpoints) use this as their stop rule: they
    re-arm only while application processes are still running, so the
    engine can quiesce once the workload is done. *)

val unfinished_since : sched -> (string * float) list
(** Like {!unfinished} but each name carries the simulated time at which the
    process last suspended (its start time if it never ran).  After
    quiescence this is how long each stuck process has been blocked; while
    the engine is still running it distinguishes "still retrying" (a recent
    timestamp) from "stuck since the fault was injected". *)

(** {1 Operations available inside a process} *)

val ivar : sched -> 'a ivar
(** Fresh empty cell. May be created anywhere. *)

val fill : 'a ivar -> 'a -> unit
(** Fill the cell and wake all awaiting processes (each resumes as a fresh
    engine event at the current simulated time).  Filling twice raises
    [Invalid_argument].  May be called from anywhere, including plain message
    handlers. *)

val is_filled : 'a ivar -> bool

val peek : 'a ivar -> 'a option

val await : 'a ivar -> 'a
(** Block the current process until the cell is filled. *)

val await_timeout : 'a ivar -> timeout:float -> 'a option
(** Block until the cell is filled or [timeout] simulated time elapses,
    whichever comes first; [None] on timeout.  A fill after the timeout
    does not resume the process again (the cell is still filled and can be
    inspected with {!peek}).  [timeout] must be positive. *)

val sleep : float -> unit
(** Suspend the current process for the given simulated duration. *)

val yield : unit -> unit
(** Suspend for the scheduler's poll interval; use inside spin loops. *)

val join : handle -> unit
(** Block until the given process finishes (normally or with an error). *)
