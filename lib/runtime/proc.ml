type sched = {
  engine : Dsm_sim.Engine.t;
  poll_interval : float;
  mutable failed : (string * exn) list; (* newest first *)
  mutable spawned : spawned list; (* newest first *)
}

and spawned = {
  spawned_name : string;
  finished_check : unit -> bool;
  mutable blocked_since : float; (* sim time of the last suspension *)
}

type 'a ivar_state =
  | Empty of ('a -> unit) list (* waiters, newest first *)
  | Full of 'a

type 'a ivar = { sched : sched; mutable state : 'a ivar_state }

type handle = { proc_name : string; done_ivar : unit ivar }

type _ Effect.t +=
  | Await : 'a ivar -> 'a Effect.t
  | Await_timeout : 'a ivar * float -> 'a option Effect.t
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t

let scheduler ?(poll_interval = 0.5) engine =
  if poll_interval <= 0.0 then invalid_arg "Proc.scheduler: poll_interval must be positive";
  { engine; poll_interval; failed = []; spawned = [] }

let engine sched = sched.engine

let ivar sched = { sched; state = Empty [] }

let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false

let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

let fill iv v =
  match iv.state with
  | Full _ -> invalid_arg "Proc.fill: ivar already filled"
  | Empty waiters ->
      iv.state <- Full v;
      (* Wake in arrival order; each waiter resumes as its own engine event so
         handlers stay atomic. *)
      List.iter
        (fun waiter -> Dsm_sim.Engine.schedule iv.sched.engine ~delay:0.0 (fun () -> waiter v))
        (List.rev waiters)

let await iv = Effect.perform (Await iv)

let await_timeout iv ~timeout =
  if timeout <= 0.0 then invalid_arg "Proc.await_timeout: timeout must be positive";
  Effect.perform (Await_timeout (iv, timeout))

let sleep duration = Effect.perform (Sleep duration)

let yield () = Effect.perform Yield

let finished handle = is_filled handle.done_ivar

let name handle = handle.proc_name

let join handle = await handle.done_ivar

let check sched =
  match List.rev sched.failed with
  | [] -> ()
  | (proc, exn) :: _ ->
      raise (Failure (Printf.sprintf "process %s failed: %s" proc (Printexc.to_string exn)))

let failures sched = List.rev sched.failed

let unfinished sched =
  List.rev sched.spawned
  |> List.filter_map (fun s -> if s.finished_check () then None else Some s.spawned_name)

let active sched = List.exists (fun s -> not (s.finished_check ())) sched.spawned

let unfinished_since sched =
  List.rev sched.spawned
  |> List.filter_map (fun s ->
         if s.finished_check () then None else Some (s.spawned_name, s.blocked_since))

let spawn sched ?(name = "proc") ?(delay = 0.0) body =
  let handle = { proc_name = name; done_ivar = ivar sched } in
  let record =
    {
      spawned_name = name;
      finished_check = (fun () -> is_filled handle.done_ivar);
      blocked_since = Dsm_sim.Engine.now sched.engine +. delay;
    }
  in
  sched.spawned <- record :: sched.spawned;
  let suspending () = record.blocked_since <- Dsm_sim.Engine.now sched.engine in
  let run () =
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> fill handle.done_ivar ());
        exnc =
          (fun exn ->
            sched.failed <- (name, exn) :: sched.failed;
            fill handle.done_ivar ());
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Await iv ->
                Some
                  (fun (k : (b, _) Effect.Deep.continuation) ->
                    suspending ();
                    match iv.state with
                    | Full v -> Effect.Deep.continue k v
                    | Empty waiters ->
                        iv.state <- Empty ((fun v -> Effect.Deep.continue k v) :: waiters))
            | Await_timeout (iv, timeout) ->
                Some
                  (fun (k : (b, _) Effect.Deep.continuation) ->
                    suspending ();
                    match iv.state with
                    | Full v -> Effect.Deep.continue k (Some v)
                    | Empty waiters ->
                        (* First of {fill, timer} resumes the process; the
                           loser finds [resumed] set and does nothing. *)
                        let resumed = ref false in
                        let on_fill v =
                          if not !resumed then begin
                            resumed := true;
                            Effect.Deep.continue k (Some v)
                          end
                        in
                        iv.state <- Empty (on_fill :: waiters);
                        Dsm_sim.Engine.schedule sched.engine ~delay:timeout (fun () ->
                            if not !resumed then begin
                              resumed := true;
                              Effect.Deep.continue k None
                            end))
            | Sleep duration ->
                Some
                  (fun k ->
                    if duration < 0.0 then
                      Effect.Deep.discontinue k (Invalid_argument "Proc.sleep: negative duration")
                    else begin
                      suspending ();
                      Dsm_sim.Engine.schedule sched.engine ~delay:duration (fun () ->
                          Effect.Deep.continue k ())
                    end)
            | Yield ->
                Some
                  (fun k ->
                    suspending ();
                    Dsm_sim.Engine.schedule sched.engine ~delay:sched.poll_interval (fun () ->
                        Effect.Deep.continue k ()))
            | _ -> None);
      }
  in
  Dsm_sim.Engine.schedule sched.engine ~delay run;
  handle
