type sched = {
  engine : Dsm_sim.Engine.t;
  poll_interval : float;
  mutable failed : (string * exn) list; (* newest first *)
  mutable spawned : spawned list; (* newest first *)
}

and spawned = { spawned_name : string; finished_check : unit -> bool }

type 'a ivar_state =
  | Empty of ('a -> unit) list (* waiters, newest first *)
  | Full of 'a

type 'a ivar = { sched : sched; mutable state : 'a ivar_state }

type handle = { proc_name : string; done_ivar : unit ivar }

type _ Effect.t +=
  | Await : 'a ivar -> 'a Effect.t
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t

let scheduler ?(poll_interval = 0.5) engine =
  if poll_interval <= 0.0 then invalid_arg "Proc.scheduler: poll_interval must be positive";
  { engine; poll_interval; failed = []; spawned = [] }

let engine sched = sched.engine

let ivar sched = { sched; state = Empty [] }

let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false

let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

let fill iv v =
  match iv.state with
  | Full _ -> invalid_arg "Proc.fill: ivar already filled"
  | Empty waiters ->
      iv.state <- Full v;
      (* Wake in arrival order; each waiter resumes as its own engine event so
         handlers stay atomic. *)
      List.iter
        (fun waiter -> Dsm_sim.Engine.schedule iv.sched.engine ~delay:0.0 (fun () -> waiter v))
        (List.rev waiters)

let await iv = Effect.perform (Await iv)

let sleep duration = Effect.perform (Sleep duration)

let yield () = Effect.perform Yield

let finished handle = is_filled handle.done_ivar

let name handle = handle.proc_name

let join handle = await handle.done_ivar

let check sched =
  match List.rev sched.failed with
  | [] -> ()
  | (proc, exn) :: _ ->
      raise (Failure (Printf.sprintf "process %s failed: %s" proc (Printexc.to_string exn)))

let failures sched = List.rev sched.failed

let unfinished sched =
  List.rev sched.spawned
  |> List.filter_map (fun s -> if s.finished_check () then None else Some s.spawned_name)

let spawn sched ?(name = "proc") ?(delay = 0.0) body =
  let handle = { proc_name = name; done_ivar = ivar sched } in
  sched.spawned <-
    { spawned_name = name; finished_check = (fun () -> is_filled handle.done_ivar) }
    :: sched.spawned;
  let run () =
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> fill handle.done_ivar ());
        exnc =
          (fun exn ->
            sched.failed <- (name, exn) :: sched.failed;
            fill handle.done_ivar ());
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Await iv ->
                Some
                  (fun (k : (b, _) Effect.Deep.continuation) ->
                    match iv.state with
                    | Full v -> Effect.Deep.continue k v
                    | Empty waiters ->
                        iv.state <- Empty ((fun v -> Effect.Deep.continue k v) :: waiters))
            | Sleep duration ->
                Some
                  (fun k ->
                    if duration < 0.0 then
                      Effect.Deep.discontinue k (Invalid_argument "Proc.sleep: negative duration")
                    else
                      Dsm_sim.Engine.schedule sched.engine ~delay:duration (fun () ->
                          Effect.Deep.continue k ()))
            | Yield ->
                Some
                  (fun k ->
                    Dsm_sim.Engine.schedule sched.engine ~delay:sched.poll_interval (fun () ->
                        Effect.Deep.continue k ()))
            | _ -> None);
      }
  in
  Dsm_sim.Engine.schedule sched.engine ~delay run;
  handle
