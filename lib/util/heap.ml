type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable data : ('k, 'v) entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Entries compare first by key, then by insertion sequence so that equal
   keys pop in FIFO order. *)
let entry_lt t a b =
  let c = t.cmp a.key b.key in
  c < 0 || (c = 0 && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = if capacity = 0 then 16 else capacity * 2 in
    let data' = Array.make capacity' entry in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_sorted_list t =
  let copy =
    { cmp = t.cmp; data = Array.sub t.data 0 t.size; size = t.size; next_seq = t.next_seq }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
