(** ASCII table rendering for experiment output.

    Every experiment in [bench/main.exe] prints its rows through this module
    so the harness output is uniform and diffable. *)

type align = Left | Right

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows are
    rejected with [Invalid_argument]. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Left] for the first column and [Right]
    elsewhere (experiment tables are label + numbers). *)

val render : t -> string
(** Multi-line string with a ruled header, no trailing newline. *)

val headers : t -> string list

val rows : t -> string list list
(** Rows in insertion order, padded to the header width — the structured
    data behind [render], e.g. for CSV export. *)

val print : ?title:string -> t -> unit
(** [render] to stdout, optionally preceded by an underlined title and
    followed by a blank line. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper (default 2 decimals). *)

val cell_int : int -> string
