type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let total t = t.total

(* NaN policy for the sample helpers: NaN observations carry no ordering
   information, so order statistics drop them up front rather than letting
   a comparison-dependent sort scatter them through the array (polymorphic
   [compare] orders [nan] below every float; [Float.compare] is explicit
   about it — either way a NaN in the middle of [sorted] would poison
   interpolation). *)
let drop_nans samples =
  if Array.exists Float.is_nan samples then
    Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq samples))
  else samples

let percentile samples p =
  let samples = drop_nans samples in
  let n = Array.length samples in
  if n = 0 || Float.is_nan p then nan
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let mean_of samples =
  let n = Array.length samples in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let histogram samples ~buckets =
  let samples = drop_nans samples in
  let n = Array.length samples in
  if n = 0 || buckets <= 0 then [||]
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int buckets in
    let counts = Array.make buckets 0 in
    Array.iter
      (fun x ->
        let idx = int_of_float ((x -. lo) /. width) in
        let idx = if idx >= buckets then buckets - 1 else if idx < 0 then 0 else idx in
        counts.(idx) <- counts.(idx) + 1)
      samples;
    Array.mapi
      (fun i c ->
        let b_lo = lo +. (float_of_int i *. width) in
        (b_lo, b_lo +. width, c))
      counts
  end
