(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible bit-for-bit from a seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
    statistical quality for simulation purposes, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give
    independent-looking streams. *)

val copy : t -> t
(** [copy t] duplicates the state so two consumers can evolve
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used by latency
    models. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
