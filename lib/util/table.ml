type align = Left | Right

type t = {
  headers : string array;
  mutable rows : string array list; (* reverse order *)
  mutable align : align array;
}

let default_align n = Array.init n (fun i -> if i = 0 then Left else Right)

let create ~headers =
  let headers = Array.of_list headers in
  { headers; rows = []; align = default_align (Array.length headers) }

let add_row t cells =
  let width = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > width then invalid_arg "Table.add_row: too many cells";
  let padded = Array.make width "" in
  Array.blit cells 0 padded 0 (Array.length cells);
  t.rows <- padded :: t.rows

let set_align t aligns =
  let a = Array.of_list aligns in
  if Array.length a <> Array.length t.headers then
    invalid_arg "Table.set_align: arity mismatch";
  t.align <- a

let headers t = Array.to_list t.headers

(* t.rows is newest-first; rev_map restores insertion order. *)
let rows t = List.rev_map Array.to_list t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let line row align_for =
    let cells = Array.mapi (fun i cell -> pad (align_for i) widths.(i) cell) row in
    "| " ^ String.concat " | " (Array.to_list cells) ^ " |"
  in
  let rule =
    let dashes = Array.map (fun w -> String.make (w + 2) '-') widths in
    "+" ^ String.concat "+" (Array.to_list dashes) ^ "+"
  in
  let header = line t.headers (fun _ -> Left) in
  let body = List.map (fun row -> line row (fun i -> t.align.(min i (ncols - 1)))) rows in
  String.concat "\n" (rule :: header :: rule :: (body @ [ rule ]))

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '='));
  print_endline (render t);
  print_newline ()

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int n = string_of_int n
