(** Running summary statistics (Welford) and small sample helpers.

    {2 Empty-input and NaN conventions}

    Two families of statistics behave differently on degenerate input, on
    purpose:

    - {e count-like} statistics — {!mean}, {!variance}, {!stddev},
      {!total}, {!mean_of} — return [0.0] on an empty input: they are sums
      scaled by a count, and an empty sum is zero.
    - {e order} statistics — {!min}, {!max}, {!percentile} — return [nan]
      on an empty input: an empty set has no smallest element, and [nan]
      refuses to masquerade as one.

    The sample helpers ({!percentile}, {!histogram}) {e ignore NaN
    observations}: a NaN carries no ordering information, so it is dropped
    before sorting or bucketing rather than being allowed to poison the
    result (all-NaN input is treated as empty).  The accumulator ({!add})
    does {e not} filter — feeding it NaN contaminates the running mean, as
    with any online algorithm; filter at the edge if your source can
    produce NaN. *)

type t
(** Accumulator for a stream of float observations. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [0.0] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.0] with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val total : t -> float

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [\[0,100\]] (values outside are
    clamped); sorts a copy with [Float.compare] and uses linear
    interpolation between adjacent ranks.  NaN samples are ignored; [nan]
    when no finite-or-infinite samples remain, or when [p] is NaN.  A
    single sample is every percentile of itself. *)

val mean_of : float array -> float
(** [0.0] on the empty array.  (Does not filter NaN — see the convention
    note above.) *)

val histogram : float array -> buckets:int -> (float * float * int) array
(** [(lo, hi, count)] rows covering the sample range.  NaN samples are
    ignored; [[||]] when nothing remains or [buckets <= 0]. *)
