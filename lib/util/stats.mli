(** Running summary statistics (Welford) and small sample helpers. *)

type t
(** Accumulator for a stream of float observations. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0. with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val total : t -> float

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [\[0,100\]]; sorts a copy and uses
    linear interpolation.  [nan] on the empty array. *)

val mean_of : float array -> float

val histogram : float array -> buckets:int -> (float * float * int) array
(** [(lo, hi, count)] rows covering the sample range. *)
