(** Minimal CSV emission for experiment artefacts.

    Only what the bench harness needs: quoting of cells containing commas,
    quotes, or newlines, and writing a row list to a file. *)

val escape_cell : string -> string
(** RFC-4180 quoting when required, identity otherwise. *)

val row_to_string : string list -> string

val to_string : string list list -> string
(** Rows joined with ["\n"], trailing newline included. *)

val write_file : string -> string list list -> unit
