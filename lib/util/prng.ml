type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to a non-negative native int (to_int truncates to 63 bits and can
     go negative), then reduce.  The modulo bias is negligible for the
     bounds used in simulation. *)
  let raw = Int64.to_int (next_int64 t) land max_int in
  raw mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard the log argument away from zero. *)
  -.mean *. log (1.0 -. (u *. 0.9999999999))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
