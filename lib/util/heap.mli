(** Binary min-heap keyed by a totally ordered priority.

    Used as the event queue of the discrete-event engine.  Entries with equal
    priority are returned in insertion order (the heap stores an insertion
    sequence number as a tie-breaker), which is what makes simulations
    deterministic. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
(** Empty heap ordered by [cmp] on keys. *)

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the minimum entry; ties broken by insertion order. *)

val peek : ('k, 'v) t -> ('k * 'v) option

val clear : ('k, 'v) t -> unit

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive sorted drain (copies the heap); intended for tests and
    debugging dumps. *)
