(* Rows are Bytes, padded to a multiple of 8 so the hot loops (union,
   emptiness, scans) run over 64-bit words via [Bytes.get_int64_ne] — the
   native compiler keeps those int64s unboxed, so a row union is n/64
   register ORs rather than n/8 byte RMWs.  Single-bit access stays
   byte-granular. *)
type t = { n : int; words : int; rows : Bytes.t array }

let create n =
  let words = (n + 63) / 64 * 8 in
  let words = max words 8 in
  { n; words; rows = Array.init n (fun _ -> Bytes.make words '\000') }

let size t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Bitrel: index out of range"

let add t i j =
  check t i j;
  let row = t.rows.(i) in
  let byte = j / 8 and bit = j mod 8 in
  Bytes.unsafe_set row byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get row byte) lor (1 lsl bit)))

let mem t i j =
  check t i j;
  let row = t.rows.(i) in
  let byte = j / 8 and bit = j mod 8 in
  Char.code (Bytes.unsafe_get row byte) land (1 lsl bit) <> 0

let copy t = { t with rows = Array.map Bytes.copy t.rows }

let clear t = Array.iter (fun row -> Bytes.fill row 0 t.words '\000') t.rows

let union_row_into t ~src ~dst =
  let s = t.rows.(src) and d = t.rows.(dst) in
  let w = t.words / 8 in
  for b = 0 to w - 1 do
    let o = b * 8 in
    Bytes.set_int64_ne d o (Int64.logor (Bytes.get_int64_ne d o) (Bytes.get_int64_ne s o))
  done

let row_is_empty t i =
  let row = t.rows.(i) in
  let w = t.words / 8 in
  let rec go b = b >= w || (Bytes.get_int64_ne row (b * 8) = 0L && go (b + 1)) in
  go 0

(* Word-skip scan: visit each set bit of a row, cheap on the mostly-zero
   rows the checker's closures are made of. *)
let iter_row t i f =
  let row = t.rows.(i) in
  let w = t.words / 8 in
  for b = 0 to w - 1 do
    if Bytes.get_int64_ne row (b * 8) <> 0L then
      for byte = b * 8 to (b * 8) + 7 do
        let v = Char.code (Bytes.unsafe_get row byte) in
        if v <> 0 then
          for bit = 0 to 7 do
            if v land (1 lsl bit) <> 0 then f ((byte * 8) + bit)
          done
      done
  done

(* For each [a] in row [sel_row] of [sel], add (a, j) to [t].  The hot path
   of closure maintenance: inserting an edge onto a fresh target [j] needs
   exactly bit [j] set in every predecessor row — byte and mask are fixed,
   so this is one read-or-write per predecessor with no per-bit closure. *)
let add_col t ~sel ~sel_row j =
  check t sel_row j;
  if sel.n <> t.n then invalid_arg "Bitrel.add_col: size mismatch";
  let byte = j / 8 and mask = 1 lsl (j mod 8) in
  let srow = sel.rows.(sel_row) in
  let w = sel.words / 8 in
  for b = 0 to w - 1 do
    if Bytes.get_int64_ne srow (b * 8) <> 0L then
      for sbyte = b * 8 to (b * 8) + 7 do
        let sb = Char.code (Bytes.unsafe_get srow sbyte) in
        if sb <> 0 then
          for bit = 0 to 7 do
            if sb land (1 lsl bit) <> 0 then begin
              let row = t.rows.((sbyte * 8) + bit) in
              Bytes.unsafe_set row byte
                (Char.unsafe_chr (Char.code (Bytes.unsafe_get row byte) lor mask))
            end
          done
      done
  done

(* Copy row [src_row] of [src] into row [dst_row] of [dst] (and mirror into
   [dst_rev]) under an index remapping: bit [k] survives iff [map.(k) >= 0],
   landing at [map.(k)].  One tight loop for window compaction instead of an
   iterator closure plus two bounds-checked adds per surviving pair. *)
let remap_row_into src ~src_row ~map ~dst ~dst_rev ~dst_row =
  if dst_row < 0 || dst_row >= dst.n then invalid_arg "Bitrel.remap_row_into";
  let srow = src.rows.(src_row) in
  let drow = dst.rows.(dst_row) in
  let rbyte = dst_row / 8 and rmask = 1 lsl (dst_row mod 8) in
  let w = src.words / 8 in
  for b = 0 to w - 1 do
    if Bytes.get_int64_ne srow (b * 8) <> 0L then
      for sbyte = b * 8 to (b * 8) + 7 do
        let sb = Char.code (Bytes.unsafe_get srow sbyte) in
        if sb <> 0 then
          for bit = 0 to 7 do
            if sb land (1 lsl bit) <> 0 then begin
              let j = map.((sbyte * 8) + bit) in
              if j >= 0 then begin
                Bytes.unsafe_set drow (j / 8)
                  (Char.unsafe_chr
                     (Char.code (Bytes.unsafe_get drow (j / 8)) lor (1 lsl (j mod 8))));
                let rrow = dst_rev.rows.(j) in
                Bytes.unsafe_set rrow rbyte
                  (Char.unsafe_chr (Char.code (Bytes.unsafe_get rrow rbyte) lor rmask))
              end
            end
          done
      done
  done

let row_equal a b = Bytes.equal a b

(* Warshall-style fixpoint: repeatedly OR successor rows into each row until
   nothing changes.  O(n^3 / word) worst case, plenty fast for the execution
   sizes the checker sees. *)
let transitive_closure t =
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to t.n - 1 do
      let before = Bytes.copy t.rows.(i) in
      for j = 0 to t.n - 1 do
        if mem t i j then union_row_into t ~src:j ~dst:i
      done;
      if not (row_equal before t.rows.(i)) then changed := true
    done
  done

let successors t i =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if mem t i j then acc := j :: !acc
  done;
  !acc

let count_pairs t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if mem t i j then incr total
    done;
  done;
  !total

let equal a b =
  a.n = b.n
  && Array.for_all2 (fun ra rb -> row_equal ra rb) a.rows b.rows
