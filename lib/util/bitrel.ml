type t = { n : int; words : int; rows : Bytes.t array }

let bits_per_word = 8

let create n =
  let words = (n + bits_per_word - 1) / bits_per_word in
  let words = max words 1 in
  { n; words; rows = Array.init n (fun _ -> Bytes.make words '\000') }

let size t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Bitrel: index out of range"

let add t i j =
  check t i j;
  let row = t.rows.(i) in
  let byte = j / 8 and bit = j mod 8 in
  Bytes.unsafe_set row byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get row byte) lor (1 lsl bit)))

let mem t i j =
  check t i j;
  let row = t.rows.(i) in
  let byte = j / 8 and bit = j mod 8 in
  Char.code (Bytes.unsafe_get row byte) land (1 lsl bit) <> 0

let copy t = { t with rows = Array.map Bytes.copy t.rows }

let union_row_into t ~src ~dst =
  let s = t.rows.(src) and d = t.rows.(dst) in
  for b = 0 to t.words - 1 do
    Bytes.unsafe_set d b
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get d b) lor Char.code (Bytes.unsafe_get s b)))
  done

let row_equal a b = Bytes.equal a b

(* Warshall-style fixpoint: repeatedly OR successor rows into each row until
   nothing changes.  O(n^3 / word) worst case, plenty fast for the execution
   sizes the checker sees. *)
let transitive_closure t =
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to t.n - 1 do
      let before = Bytes.copy t.rows.(i) in
      for j = 0 to t.n - 1 do
        if mem t i j then union_row_into t ~src:j ~dst:i
      done;
      if not (row_equal before t.rows.(i)) then changed := true
    done
  done

let successors t i =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if mem t i j then acc := j :: !acc
  done;
  !acc

let count_pairs t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if mem t i j then incr total
    done
  done;
  !total

let equal a b =
  a.n = b.n
  && Array.for_all2 (fun ra rb -> row_equal ra rb) a.rows b.rows
