(** Dense binary relations over [0 .. n-1] backed by bitsets.

    The causal-memory checker represents the happens-before relation over the
    operations of an execution as an [n x n] bit matrix and closes it
    transitively.  Rows are [Bytes]-backed bitsets so closure is a cheap
    word-wise OR. *)

type t

val create : int -> t
(** [create n] is the empty relation over a universe of size [n]. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add t i j] records the pair (i, j), i.e. "i relates to j". *)

val mem : t -> int -> int -> bool

val copy : t -> t

val union_row_into : t -> src:int -> dst:int -> unit
(** [union_row_into t ~src ~dst] ORs row [src] into row [dst]:
    everything reachable from [src] becomes reachable from [dst]. *)

val transitive_closure : t -> unit
(** Close the relation in place.  Uses a reverse-topological propagation when
    the relation is acyclic and falls back to an iterate-to-fixpoint pass
    otherwise; either way the result is the full transitive closure. *)

val successors : t -> int -> int list
(** Ascending list of [j] with [mem t i j]. *)

val count_pairs : t -> int
(** Total number of related pairs; used by tests. *)

val equal : t -> t -> bool
