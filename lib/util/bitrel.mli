(** Dense binary relations over [0 .. n-1] backed by bitsets.

    The causal-memory checker represents the happens-before relation over the
    operations of an execution as an [n x n] bit matrix and closes it
    transitively.  Rows are [Bytes]-backed bitsets so closure is a cheap
    word-wise OR. *)

type t

val create : int -> t
(** [create n] is the empty relation over a universe of size [n]. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add t i j] records the pair (i, j), i.e. "i relates to j". *)

val mem : t -> int -> int -> bool

val copy : t -> t

val clear : t -> unit
(** Remove every pair, keeping the allocation. *)

val union_row_into : t -> src:int -> dst:int -> unit
(** [union_row_into t ~src ~dst] ORs row [src] into row [dst]:
    everything reachable from [src] becomes reachable from [dst]. *)

val row_is_empty : t -> int -> bool
(** [row_is_empty t i] iff [i] relates to nothing. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** [iter_row t i f] applies [f j] to each [j] with [mem t i j], ascending;
    skips empty bytes, so sparse rows cost O(size/8). *)

val add_col : t -> sel:t -> sel_row:int -> int -> unit
(** [add_col t ~sel ~sel_row j] adds [(a, j)] to [t] for every [a] in row
    [sel_row] of [sel].  Column insertion with a fixed byte/mask — the hot
    path when closing over an edge whose target has no successors yet. *)

val remap_row_into :
  t -> src_row:int -> map:int array -> dst:t -> dst_rev:t -> dst_row:int -> unit
(** [remap_row_into src ~src_row ~map ~dst ~dst_rev ~dst_row] copies row
    [src_row] of [src] into row [dst_row] of [dst] under [map] (bit [k]
    survives iff [map.(k) >= 0], landing at [map.(k)]), mirroring each
    surviving pair into the transpose [dst_rev].  Window compaction's
    closure rebuild in one pass. *)

val transitive_closure : t -> unit
(** Close the relation in place.  Uses a reverse-topological propagation when
    the relation is acyclic and falls back to an iterate-to-fixpoint pass
    otherwise; either way the result is the full transitive closure. *)

val successors : t -> int -> int list
(** Ascending list of [j] with [mem t i j]. *)

val count_pairs : t -> int
(** Total number of related pairs; used by tests. *)

val equal : t -> t -> bool
