module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Cluster = Dsm_causal.Cluster
module Config = Dsm_causal.Config

type t = { handle : Cluster.handle; rows : int; cols : int }

let cell i j = Loc.cell "dict" i j

let owner_map ~processes = Dsm_memory.Owner.by_index ~nodes:processes

let config =
  Config.default
  |> Config.with_policy Dsm_causal.Policy.Owner_favored
  |> Config.with_init (fun loc ->
         match loc with Loc.Cell ("dict", _, _) -> Value.Free | _ -> Value.initial)

let attach handle ~cols =
  if cols < 1 then invalid_arg "Dictionary.attach: cols must be >= 1";
  { handle; rows = Cluster.Mem.processes handle; cols }

let pid t = Cluster.pid t.handle

let is_free = function Value.Free | Value.Int 0 -> true | _ -> false

let insert t item =
  let me = pid t in
  let rec find j =
    if j = t.cols then None
    else if is_free (Cluster.read t.handle (cell me j)) then Some j
    else find (j + 1)
  in
  match find 0 with
  | None -> false
  | Some j ->
      Cluster.write t.handle (cell me j) (Value.Str item);
      true

(* Row-major scan for the cell currently showing [item] in this process's
   view. *)
let locate t item =
  let rec go i j =
    if i = t.rows then None
    else if j = t.cols then go (i + 1) 0
    else begin
      match Cluster.read t.handle (cell i j) with
      | Value.Str s when String.equal s item -> Some (i, j)
      | _ -> go i (j + 1)
    end
  in
  go 0 0

let delete t item =
  match locate t item with
  | None -> `Not_found
  | Some (i, j) -> (
      match Cluster.write_resolved t.handle (cell i j) Value.Free with
      | `Accepted -> `Deleted
      | `Rejected -> `Rejected)

let lookup t item = Option.is_some (locate t item)

let items t =
  let acc = ref [] in
  for i = t.rows - 1 downto 0 do
    for j = t.cols - 1 downto 0 do
      match Cluster.read t.handle (cell i j) with
      | Value.Str s -> acc := s :: !acc
      | Value.Free | Value.Int _ | Value.Float _ | Value.Bool _ -> ()
    done
  done;
  !acc

let refresh t = Cluster.discard t.handle
