module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value

type post_id = { author : int; seq : int }

type post = { id : post_id; text : string; reply_to : post_id option }

let pp_post ppf p =
  let parent =
    match p.reply_to with
    | None -> ""
    | Some pid -> Printf.sprintf " (re: %d.%d)" pid.author pid.seq
  in
  Format.fprintf ppf "[%d.%d]%s %s" p.id.author p.id.seq parent p.text

let orphans posts =
  let present id = List.exists (fun p -> p.id = id) posts in
  List.filter
    (fun p -> match p.reply_to with Some parent -> not (present parent) | None -> false)
    posts

module Make (M : Dsm_memory.Memory_intf.MEMORY) = struct
  type t = { handle : M.handle; authors : int; slots : int }

  let text_cell a k = Loc.cell "bpost" a k

  let ref_cell a k = Loc.cell "bref" a k

  let attach handle ~slots =
    if slots < 1 then invalid_arg "Board.attach: slots must be >= 1";
    { handle; authors = M.processes handle; slots }

  (* Parent references are encoded into the integer ref cell: 0 = slot
     unused, 1 = root post, 2 + author * slots + seq = reply. *)
  let encode_ref t = function
    | None -> 1
    | Some { author; seq } -> 2 + (author * t.slots) + seq

  let decode_ref t = function
    | 0 | 1 -> None
    | code ->
        let code = code - 2 in
        Some { author = code / t.slots; seq = code mod t.slots }

  let is_empty = function Value.Int 0 -> true | _ -> false

  let post t ?reply_to text =
    let me = M.pid t.handle in
    let rec free k =
      if k = t.slots then None
      else if is_empty (M.read t.handle (text_cell me k)) then Some k
      else free (k + 1)
    in
    match free 0 with
    | None -> None
    | Some k ->
        (* Reference first, text second: anyone who sees the text has the
           reference write in its causal past. *)
        M.write t.handle (ref_cell me k) (Value.Int (encode_ref t reply_to));
        M.write t.handle (text_cell me k) (Value.Str text);
        Some { author = me; seq = k }

  let read_slot t a k =
    match M.read t.handle (text_cell a k) with
    | Value.Str text ->
        let reference =
          match M.read t.handle (ref_cell a k) with
          | Value.Int 0 ->
              (* Torn read: the text is visible but the (earlier) reference
                 write is not.  On causal memory this cannot survive a
                 refresh — installing the text invalidated the stale
                 reference — so one retry resolves it. *)
              M.refresh t.handle (ref_cell a k);
              M.read t.handle (ref_cell a k)
          | v -> v
        in
        (match reference with
        | Value.Int code -> Some { id = { author = a; seq = k }; text; reply_to = decode_ref t code }
        | _ -> Some { id = { author = a; seq = k }; text; reply_to = None })
    | _ -> None

  let lookup t id = read_slot t id.author id.seq

  let read_board t =
    let scan () =
      let acc = ref [] in
      for a = t.authors - 1 downto 0 do
        for k = t.slots - 1 downto 0 do
          match read_slot t a k with Some p -> acc := p :: !acc | None -> ()
        done
      done;
      !acc
    in
    let posts = scan () in
    (* Resolve pass: refresh and re-read the parents of any visible orphan
       replies; on causal memory this is guaranteed to find them. *)
    let missing = orphans posts in
    if missing = [] then posts
    else begin
      let resolved =
        List.filter_map
          (fun p ->
            match p.reply_to with
            | None -> None
            | Some parent ->
                M.refresh t.handle (text_cell parent.author parent.seq);
                M.refresh t.handle (ref_cell parent.author parent.seq);
                lookup t parent)
          missing
      in
      let known = posts @ resolved in
      (* Deduplicate by id, keeping scan order then resolutions. *)
      List.fold_left
        (fun acc p -> if List.exists (fun q -> q.id = p.id) acc then acc else acc @ [ p ])
        [] known
    end

  let refresh t =
    for a = 0 to t.authors - 1 do
      for k = 0 to t.slots - 1 do
        M.refresh t.handle (text_cell a k);
        M.refresh t.handle (ref_cell a k)
      done
    done
end
