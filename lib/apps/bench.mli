(** Closed-loop transport benchmark: the chaos-mix workload at its default
    faults (5% loss, 1% duplication, LAN latency, RPC timeouts), run over a
    set of seeds twice — once with {!Dsm_net.Reliable.default_config} and
    once with {!Dsm_net.Reliable.batching_config} — and summarised as
    machine-readable numbers: throughput (operations per unit of simulated
    time), latency percentiles over every completed operation, and the
    logical-vs-physical message split the batching work is about.

    The [dsm bench] subcommand wraps {!run} and writes {!to_json} to
    [BENCH_transport.json] at the repo root, the perf-trajectory artifact
    CI uploads on every run.  Everything is seed-deterministic, so two
    machines produce byte-identical JSON. *)

type mode_result = {
  name : string;  (** ["batching_off"] or ["batching_on"] *)
  config : Dsm_net.Reliable.config;
  seeds : int;  (** runs aggregated into this row *)
  ops : int;  (** completed operations, all runs *)
  sim_time : float;  (** total simulated time, all runs *)
  throughput : float;  (** [ops /. sim_time] — ops per unit sim time *)
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  lat_mean : float;
  lat_max : float;
  logical_messages : int;  (** protocol payloads (paper accounting) *)
  physical_frames : int;  (** wire frames incl. acks and retransmissions *)
  retransmissions : int;
  explicit_acks : int;  (** explicit ack frames (piggybacks cost nothing) *)
  rpc_timeouts : int;
  unfinished : int;  (** processes left blocked — 0 on a healthy bench *)
}

type result = {
  seeds : int64 list;
  quick : bool;
  off : mode_result;
  on_ : mode_result;
  frame_reduction : float;
      (** [1 - on.physical_frames / off.physical_frames] — the fraction of
          physical frames batching + ack coalescing removed *)
}

val run : ?quick:bool -> ?seeds:int64 list -> unit -> result
(** Run the benchmark.  Default seeds: 1–10, or 1–3 with [~quick:true];
    an explicit [?seeds] overrides both.  The workload itself is
    {!Workload.default_spec} in both modes — identical logical work, so
    the frame counts are directly comparable. *)

val to_json : result -> string
(** Stable, hand-rolled JSON (no dependency), newline-terminated. *)

val pp : Format.formatter -> result -> unit
(** Human summary: one line per mode plus the reduction headline. *)
