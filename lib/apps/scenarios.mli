(** Deterministic reproductions of the paper's worked scenarios on the
    actual protocol implementations (not just the parsed histories).

    Each scenario shapes link latencies and process timing so the
    interleaving the paper describes is the one that happens, then returns
    the recorded execution for checking. *)

type fig3_result = {
  f3_history : Dsm_memory.History.t;
  f3_causal_ok : bool;  (** must be [false]: broadcast memory violates *)
  f3_pram_ok : bool;  (** must be [true]: it is still PRAM *)
  f3_final_x : Dsm_memory.Value.t array;  (** per-node final value of [x] *)
}

val fig3_broadcast : ?mode:Dsm_broadcast.Cbcast.mode -> unit -> fig3_result
(** Run the write-via-causal-broadcast memory through Figure 3's schedule:
    [P1: w(x)5 w(y)3 / P2: w(x)2 r(y)3 r(x)5 w(z)4 / P3: r(z)4 r(x)2].
    With causal delivery the concurrent writes of [x] land in different
    orders at P2 and P3 and the final read violates causal memory. *)

type fig5_result = {
  f5_history : Dsm_memory.History.t;
  f5_causal_ok : bool;  (** must be [true] *)
  f5_sc_ok : bool;  (** must be [false]: the execution is weakly consistent *)
}

val fig5_owner_protocol : unit -> fig5_result
(** Run the owner protocol (P1 owning [x], P2 owning [y]) through Figure 5's
    schedule and confirm the protocol admits this weakly consistent
    execution, as Section 3.1 claims. *)

type board_result = {
  br_early_posts : int;  (** posts the reader sees while the parent's
                             transport to it is still in flight *)
  br_early_orphans : int;  (** orphan replies at that moment (zero on causal
                               memory and causal delivery) *)
  br_final_posts : int;  (** posts after everything quiesces *)
  br_final_orphans : int;
}

val board_on_causal_dsm : unit -> board_result
(** The reply-overtakes-parent schedule on the owner-protocol causal DSM:
    the parent is always resolvable (zero orphans). *)

val board_on_broadcast : mode:Dsm_broadcast.Cbcast.mode -> board_result
(** The same schedule on replica-per-node broadcast memory: with [`Causal]
    delivery the reply is held back until its parent arrives (zero
    orphans); with [`Fifo] delivery the reply overtakes the parent across
    senders and the reader sees an orphan. *)

type stale_install_result = {
  si_history : Dsm_memory.History.t;
  si_causal_ok : bool;  (** [true] with the guard; the literal pseudocode
                            would record a violating history here *)
  si_stale_drops : int;  (** how many fetched entries the guard refused to
                             cache (>= 1 when the race fired) *)
}

val stale_install_race : unit -> stale_install_result
(** Drive the protocol through the stale-install race the model checker
    found in Figure 4's literal pseudocode: node P1 (owner of [x]) has a
    read of [y] in flight while it certifies a write of [x] whose causal
    past contains newer writes of [y]; the late reply must not be retained.
    With the guard the recorded history is causally correct and
    [si_stale_drops >= 1]; see DESIGN.md, "Findings". *)

type dictionary_race_result = {
  dr_delete_outcome : [ `Deleted | `Rejected | `Not_found ];
  dr_items_at_owner : string list;  (** owner's view after the dust settles *)
  dr_history_causal_ok : bool;
}

val dictionary_race : policy:Dsm_causal.Policy.t -> dictionary_race_result
(** Section 4.2's race: P0 inserts ["a"], P1 sees it, P0 deletes ["a"] and
    re-inserts ["b"] into the same cell, then P1's stale delete of ["a"]
    arrives.  Under [Owner_favored] the delete is rejected and ["b"]
    survives; under [Last_writer_wins] the delete clobbers ["b"] — the
    ablation that justifies the paper's resolution rule. *)
