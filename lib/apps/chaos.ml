module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Reliable = Dsm_net.Reliable
module Latency = Dsm_net.Latency
module Causal = Dsm_causal.Cluster
module Owner = Dsm_memory.Owner
module History = Dsm_memory.History
module Value = Dsm_memory.Value
module Check = Dsm_checker.Causal_check
module Online = Dsm_checker.Online
module Trace = Dsm_causal.Trace
module Op = Dsm_memory.Op
module Prng = Dsm_util.Prng

type knobs = {
  drop : float;
  duplicate : float;
  latency : Latency.t;
  reliability : Reliable.config;
  rpc : Causal.rpc option;
  detector : Dsm_causal.Detector.config option;
  checkpoint_every : float option;
  online_check : bool;
  online_window : int option;
  mutation : Dsm_causal.Config.mutation;
  trace : Trace.t option;
}

let default_knobs =
  {
    drop = 0.05;
    duplicate = 0.01;
    latency = Latency.lan;
    reliability = Reliable.default_config;
    rpc = Some { Causal.timeout = 100.0; retries = 5 };
    detector = None;
    checkpoint_every = None;
    online_check = false;
    online_window = None;
    mutation = Dsm_causal.Config.No_mutation;
    trace = None;
  }

type report = {
  scenario : string;
  processes : int;
  ops : int;
  causal_ok : bool;
  sim_time : float;
  messages : int;
  logical_messages : int;
  dropped : int;
  duplicated : int;
  transport : Reliable.counters;
  rpc_timeouts : int;
  stale_replies : int;
  crashes : int;
  suspects : int;
  unsuspects : int;
  takeovers : int;
  view : (int * int * int) list;
  unfinished : (string * float) list;
  stats : Dsm_causal.Node_stats.cluster;
  online_checked : bool;
  online_violation : string option;
  notes : (string * string) list;
}

(* Checking a recorded history is quadratic; cap like Harness does. *)
let history_check_cutoff = 6_000

let check_history history =
  if History.op_count history > history_check_cutoff then true
  else Check.is_correct history

(* Rebuild Op.t values from the bus's application-level events (per-pid
   indices recount program order, which is how the recorder assigned them)
   and feed them to the incremental checker as they complete.  A violation
   is published back onto the same bus, so a trace dump shows it in
   place. *)
let attach_online ?window bus =
  let ck = Online.create ?window () in
  let next = Hashtbl.create 8 in
  let index pid =
    let i = match Hashtbl.find_opt next pid with Some i -> i | None -> 0 in
    Hashtbl.replace next pid (i + 1);
    i
  in
  let feed time node op =
    match Online.add_op ck op with
    | [] -> ()
    | v :: _ ->
        Trace.emit bus ~time (Trace.Violation { node; reason = v.Online.v_reason })
  in
  Trace.subscribe bus (fun ev ->
      match ev.Trace.body with
      | Trace.Op_read { node; loc; value; from } ->
          feed ev.Trace.time node
            (Op.read ~pid:node ~index:(index node) ~loc ~value ~from)
      | Trace.Op_write { node; loc; value; wid } ->
          feed ev.Trace.time node
            (Op.write ~pid:node ~index:(index node) ~loc ~value ~wid)
      (* A crashed node's uncertified writes never arrive: give up the reads
         pending on them so the checker's deferred state stays bounded over
         a crash-heavy run. *)
      | Trace.Crash { node } -> Online.note_crashed ck ~node
      | _ -> ());
  ck

let make_cluster ~knobs ~seed ~owner ?config ?sharding sched =
  let config =
    if knobs.mutation = Dsm_causal.Config.No_mutation then config
    else
      let base =
        match config with Some c -> c | None -> Dsm_causal.Config.default
      in
      Some { base with Dsm_causal.Config.mutation = knobs.mutation }
  in
  let trace =
    match knobs.trace with
    | Some _ as t -> t
    | None -> if knobs.online_check then Some (Trace.create ~record:false ()) else None
  in
  let online =
    if knobs.online_check then
      Option.map (fun bus -> attach_online ?window:knobs.online_window bus) trace
    else None
  in
  let c =
    Causal.create ~sched ~owner ?config ~latency:knobs.latency
      ~fault:(Network.fault ~drop:knobs.drop ~duplicate:knobs.duplicate ())
      ~reliability:knobs.reliability ?rpc:knobs.rpc ?detector:knobs.detector
      ?sharding ?checkpoint_every:knobs.checkpoint_every ?trace ~seed ()
  in
  (c, online)

let build_report ~scenario ~sched ~engine ~crashes ~notes ?online c =
  Causal.shutdown c;
  let history = Causal.history c in
  let notes =
    match online with
    | None -> notes
    | Some ck ->
        ("online_ops", string_of_int (Online.ops_seen ck))
        :: ("online_checks", string_of_int (Online.checks ck))
        :: ("online_edges", string_of_int (Online.edges ck))
        :: ("online_pending", string_of_int (Online.pending_reads ck))
        :: ("online_dropped", string_of_int (Online.dropped_reads ck))
        :: notes
  in
  {
    scenario;
    processes = Causal.processes c;
    ops = History.op_count history;
    causal_ok = check_history history;
    stats = Causal.cluster_stats c;
    online_checked = online <> None;
    online_violation =
      Option.bind online (fun ck ->
          Option.map (fun v -> v.Online.v_reason) (Online.first_violation ck));
    sim_time = Engine.now engine;
    messages = Causal.messages_total c;
    logical_messages = Causal.logical_messages c;
    dropped = Causal.wire_dropped c;
    duplicated = Causal.wire_duplicated c;
    transport =
      (match Causal.reliable c with
      | Some r -> Reliable.counters r
      | None ->
          {
            Reliable.sent = 0;
            payloads = 0;
            retransmissions = 0;
            acks = 0;
            dup_dropped = 0;
            reordered = 0;
            gave_up = 0;
          });
    rpc_timeouts = Causal.rpc_timeouts c;
    stale_replies = Causal.stale_replies c;
    crashes;
    suspects = Causal.suspect_events c;
    unsuspects = Causal.unsuspect_events c;
    takeovers = Causal.takeovers c;
    view = Causal.view c;
    unfinished = Proc.unfinished_since sched;
    notes;
  }

(* Run spawned processes to quiescence; unlike [Proc.check] we do not raise
   on process failure — chaos runs report what happened instead. *)
let run_to_quiescence engine sched =
  Engine.run engine;
  match Proc.failures sched with
  | [] -> []
  | fs -> List.map (fun (name, exn) -> (name, Printexc.to_string exn)) fs

(* {1 Scenario: random read/write mix} *)

let mix ?(knobs = default_knobs) ?(seed = 1L) ?(spec = Workload.default_spec) () =
  Workload.validate spec;
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:spec.Workload.processes in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  let master = Prng.create seed in
  for pid = 0 to spec.Workload.processes - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (Workload.client ~spec ~prng ~pid
            ~read:(fun l -> Causal.read h l)
            ~write:(fun l v -> Causal.write h l v)
            ~refresh:(fun l -> Causal.Mem.refresh h l)))
  done;
  let failures = run_to_quiescence engine sched in
  let notes = List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures in
  build_report ~scenario:"mix" ~sched ~engine ~crashes:0 ~notes ?online c

(* {1 Scenario: the Section 4.2 dictionary under loss} *)

let dictionary ?(knobs = default_knobs) ?(seed = 2L) ?(processes = 4) ?(rounds = 6) () =
  if processes < 2 then invalid_arg "Chaos.dictionary: processes must be >= 2";
  if rounds < 1 then invalid_arg "Chaos.dictionary: rounds must be >= 1";
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Dictionary.owner_map ~processes in
  let cols = rounds + 2 in
  let c, online = make_cluster ~knobs ~seed ~owner ~config:Dictionary.config sched in
  let master = Prng.create seed in
  (* Each process inserts unique items into its own row, looks up and
     occasionally deletes a neighbour's earlier item, and refreshes so its
     view converges — the paper's usage pattern, now over lossy links. *)
  let client pid () =
    let prng = Prng.split master in
    let dict = Dictionary.attach (Causal.handle c pid) ~cols in
    for round = 1 to rounds do
      Proc.sleep (Prng.exponential prng ~mean:2.0);
      ignore (Dictionary.insert dict (Printf.sprintf "item-%d-%d" pid round));
      if round > 1 then begin
        let neighbour = (pid + 1) mod processes in
        let target = Printf.sprintf "item-%d-%d" neighbour (round - 1) in
        Dictionary.refresh dict;
        if Dictionary.lookup dict target && Prng.chance prng 0.5 then
          ignore (Dictionary.delete dict target)
      end
    done
  in
  for pid = 0 to processes - 1 do
    ignore (Proc.spawn sched ~name:(Printf.sprintf "dict%d" pid) (client pid))
  done;
  let failures = run_to_quiescence engine sched in
  (* After quiescence, every process refreshes and reads the full dictionary:
     all views must agree on the final contents. *)
  let views = Array.make processes [] in
  ignore
    (Proc.spawn sched ~name:"collect" (fun () ->
         for pid = 0 to processes - 1 do
           let dict = Dictionary.attach (Causal.handle c pid) ~cols in
           Dictionary.refresh dict;
           views.(pid) <- Dictionary.items dict
         done));
  Engine.run engine;
  let converged =
    Array.for_all (fun v -> List.sort compare v = List.sort compare views.(0)) views
  in
  let notes =
    ("final_items", string_of_int (List.length views.(0)))
    :: ("views_converged", string_of_bool converged)
    :: List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario:"dictionary" ~sched ~engine ~crashes:0 ~notes ?online c

(* {1 Scenario: the Figure 6 solver under loss} *)

module Solver_on_causal = Solver.Make (Causal.Mem)

let solver ?(knobs = default_knobs) ?(seed = 3L) ?(n = 6) ?(iters = 4) () =
  let problem = Linalg.random_diagonally_dominant (Prng.create seed) ~n in
  let owner = Solver.owner_map ~workers:n in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  for i = 0 to n - 1 do
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "worker%d" i)
         (fun () -> Solver_on_causal.worker (Causal.handle c i) problem ~me:i ~iters))
  done;
  ignore
    (Proc.spawn sched ~name:"coordinator" (fun () ->
         Solver_on_causal.coordinator (Causal.handle c n) ~workers:n ~iters));
  let failures = run_to_quiescence engine sched in
  let solution = ref [||] in
  ignore
    (Proc.spawn sched ~name:"collect" (fun () ->
         solution := Solver_on_causal.read_solution (Causal.handle c n) ~n));
  Engine.run engine;
  let reference = Linalg.jacobi problem ~iters in
  let max_diff =
    if Array.length !solution = n then Linalg.max_diff !solution reference else infinity
  in
  let notes =
    ("max_diff", Printf.sprintf "%g" max_diff)
    :: ("bit_exact", string_of_bool (max_diff = 0.0))
    :: List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario:"solver" ~sched ~engine ~crashes:0 ~notes ?online c

(* {1 Scenario: crash-stop restart of a non-owner node}

   [clients] nodes own the namespace between them; one extra node (the
   victim, pid = clients) owns nothing and can therefore crash and restart
   with its volatile state discarded.  The victim warms its cache, sleeps
   across a crash/restart window injected by a supervisor, then resumes
   reading and writing — everything it sees afterwards must still be
   causally consistent with its pre-crash operations. *)

let crash_restart ?(knobs = default_knobs) ?(seed = 4L) ?(clients = 3)
    ?(ops_per_client = 10) () =
  if clients < 1 then invalid_arg "Chaos.crash_restart: clients must be >= 1";
  let processes = clients + 1 in
  let victim = clients in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let inner = Owner.by_index ~nodes:clients in
  let owner = Owner.make ~nodes:processes (fun loc -> Owner.owner inner loc) in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  let master = Prng.create seed in
  let spec =
    {
      Workload.default_spec with
      Workload.processes;
      ops_per_process = ops_per_client;
      locations = 2 * clients;
    }
  in
  for pid = 0 to clients - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (Workload.client ~spec ~prng ~pid
            ~read:(fun l -> Causal.read h l)
            ~write:(fun l v -> Causal.write h l v)
            ~refresh:(fun l -> Causal.Mem.refresh h l)))
  done;
  let crashes = ref 0 in
  ignore
    (Proc.spawn sched ~name:"victim" (fun () ->
         let prng = Prng.split master in
         let h = Causal.handle c victim in
         let one_op k =
           let target = Workload.loc (Prng.int prng spec.Workload.locations) in
           if Prng.chance prng 0.5 then
             Causal.write h target (Value.Int ((victim * 1_000_000) + k))
           else ignore (Causal.read h target)
         in
         (* Phase 1: warm the cache before the crash window. *)
         for k = 1 to ops_per_client do
           one_op k;
           Proc.sleep 1.0
         done;
         (* Schedule the crash/restart window inside the victim's own sleep,
            so the crash never interrupts an operation in flight (a crashed
            node runs no application code) and phase 2 starts with the
            discarded volatile state of a fresh restart. *)
         let now = Engine.now engine in
         Engine.schedule_at engine (now +. 5.0) (fun () ->
             Causal.crash c victim;
             incr crashes);
         Engine.schedule_at engine (now +. 35.0) (fun () -> Causal.restart c victim);
         Proc.sleep 50.0;
         for k = ops_per_client + 1 to 2 * ops_per_client do
           one_op k;
           Proc.sleep 1.0
         done));
  let failures = run_to_quiescence engine sched in
  let notes =
    ("victim", string_of_int victim)
    :: ("victim_cache_after", string_of_int (Dsm_causal.Node.cache_size (Causal.node c victim)))
    :: ("dropped_at_crashed", string_of_int (Causal.dropped_at_crashed c))
    :: List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario:"crash-restart" ~sched ~engine ~crashes:!crashes ~notes ?online c

(* {1 Scenarios: crash a serving owner, fail over to its backup}

   Node 0 (the victim) owns part of the namespace and crashes for good
   shortly after warming it with writes; [clients] other nodes work through
   the outage.  With the failure detector on, node 1 — the victim's
   designated backup, which shadowed every acknowledged write — suspects
   the silence, promotes itself under epoch 1 and broadcasts the takeover;
   the clients' phase-2 operations on victim-owned locations re-route to it
   and must still form a causally correct history.  [failover] additionally
   restarts the victim after the takeover: replaying its log resurrects its
   pre-crash state, and heartbeat gossip demotes it to a client of the new
   owner before it resumes. *)

let failover_detector = { Dsm_causal.Detector.period = 5.0; suspect_after = 3 }

let owner_crash_scenario ~scenario ~revive ?(knobs = default_knobs) ?(seed = 5L)
    ?(clients = 3) ?(ops_per_client = 8) () =
  if clients < 2 then invalid_arg (Printf.sprintf "Chaos.%s: clients must be >= 2" scenario);
  let knobs =
    match knobs.detector with
    | Some _ -> knobs
    | None -> { knobs with detector = Some failover_detector }
  in
  let processes = clients + 1 in
  let victim = 0 in
  let locations = 2 * processes in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:processes in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  let master = Prng.create seed in
  let crashes = ref 0 in
  (* Victim-owned locations are the indices congruent to 0 mod [processes]. *)
  let victim_loc k = Workload.loc (processes * (k mod 2)) in
  ignore
    (Proc.spawn sched ~name:"victim-owner" (fun () ->
         let h = Causal.handle c victim in
         for k = 1 to ops_per_client do
           Causal.write h (victim_loc k) (Value.Int ((victim * 1_000_000) + k));
           Proc.sleep 1.0
         done;
         let now = Engine.now engine in
         Engine.schedule_at engine (now +. 2.0) (fun () ->
             Causal.crash c victim;
             incr crashes);
         if revive then begin
           Engine.schedule_at engine (now +. 45.0) (fun () -> Causal.restart c victim);
           (* Resume well after the restart: by then heartbeat gossip has
              carried the takeover epoch back and demoted this node to a
              client of the new owner. *)
           Proc.sleep 70.0;
           for k = 1 to ops_per_client do
             (if k mod 2 = 0 then Causal.write h (victim_loc k) (Value.Int (2_000_000 + k))
              else ignore (Causal.read h (victim_loc k)));
             Proc.sleep 1.0
           done
         end));
  for pid = 1 to clients do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    let one_op k =
      let target =
        (* Half the traffic hits victim-owned locations, so the outage and
           the handoff are actually on the critical path. *)
        if k mod 2 = 0 then victim_loc k else Workload.loc (Prng.int prng locations)
      in
      if Prng.chance prng 0.5 then Causal.write h target (Value.Int ((pid * 1_000_000) + k))
      else ignore (Causal.read h target)
    in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (fun () ->
           for k = 1 to ops_per_client do
             one_op k;
             Proc.sleep 1.0
           done;
           (* Sleep across the crash (~t+2), the detection window
              (suspect_after * period) and the takeover broadcast. *)
           Proc.sleep 60.0;
           for k = ops_per_client + 1 to 2 * ops_per_client do
             one_op k;
             Proc.sleep 1.0
           done))
  done;
  let failures = run_to_quiescence engine sched in
  let victim_node = Causal.node c victim in
  let notes =
    ("victim", string_of_int victim)
    :: ("takeover_epoch", string_of_int (Causal.epoch_of c ~base:victim))
    :: ("new_owner", string_of_int (Causal.serving_of c ~base:victim))
    :: ("victim_demoted",
        string_of_bool (Dsm_causal.Node.serving_of victim_node ~base:victim <> victim))
    :: ("shadow_reads", string_of_int (Causal.shadow_reads c))
    :: ("redirects", string_of_int (Causal.redirects c))
    :: ("shadow_degraded", string_of_int (Causal.shadow_degraded c))
    :: ("dropped_at_crashed", string_of_int (Causal.dropped_at_crashed c))
    :: List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario ~sched ~engine ~crashes:!crashes ~notes ?online c

let owner_crash ?knobs ?seed ?clients ?ops_per_client () =
  owner_crash_scenario ~scenario:"owner-crash" ~revive:false ?knobs ?seed ?clients
    ?ops_per_client ()

let failover ?knobs ?seed ?clients ?ops_per_client () =
  owner_crash_scenario ~scenario:"failover" ~revive:true ?knobs ?seed ?clients
    ?ops_per_client ()

(* {1 Scenario: whole-cluster power failure}

   Every node owns a slice of the namespace and runs a client.  Periodic
   uncoordinated checkpoints compact each log as the workload runs, and one
   coordinated round mid-workload establishes a cluster-wide recovery line;
   then the power goes out — every node crashes at once, inside every
   client's sleep window — and comes back 30 time units later.  Each node
   restarts from its latest complete snapshot plus the log suffix behind
   it.  Because every certified write hits the log before its reply leaves,
   recovery restores the exact durable frontier: the clients' phase-2
   operations must still form a causally correct history with phase 1. *)

let power_failure ?(knobs = default_knobs) ?(seed = 6L) ?(clients = 4)
    ?(ops_per_client = 8) () =
  if clients < 2 then invalid_arg "Chaos.power_failure: clients must be >= 2";
  let knobs =
    match knobs.checkpoint_every with
    | Some _ -> knobs
    | None -> { knobs with checkpoint_every = Some 4.0 }
  in
  let processes = clients in
  let locations = 2 * processes in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:processes in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  let master = Prng.create seed in
  let crashes = ref 0 in
  (* The outage supervisor.  Phase 1 lasts ~[ops_per_client] time units;
     the coordinated round starts mid-phase, the outage hits once every
     client is asleep, and power returns well before anyone wakes. *)
  let phase1_end = float_of_int ops_per_client +. 2.0 in
  Engine.schedule_at engine (phase1_end /. 2.0) (fun () ->
      if not (Causal.is_crashed c 0) then Causal.begin_checkpoint c 0);
  Engine.schedule_at engine (phase1_end +. 5.0) (fun () ->
      for pid = 0 to processes - 1 do
        match Causal.crash_result c pid with Ok () -> incr crashes | Error _ -> ()
      done);
  Engine.schedule_at engine (phase1_end +. 35.0) (fun () ->
      for pid = 0 to processes - 1 do
        ignore (Causal.restart_result c pid)
      done);
  for pid = 0 to processes - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    let one_op k =
      let target = Workload.loc (Prng.int prng locations) in
      if Prng.chance prng 0.5 then Causal.write h target (Value.Int ((pid * 1_000_000) + k))
      else ignore (Causal.read h target)
    in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (fun () ->
           for k = 1 to ops_per_client do
             one_op k;
             Proc.sleep 1.0
           done;
           (* Sleep across the outage window: a powered-off node runs no
              application code, so the blackout lands between operations. *)
           Proc.sleep 60.0;
           for k = ops_per_client + 1 to 2 * ops_per_client do
             one_op k;
             Proc.sleep 1.0
           done))
  done;
  let failures = run_to_quiescence engine sched in
  let notes =
    (* No [recovery_seconds] here: that figure is host time, and chaos
       reports are bit-identical per seed.  [dsm bench recovery] owns the
       timing measurements. *)
    ("recoveries", string_of_int (Causal.recoveries c))
    :: ("replayed_records", string_of_int (Causal.replayed_records c))
    :: ("recovery_lines", string_of_int (Causal.recovery_lines c))
    :: ("dropped_at_crashed", string_of_int (Causal.dropped_at_crashed c))
    :: List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario:"power-failure" ~sched ~engine ~crashes:!crashes ~notes ?online c

(* {1 Scenarios: network partition and split-brain prevention}

   A nemesis cuts the cluster into a minority and a majority mid-workload
   and heals it later.  Three phases of client traffic bracket the cut:
   phase 1 runs on the whole cluster, phase 2 runs inside the partition
   window (after the majority's takeover has propagated), phase 3 runs
   after the heal.  During the window, minority owners observe quorum
   loss and degrade to read-only — their clients' local writes are
   refused ([Timed_out] with zero attempts) while their reads still serve
   the Definition-2-safe local copies; the majority elects a replacement
   for every cut-off base whose ring-successor backup it holds, and its
   clients fail over to the new server via the takeover gossip.  On heal,
   the deposed owners demote and ship their served entries to the new
   servers (FRONTIER reconciliation), and the final phase must still form
   one causally correct history — the proof that no split-brain write was
   double-certified.

   [partition] isolates a single owner (its base is taken over);
   [split_brain] cuts off an owner {e together with} its designated
   backup, so that base stays unavailable-but-consistent while the
   backup's own base is taken over from the majority side instead. *)

let partition_scenario ~scenario ~minority ?(knobs = default_knobs) ?(seed = 7L)
    ?(processes = 5) ?(ops_per_phase = 3) () =
  if processes < 3 then invalid_arg (Printf.sprintf "Chaos.%s: processes must be >= 3" scenario);
  let knobs =
    match knobs.detector with
    | Some _ -> knobs
    | None -> { knobs with detector = Some failover_detector }
  in
  let all_bases = List.init processes Fun.id in
  let majority = List.filter (fun n -> not (List.mem n minority)) all_bases in
  if List.length majority <= processes / 2 then
    invalid_arg (Printf.sprintf "Chaos.%s: majority must hold a quorum" scenario);
  (* Bases the majority can actually take over: served from the minority,
     ring-successor backup on the majority side. *)
  let contested =
    List.filter (fun b -> List.mem ((b + 1) mod processes) majority) minority
  in
  let cut_at = 10.0 and heal_at = 50.0 in
  let p2_start = 35.0 and p3_start = 60.0 in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:processes in
  let c, online = make_cluster ~knobs ~seed ~owner sched in
  let nem =
    Nemesis.schedule engine c
      (Nemesis.partition_window ~from_:cut_at ~until:heal_at ~a:minority ~b:majority)
  in
  let master = Prng.create seed in
  let refused = ref 0 and window_ok = ref 0 in
  (* Per-side phase-2 availability: every operation attempted inside the
     partition window, by the side that attempted it.  The partition bench
     aggregates these into its availability headline — the majority side
     must keep serving through the cut. *)
  let maj_attempts = ref 0 and maj_ok = ref 0 in
  let min_attempts = ref 0 and min_ok = ref 0 in
  for pid = 0 to processes - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    let cut_off = List.mem pid minority in
    let pick bases = List.nth bases (Prng.int prng (List.length bases)) in
    let base_loc ~k base = Workload.loc (base + (processes * (k mod 2))) in
    let value phase k = Value.Int ((pid * 1_000_000) + (phase * 1_000) + k) in
    let do_op ~phase ~k ~write_bases ~read_bases =
      let record ok =
        if phase = 2 then begin
          let attempts, oks =
            if cut_off then (min_attempts, min_ok) else (maj_attempts, maj_ok)
          in
          incr attempts;
          if ok then incr oks
        end
      in
      if Prng.chance prng 0.5 then begin
        match Causal.write_result h (base_loc ~k (pick write_bases)) (value phase k) with
        | Ok _ ->
            record true;
            if phase = 2 then incr window_ok
        | Error _ ->
            record false;
            incr refused
      end
      else
        match Causal.read_result h (base_loc ~k (pick read_bases)) with
        | Ok _ -> record true
        | Error _ -> record false
    in
    let sleep_until at = Proc.sleep (Float.max 0.0 (at -. Engine.now engine)) in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (fun () ->
           for k = 1 to ops_per_phase do
             do_op ~phase:1 ~k ~write_bases:all_bases ~read_bases:all_bases;
             Proc.sleep 1.0
           done;
           sleep_until p2_start;
           for k = 1 to ops_per_phase do
             (* Same-side traffic only: a minority client's writes to its
                own degraded owner are refused on the spot, while the
                majority exercises the freshly elected servers.  Cross-side
                requests would just park in the frozen links until the
                heal. *)
             if cut_off then
               do_op ~phase:2 ~k ~write_bases:[ pid ] ~read_bases:minority
             else do_op ~phase:2 ~k ~write_bases:(contested @ majority) ~read_bases:(contested @ majority);
             Proc.sleep 1.0
           done;
           sleep_until p3_start;
           for k = 1 to ops_per_phase do
             do_op ~phase:3 ~k ~write_bases:all_bases ~read_bases:all_bases;
             Proc.sleep 1.0
           done))
  done;
  let failures = run_to_quiescence engine sched in
  let notes =
    ("contested", String.concat "," (List.map string_of_int contested))
    :: ("refused_writes", string_of_int !refused)
    :: ("window_writes_ok", string_of_int !window_ok)
    :: ("window_majority_ok", string_of_int !maj_ok)
    :: ("window_majority_attempts", string_of_int !maj_attempts)
    :: ("window_minority_ok", string_of_int !min_ok)
    :: ("window_minority_attempts", string_of_int !min_attempts)
    :: ("partition_heals", string_of_int (Causal.partition_heals c))
    :: ("votes_granted", string_of_int (Causal.votes_granted c))
    :: ("degraded_refusals", string_of_int (Causal.degraded_refusals c))
    :: ("resyncs", string_of_int (Causal.resyncs c))
    :: ("quorum", string_of_int (Causal.quorum c))
    :: Nemesis.notes nem
    @ List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario ~sched ~engine ~crashes:(Nemesis.crashes nem) ~notes ?online c

let partition ?knobs ?seed ?processes ?ops_per_phase () =
  partition_scenario ~scenario:"partition" ~minority:[ 0 ] ?knobs ?seed ?processes
    ?ops_per_phase ()

let split_brain ?knobs ?seed ?processes ?ops_per_phase () =
  partition_scenario ~scenario:"split-brain" ~minority:[ 0; 1 ] ?knobs ?seed ?processes
    ?ops_per_phase ()

(* {1 Scenario: faults stay inside their shard}

   Nine nodes in three shard rings of three (quorum 2 per ring), a skewed
   workload where every client mostly touches its own shard, and two
   faults aimed exclusively at shard 0: a partition that isolates ring
   member 2 (t=10..30), then a crash-stop of serving owner 0 at t=40 whose
   ring successor 1 must win a shard-local canvass and take over.  Clients
   of shards 1 and 2 must sail through both faults untouched — that is the
   fault-isolation property partial replication buys.  A late explicit
   subscribe from node 8 into shard 0 exercises the SUB_REQ/SUB_REPLY
   catch-up path on top of the ambient subscribe-on-access traffic. *)

let shard_scenario ?(knobs = default_knobs) ?(seed = 11L) ?(ops_per_phase = 3) () =
  let shards = 3 and nodes = 9 in
  let knobs =
    match knobs.detector with
    | Some _ -> knobs
    | None -> { knobs with detector = Some failover_detector }
  in
  let layout = Dsm_memory.Shard.make ~nodes ~shards in
  let module Shard = Dsm_memory.Shard in
  let owner = Shard.owner layout in
  let cut_at = 10.0 and heal_at = 30.0 and crash_at = 40.0 in
  let p2_start = 14.0 and p3_start = 70.0 in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let c, online = make_cluster ~knobs ~seed ~owner ~sharding:layout sched in
  let isolated = [ 2 ] in
  let rest = List.filter (fun n -> not (List.mem n isolated)) (List.init nodes Fun.id) in
  let nem =
    Nemesis.schedule engine c
      [
        { Nemesis.at = cut_at; fault = Nemesis.Cut { a = isolated; b = rest } };
        { at = heal_at; fault = Nemesis.Heal_all };
        { at = crash_at; fault = Nemesis.Crash 0 };
      ]
  in
  (* Location i lives in shard [i mod 3] and is served by ring member
     [(i/3) mod 3] of that ring; 36 locations give each base four. *)
  let all_locs = List.init 36 Fun.id in
  let locs_of sh = List.filter (fun i -> Shard.of_loc layout (Workload.loc i) = sh) all_locs in
  let master = Prng.create seed in
  (* Per-shard availability inside each fault window, indexed by the shard
     of the {e client} attempting the operation: shards 1 and 2 must stay
     at 100% through both shard-0 faults. *)
  let att = Array.make_matrix 2 shards 0 and ok = Array.make_matrix 2 shards 0 in
  for pid = 0 to nodes - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    let my_shard = Shard.of_base layout pid in
    let own = locs_of my_shard in
    let foreign = List.filter (fun i -> not (List.mem i own)) all_locs in
    let pick locs = Workload.loc (List.nth locs (Prng.int prng (List.length locs))) in
    (* The skew: mostly own-shard traffic, a trickle across shard lines
       (which is what drives subscribe-on-access). *)
    let skewed () = if Prng.chance prng 0.85 then pick own else pick foreign in
    let value phase k = Value.Int ((pid * 1_000_000) + (phase * 1_000) + k) in
    let record ~window ok_now =
      (match window with
      | Some w ->
          att.(w).(my_shard) <- att.(w).(my_shard) + 1;
          if ok_now then ok.(w).(my_shard) <- ok.(w).(my_shard) + 1
      | None -> ())
    in
    let do_op ~phase ~window ~k loc =
      if Prng.chance prng 0.5 then
        match Causal.write_result h loc (value phase k) with
        | Ok _ -> record ~window true
        | Error _ -> record ~window false
      else
        match Causal.read_result h loc with
        | Ok _ -> record ~window true
        | Error _ -> record ~window false
    in
    let sleep_until at = Proc.sleep (Float.max 0.0 (at -. Engine.now engine)) in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (fun () ->
           for k = 1 to ops_per_phase do
             do_op ~phase:1 ~window:None ~k (skewed ());
             Proc.sleep 1.0
           done;
           sleep_until p2_start;
           for k = 1 to ops_per_phase do
             (* Own-shard traffic only while node 2 is cut off.  Shard 0's
                surviving ring majority {0,1} steers around the isolated
                base (a request parked on a frozen link would just wait
                out the heal); the isolated client hammers its own shard
                and takes the refusals. *)
             let loc =
               if my_shard = 0 && pid <> 2 then
                 pick (List.filter (fun i -> Owner.owner owner (Workload.loc i) <> 2) own)
               else pick own
             in
             do_op ~phase:2 ~window:(Some 0) ~k loc;
             Proc.sleep 1.0
           done;
           if pid <> 0 then begin
             (* Node 0 is crash-stopped at t=40 and never restarts; its
                client retires after phase 2. *)
             sleep_until p3_start;
             if pid = 8 then Causal.subscribe c ~node:8 ~shard:0;
             for k = 1 to ops_per_phase do
               let loc =
                 if pid = 8 && k = 1 then pick (locs_of 0) (* read back the catch-up *)
                 else skewed ()
               in
               do_op ~phase:3 ~window:(Some 1) ~k loc;
               Proc.sleep 1.0
             done
           end))
  done;
  let failures = run_to_quiescence engine sched in
  let pct w sh =
    Printf.sprintf "%d/%d" ok.(w).(sh) att.(w).(sh)
  in
  let isolated_ok =
    let clean w sh = ok.(w).(sh) = att.(w).(sh) && att.(w).(sh) > 0 in
    clean 0 1 && clean 0 2 && clean 1 1 && clean 1 2
  in
  let shard0_subscribers =
    String.concat "," (List.map string_of_int (Shard.subscribers layout 0))
  in
  let notes =
    ("layout", Format.asprintf "%a" Shard.pp layout)
    :: ("ring_quorum", string_of_int (Causal.quorum_for c ~base:0))
    :: ("partition_shard0", pct 0 0)
    :: ("partition_shard1", pct 0 1)
    :: ("partition_shard2", pct 0 2)
    :: ("crash_shard0", pct 1 0)
    :: ("crash_shard1", pct 1 1)
    :: ("crash_shard2", pct 1 2)
    :: ("fault_isolated", string_of_bool isolated_ok)
    :: ("shard0_subscribers", shard0_subscribers)
    :: ("votes_granted", string_of_int (Causal.votes_granted c))
    :: ("partition_heals", string_of_int (Causal.partition_heals c))
    :: Nemesis.notes nem
    @ List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  build_report ~scenario:"shard" ~sched ~engine ~crashes:(Nemesis.crashes nem) ~notes
    ?online c

let shard ?knobs ?seed ?ops_per_phase () = shard_scenario ?knobs ?seed ?ops_per_phase ()

(* {1 Scenarios: causal objects under loss}

   One scenario per shipped [Causal_object] instance.  Each process
   attaches a client of the family, interleaves spec-level updates with
   queries over the lossy links, and issues one final query after
   quiescence.  Health is judged at two levels: the register history must
   stay causally correct as always, and every recorded query return must
   be spec-legal under some causal-past linearization of its observed
   context ({!Dsm_checker.Causal_check.check_objects}); the final returns
   must also agree across processes (convergence).  Under the
   [Merge_drops_op] mutation the buggy client merge silently drops the
   causally greatest observed update — every probe read stays
   register-legal, so only the object-level certification flags it. *)

module Objects = struct
  module Registry = Dsm_objects.Registry
  module CCounter = Dsm_objects.Counter.Client (Causal.Mem)
  module CGset = Dsm_objects.Gset.Client (Causal.Mem)
  module CTpset = Dsm_objects.Tpset.Client (Causal.Mem)
  module COqueue = Dsm_objects.Oqueue.Client (Causal.Mem)
  module COdict = Dsm_objects.Odict.Client (Causal.Mem)
  module COboard = Dsm_objects.Oboard.Client (Causal.Mem)

  (* A first-class per-process client: the instances' op types differ, so
     the scenario runner works through closures over one attached client. *)
  type inst = {
    obj : string;  (** the family name, for the query trace milestone *)
    update : Prng.t -> round:int -> unit;
    query : unit -> string;
    queries : unit -> Dsm_checker.Obj_check.query list;
  }

  let counter ~buggy h =
    let t = CCounter.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Counter.name;
      update =
        (fun prng ~round:_ ->
          CCounter.update t
            (if Prng.chance prng 0.3 then Dsm_objects.Counter.add 2
             else Dsm_objects.Counter.incr));
      query = (fun () -> CCounter.query t);
      queries = (fun () -> CCounter.queries t);
    }

  let gset ~buggy h =
    let t = CGset.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Gset.name;
      update =
        (fun _ ~round ->
          CGset.update t (Dsm_objects.Gset.of_elt (Printf.sprintf "e%d-%d" (CGset.pid t) round)));
      query = (fun () -> CGset.query t);
      queries = (fun () -> CGset.queries t);
    }

  let tpset ~buggy h =
    let t = CTpset.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Tpset.name;
      update =
        (fun _ ~round ->
          let pid = CTpset.pid t in
          if round mod 2 = 0 then
            CTpset.update t (Dsm_objects.Tpset.remove (Printf.sprintf "e%d-%d" pid (round - 1)))
          else CTpset.update t (Dsm_objects.Tpset.add (Printf.sprintf "e%d-%d" pid round)));
      query = (fun () -> CTpset.query t);
      queries = (fun () -> CTpset.queries t);
    }

  let oqueue ~buggy h =
    let t = COqueue.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Oqueue.name;
      update =
        (fun _ ~round ->
          COqueue.update t (Dsm_objects.Oqueue.push (Printf.sprintf "m%d-%d" (COqueue.pid t) round)));
      query = (fun () -> COqueue.query t);
      queries = (fun () -> COqueue.queries t);
    }

  let odict ~buggy h =
    let t = COdict.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Odict.name;
      update =
        (fun prng ~round ->
          let pid = COdict.pid t in
          if round > 1 && Prng.chance prng 0.25 then
            COdict.update t (Dsm_objects.Odict.delete (Printf.sprintf "k%d" (round mod 3)))
          else
            COdict.update t
              (Dsm_objects.Odict.insert (Printf.sprintf "k%d" (round mod 3))
                 (Printf.sprintf "v%d-%d" pid round)));
      query = (fun () -> COdict.query t);
      queries = (fun () -> COdict.queries t);
    }

  let oboard ~buggy h =
    let t = COboard.attach ~buggy_merge:buggy h in
    {
      obj = Dsm_objects.Oboard.name;
      update =
        (fun _ ~round ->
          let pid = COboard.pid t in
          COboard.update t
            (Dsm_objects.Oboard.post ~author:(Printf.sprintf "p%d" pid)
               ~text:(Printf.sprintf "t%d" round)));
      query = (fun () -> COboard.query t);
      queries = (fun () -> COboard.queries t);
    }

  let drivers =
    [
      ("obj-counter", counter);
      ("obj-gset", gset);
      ("obj-2pset", tpset);
      ("obj-queue", oqueue);
      ("obj-dict", odict);
      ("obj-board", oboard);
    ]
end

let object_scenario ~scenario ~make ?(knobs = default_knobs) ?(seed = 12L)
    ?(processes = 3) ?(rounds = 4) () =
  if processes < 2 then
    invalid_arg (Printf.sprintf "Chaos.%s: processes must be >= 2" scenario);
  if rounds < 1 then invalid_arg (Printf.sprintf "Chaos.%s: rounds must be >= 1" scenario);
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:processes in
  (* Op-log cells must read [Free] until written: that is the probes'
     end-of-log marker. *)
  let config =
    Dsm_causal.Config.with_init Dsm_objects.Registry.init Dsm_causal.Config.default
  in
  let c, online = make_cluster ~knobs ~seed ~owner ~config sched in
  (* Queries are client-side folds, invisible to the cluster: publish each
     one onto the bus ourselves so traced runs show the object milestones. *)
  let emit_query pid (inst : Objects.inst) ret =
    match Causal.trace c with
    | None -> ()
    | Some bus ->
        Trace.emit bus ~time:(Engine.now engine)
          ~clock:(Dsm_causal.Node.vt (Causal.node c pid))
          (Trace.Op_query { node = pid; obj = inst.Objects.obj; ret })
  in
  let buggy = knobs.mutation = Dsm_causal.Config.Merge_drops_op in
  let master = Prng.create seed in
  let insts = Array.make processes None in
  let finals = Array.make processes "" in
  for pid = 0 to processes - 1 do
    let prng = Prng.split master in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "obj%d" pid)
         (fun () ->
           let inst = make ~buggy (Causal.handle c pid) in
           insts.(pid) <- Some inst;
           for round = 1 to rounds do
             Proc.sleep (Prng.exponential prng ~mean:2.0);
             inst.Objects.update prng ~round;
             if Prng.chance prng 0.5 then emit_query pid inst (inst.Objects.query ())
           done))
  done;
  let failures = run_to_quiescence engine sched in
  (* After quiescence every client re-syncs and queries once more: all
     final returns must agree — the convergence the frontier-closed merge
     guarantees once every update has propagated. *)
  ignore
    (Proc.spawn sched ~name:"collect" (fun () ->
         Array.iteri
           (fun pid inst ->
             match inst with
             | Some i ->
                 finals.(pid) <- i.Objects.query ();
                 emit_query pid i finals.(pid)
             | None -> ())
           insts));
  Engine.run engine;
  let queries =
    Array.to_list insts
    |> List.concat_map (function Some i -> i.Objects.queries () | None -> [])
  in
  let violations =
    Check.check_objects ~lookup:Dsm_objects.Registry.find (Causal.history c) queries
  in
  let obj_ok = violations = [] in
  let converged = Array.for_all (fun s -> String.equal s finals.(0)) finals in
  let notes =
    ("object_queries", string_of_int (List.length queries))
    :: ("object_ok", string_of_bool obj_ok)
    :: ("views_converged", string_of_bool converged)
    :: ("final_view", finals.(0))
    :: (match violations with
       | [] -> []
       | v :: _ -> [ ("object_violation", v.Dsm_checker.Obj_check.v_reason) ])
    @ List.map (fun (name, msg) -> ("failed:" ^ name, msg)) failures
  in
  let r = build_report ~scenario ~sched ~engine ~crashes:0 ~notes ?online c in
  { r with causal_ok = r.causal_ok && obj_ok && converged }

let scenarios =
  [
    "mix";
    "dictionary";
    "solver";
    "crash-restart";
    "owner-crash";
    "failover";
    "power-failure";
    "partition";
    "split-brain";
    "shard";
  ]
  @ List.map fst Objects.drivers

let run ?knobs ?seed name =
  match name with
  | "mix" -> mix ?knobs ?seed ()
  | "dictionary" -> dictionary ?knobs ?seed ()
  | "solver" -> solver ?knobs ?seed ()
  | "crash-restart" -> crash_restart ?knobs ?seed ()
  | "owner-crash" -> owner_crash ?knobs ?seed ()
  | "failover" -> failover ?knobs ?seed ()
  | "power-failure" -> power_failure ?knobs ?seed ()
  | "partition" -> partition ?knobs ?seed ()
  | "split-brain" -> split_brain ?knobs ?seed ()
  | "shard" -> shard ?knobs ?seed ()
  | other -> (
      match List.assoc_opt other Objects.drivers with
      | Some make -> object_scenario ~scenario:other ~make ?knobs ?seed ()
      | None ->
          invalid_arg
            (Printf.sprintf "Chaos.run: unknown scenario %s (expected one of %s)" other
               (String.concat ", " scenarios)))

let pp_report ppf r =
  let line fmt = Format.fprintf ppf fmt in
  line "scenario:          %s (%d processes)@." r.scenario r.processes;
  line "recorded ops:      %d@." r.ops;
  line "causally correct:  %b@." r.causal_ok;
  line "sim time:          %.1f@." r.sim_time;
  line "wire messages:     %d (dropped %d, duplicated %d)@." r.messages r.dropped
    r.duplicated;
  if r.logical_messages <> r.messages then
    line "logical messages:  %d (%d physical frames on the wire)@." r.logical_messages
      r.messages;
  line "transport:         %d payloads, %d rexmit, %d acks, %d dup-dropped, %d reordered, %d gave up@."
    r.transport.Reliable.payloads r.transport.Reliable.retransmissions
    r.transport.Reliable.acks r.transport.Reliable.dup_dropped
    r.transport.Reliable.reordered r.transport.Reliable.gave_up;
  line "rpc timeouts:      %d (stale replies %d)@." r.rpc_timeouts r.stale_replies;
  line "counters:          %a@." Dsm_causal.Node_stats.pp_cluster r.stats;
  if r.online_checked then begin
    match r.online_violation with
    | None -> line "online check:      clean@."
    | Some reason -> line "online check:      VIOLATION — %s@." reason
  end;
  if r.crashes > 0 then line "crashes injected:  %d@." r.crashes;
  if r.suspects > 0 || r.unsuspects > 0 || r.takeovers > 0 then
    line "failover:          %d suspects, %d unsuspects, %d takeovers@." r.suspects
      r.unsuspects r.takeovers;
  List.iter
    (fun (base, epoch, serving) ->
      line "view:              base %d served by %d under epoch %d@." base serving epoch)
    r.view;
  (match r.unfinished with
  | [] -> line "unfinished procs:  none@."
  | stuck ->
      line "unfinished procs:  %d@." (List.length stuck);
      List.iter
        (fun (name, since) -> line "  %s (blocked since t=%.1f)@." name since)
        stuck);
  List.iter (fun (k, v) -> line "%-18s %s@." (k ^ ":") v) r.notes

let healthy r = r.causal_ok && r.unfinished = [] && r.online_violation = None
