module Value = Dsm_memory.Value

let owner_map ~workers = Dsm_memory.Owner.by_index ~nodes:workers

module Make (M : Dsm_memory.Memory_intf.MEMORY) = struct
  module Sync = Sync.Make (M)

  let worker h problem ~me ~workers ~iters =
    let n = Linalg.dim problem in
    let row = problem.Linalg.a.(me) in
    let compute_barrier = Sync.Barrier.create ~name:"bar_compute" ~parties:workers in
    let publish_barrier = Sync.Barrier.create ~name:"bar_publish" ~parties:workers in
    for _phase = 1 to iters do
      let acc = ref problem.Linalg.b.(me) in
      for j = 0 to n - 1 do
        if j <> me then acc := !acc -. (row.(j) *. Value.to_float (M.read h (Solver.x_loc j)))
      done;
      let t = !acc /. row.(me) in
      (* Everyone has finished computing from the old vector... *)
      Sync.Barrier.enter compute_barrier h ~me;
      (* ...publish, then wait for everyone else's publication. *)
      M.write h (Solver.x_loc me) (Value.Float t);
      Sync.Barrier.enter publish_barrier h ~me
    done

  let read_solution h ~n =
    Array.init n (fun i ->
        let loc = Solver.x_loc i in
        M.refresh h loc;
        Value.to_float (M.read h loc))
end
