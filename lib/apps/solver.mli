(** The synchronous iterative linear solver of Figure 6.

    [n] worker processes (one per vector element, worker [i] on node [i],
    owning [x_i] and its handshake bits [complete_i]/[changed_i]) plus a
    coordinator on node [n].  Each phase: a worker computes its new element
    into a private [t_i], handshakes ([complete_i] T / wait F), copies [t_i]
    to the global [x_i], handshakes ([changed_i] T / wait F).  The
    coordinator drives both barriers.

    The module is a functor over {!Dsm_memory.Memory_intf.MEMORY}: the exact
    same code runs on the causal DSM and the atomic baseline — the paper's
    claim that "several applications written for atomic memory run without
    modification on causal memory" made literal.  The paper proves the
    causal execution returns phase-[k-1] values exactly, so both memories
    compute the same iterates as sequential Jacobi. *)

val x_loc : int -> Dsm_memory.Loc.t
(** The global vector element [x_i]. *)

val complete_loc : int -> Dsm_memory.Loc.t

val changed_loc : int -> Dsm_memory.Loc.t

val owner_map : workers:int -> Dsm_memory.Owner.t
(** The paper's layout: node [i < workers] owns [x_i] and its bits; the
    coordinator is node [workers] (owning nothing). *)

val block_owner_map : workers:int -> n:int -> Dsm_memory.Owner.t
(** Ownership for the block-distributed variant: worker [w] owns the
    contiguous elements [x_i] with [i * workers / n = w] plus its handshake
    bits; the coordinator is node [workers]. *)

module Make (M : Dsm_memory.Memory_intf.MEMORY) : sig
  val worker : M.handle -> Linalg.problem -> me:int -> iters:int -> unit
  (** Body of worker [me]; run it inside a spawned process on node [me]. *)

  val worker_block :
    M.handle -> Linalg.problem -> me:int -> workers:int -> iters:int -> unit
  (** The paper's "each process computes a set of elements": worker [me]
      of [workers] computes the contiguous block of elements it owns under
      {!block_owner_map}.  Same double-handshake structure, so the iterates
      are still exactly sequential Jacobi; the per-phase read traffic drops
      to the elements outside the worker's own block. *)

  val coordinator : M.handle -> workers:int -> iters:int -> unit
  (** Body of the coordinator process. *)

  val read_solution : M.handle -> n:int -> float array
  (** Fetch the final vector (with freshness refreshes); call after the
      run quiesces. *)
end
