(** Synchronisation variables on weakly consistent memory.

    Section 4.1: "Special synchronization variables such as semaphores or
    event counts may be used on causal memory but we prefer a simpler
    approach".  This module supplies the event counts — monotone counters
    that are safe to poll on causal memory precisely because they only grow
    and causal memory respects each writer's program order — and an
    all-to-all sense-style barrier built from one event count per
    participant.  The barrier gives the solver a coordinator-free variant
    (see {!Solver_barrier}) whose cost shape differs from Figure 6's
    central-coordinator handshake.

    A functor over {!Dsm_memory.Memory_intf.MEMORY}: works unchanged on the
    causal DSM (polls pay a freshness refresh) and the atomic baseline
    (polls ride on invalidations). *)

module Make (M : Dsm_memory.Memory_intf.MEMORY) : sig
  module Eventcount : sig
    val advance : M.handle -> Dsm_memory.Loc.t -> unit
    (** Increment the counter.  Only one process (in practice: the owner)
        may advance a given counter — event counts are single-writer. *)

    val value : M.handle -> Dsm_memory.Loc.t -> int
    (** Current count in this process's view (0 if never advanced). *)

    val await : M.handle -> Dsm_memory.Loc.t -> int -> unit
    (** Block (cooperatively) until the counter reaches at least the given
        value in this process's view; polls with freshness refreshes.
        Monotonicity makes the stale reads harmless: the counter can only
        be under-read, never over-read. *)
  end

  module Barrier : sig
    type t
    (** A reusable all-to-all barrier for a fixed set of participants. *)

    val create : name:string -> parties:int -> t
    (** Participant [i] must run on the node owning [Indexed (name, i)] —
        with {!Dsm_memory.Owner.by_index} that is node [i mod nodes]. *)

    val enter : t -> M.handle -> me:int -> unit
    (** Advance own event count and wait until every participant's count
        reaches this participant's current generation.  The [k]-th [enter]
        by each participant synchronises generation [k]. *)

    val generation : t -> M.handle -> me:int -> int
    (** How many times [me] has entered (own count in own view). *)
  end
end
