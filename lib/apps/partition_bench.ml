type scenario_result = {
  scenario : string;
  seeds : int;
  healthy : int;
  takeovers : int;
  partition_heals : int;
  refused_writes : int;
  resyncs : int;
  maj_attempts : int;
  maj_ok : int;
  min_attempts : int;
  min_ok : int;
  majority_availability : float;
  minority_availability : float;
}

type result = {
  seeds : int64 list;
  quick : bool;
  partition : scenario_result;
  split_brain : scenario_result;
}

let note_int (r : Chaos.report) name =
  match List.assoc_opt name r.Chaos.notes with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
  | None -> 0

let run_scenario ~scenario ~seeds =
  let reports = List.map (fun seed -> Chaos.run ~seed scenario) seeds in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let ratio ok attempts =
    if attempts = 0 then Float.nan else float_of_int ok /. float_of_int attempts
  in
  let maj_attempts = sum (fun r -> note_int r "window_majority_attempts") in
  let maj_ok = sum (fun r -> note_int r "window_majority_ok") in
  let min_attempts = sum (fun r -> note_int r "window_minority_attempts") in
  let min_ok = sum (fun r -> note_int r "window_minority_ok") in
  {
    scenario;
    seeds = List.length seeds;
    healthy = List.length (List.filter Chaos.healthy reports);
    takeovers = sum (fun r -> r.Chaos.takeovers);
    partition_heals = sum (fun r -> note_int r "partition_heals");
    refused_writes = sum (fun r -> note_int r "refused_writes");
    resyncs = sum (fun r -> note_int r "resyncs");
    maj_attempts;
    maj_ok;
    min_attempts;
    min_ok;
    majority_availability = ratio maj_ok maj_attempts;
    minority_availability = ratio min_ok min_attempts;
  }

let default_seeds ~quick =
  let n = if quick then 3 else 10 in
  List.init n (fun i -> Int64.of_int (i + 1))

let run ?(quick = false) ?seeds () =
  let seeds = match seeds with Some s -> s | None -> default_seeds ~quick in
  if seeds = [] then invalid_arg "Partition_bench.run: need at least one seed";
  {
    seeds;
    quick;
    partition = run_scenario ~scenario:"partition" ~seeds;
    split_brain = run_scenario ~scenario:"split-brain" ~seeds;
  }

let scenario_healthy (s : scenario_result) =
  s.healthy = s.seeds && s.majority_availability >= 0.9

let healthy r = scenario_healthy r.partition && scenario_healthy r.split_brain

(* Hand-rolled JSON, like {!Bench.to_json}: flat, byte-stable, no
   dependency. *)

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let json_scenario b (s : scenario_result) =
  let field fmt = Printf.bprintf b fmt in
  field "    {\n";
  field "      \"scenario\": %S,\n" s.scenario;
  field "      \"seeds\": %d,\n" s.seeds;
  field "      \"healthy\": %d,\n" s.healthy;
  field "      \"takeovers\": %d,\n" s.takeovers;
  field "      \"partition_heals\": %d,\n" s.partition_heals;
  field "      \"refused_writes\": %d,\n" s.refused_writes;
  field "      \"resyncs\": %d,\n" s.resyncs;
  field "      \"window\": { \"majority_ok\": %d, \"majority_attempts\": %d, \"minority_ok\": %d, \"minority_attempts\": %d },\n"
    s.maj_ok s.maj_attempts s.min_ok s.min_attempts;
  field "      \"majority_availability\": %s,\n" (json_float s.majority_availability);
  field "      \"minority_availability\": %s\n" (json_float s.minority_availability);
  field "    }"

let to_json r =
  let b = Buffer.create 1024 in
  let field fmt = Printf.bprintf b fmt in
  field "{\n";
  field "  \"benchmark\": \"partition\",\n";
  field "  \"quick\": %b,\n" r.quick;
  field "  \"seeds\": [%s],\n" (String.concat ", " (List.map Int64.to_string r.seeds));
  field "  \"scenarios\": [\n";
  json_scenario b r.partition;
  field ",\n";
  json_scenario b r.split_brain;
  field "\n  ]\n";
  field "}\n";
  Buffer.contents b

let pp_scenario ppf (s : scenario_result) =
  Format.fprintf ppf
    "%-12s %d/%d healthy  takeovers %2d  heals %2d  refused %2d  majority %3.0f%% (%d/%d)  minority %3.0f%% (%d/%d)"
    s.scenario s.healthy s.seeds s.takeovers s.partition_heals s.refused_writes
    (100.0 *. s.majority_availability)
    s.maj_ok s.maj_attempts
    (100.0 *. s.minority_availability)
    s.min_ok s.min_attempts

let pp ppf r =
  Format.fprintf ppf "partition bench: %d seeds%s@." (List.length r.seeds)
    (if r.quick then " (quick)" else "");
  Format.fprintf ppf "  %a@." pp_scenario r.partition;
  Format.fprintf ppf "  %a@." pp_scenario r.split_brain;
  Format.fprintf ppf "  majority-side availability gate: >= 90%% inside the partition window@."
