module Engine = Dsm_sim.Engine
module Causal = Dsm_causal.Cluster

type fault =
  | Cut of { a : int list; b : int list }
  | Cut_oneway of { src : int list; dst : int list }
  | Heal of { a : int list; b : int list }
  | Heal_all
  | Crash of int
  | Restart of int

type step = { at : float; fault : fault }

type t = {
  mutable cuts : int;
  mutable heals : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable log : (float * string) list; (* newest first *)
}

let group g = String.concat "," (List.map string_of_int g)

let describe = function
  | Cut { a; b } -> Printf.sprintf "cut {%s}|{%s}" (group a) (group b)
  | Cut_oneway { src; dst } -> Printf.sprintf "cut-oneway {%s}->{%s}" (group src) (group dst)
  | Heal { a; b } -> Printf.sprintf "heal {%s}|{%s}" (group a) (group b)
  | Heal_all -> "heal-all"
  | Crash n -> Printf.sprintf "crash %d" n
  | Restart n -> Printf.sprintf "restart %d" n

let apply t c now fault =
  (match fault with
  | Cut { a; b } ->
      Causal.partition c a b;
      t.cuts <- t.cuts + 1
  | Cut_oneway { src; dst } ->
      Causal.partition_oneway c src dst;
      t.cuts <- t.cuts + 1
  | Heal { a; b } ->
      Causal.heal_partition c a b;
      t.heals <- t.heals + 1
  | Heal_all ->
      Causal.heal_all_links c;
      t.heals <- t.heals + 1
  | Crash n -> ( match Causal.crash_result c n with Ok () -> t.crashes <- t.crashes + 1 | Error _ -> ())
  | Restart n -> (
      match Causal.restart_result c n with Ok () -> t.restarts <- t.restarts + 1 | Error _ -> ()));
  t.log <- (now, describe fault) :: t.log

let schedule engine c steps =
  let t = { cuts = 0; heals = 0; crashes = 0; restarts = 0; log = [] } in
  List.iter
    (fun { at; fault } -> Engine.schedule_at engine at (fun () -> apply t c (Engine.now engine) fault))
    steps;
  t

let cuts t = t.cuts
let heals t = t.heals
let crashes t = t.crashes
let restarts t = t.restarts
let log t = List.rev t.log

let notes t =
  List.mapi (fun i (at, what) -> (Printf.sprintf "nemesis_%d" i, Printf.sprintf "t=%.1f %s" at what))
    (log t)

(* Canned plans *)

let partition_window ~from_ ~until ~a ~b =
  [ { at = from_; fault = Cut { a; b } }; { at = until; fault = Heal { a; b } } ]

let crash_window ~from_ ~until node =
  [ { at = from_; fault = Crash node }; { at = until; fault = Restart node } ]
