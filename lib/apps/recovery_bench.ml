module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Latency = Dsm_net.Latency
module Causal = Dsm_causal.Cluster
module Owner = Dsm_memory.Owner
module Value = Dsm_memory.Value

type case = {
  mode : string;  (** "checkpointed" or "uncheckpointed" *)
  interval : float option;
  ops_per_node : int;
  ops_issued : int;
  wal_records : int;
  wal_checkpoints : int;
  wal_truncated : int;
  recoveries : int;
  replayed_per_recovery : float;
  seconds_per_recovery : float;
  unfinished : int;
}

type result = {
  nodes : int;
  cycles : int;
  quick : bool;
  cases : case list;
  replay_bounded : bool;
}

(* One cell of the grid: run a pure owner-write workload (each node writes
   its own locations, one write per unit of sim time, so a fixed
   [checkpoint_every] period snapshots a fixed-size window), then measure
   whole-cluster recovery by power-cycling the quiesced cluster [cycles]
   times.  Replay counts are seed-deterministic; the host seconds are the
   one measured quantity. *)
let run_case ~interval ~nodes ~ops ~cycles ~seed =
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes in
  let c =
    Causal.create ~sched ~owner ~latency:Latency.lan ?checkpoint_every:interval ~seed ()
  in
  for pid = 0 to nodes - 1 do
    let h = Causal.handle c pid in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "writer%d" pid)
         (fun () ->
           for k = 1 to ops do
             Causal.write h (Workload.loc (pid + (nodes * (k mod 3)))) (Value.Int k);
             Proc.sleep 1.0
           done))
  done;
  Engine.run engine;
  for _ = 1 to cycles do
    for pid = 0 to nodes - 1 do
      ignore (Causal.crash_result c pid)
    done;
    for pid = 0 to nodes - 1 do
      ignore (Causal.restart_result c pid)
    done
  done;
  Causal.shutdown c;
  let stats = Causal.cluster_stats c in
  let recoveries = Causal.recoveries c in
  let per r = if recoveries = 0 then 0.0 else r /. float_of_int recoveries in
  {
    mode = (match interval with Some _ -> "checkpointed" | None -> "uncheckpointed");
    interval;
    ops_per_node = ops;
    ops_issued = nodes * ops;
    wal_records = stats.Dsm_causal.Node_stats.wal_records;
    wal_checkpoints = stats.Dsm_causal.Node_stats.wal_checkpoints;
    wal_truncated = stats.Dsm_causal.Node_stats.wal_truncated;
    recoveries;
    replayed_per_recovery = per (float_of_int (Causal.replayed_records c));
    seconds_per_recovery = per (Causal.recovery_seconds c);
    unfinished = List.length (Proc.unfinished_since sched);
  }

let default_interval = 5.0

let run ?(quick = false) ?(seed = 7L) () =
  let nodes = 4 in
  let cycles = if quick then 10 else 25 in
  let sizes = if quick then [ 50; 100 ] else [ 50; 100; 200; 400 ] in
  let cases =
    List.concat_map
      (fun ops ->
        [
          run_case ~interval:(Some default_interval) ~nodes ~ops ~cycles ~seed;
          run_case ~interval:None ~nodes ~ops ~cycles ~seed;
        ])
      sizes
  in
  (* The tentpole claim in one bit: at the largest log, recovery work with
     checkpointing is bounded by records-since-checkpoint and therefore
     strictly smaller than the full-log replay without it. *)
  let at mode =
    List.filter (fun c -> c.mode = mode) cases
    |> List.fold_left (fun acc c -> max acc c.replayed_per_recovery) 0.0
  in
  let replay_bounded = at "checkpointed" < at "uncheckpointed" in
  { nodes; cycles; quick; cases; replay_bounded }

(* Hand-rolled JSON, like {!Bench.to_json}: flat, stable field order.  The
   [seconds_per_recovery] figures are host-time measurements and therefore
   the one non-deterministic part of the artifact. *)
let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let json_case b (c : case) =
  let field fmt = Printf.bprintf b fmt in
  field "    {\n";
  field "      \"mode\": %S,\n" c.mode;
  field "      \"checkpoint_every\": %s,\n"
    (match c.interval with Some p -> json_float p | None -> "null");
  field "      \"ops_per_node\": %d,\n" c.ops_per_node;
  field "      \"ops_issued\": %d,\n" c.ops_issued;
  field "      \"wal_records\": %d,\n" c.wal_records;
  field "      \"wal_checkpoints\": %d,\n" c.wal_checkpoints;
  field "      \"wal_truncated\": %d,\n" c.wal_truncated;
  field "      \"recoveries\": %d,\n" c.recoveries;
  field "      \"replayed_per_recovery\": %s,\n" (json_float c.replayed_per_recovery);
  field "      \"seconds_per_recovery\": %s,\n" (json_float c.seconds_per_recovery);
  field "      \"unfinished\": %d\n" c.unfinished;
  field "    }"

let to_json r =
  let b = Buffer.create 1024 in
  let field fmt = Printf.bprintf b fmt in
  field "{\n";
  field "  \"benchmark\": \"recovery\",\n";
  field "  \"workload\": \"owner-writes\",\n";
  field "  \"nodes\": %d,\n" r.nodes;
  field "  \"cycles\": %d,\n" r.cycles;
  field "  \"quick\": %b,\n" r.quick;
  field "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then field ",\n";
      json_case b c)
    r.cases;
  field "\n  ],\n";
  field "  \"replay_bounded_by_checkpoint\": %b\n" r.replay_bounded;
  field "}\n";
  Buffer.contents b

let pp_case ppf (c : case) =
  Format.fprintf ppf
    "%-14s %4d ops/node  wal %5d  cp %3d  replayed/rec %8.1f  %10.6fs/rec" c.mode
    c.ops_per_node c.wal_records c.wal_checkpoints c.replayed_per_recovery
    c.seconds_per_recovery

let pp ppf r =
  Format.fprintf ppf "recovery bench: %d nodes, %d power cycles per case%s@." r.nodes
    r.cycles
    (if r.quick then " (quick)" else "");
  List.iter (fun c -> Format.fprintf ppf "  %a@." pp_case c) r.cases;
  Format.fprintf ppf "  replay bounded by checkpoint: %b@." r.replay_bounded

let healthy r = r.replay_bounded && List.for_all (fun c -> c.unfinished = 0) r.cases
