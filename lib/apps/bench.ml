module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Reliable = Dsm_net.Reliable
module Latency = Dsm_net.Latency
module Causal = Dsm_causal.Cluster
module Owner = Dsm_memory.Owner
module Prng = Dsm_util.Prng
module Stats = Dsm_util.Stats

type mode_result = {
  name : string;
  config : Reliable.config;
  seeds : int;
  ops : int;
  sim_time : float;
  throughput : float;
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  lat_mean : float;
  lat_max : float;
  logical_messages : int;
  physical_frames : int;
  retransmissions : int;
  explicit_acks : int;
  rpc_timeouts : int;
  unfinished : int;
}

type result = {
  seeds : int64 list;
  quick : bool;
  off : mode_result;
  on_ : mode_result;
  frame_reduction : float;
}

(* One chaos-mix run (same shape as [Chaos.mix], minus the history checker:
   the chaos soaks own correctness, the bench owns numbers) returning the
   raw material a mode aggregates: per-op latencies and the counters. *)
type run_raw = {
  r_ops : int;
  r_sim_time : float;
  r_latencies : float list;
  r_logical : int;
  r_physical : int;
  r_retrans : int;
  r_acks : int;
  r_rpc_timeouts : int;
  r_unfinished : int;
}

let run_once ~reliability ~seed =
  let spec = Workload.default_spec in
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let owner = Owner.by_index ~nodes:spec.Workload.processes in
  let c =
    Causal.create ~sched ~owner ~latency:Latency.lan
      ~fault:(Network.fault ~drop:0.05 ~duplicate:0.01 ())
      ~reliability
      ~rpc:{ Causal.timeout = 100.0; retries = 5 }
      ~seed ()
  in
  let master = Prng.create seed in
  for pid = 0 to spec.Workload.processes - 1 do
    let prng = Prng.split master in
    let h = Causal.handle c pid in
    ignore
      (Proc.spawn sched
         ~name:(Printf.sprintf "client%d" pid)
         (Workload.client ~spec ~prng ~pid
            ~read:(fun l -> Causal.read h l)
            ~write:(fun l v -> Causal.write h l v)
            ~refresh:(fun l -> Causal.Mem.refresh h l)))
  done;
  Engine.run engine;
  Causal.shutdown c;
  let timed = Causal.timed_history c in
  let acks =
    match Causal.reliable c with
    | Some r -> (Reliable.counters r).Reliable.acks
    | None -> 0
  in
  {
    r_ops = List.length timed;
    r_sim_time = Engine.now engine;
    r_latencies = List.map (fun (_op, start, stop) -> stop -. start) timed;
    r_logical = Causal.logical_messages c;
    r_physical = Causal.physical_frames c;
    r_retrans = Causal.retransmissions c;
    r_acks = acks;
    r_rpc_timeouts = Causal.rpc_timeouts c;
    r_unfinished = List.length (Proc.unfinished_since sched);
  }

let run_mode ~name ~config ~seeds =
  let raws = List.map (fun seed -> run_once ~reliability:config ~seed) seeds in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 raws in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 raws in
  let latencies = Array.of_list (List.concat_map (fun r -> r.r_latencies) raws) in
  let ops = sum (fun r -> r.r_ops) in
  let sim_time = sumf (fun r -> r.r_sim_time) in
  {
    name;
    config;
    seeds = List.length seeds;
    ops;
    sim_time;
    throughput = (if sim_time > 0.0 then float_of_int ops /. sim_time else 0.0);
    lat_p50 = Stats.percentile latencies 50.0;
    lat_p95 = Stats.percentile latencies 95.0;
    lat_p99 = Stats.percentile latencies 99.0;
    lat_mean = Stats.mean_of latencies;
    lat_max = Stats.percentile latencies 100.0;
    logical_messages = sum (fun r -> r.r_logical);
    physical_frames = sum (fun r -> r.r_physical);
    retransmissions = sum (fun r -> r.r_retrans);
    explicit_acks = sum (fun r -> r.r_acks);
    rpc_timeouts = sum (fun r -> r.r_rpc_timeouts);
    unfinished = sum (fun r -> r.r_unfinished);
  }

let default_seeds ~quick =
  let n = if quick then 3 else 10 in
  List.init n (fun i -> Int64.of_int (i + 1))

let run ?(quick = false) ?seeds () =
  let seeds = match seeds with Some s -> s | None -> default_seeds ~quick in
  if seeds = [] then invalid_arg "Bench.run: need at least one seed";
  let off = run_mode ~name:"batching_off" ~config:Reliable.default_config ~seeds in
  let on_ = run_mode ~name:"batching_on" ~config:Reliable.batching_config ~seeds in
  let frame_reduction =
    if off.physical_frames = 0 then 0.0
    else 1.0 -. (float_of_int on_.physical_frames /. float_of_int off.physical_frames)
  in
  { seeds; quick; off; on_; frame_reduction }

(* {1 JSON}

   Hand-rolled on purpose: no JSON dependency in the tree, and the output
   is flat enough that stability matters more than generality.  Floats are
   fixed-precision so the artifact is byte-stable across platforms. *)

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let json_mode b (m : mode_result) =
  let field fmt = Printf.bprintf b fmt in
  field "    {\n";
  field "      \"name\": %S,\n" m.name;
  field "      \"config\": { \"window\": %d, \"max_batch\": %d, \"ack_every\": %d, \"ack_delay\": %s },\n"
    m.config.Reliable.window m.config.Reliable.max_batch m.config.Reliable.ack_every
    (json_float m.config.Reliable.ack_delay);
  field "      \"seeds\": %d,\n" m.seeds;
  field "      \"ops\": %d,\n" m.ops;
  field "      \"sim_time\": %s,\n" (json_float m.sim_time);
  field "      \"ops_per_sim_time\": %s,\n" (json_float m.throughput);
  field "      \"latency\": { \"p50\": %s, \"p95\": %s, \"p99\": %s, \"mean\": %s, \"max\": %s },\n"
    (json_float m.lat_p50) (json_float m.lat_p95) (json_float m.lat_p99)
    (json_float m.lat_mean) (json_float m.lat_max);
  field "      \"logical_messages\": %d,\n" m.logical_messages;
  field "      \"physical_frames\": %d,\n" m.physical_frames;
  field "      \"retransmissions\": %d,\n" m.retransmissions;
  field "      \"explicit_acks\": %d,\n" m.explicit_acks;
  field "      \"rpc_timeouts\": %d,\n" m.rpc_timeouts;
  field "      \"unfinished\": %d\n" m.unfinished;
  field "    }"

let to_json r =
  let b = Buffer.create 1024 in
  let field fmt = Printf.bprintf b fmt in
  field "{\n";
  field "  \"benchmark\": \"transport\",\n";
  field "  \"workload\": \"chaos-mix\",\n";
  field "  \"faults\": { \"drop\": 0.05, \"duplicate\": 0.01 },\n";
  field "  \"quick\": %b,\n" r.quick;
  field "  \"seeds\": [%s],\n"
    (String.concat ", " (List.map Int64.to_string r.seeds));
  field "  \"modes\": [\n";
  json_mode b r.off;
  field ",\n";
  json_mode b r.on_;
  field "\n  ],\n";
  field "  \"physical_frame_reduction\": %s\n" (json_float r.frame_reduction);
  field "}\n";
  Buffer.contents b

let pp_mode ppf (m : mode_result) =
  Format.fprintf ppf
    "%-13s %5d ops  %8.2f ops/t  p50 %5.2f  p95 %6.2f  p99 %6.2f  logical %5d  frames %5d  rexmit %3d  acks %4d"
    m.name m.ops m.throughput m.lat_p50 m.lat_p95 m.lat_p99 m.logical_messages
    m.physical_frames m.retransmissions m.explicit_acks

let pp ppf r =
  Format.fprintf ppf "transport bench: chaos-mix, %d seeds%s@."
    (List.length r.seeds)
    (if r.quick then " (quick)" else "");
  Format.fprintf ppf "  %a@." pp_mode r.off;
  Format.fprintf ppf "  %a@." pp_mode r.on_;
  (* Logical counts differ slightly across modes only through RPC retries:
     different frame streams draw different loss patterns.  The headline is
     the frame count, which batching actually targets. *)
  Format.fprintf ppf "  physical frames: %d -> %d (%.1f%% fewer; logical %d vs %d)@."
    r.off.physical_frames r.on_.physical_frames
    (100.0 *. r.frame_reduction)
    r.off.logical_messages r.on_.logical_messages
