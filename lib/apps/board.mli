(** A shared message board: the classic causal-consistency application.

    Each process posts to its own row of a shared array (no write conflicts,
    like the dictionary's insert).  A reply names its parent post; the
    invariant causal memory buys is {e no orphan replies}: a reader that
    sees a reply can always resolve its parent, because the replier read the
    parent before writing the reply, so the parent is in the reply's causal
    past — a reader that cached "no parent yet" has that stale entry
    invalidated the moment it installs the reply, and the re-read is
    guaranteed to find the parent at its owner.

    The functor runs on any {!Dsm_memory.Memory_intf.MEMORY}: on the causal
    DSM (and on causally-delivered broadcast memory) {!orphans} is always
    empty after {!read_board}; on FIFO-only broadcast memory a reply can
    overtake its parent and orphans become visible — experiment E-BOARD
    shows the separation. *)

type post_id = { author : int; seq : int }

type post = { id : post_id; text : string; reply_to : post_id option }

val pp_post : Format.formatter -> post -> unit

module Make (M : Dsm_memory.Memory_intf.MEMORY) : sig
  type t

  val attach : M.handle -> slots:int -> t
  (** Bind a board view; [slots] is the per-author row capacity (all
      processes must agree on it). *)

  val post : t -> ?reply_to:post_id -> string -> post_id option
  (** Publish into the caller's own row; [None] when the row is full.
      The parent reference is written before the text, so a visible post
      always has a resolvable reference. *)

  val read_board : t -> post list
  (** Scan every row (author-major), resolving each visible post's parent
      reference; includes one freshness refresh per stale reference — on
      causal memory that single retry is guaranteed sufficient. *)

  val lookup : t -> post_id -> post option

  val refresh : t -> unit
  (** Freshness-refresh the whole board so the next [read_board] observes
      remote progress. *)
end

val orphans : post list -> post list
(** Replies whose parent is not in the list — the anomaly causal memory
    prevents. *)
