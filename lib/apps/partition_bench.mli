(** Partition-availability benchmark: the {!Chaos.partition} and
    {!Chaos.split_brain} scenarios run over a seed set, summarised as the
    numbers the quorum-fenced failover design promises — above all the
    fraction of operations the {e majority} side completed inside the
    partition window (its backup must take over and keep serving), next to
    the minority side's read-only degradation and the reconciliation
    counters.

    The [dsm bench partition] subcommand wraps {!run} and writes
    {!to_json} to [BENCH_partition.json], the artifact the CI
    partition-soak job uploads.  Everything is seed-deterministic. *)

type scenario_result = {
  scenario : string;  (** ["partition"] or ["split-brain"] *)
  seeds : int;  (** runs aggregated into this row *)
  healthy : int;  (** runs that passed {!Chaos.healthy} — must equal [seeds] *)
  takeovers : int;  (** quorum-authorised promotions, all runs *)
  partition_heals : int;  (** degraded owners that resumed service *)
  refused_writes : int;  (** writes refused by degraded minority owners *)
  resyncs : int;  (** heal-time link resynchronisations *)
  maj_attempts : int;  (** majority-side operations inside the window *)
  maj_ok : int;
  min_attempts : int;  (** minority-side operations inside the window *)
  min_ok : int;
  majority_availability : float;  (** [maj_ok / maj_attempts] *)
  minority_availability : float;
      (** [min_ok / min_attempts] — reads still serve, local writes are
          refused, so this sits well below the majority's *)
}

type result = {
  seeds : int64 list;
  quick : bool;
  partition : scenario_result;
  split_brain : scenario_result;
}

val run : ?quick:bool -> ?seeds:int64 list -> unit -> result
(** Default seeds: 1-10, or 1-3 with [~quick:true]; an explicit [?seeds]
    overrides both. *)

val healthy : result -> bool
(** Every run healthy and both majority availabilities >= 0.9 — the
    acceptance gate [dsm bench partition] exits nonzero on. *)

val to_json : result -> string
(** Stable, hand-rolled JSON, newline-terminated. *)

val pp : Format.formatter -> result -> unit
