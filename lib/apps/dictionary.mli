(** The distributed dictionary of Section 4.2 (the Fischer-Michael
    dictionary problem on causal memory).

    The dictionary is a two-dimensional array [dict] with one row per
    process and [cols] columns.  Process [i] owns row [i]; it inserts only
    into its own row (so concurrent inserts never conflict), while any
    process may delete any item by writing the free marker λ into the cell
    holding it.  A concurrent delete racing with the owner's re-insert into
    the same cell is resolved by the {e owner-favored} policy: the owner's
    write survives, the late delete is rejected, and the dictionary stays
    correct (the paper's argument at the end of Section 4.2).

    Restrictions inherited from the paper (and Fischer-Michael): (R1) each
    inserted item is unique; (R2) a delete follows the corresponding insert
    in its issuer's view.  [insert] enforces neither globally — tests and
    examples respect them.

    Causal-memory-specific: relies on [write_resolved] and [discard], so it
    works on {!Dsm_causal.Cluster} handles (the paper's point is precisely
    that this elegance needs a causal memory with a resolution policy). *)

type t

val owner_map : processes:int -> Dsm_memory.Owner.t
(** Row [i] (and any scalar helpers) owned by process [i]. *)

val config : Dsm_causal.Config.t
(** Protocol configuration with the owner-favored resolution policy and
    free-marker initial values for dictionary cells. *)

val attach : Dsm_causal.Cluster.handle -> cols:int -> t
(** Bind a dictionary view to one process's memory handle.  All processes
    must use the same [cols]. *)

val pid : t -> int

val insert : t -> string -> bool
(** Write the item into the first free cell of the caller's own row;
    [false] when the row is full. *)

val delete : t -> string -> [ `Deleted | `Rejected | `Not_found ]
(** Scan for the item and write λ into its cell.  [`Rejected] means the
    cell's owner had concurrently overwritten the cell and favored its own
    write — the delete lost, exactly the paper's scenario; the target item
    was already gone from the current row state, so the dictionary remains
    correct. *)

val lookup : t -> string -> bool
(** Item visible in this process's view? *)

val items : t -> string list
(** All items visible in this process's view, row-major order. *)

val refresh : t -> unit
(** Drop this process's cache so the next scans see current rows; drives
    the convergence (liveness) requirement of the dictionary problem. *)
