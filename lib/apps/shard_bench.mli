(** Partial-replication benchmark: an identical Zipfian, own-shard-skewed
    workload measured under full replication and under interest-based
    sharding (rings of eight) at 16, 32 and 64 nodes, compared on protocol
    messages per operation and metadata bytes per operation.

    The [dsm bench shard] subcommand wraps {!run} and writes {!to_json} to
    [BENCH_shard.json], the artifact the CI shard-soak job uploads.
    Everything is seed-deterministic. *)

type cell = {
  mode : string;  (** ["full"] or ["partial"] *)
  ops : int;
  logical_messages : int;
  wire_bytes : int;
  messages_per_op : float;
  bytes_per_op : float;
  causal_ok : bool;
  unfinished : int;
}

type size_result = {
  nodes : int;
  shards : int;  (** [nodes / 8] rings *)
  full : cell;
  partial : cell;
  message_reduction : float;  (** [1 - partial/full] on logical messages *)
  byte_reduction : float;  (** [1 - partial/full] on wire metadata bytes *)
}

type result = { quick : bool; seed : int64; sizes : size_result list }

val run : ?quick:bool -> ?seed:int64 -> unit -> result
(** Sizes 16/32/64 with 24 ops per client, or 16/64 with 8 per client
    under [~quick:true] (the CI shape). *)

val healthy : result -> bool
(** The acceptance gate: every cell causally correct with no stuck
    process, partial replication strictly fewer logical messages than full
    at every size, and at 64 nodes partial beats full on {e both}
    messages/op and bytes/op. *)

val to_json : result -> string
(** Stable, hand-rolled JSON, newline-terminated. *)

val pp : Format.formatter -> result -> unit
