(** Coordinator-free synchronous solver: Figure 6's computation with the
    central coordinator replaced by the all-to-all event-count barrier of
    {!Sync}.

    Same double-barrier structure per phase (compute barrier, publish
    barrier), so the same correctness argument applies: a phase-[k+1] read
    of [x_j] causally follows [w_j(x_j)] of phase [k] through the barrier's
    event counts, and both memories compute sequential Jacobi exactly.  The
    message shape differs from Figure 6's: each participant polls [n-1]
    peers per barrier instead of handshaking with one coordinator —
    compared in experiment E-BARRIER. *)

val owner_map : workers:int -> Dsm_memory.Owner.t
(** [workers] nodes; worker [i] owns [x_i] and its barrier slots. *)

module Make (M : Dsm_memory.Memory_intf.MEMORY) : sig
  val worker : M.handle -> Linalg.problem -> me:int -> workers:int -> iters:int -> unit

  val read_solution : M.handle -> n:int -> float array
end
