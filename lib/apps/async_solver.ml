module Value = Dsm_memory.Value
module Cluster = Dsm_causal.Cluster

let x_loc = Solver.x_loc

let owner_map ~workers = Dsm_memory.Owner.by_index ~nodes:workers

let worker h problem ~me ~sweeps ~refresh_every =
  if refresh_every < 1 then invalid_arg "Async_solver.worker: refresh_every must be >= 1";
  let n = Linalg.dim problem in
  let row = problem.Linalg.a.(me) in
  for sweep = 0 to sweeps - 1 do
    (* Periodically drop the cache so subsequent reads refetch current
       values from their owners; staleness in between is tolerated by
       chaotic relaxation. *)
    if sweep mod refresh_every = 0 then Cluster.discard h;
    let acc = ref problem.Linalg.b.(me) in
    for j = 0 to n - 1 do
      if j <> me then acc := !acc -. (row.(j) *. Value.to_float (Cluster.read h (x_loc j)))
    done;
    Cluster.write h (x_loc me) (Value.Float (!acc /. row.(me)));
    Cluster.Mem.yield h
  done

let read_solution h ~n =
  Cluster.discard h;
  Array.init n (fun i -> Value.to_float (Cluster.read h (x_loc i)))

let delta_loc i = Dsm_memory.Loc.indexed "delta" i

let worker_until h problem ~me ~tolerance ~refresh_every ~max_sweeps =
  if refresh_every < 1 then invalid_arg "Async_solver.worker_until: refresh_every must be >= 1";
  if tolerance <= 0.0 then invalid_arg "Async_solver.worker_until: tolerance must be positive";
  let n = Linalg.dim problem in
  let row = problem.Linalg.a.(me) in
  let current = ref 0.0 in
  let quiet_checks = ref 0 in
  let sweeps = ref 0 in
  let all_deltas_small () =
    let small = ref true in
    for j = 0 to n - 1 do
      Cluster.Mem.refresh h (delta_loc j);
      match Cluster.read h (delta_loc j) with
      | Value.Float d -> if d >= tolerance then small := false
      | Value.Int 0 ->
          (* Worker j has not published yet. *)
          small := false
      | _ -> small := false
    done;
    !small
  in
  let continue_ = ref true in
  while !continue_ && !sweeps < max_sweeps do
    incr sweeps;
    if (!sweeps - 1) mod refresh_every = 0 then Cluster.discard h;
    let acc = ref problem.Linalg.b.(me) in
    for j = 0 to n - 1 do
      if j <> me then acc := !acc -. (row.(j) *. Value.to_float (Cluster.read h (x_loc j)))
    done;
    let next = !acc /. row.(me) in
    let delta = Float.abs (next -. !current) in
    current := next;
    Cluster.write h (x_loc me) (Value.Float next);
    Cluster.write h (delta_loc me) (Value.Float delta);
    (* Termination: everyone's published delta under tolerance on two
       consecutive looks. *)
    if all_deltas_small () then incr quiet_checks else quiet_checks := 0;
    if !quiet_checks >= 2 then continue_ := false;
    Cluster.Mem.yield h
  done;
  !sweeps
