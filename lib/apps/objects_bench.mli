(** Causal-objects benchmark: every shipped [Causal_object] instance runs
    the same seeded update/query mix over loss-free links, and each cell
    reports the wire cost of the object embedding (logical messages per
    spec-level update) next to three correctness verdicts — the register
    history's causal check, the generalized object checker over every
    recorded query, and convergence of the final returns across
    processes.  [dsm bench objects] wraps {!run} and writes
    [BENCH_objects.json]. *)

type cell = {
  obj : string;  (** scenario name, [obj-<family>] *)
  processes : int;
  updates : int;  (** spec-level updates issued *)
  queries : int;  (** recorded object queries, all certified post hoc *)
  ops : int;  (** register ops in the history: probes + op-log writes *)
  logical_messages : int;
  messages_per_update : float;
  object_ok : bool;  (** every query spec-legal (the generalized checker) *)
  converged : bool;  (** all final query returns agree *)
  healthy : bool;  (** the full chaos health verdict for the cell *)
  unfinished : int;
}

type result = { quick : bool; seed : int64; cells : cell list }

val run : ?quick:bool -> ?seed:int64 -> unit -> result
(** Run every instance in {!Chaos.Objects.drivers}: 3 processes and 3
    update rounds each with [~quick:true] (the CI soak), 4 and 6
    otherwise.  Bit-identical per [(quick, seed)]. *)

val healthy : result -> bool
(** Every cell spec-legal, converged, chaos-healthy and with no blocked
    process — the bench's pass/fail gate. *)

val to_json : result -> string

val pp : Format.formatter -> result -> unit
