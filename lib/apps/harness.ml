module Engine = Dsm_sim.Engine
module Proc = Dsm_runtime.Proc
module Network = Dsm_net.Network
module Causal = Dsm_causal.Cluster
module Atomic = Dsm_atomic.Cluster

module Solver_on_causal = Solver.Make (Causal.Mem)
module Solver_on_atomic = Solver.Make (Atomic.Mem)

type solver_result = {
  workers : int;
  iters : int;
  solution : float array;
  reference : float array;
  max_diff : float;
  residual : float;
  messages_total : int;
  bytes_total : int;
  by_kind : (string * int) list;
  history_correct : bool;
  sim_time : float;
}

let run_procs ?(poll_interval = 2.0) ?step_limit build =
  let engine = Engine.create ?step_limit () in
  let sched = Proc.scheduler ~poll_interval engine in
  let procs = build sched in
  List.iter (fun (name, body) -> ignore (Proc.spawn sched ~name body)) procs;
  Engine.run engine;
  Proc.check sched;
  (engine, sched)

(* Run one extra process after quiescence (e.g. to read results back through
   the memory API, which must happen inside a process). *)
let run_one sched engine name body =
  ignore (Proc.spawn sched ~name body);
  Engine.run engine;
  Proc.check sched

(* Checking a huge recorded history is quadratic; skip it beyond this size
   unless explicitly requested. *)
let history_check_cutoff = 6_000

let check_history history =
  if Dsm_memory.History.op_count history > history_check_cutoff then true
  else Dsm_checker.Causal_check.is_correct history

let problem_for ~seed ~n =
  Linalg.random_diagonally_dominant (Dsm_util.Prng.create seed) ~n

let solver_causal ?(seed = 42L) ?latency ?poll_interval ~n ~iters () =
  let problem = problem_for ~seed ~n in
  let owner = Solver.owner_map ~workers:n in
  let cluster = ref None in
  let engine, sched =
    run_procs ?poll_interval (fun sched ->
        let c = Causal.create ~sched ~owner ?latency ~seed () in
        cluster := Some c;
        let worker i () =
          Solver_on_causal.worker (Causal.handle c i) problem ~me:i ~iters
        in
        let coord () = Solver_on_causal.coordinator (Causal.handle c n) ~workers:n ~iters in
        ("coordinator", coord)
        :: List.init n (fun i -> (Printf.sprintf "worker%d" i, worker i)))
  in
  let c = Option.get !cluster in
  let messages_total = Network.lifetime_total (Causal.net c) in
  let solution = ref [||] in
  run_one sched engine "collect" (fun () ->
      solution := Solver_on_causal.read_solution (Causal.handle c n) ~n);
  let reference = Linalg.jacobi problem ~iters in
  let counters = Network.counters (Causal.net c) in
  {
    workers = n;
    iters;
    solution = !solution;
    reference;
    max_diff = Linalg.max_diff !solution reference;
    residual = Linalg.residual problem !solution;
    messages_total;
    bytes_total = counters.Network.bytes;
    by_kind = counters.Network.by_kind;
    history_correct = check_history (Causal.history c);
    sim_time = Engine.now engine;
  }

let solver_atomic ?(seed = 42L) ?latency ?poll_interval ?(mode = `Counted) ~n ~iters () =
  let problem = problem_for ~seed ~n in
  let owner = Solver.owner_map ~workers:n in
  let cluster = ref None in
  let engine, sched =
    run_procs ?poll_interval (fun sched ->
        let c = Atomic.create ~sched ~owner ~mode ?latency ~seed () in
        cluster := Some c;
        let worker i () =
          Solver_on_atomic.worker (Atomic.handle c i) problem ~me:i ~iters
        in
        let coord () = Solver_on_atomic.coordinator (Atomic.handle c n) ~workers:n ~iters in
        ("coordinator", coord)
        :: List.init n (fun i -> (Printf.sprintf "worker%d" i, worker i)))
  in
  let c = Option.get !cluster in
  let messages_total = Network.lifetime_total (Atomic.net c) in
  let solution = ref [||] in
  run_one sched engine "collect" (fun () ->
      solution := Solver_on_atomic.read_solution (Atomic.handle c n) ~n);
  let reference = Linalg.jacobi problem ~iters in
  let counters = Network.counters (Atomic.net c) in
  {
    workers = n;
    iters;
    solution = !solution;
    reference;
    max_diff = Linalg.max_diff !solution reference;
    residual = Linalg.residual problem !solution;
    messages_total;
    bytes_total = counters.Network.bytes;
    by_kind = counters.Network.by_kind;
    history_correct = check_history (Atomic.history c);
    sim_time = Engine.now engine;
  }

let solver_causal_blocks ?(seed = 42L) ?latency ?poll_interval ?config ~n ~workers ~iters () =
  if workers > n then invalid_arg "Harness.solver_causal_blocks: workers > n";
  let problem = problem_for ~seed ~n in
  let owner = Solver.block_owner_map ~workers ~n in
  let cluster = ref None in
  let engine, sched =
    run_procs ?poll_interval (fun sched ->
        let c = Causal.create ~sched ~owner ?config ?latency ~seed () in
        cluster := Some c;
        let worker w () =
          Solver_on_causal.worker_block (Causal.handle c w) problem ~me:w ~workers ~iters
        in
        let coord () =
          Solver_on_causal.coordinator (Causal.handle c workers) ~workers ~iters
        in
        ("coordinator", coord)
        :: List.init workers (fun w -> (Printf.sprintf "worker%d" w, worker w)))
  in
  let c = Option.get !cluster in
  let messages_total = Network.lifetime_total (Causal.net c) in
  let solution = ref [||] in
  run_one sched engine "collect" (fun () ->
      solution := Solver_on_causal.read_solution (Causal.handle c workers) ~n);
  let reference = Linalg.jacobi problem ~iters in
  let counters = Network.counters (Causal.net c) in
  {
    workers;
    iters;
    solution = !solution;
    reference;
    max_diff = Linalg.max_diff !solution reference;
    residual = Linalg.residual problem !solution;
    messages_total;
    bytes_total = counters.Network.bytes;
    by_kind = counters.Network.by_kind;
    history_correct = check_history (Causal.history c);
    sim_time = Engine.now engine;
  }

module Barrier_on_causal = Solver_barrier.Make (Causal.Mem)

let solver_causal_barrier ?(seed = 42L) ?latency ?poll_interval ~n ~iters () =
  let problem = problem_for ~seed ~n in
  let owner = Solver_barrier.owner_map ~workers:n in
  let cluster = ref None in
  let engine, sched =
    run_procs ?poll_interval (fun sched ->
        let c = Causal.create ~sched ~owner ?latency ~seed () in
        cluster := Some c;
        List.init n (fun i ->
            ( Printf.sprintf "worker%d" i,
              fun () ->
                Barrier_on_causal.worker (Causal.handle c i) problem ~me:i ~workers:n ~iters )))
  in
  let c = Option.get !cluster in
  let messages_total = Network.lifetime_total (Causal.net c) in
  let solution = ref [||] in
  run_one sched engine "collect" (fun () ->
      solution := Barrier_on_causal.read_solution (Causal.handle c 0) ~n);
  let reference = Linalg.jacobi problem ~iters in
  let counters = Network.counters (Causal.net c) in
  {
    workers = n;
    iters;
    solution = !solution;
    reference;
    max_diff = Linalg.max_diff !solution reference;
    residual = Linalg.residual problem !solution;
    messages_total;
    bytes_total = counters.Network.bytes;
    by_kind = counters.Network.by_kind;
    history_correct = check_history (Causal.history c);
    sim_time = Engine.now engine;
  }

let steady_rate ~run ~iters_lo ~iters_hi =
  if iters_hi <= iters_lo then invalid_arg "Harness.steady_rate: need iters_hi > iters_lo";
  let lo = run ~iters:iters_lo in
  let hi = run ~iters:iters_hi in
  float_of_int (hi.messages_total - lo.messages_total)
  /. float_of_int (iters_hi - iters_lo)
  /. float_of_int lo.workers

type async_result = {
  a_workers : int;
  a_sweeps : int;
  a_refresh_every : int;
  a_solution : float array;
  a_error : float;
  a_messages_total : int;
  a_history_correct : bool;
}

let solver_async ?(seed = 42L) ?latency ~n ~sweeps ~refresh_every () =
  let problem = problem_for ~seed ~n in
  let owner = Async_solver.owner_map ~workers:n in
  let cluster = ref None in
  let engine, sched =
    run_procs (fun sched ->
        let c = Causal.create ~sched ~owner ?latency ~seed () in
        cluster := Some c;
        List.init n (fun i ->
            ( Printf.sprintf "async%d" i,
              fun () ->
                Async_solver.worker (Causal.handle c i) problem ~me:i ~sweeps ~refresh_every )))
  in
  let c = Option.get !cluster in
  let messages_total = Network.lifetime_total (Causal.net c) in
  let solution = ref [||] in
  run_one sched engine "collect" (fun () ->
      solution := Async_solver.read_solution (Causal.handle c 0) ~n);
  let exact = Linalg.solve_exact problem in
  {
    a_workers = n;
    a_sweeps = sweeps;
    a_refresh_every = refresh_every;
    a_solution = !solution;
    a_error = Linalg.max_diff !solution exact;
    a_messages_total = messages_total;
    a_history_correct = check_history (Causal.history c);
  }
