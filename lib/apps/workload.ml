module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Wid = Dsm_memory.Wid
module Op = Dsm_memory.Op
module History = Dsm_memory.History
module Prng = Dsm_util.Prng
module Proc = Dsm_runtime.Proc
module Engine = Dsm_sim.Engine

type spec = {
  processes : int;
  locations : int;
  ops_per_process : int;
  write_ratio : float;
  refresh_ratio : float;
  think_time : float;
}

let default_spec =
  {
    processes = 3;
    locations = 4;
    ops_per_process = 12;
    write_ratio = 0.5;
    refresh_ratio = 0.2;
    think_time = 1.5;
  }

let loc i = Loc.indexed "v" i

type outcome = { history : History.t; messages : int; sim_time : float }

let validate spec =
  if spec.processes < 1 then invalid_arg "Workload: processes must be >= 1";
  if spec.locations < 1 then invalid_arg "Workload: locations must be >= 1";
  if spec.ops_per_process < 0 then invalid_arg "Workload: negative op count"

(* One client process: a random mix of reads and writes with unique write
   values ([pid * 1e6 + op]). *)
let client ~spec ~prng ~pid ~read ~write ~refresh () =
  for k = 1 to spec.ops_per_process do
    if spec.think_time > 0.0 then Proc.sleep (Prng.exponential prng ~mean:spec.think_time);
    let target = loc (Prng.int prng spec.locations) in
    if Prng.chance prng spec.write_ratio then
      write target (Value.Int ((pid * 1_000_000) + k))
    else begin
      if Prng.chance prng spec.refresh_ratio then refresh target;
      ignore (read target)
    end
  done

let run_clients ~spec ~seed ~make =
  validate spec;
  let engine = Engine.create () in
  let sched = Proc.scheduler engine in
  let master = Prng.create seed in
  let read, write, refresh, finish = make engine sched in
  for pid = 0 to spec.processes - 1 do
    let prng = Prng.split master in
    ignore
      (Proc.spawn sched ~name:(Printf.sprintf "client%d" pid)
         (client ~spec ~prng ~pid ~read:(read pid) ~write:(write pid) ~refresh:(refresh pid)))
  done;
  Engine.run engine;
  Proc.check sched;
  finish engine

let run_causal ?(seed = 1L) ?config ?latency ?fault ?reliability ?rpc spec =
  let owner = Dsm_memory.Owner.by_index ~nodes:spec.processes in
  let cluster = ref None in
  let outcome =
    run_clients ~spec ~seed ~make:(fun _engine sched ->
        let c =
          Dsm_causal.Cluster.create ~sched ~owner ?config ?latency ?fault ?reliability ?rpc
            ~seed ()
        in
        cluster := Some c;
        let read pid l = Dsm_causal.Cluster.read (Dsm_causal.Cluster.handle c pid) l in
        let write pid l v = Dsm_causal.Cluster.write (Dsm_causal.Cluster.handle c pid) l v in
        let refresh pid l =
          Dsm_causal.Cluster.Mem.refresh (Dsm_causal.Cluster.handle c pid) l
        in
        let finish engine =
          Dsm_causal.Cluster.shutdown c;
          {
            history = Dsm_causal.Cluster.history c;
            messages = Dsm_causal.Cluster.messages_total c;
            sim_time = Engine.now engine;
          }
        in
        (read, write, refresh, finish))
  in
  (outcome, Option.get !cluster)

let run_atomic ?(seed = 1L) ?(mode = `Acknowledged) ?latency spec =
  let owner = Dsm_memory.Owner.by_index ~nodes:spec.processes in
  run_clients ~spec ~seed ~make:(fun _engine sched ->
      let c = Dsm_atomic.Cluster.create ~sched ~owner ~mode ?latency ~seed () in
      let read pid l = Dsm_atomic.Cluster.read (Dsm_atomic.Cluster.handle c pid) l in
      let write pid l v = Dsm_atomic.Cluster.write (Dsm_atomic.Cluster.handle c pid) l v in
      let refresh _pid _l = () in
      let finish engine =
        {
          history = Dsm_atomic.Cluster.history c;
          messages = Dsm_net.Network.lifetime_total (Dsm_atomic.Cluster.net c);
          sim_time = Engine.now engine;
        }
      in
      (read, write, refresh, finish))

let run_bmem ?(seed = 1L) ?(mode = `Causal) ?latency spec =
  run_clients ~spec ~seed ~make:(fun _engine sched ->
      let b = Dsm_broadcast.Bmem.create ~sched ~processes:spec.processes ~mode ?latency ~seed () in
      let read pid l = Dsm_broadcast.Bmem.read (Dsm_broadcast.Bmem.handle b pid) l in
      let write pid l v = Dsm_broadcast.Bmem.write (Dsm_broadcast.Bmem.handle b pid) l v in
      let refresh _pid _l = () in
      let finish engine =
        {
          history = Dsm_broadcast.Bmem.history b;
          messages = Dsm_broadcast.Bmem.messages b;
          sim_time = Engine.now engine;
        }
      in
      (read, write, refresh, finish))

let mutate_read prng history =
  let rows = Array.map Array.copy (history : History.t :> Op.t array array) in
  (* Collect (write identity, value) per location, plus candidate reads. *)
  let writes_by_loc : (Wid.t * Value.t) list Loc.Table.t = Loc.Table.create 16 in
  Array.iter
    (Array.iter (fun (op : Op.t) ->
         if Op.is_write op then begin
           let prev =
             match Loc.Table.find_opt writes_by_loc op.Op.loc with Some l -> l | None -> []
           in
           Loc.Table.replace writes_by_loc op.Op.loc ((op.Op.wid, op.Op.value) :: prev)
         end))
    rows;
  let candidates = ref [] in
  Array.iteri
    (fun pid row ->
      Array.iteri
        (fun index (op : Op.t) ->
          if Op.is_read op then begin
            let alternatives =
              (Wid.initial, Value.initial)
              :: (match Loc.Table.find_opt writes_by_loc op.Op.loc with
                 | Some l -> l
                 | None -> [])
            in
            let alternatives =
              List.filter (fun (wid, _) -> not (Wid.equal wid op.Op.wid)) alternatives
            in
            if alternatives <> [] then candidates := (pid, index, alternatives) :: !candidates
          end)
        row)
    rows;
  match !candidates with
  | [] -> None
  | cs ->
      let pid, index, alternatives = Prng.pick prng (Array.of_list cs) in
      let wid, value = Prng.pick prng (Array.of_list alternatives) in
      let old = rows.(pid).(index) in
      rows.(pid).(index) <- Op.read ~pid ~index ~loc:old.Op.loc ~value ~from:wid;
      Some (History.of_ops rows)
