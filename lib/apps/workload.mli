(** Random read/write workloads over any of the three memories.

    Used by the property tests (every protocol execution must pass the
    causal checker — experiment E-FIG4), the consistency-hierarchy census
    (E-WEAK), and the invalidation/page/discard ablations.  Values are made
    globally unique so recorded histories satisfy the paper's
    unique-writes convention even at the value level. *)

type spec = {
  processes : int;
  locations : int;  (** namespace: [Indexed ("v", 0..locations-1)] *)
  ops_per_process : int;
  write_ratio : float;  (** probability an op is a write *)
  refresh_ratio : float;  (** probability of a freshness refresh before a read *)
  think_time : float;  (** mean random pause between ops (simulated time) *)
}

val default_spec : spec
(** 3 processes, 4 locations, 12 ops each, 50% writes. *)

val loc : int -> Dsm_memory.Loc.t

val validate : spec -> unit
(** Raise [Invalid_argument] on nonsensical field values. *)

val client :
  spec:spec ->
  prng:Dsm_util.Prng.t ->
  pid:int ->
  read:(Dsm_memory.Loc.t -> Dsm_memory.Value.t) ->
  write:(Dsm_memory.Loc.t -> Dsm_memory.Value.t -> unit) ->
  refresh:(Dsm_memory.Loc.t -> unit) ->
  unit ->
  unit
(** One client process body: [ops_per_process] random operations with the
    spec's mix, unique write values ([pid * 1e6 + op index]).  Exposed so
    harnesses (e.g. {!Chaos}) can run the standard mix over clusters they
    build themselves. *)

type outcome = {
  history : Dsm_memory.History.t;
  messages : int;
  sim_time : float;
}

val run_causal :
  ?seed:int64 ->
  ?config:Dsm_causal.Config.t ->
  ?latency:Dsm_net.Latency.t ->
  ?fault:Dsm_net.Network.fault ->
  ?reliability:Dsm_net.Reliable.config ->
  ?rpc:Dsm_causal.Cluster.rpc ->
  spec ->
  outcome * Dsm_causal.Cluster.t
(** The cluster is returned for stats inspection (invalidation counters
    etc.); it is already shut down.  [fault]/[reliability]/[rpc] configure
    lossy links, the reliable transport, and RPC timeouts — see
    {!Dsm_causal.Cluster.create}. *)

val run_atomic :
  ?seed:int64 ->
  ?mode:Dsm_atomic.Cluster.invalidation_mode ->
  ?latency:Dsm_net.Latency.t ->
  spec ->
  outcome

val run_bmem :
  ?seed:int64 ->
  ?mode:Dsm_broadcast.Cbcast.mode ->
  ?latency:Dsm_net.Latency.t ->
  spec ->
  outcome

(** {1 Adversarial history mutation}

    Corrupt a correct history so checker implementations can be compared on
    inputs that are (usually) violations. *)

val mutate_read :
  Dsm_util.Prng.t -> Dsm_memory.History.t -> Dsm_memory.History.t option
(** Redirect one random read to a different write of the same location
    (or to the initial write); [None] if the history has no read with an
    alternative source. *)
