(** Whole-cluster recovery benchmark: how much work a restart replays, and
    how long it takes, with and without checkpointing.

    Each grid cell runs a pure owner-write workload (every node writes its
    own locations once per unit of sim time) to quiescence, then
    power-cycles the whole cluster — crash every node, restart every node —
    many times, measuring the replayed-record count and the host time spent
    in {!Dsm_causal.Cluster.restart_result}'s replay path.  Cells vary the
    per-node operation count and toggle periodic checkpointing at a fixed
    interval.

    The claim the artifact certifies: with a fixed checkpoint interval,
    recovery work is bounded by records-since-checkpoint and stays roughly
    flat as the total log grows, while the uncheckpointed replay grows
    linearly with it.  Replay counts are seed-deterministic; only the
    [seconds_per_recovery] figures are host-time measurements.

    The [dsm bench recovery] subcommand wraps {!run} and writes {!to_json}
    to [BENCH_recovery.json]. *)

type case = {
  mode : string;  (** ["checkpointed"] or ["uncheckpointed"] *)
  interval : float option;  (** the [checkpoint_every] period, if any *)
  ops_per_node : int;
  ops_issued : int;  (** [nodes * ops_per_node] *)
  wal_records : int;  (** live log entries across all nodes at measurement *)
  wal_checkpoints : int;
  wal_truncated : int;  (** entries compaction dropped, lifetime *)
  recoveries : int;  (** node restarts performed ([nodes * cycles]) *)
  replayed_per_recovery : float;  (** records replayed per restart *)
  seconds_per_recovery : float;  (** host seconds per restart (measured) *)
  unfinished : int;  (** blocked processes — 0 on a healthy cell *)
}

type result = {
  nodes : int;
  cycles : int;  (** whole-cluster power cycles per cell *)
  quick : bool;
  cases : case list;
  replay_bounded : bool;
      (** worst-case checkpointed replay < worst-case uncheckpointed
          replay — the headline the CLI gates on *)
}

val default_interval : float
(** The checkpointed cells' [checkpoint_every] period (5.0). *)

val run : ?quick:bool -> ?seed:int64 -> unit -> result
(** Run the grid: per-node op counts 50–400 with 25 cycles per cell, or
    50–100 with 10 cycles under [~quick:true] (the CI soak uses quick). *)

val to_json : result -> string
(** Stable, hand-rolled JSON, newline-terminated (same style as
    {!Bench.to_json}). *)

val pp : Format.formatter -> result -> unit

val healthy : result -> bool
(** [replay_bounded] and no cell left a process blocked. *)
