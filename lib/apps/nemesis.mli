(** A Jepsen-style nemesis: timed fault plans against a running cluster.

    A plan is a list of {!step}s — at simulated time [at], inject [fault].
    {!schedule} registers every step on the engine up front and returns a
    counter record the scenario reads after the run; faults then fire
    between client operations as the simulation reaches their timestamps,
    exactly like Jepsen's nemesis process interleaving with the workload.

    Partition faults drive the cluster's link-state controls
    ({!Dsm_causal.Cluster.partition} and friends), so healing a cut also
    triggers the reliable transport's link resynchronisation.  [Crash] and
    [Restart] use the [_result] variants: crashing a dead node or
    restarting a live one is counted as a no-op, which lets plans stay
    declarative even when an earlier fault already changed the state. *)

type fault =
  | Cut of { a : int list; b : int list }
      (** symmetric partition between the two groups *)
  | Cut_oneway of { src : int list; dst : int list }
      (** asymmetric: only [src]→[dst] links go down *)
  | Heal of { a : int list; b : int list }  (** restore both directions *)
  | Heal_all  (** restore every downed link *)
  | Crash of int
  | Restart of int

type step = { at : float; fault : fault }

type t
(** Counters accumulated as scheduled faults actually fire. *)

val schedule : Dsm_sim.Engine.t -> Dsm_causal.Cluster.t -> step list -> t
(** Register every step with the engine; returns the live counters. *)

val cuts : t -> int
val heals : t -> int
val crashes : t -> int
val restarts : t -> int

val log : t -> (float * string) list
(** The faults that fired, oldest first, with their fire times. *)

val notes : t -> (string * string) list
(** {!log} rendered as report notes ([nemesis_0], [nemesis_1], …). *)

val describe : fault -> string

val partition_window : from_:float -> until:float -> a:int list -> b:int list -> step list
(** Cut the two groups apart at [from_], heal them at [until]. *)

val crash_window : from_:float -> until:float -> int -> step list
(** Crash the node at [from_], restart it at [until]. *)
