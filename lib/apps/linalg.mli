(** Dense linear-algebra support for the solver experiments: problem
    generation, the sequential Jacobi reference, and residuals. *)

type problem = { a : float array array; b : float array }
(** A square system [Ax = b]. *)

val dim : problem -> int

val random_diagonally_dominant : Dsm_util.Prng.t -> n:int -> problem
(** Random system with [|a_ii| > Σ_j≠i |a_ij|], so Jacobi iteration
    converges (also under chaotic relaxation). *)

val jacobi_step : problem -> float array -> float array
(** One synchronous Jacobi sweep:
    [x_i' = (b_i - Σ_{j≠i} a_ij x_j) / a_ii]. *)

val jacobi : problem -> iters:int -> float array
(** [iters] synchronous sweeps from the zero vector: the sequential
    reference the distributed solvers must reproduce exactly (synchronous)
    or converge to (asynchronous). *)

val residual : problem -> float array -> float
(** Max-norm of [Ax - b]. *)

val max_diff : float array -> float array -> float
(** Max-norm of the difference; raises on length mismatch. *)

val solve_exact : problem -> float array
(** Gaussian elimination with partial pivoting; the ground truth for
    convergence checks.  Raises [Failure] on a (numerically) singular
    system. *)
