(* E-CORE: the hot-path benchmark behind the tentpole claims.

   Three measurements, all seed-deterministic except for wall-clock time:

   - micro: the flattened owner-write service ({!Dsm_protocol.Flat}) against
     the boxed {!Dsm_protocol.Protocol.step} on the identical 2-node/1-loc
     shape, hand-timed over a fixed iteration count, plus the minor-heap
     words the flat loop allocates (the ALLOC=0 gate);
   - sim: the conservative parallel engine ({!Dsm_sim.Par_engine}) driving a
     [nodes]-node, [target_ops]-op workload at 1/2/4 domains, with the
     digest-equality determinism gate;
   - checked: the same workload with the windowed online checker consuming
     the op stream at the epoch barriers, against the unchecked run. *)

module Flat = Dsm_protocol.Flat
module P = Dsm_protocol.Protocol
module Par = Dsm_sim.Par_engine
module Online = Dsm_checker.Online
module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value
module Op = Dsm_memory.Op
module Wid = Dsm_memory.Wid

type micro = {
  iters : int;
  step_ns : float;
  flat_ns : float;
  speedup : float;  (** [step_ns /. flat_ns]; the tentpole claims >= 5 *)
  flat_minor_words_per_op : float;  (** the ALLOC=0 gate: ~0.0 *)
}

type sim_cell = {
  domains : int;
  wall_s : float;
  ops : int;
  ops_per_s : float;
  epochs : int;
  digest : int;
}

type checked = {
  window : int;
  unchecked_ops_per_s : float;
  checked_ops_per_s : float;
  ratio : float;  (** checked / unchecked; the gate claims >= 0.5 *)
  violations : int;
  checker_ops : int;
  pending : int;
  dropped : int;
}

type result = {
  quick : bool;
  seed : int;
  nodes : int;
  target_ops : int;
  micro : micro;
  sim : sim_cell list;
  digests_agree : bool;
  checked : checked;
}

let now_s () = Unix.gettimeofday ()

(* {1 Micro: flat vs Protocol.step owner write} *)

(* Timed with a monotonic-enough wall clock over a big fixed loop rather
   than a sampling harness: the loop body is tens of nanoseconds and the
   quantity gated on is a 5x ratio, not a confidence interval. *)
let measure_micro ~iters =
  let warmup = iters / 10 in
  (* Protocol.step side: the boxed event/record path. *)
  let st =
    P.create
      ~owner:(Dsm_memory.Owner.by_index ~nodes:2)
      ~config:Dsm_protocol.Config.default ~now:0.0 ()
  in
  let loc = Loc.indexed "v" 0 in
  let step_once () =
    ignore (P.step st (P.Owner_write { node = 0; loc; value = Value.Int 1; writer = 0 }))
  in
  for _ = 1 to warmup do
    step_once ()
  done;
  let t0 = now_s () in
  for _ = 1 to iters do
    step_once ()
  done;
  let step_ns = (now_s () -. t0) *. 1e9 /. float_of_int iters in
  (* Flat side: same shape — 2 nodes, 1 location, node 0 owns it. *)
  let interner = Loc.Interner.create () in
  let lid = Loc.Interner.intern interner loc in
  let flat = Flat.create ~nodes:2 ~locs:1 ~owner:[| 0 |] () in
  let flat_once () = Flat.owner_write flat ~node:0 ~loc:lid ~value:1 in
  for _ = 1 to warmup do
    flat_once ()
  done;
  let w0 = Gc.minor_words () in
  let t0 = now_s () in
  for _ = 1 to iters do
    flat_once ()
  done;
  let flat_ns = (now_s () -. t0) *. 1e9 /. float_of_int iters in
  let w1 = Gc.minor_words () in
  {
    iters;
    step_ns;
    flat_ns;
    speedup = step_ns /. flat_ns;
    (* [Gc.minor_words] itself boxes its float result; amortised over the
       loop that noise is far below the 0.01 words/op gate. *)
    flat_minor_words_per_op = (w1 -. w0) /. float_of_int iters;
  }

(* {1 Sim: the parallel engine at 1/2/4 domains} *)

let sim_params ~nodes ~seed =
  { (Par.default_params ~nodes) with seed; shards = 16; remote_pct = 30 }

let measure_sim ~nodes ~seed ~target_ops ~domains =
  let eng = Par.create (sim_params ~nodes ~seed) in
  let t0 = now_s () in
  let stats = Par.run ~domains ~target_ops eng in
  let wall_s = now_s () -. t0 in
  {
    domains;
    wall_s;
    ops = stats.Par.completed;
    ops_per_s = float_of_int stats.Par.completed /. wall_s;
    epochs = stats.Par.epochs;
    digest = stats.Par.digest;
  }

(* {1 Checked: windowed online checker riding the op stream} *)

let measure_checked ~nodes ~seed ~target_ops ~domains ~window =
  (* A fresh unchecked run immediately beforehand: the checked/unchecked
     ratio compares adjacent measurements under identical conditions, not a
     sim cell timed earlier. *)
  let unchecked = measure_sim ~nodes ~seed ~target_ops ~domains in
  let params = sim_params ~nodes ~seed in
  let eng = Par.create params in
  let ck = Online.create ~window () in
  let indices = Array.make nodes 0 in
  (* Locations are interned once: the feed loop itself allocates only the
     Op records the checker stores. *)
  let locs = Array.init params.Par.locs (Loc.indexed "x") in
  let violations = ref 0 in
  let t0 = now_s () in
  let stats =
    Par.run ~domains ~target_ops
      ~on_ops:(fun ~node ~buf ~len ->
        for o = 0 to (len / Par.log_stride) - 1 do
          let b = o * Par.log_stride in
          let kind = buf.(b)
          and loc = locs.(buf.(b + 1))
          and value = Value.Int buf.(b + 2)
          and wn = buf.(b + 3)
          and ws = buf.(b + 4) in
          let index = indices.(node) in
          indices.(node) <- index + 1;
          let op =
            if kind = 0 then
              Op.read ~pid:node ~index ~loc ~value
                ~from:(if wn < 0 then Wid.initial else Wid.make ~node:wn ~seq:ws)
            else Op.write ~pid:node ~index ~loc ~value ~wid:(Wid.make ~node:wn ~seq:ws)
          in
          violations := !violations + List.length (Online.add_op ck op)
        done)
      eng
  in
  let wall_s = now_s () -. t0 in
  let checked_ops_per_s = float_of_int stats.Par.completed /. wall_s in
  {
    window;
    unchecked_ops_per_s = unchecked.ops_per_s;
    checked_ops_per_s;
    ratio = checked_ops_per_s /. unchecked.ops_per_s;
    violations = !violations;
    checker_ops = Online.ops_seen ck;
    pending = Online.pending_reads ck;
    dropped = Online.dropped_reads ck;
  }

let run ?(quick = false) ?(seed = 1) () =
  let nodes = if quick then 64 else 256 in
  let target_ops = if quick then 100_000 else 1_000_000 in
  let iters = if quick then 400_000 else 2_000_000 in
  let micro = measure_micro ~iters in
  let sim =
    List.map (fun domains -> measure_sim ~nodes ~seed ~target_ops ~domains) [ 1; 2; 4 ]
  in
  let digests_agree =
    match sim with
    | [] -> false
    | c :: rest -> List.for_all (fun c' -> c'.digest = c.digest && c'.ops = c.ops) rest
  in
  let best = List.fold_left (fun a c -> if c.ops_per_s > a.ops_per_s then c else a) (List.hd sim) sim in
  let checked = measure_checked ~nodes ~seed ~target_ops ~domains:best.domains ~window:64 in
  { quick; seed; nodes; target_ops; micro; sim; digests_agree; checked }

let run_micro ?(quick = false) () =
  measure_micro ~iters:(if quick then 400_000 else 2_000_000)

let micro_healthy m = m.speedup >= 5.0 && m.flat_minor_words_per_op <= 0.01

let healthy r =
  micro_healthy r.micro
  && r.digests_agree
  && List.for_all (fun c -> c.ops >= r.target_ops) r.sim
  && r.checked.ratio >= 0.5
  && r.checked.violations = 0
  && r.checked.pending = 0

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_json r =
  let b = Buffer.create 1024 in
  let field fmt = Printf.bprintf b fmt in
  field "{\n";
  field "  \"benchmark\": \"core\",\n";
  field "  \"quick\": %b,\n" r.quick;
  field "  \"seed\": %d,\n" r.seed;
  field "  \"nodes\": %d,\n" r.nodes;
  field "  \"target_ops\": %d,\n" r.target_ops;
  field "  \"micro\": {\n";
  field "    \"iters\": %d,\n" r.micro.iters;
  field "    \"step_ns\": %s,\n" (json_float r.micro.step_ns);
  field "    \"flat_ns\": %s,\n" (json_float r.micro.flat_ns);
  field "    \"speedup\": %s,\n" (json_float r.micro.speedup);
  field "    \"flat_minor_words_per_op\": %s\n" (json_float r.micro.flat_minor_words_per_op);
  field "  },\n";
  field "  \"sim\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then field ",\n";
      field "    { \"domains\": %d, \"wall_s\": %s, \"ops\": %d, \"ops_per_s\": %s, \"epochs\": %d, \"digest\": %d }"
        c.domains (json_float c.wall_s) c.ops (json_float c.ops_per_s) c.epochs c.digest)
    r.sim;
  field "\n  ],\n";
  field "  \"digests_agree\": %b,\n" r.digests_agree;
  field "  \"checked\": {\n";
  field "    \"window\": %d,\n" r.checked.window;
  field "    \"unchecked_ops_per_s\": %s,\n" (json_float r.checked.unchecked_ops_per_s);
  field "    \"checked_ops_per_s\": %s,\n" (json_float r.checked.checked_ops_per_s);
  field "    \"ratio\": %s,\n" (json_float r.checked.ratio);
  field "    \"violations\": %d,\n" r.checked.violations;
  field "    \"checker_ops\": %d,\n" r.checked.checker_ops;
  field "    \"pending\": %d,\n" r.checked.pending;
  field "    \"dropped\": %d\n" r.checked.dropped;
  field "  },\n";
  field "  \"healthy\": %b\n" (healthy r);
  field "}\n";
  Buffer.contents b

let pp ppf r =
  Format.fprintf ppf "core bench: %d nodes, %d ops%s@." r.nodes r.target_ops
    (if r.quick then " (quick)" else "");
  Format.fprintf ppf "  micro: step %.1f ns/op, flat %.1f ns/op — %.1fx (%.4f minor words/op)@."
    r.micro.step_ns r.micro.flat_ns r.micro.speedup r.micro.flat_minor_words_per_op;
  List.iter
    (fun c ->
      Format.fprintf ppf "  sim %d domain%s: %.2f s, %.0f ops/s, %d epochs, digest %x@."
        c.domains (if c.domains = 1 then " " else "s") c.wall_s c.ops_per_s c.epochs c.digest)
    r.sim;
  Format.fprintf ppf "  digests agree across domain counts: %b@." r.digests_agree;
  Format.fprintf ppf
    "  checked (window %d): %.0f ops/s vs %.0f unchecked — ratio %.2f, %d violations, %d pending@."
    r.checked.window r.checked.checked_ops_per_s r.checked.unchecked_ops_per_s r.checked.ratio
    r.checked.violations r.checked.pending;
  Format.fprintf ppf "  gate (>=5x micro, 0 allocs, digests agree, ratio >= 0.5): %s@."
    (if healthy r then "PASS" else "FAIL")
