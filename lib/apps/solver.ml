module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value

let x_loc i = Loc.indexed "x" i

let complete_loc i = Loc.indexed "complete" i

let changed_loc i = Loc.indexed "changed" i

let owner_map ~workers =
  (* Worker i owns x_i, complete_i, changed_i; the coordinator (node
     [workers]) owns nothing.  [Owner.by_index] maps Indexed (_, i) to
     i mod nodes = i for i < workers. *)
  Dsm_memory.Owner.by_index ~nodes:(workers + 1)

(* Element i belongs to worker (i * workers / n): contiguous blocks of size
   n/workers (the last block absorbs the remainder). *)
let block_of ~workers ~n i = min (workers - 1) (i * workers / n)

let block_owner_map ~workers ~n =
  Dsm_memory.Owner.make ~nodes:(workers + 1) (fun loc ->
      match loc with
      | Loc.Indexed ("x", i) -> block_of ~workers ~n i
      | Loc.Indexed ("complete", w) | Loc.Indexed ("changed", w) -> w
      | Loc.Indexed (_, i) -> i mod (workers + 1)
      | Loc.Named _ | Loc.Cell (_, _, _) -> 0)

module Make (M : Dsm_memory.Memory_intf.MEMORY) = struct
  let read_flag h loc =
    match M.read h loc with
    | Value.Bool b -> b
    | Value.Int 0 -> false (* uninitialised flags read as the initial 0 *)
    | v ->
        invalid_arg
          (Printf.sprintf "solver: flag %s holds %s" (Loc.to_string loc) (Value.to_string v))

  (* "wait (B)" of Figure 6: while (not B) skip.  Locally owned flags become
     visible when the protocol services the remote write, so plain polling
     suffices; flags cached from elsewhere additionally need a freshness
     refresh per probe (causal memory's discard). *)
  let wait h loc expected =
    let rec poll () =
      if read_flag h loc <> expected then begin
        M.refresh h loc;
        M.yield h;
        poll ()
      end
    in
    poll ()

  let worker h problem ~me ~iters =
    let n = Linalg.dim problem in
    let row = problem.Linalg.a.(me) in
    for _phase = 1 to iters do
      (* Compute the new element from the previous phase's global vector. *)
      let acc = ref problem.Linalg.b.(me) in
      for j = 0 to n - 1 do
        if j <> me then acc := !acc -. (row.(j) *. Value.to_float (M.read h (x_loc j)))
      done;
      let t = !acc /. row.(me) in
      (* First barrier: everyone has finished computing. *)
      M.write h (complete_loc me) (Value.Bool true);
      wait h (complete_loc me) false;
      (* Publish, then second barrier: everyone has published. *)
      M.write h (x_loc me) (Value.Float t);
      M.write h (changed_loc me) (Value.Bool true);
      wait h (changed_loc me) false
    done

  let worker_block h problem ~me ~workers ~iters =
    let n = Linalg.dim problem in
    let mine i = block_of ~workers ~n i = me in
    for _phase = 1 to iters do
      (* Compute every owned element from the previous phase's vector.
         Reads of own-block elements are owner-local and still return the
         previous phase's values: publication happens after the first
         barrier. *)
      let results = ref [] in
      for i = 0 to n - 1 do
        if mine i then begin
          let row = problem.Linalg.a.(i) in
          let acc = ref problem.Linalg.b.(i) in
          for j = 0 to n - 1 do
            if j <> i then acc := !acc -. (row.(j) *. Value.to_float (M.read h (x_loc j)))
          done;
          results := (i, !acc /. row.(i)) :: !results
        end
      done;
      M.write h (complete_loc me) (Value.Bool true);
      wait h (complete_loc me) false;
      List.iter (fun (i, t) -> M.write h (x_loc i) (Value.Float t)) (List.rev !results);
      M.write h (changed_loc me) (Value.Bool true);
      wait h (changed_loc me) false
    done

  let coordinator h ~workers ~iters =
    for _phase = 1 to iters do
      for i = 0 to workers - 1 do
        wait h (complete_loc i) true
      done;
      for i = 0 to workers - 1 do
        M.write h (complete_loc i) (Value.Bool false)
      done;
      for i = 0 to workers - 1 do
        wait h (changed_loc i) true
      done;
      for i = 0 to workers - 1 do
        M.write h (changed_loc i) (Value.Bool false)
      done
    done

  let read_solution h ~n =
    Array.init n (fun i ->
        let loc = x_loc i in
        M.refresh h loc;
        Value.to_float (M.read h loc))
end
