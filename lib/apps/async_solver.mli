(** The asynchronous (chaotic relaxation) solver — the extension the paper
    defers to its tech report: "It is possible to eliminate the
    synchronization entirely by using an asynchronous algorithm".

    No coordinator and no barriers: each worker repeatedly recomputes its
    element from whatever (possibly stale) values of the other elements it
    currently sees, writes its own element (an owner write — zero
    messages), and periodically discards its cache so fresh values flow in.
    For diagonally dominant systems chaotic relaxation still converges; the
    message count collapses because the only traffic is the periodic
    refresh, which is the E-ASYNC experiment.

    Causal-memory-specific (uses [discard]); runs on {!Dsm_causal.Cluster}
    handles directly. *)

val owner_map : workers:int -> Dsm_memory.Owner.t
(** [workers] nodes, worker [i] owning [x_i]; no coordinator node. *)

val worker :
  Dsm_causal.Cluster.handle ->
  Linalg.problem ->
  me:int ->
  sweeps:int ->
  refresh_every:int ->
  unit
(** Run [sweeps] local relaxation sweeps, discarding the cache every
    [refresh_every] sweeps (and on the first sweep). *)

val read_solution : Dsm_causal.Cluster.handle -> n:int -> float array
(** Fetch the converged vector with freshness refreshes. *)

val worker_until :
  Dsm_causal.Cluster.handle ->
  Linalg.problem ->
  me:int ->
  tolerance:float ->
  refresh_every:int ->
  max_sweeps:int ->
  int
(** Self-terminating variant: each worker publishes its per-sweep change
    ([delta.i], an owner write) and stops once every published delta has
    been below [tolerance] on two consecutive checks (with freshness
    refreshes in between).  Exact distributed termination detection on a
    weakly consistent memory needs stronger machinery; this double-check
    heuristic is sound for contracting iterations like diagonally dominant
    Jacobi, where deltas decrease geometrically.  Returns the number of
    sweeps executed (at most [max_sweeps]). *)
