(* Causal-objects benchmark: every shipped [Causal_object] instance runs
   the same seeded update/query mix over loss-free links — one cluster per
   family — and each cell reports how much the object embedding costs on
   the wire (logical messages per spec-level update: the op-log probes,
   fetches and invalidations behind one update) next to the correctness
   verdicts: the register history's causal check, the object checker over
   every recorded query, and cross-process convergence of the final
   returns.

   The cells reuse the chaos object scenarios with loss and duplication
   zeroed, so a given [(seed, quick)] pair reproduces bit-identically and
   any message-cost regression in the probe/merge path shows up as a
   [messages_per_update] jump in BENCH_objects.json. *)

type cell = {
  obj : string;  (** scenario name, [obj-<family>] *)
  processes : int;
  updates : int;  (** spec-level updates issued *)
  queries : int;  (** recorded object queries, all certified post hoc *)
  ops : int;  (** register ops in the history: probes + op-log writes *)
  logical_messages : int;
  messages_per_update : float;
  object_ok : bool;  (** every query spec-legal (the generalized checker) *)
  converged : bool;  (** all final query returns agree *)
  healthy : bool;  (** the full chaos health verdict for the cell *)
  unfinished : int;
}

type result = { quick : bool; seed : int64; cells : cell list }

let note_bool notes key = List.assoc_opt key notes = Some "true"

let note_int notes key =
  match List.assoc_opt key notes with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

let run_cell ~scenario ~make ~seed ~processes ~rounds =
  let knobs = { Chaos.default_knobs with Chaos.drop = 0.0; duplicate = 0.0 } in
  let r = Chaos.object_scenario ~scenario ~make ~knobs ~seed ~processes ~rounds () in
  let updates = processes * rounds in
  {
    obj = scenario;
    processes;
    updates;
    queries = note_int r.Chaos.notes "object_queries";
    ops = r.Chaos.ops;
    logical_messages = r.Chaos.logical_messages;
    messages_per_update = float_of_int r.Chaos.logical_messages /. float_of_int updates;
    object_ok = note_bool r.Chaos.notes "object_ok";
    converged = note_bool r.Chaos.notes "views_converged";
    healthy = Chaos.healthy r;
    unfinished = List.length r.Chaos.unfinished;
  }

let run ?(quick = false) ?(seed = 1L) () =
  let processes = if quick then 3 else 4 in
  let rounds = if quick then 3 else 6 in
  {
    quick;
    seed;
    cells =
      List.map
        (fun (scenario, make) -> run_cell ~scenario ~make ~seed ~processes ~rounds)
        Chaos.Objects.drivers;
  }

(* The acceptance gate: every instance's cell fully clean — spec-legal
   queries, converged final views, healthy chaos verdict, nobody blocked. *)
let healthy r =
  r.cells <> []
  && List.for_all
       (fun c -> c.object_ok && c.converged && c.healthy && c.unfinished = 0)
       r.cells

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let to_json r =
  let b = Buffer.create 1024 in
  let field fmt = Printf.bprintf b fmt in
  field "{\n";
  field "  \"benchmark\": \"objects\",\n";
  field "  \"quick\": %b,\n" r.quick;
  field "  \"seed\": %Ld,\n" r.seed;
  field "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then field ",\n";
      field
        "    { \"object\": %S, \"processes\": %d, \"updates\": %d, \"queries\": %d, \
         \"ops\": %d, \"logical_messages\": %d, \"messages_per_update\": %s, \
         \"object_ok\": %b, \"converged\": %b, \"healthy\": %b, \"unfinished\": %d }"
        c.obj c.processes c.updates c.queries c.ops c.logical_messages
        (json_float c.messages_per_update)
        c.object_ok c.converged c.healthy c.unfinished)
    r.cells;
  field "\n  ]\n";
  field "}\n";
  Buffer.contents b

let pp ppf r =
  Format.fprintf ppf "objects bench: seed %Ld%s@." r.seed (if r.quick then " (quick)" else "");
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-11s %d procs: %3d updates, %3d queries, %4d ops, msgs/update %6.2f  %s@."
        c.obj c.processes c.updates c.queries c.ops c.messages_per_update
        (if c.object_ok && c.converged && c.healthy then "ok"
         else
           Printf.sprintf "FAIL (object_ok %b, converged %b, healthy %b)" c.object_ok
             c.converged c.healthy))
    r.cells;
  Format.fprintf ppf "  gate (every instance legal, converged, healthy): %s@."
    (if healthy r then "PASS" else "FAIL")
