module Loc = Dsm_memory.Loc
module Value = Dsm_memory.Value

module Make (M : Dsm_memory.Memory_intf.MEMORY) = struct
  module Eventcount = struct
    let value h loc =
      match M.read h loc with
      | Value.Int n -> n
      | v ->
          invalid_arg
            (Printf.sprintf "Eventcount: %s holds %s" (Loc.to_string loc) (Value.to_string v))

    let advance h loc = M.write h loc (Value.Int (value h loc + 1))

    let await h loc target =
      let rec poll () =
        if value h loc < target then begin
          M.refresh h loc;
          M.yield h;
          poll ()
        end
      in
      poll ()
  end

  module Barrier = struct
    type t = { name : string; parties : int }

    let create ~name ~parties =
      if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
      { name; parties }

    let slot t i = Loc.indexed t.name i

    let generation t h ~me = Eventcount.value h (slot t me)

    let enter t h ~me =
      if me < 0 || me >= t.parties then invalid_arg "Barrier.enter: bad participant";
      (* Advance own count (an owner write: local), then wait for everyone
         to reach the same generation. *)
      Eventcount.advance h (slot t me);
      let generation = Eventcount.value h (slot t me) in
      for j = 0 to t.parties - 1 do
        if j <> me then Eventcount.await h (slot t j) generation
      done
  end
end
